//! End-to-end application tests: NGINX worker scaling and Redis
//! fork-based snapshots (§7.1).

use std::net::Ipv4Addr;

use nephele::apps::{NginxApp, RedisApp, DUMP_FILE, HTTP_PORT, REDIS_PORT};
use nephele::netmux::SockEvent;
use nephele::sim_core::DomId;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{ClonePolicy, DeviceClass, Platform, PlatformConfig};

const SERVICE_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn web_cfg(name: &str) -> DomainConfig {
    DomainConfig::builder(name)
        .memory_mib(16)
        .vif(SERVICE_IP)
        .max_clones(8)
        .build()
}

/// Issues one HTTP request from the host and returns the response body.
fn http_get(p: &mut Platform, port: u16) -> Option<String> {
    let conn = p.host_tcp_connect(SERVICE_IP, port);
    p.take_host_events();
    p.host_tcp_send(conn, b"GET / HTTP/1.1\r\n\r\n".to_vec());
    let resp = p.take_host_events().into_iter().find_map(|e| match e {
        SockEvent::TcpData { conn: c, data } if c == conn => Some(data),
        _ => None,
    });
    p.host_tcp_close(conn);
    resp.map(|d| String::from_utf8_lossy(&d).to_string())
}

#[test]
fn nginx_forks_workers_and_serves_through_bond() {
    let mut p = Platform::new(PlatformConfig::small());
    let master = p
        .launch(
            &web_cfg("nginx"),
            &KernelImage::unikraft("nginx"),
            Box::new(NginxApp::new(4)),
        )
        .unwrap();

    // Four workers were cloned and enslaved to the bond.
    assert_eq!(p.hv.domain(master).unwrap().children.len(), 4);
    assert_eq!(p.snapshot().mux_members, 4);

    // Many requests; every one must be answered despite shared MAC/IP.
    let mut answered = 0;
    for _ in 0..40 {
        if let Some(body) = http_get(&mut p, HTTP_PORT) {
            assert!(body.contains("200 OK"));
            assert!(body.contains("nephele-nginx"));
            answered += 1;
        }
    }
    assert_eq!(answered, 40);

    // Workers shared the load: every worker served at least one request.
    let workers = p.hv.domain(master).unwrap().children.clone();
    let mut total = 0u64;
    for w in &workers {
        let served = p
            .with_app::<NginxApp, u64>(*w, |app, _env| app.served)
            .unwrap();
        assert!(served > 0, "worker {w} served nothing");
        total += served;
    }
    assert_eq!(total, 40);
}

#[test]
fn nginx_worker_pinning() {
    let mut p = Platform::new(PlatformConfig::small());
    let master = p
        .launch(
            &web_cfg("nginx"),
            &KernelImage::unikraft("nginx"),
            Box::new(NginxApp::new(3)),
        )
        .unwrap();
    let workers = p.hv.domain(master).unwrap().children.clone();
    let mut cores: Vec<usize> = workers
        .iter()
        .map(|w| p.hv.domain(*w).unwrap().vcpus[0].affinity.unwrap())
        .collect();
    cores.sort_unstable();
    cores.dedup();
    assert_eq!(cores.len(), 3, "each worker pinned to a distinct core");
}

fn redis_platform() -> (Platform, DomId) {
    let mut p = Platform::new(PlatformConfig::small());
    // Redis clones do not need network devices (§7.1).
    p.daemon.config.policy = ClonePolicy::all().set(DeviceClass::Vif, false);
    let cfg = DomainConfig::builder("redis")
        .memory_mib(64)
        .vif(SERVICE_IP)
        .p9fs("/export/redis")
        .max_clones(16)
        .build();
    let dom = p
        .launch(&cfg, &KernelImage::unikraft("redis"), Box::new(RedisApp::new()))
        .unwrap();
    (p, dom)
}

#[test]
fn redis_snapshot_captures_fork_point_state() {
    let (mut p, dom) = redis_platform();

    // Populate, then snapshot.
    p.with_app::<RedisApp, ()>(dom, |app, env| {
        app.mass_insert(env, 100, 32);
        app.set(env, "answer", b"42");
    })
    .unwrap();
    p.with_app::<RedisApp, ()>(dom, |app, env| app.bgsave(env)).unwrap();

    // The saver child ran, wrote the dump and shut down.
    let saves = p
        .with_app::<RedisApp, u64>(dom, |app, _| app.saves_completed)
        .unwrap();
    assert_eq!(saves, 1);
    assert_eq!(
        p.hv.domain(dom).unwrap().children.len(),
        0,
        "saver exited after dumping"
    );

    let dump = p.dm.fs.read("/export/redis/dump.rdb", 0, 1 << 20).unwrap();
    let text = String::from_utf8_lossy(&dump);
    assert!(text.contains("answer=42"));
    assert!(text.contains("key:00000000="));
    assert_eq!(text.lines().count(), 101);

    // Post-fork mutations must not appear in a *prior* snapshot: save
    // again after mutating and compare.
    p.with_app::<RedisApp, ()>(dom, |app, env| {
        app.set(env, "answer", b"43");
        app.bgsave(env);
    })
    .unwrap();
    let dump2 = p.dm.fs.read("/export/redis/dump.rdb", 0, 1 << 20).unwrap();
    assert!(String::from_utf8_lossy(&dump2).contains("answer=43"));
}

#[test]
fn redis_commands_over_tcp() {
    let (mut p, _dom) = redis_platform();
    let conn = p.host_tcp_connect(SERVICE_IP, REDIS_PORT);
    p.take_host_events();

    p.host_tcp_send(conn, b"SET color blue".to_vec());
    p.host_tcp_send(conn, b"GET color".to_vec());
    p.host_tcp_send(conn, b"DBSIZE".to_vec());
    let replies: Vec<String> = p
        .take_host_events()
        .into_iter()
        .filter_map(|e| match e {
            SockEvent::TcpData { data, .. } => Some(String::from_utf8_lossy(&data).to_string()),
            _ => None,
        })
        .collect();
    assert!(replies.iter().any(|r| r.contains("+OK")));
    assert!(replies.iter().any(|r| r.contains("blue")));
    assert!(replies.iter().any(|r| r.contains(":1")));
}

#[test]
fn redis_values_survive_in_guest_memory_after_save() {
    let (mut p, dom) = redis_platform();
    p.with_app::<RedisApp, ()>(dom, |app, env| {
        app.mass_insert(env, 50, 64);
        app.bgsave(env);
    })
    .unwrap();
    // After the COW snapshot, the parent still reads its own values.
    let ok = p
        .with_app::<RedisApp, bool>(dom, |app, env| {
            (0..50).all(|i| {
                app.get(env, &format!("key:{i:08}"))
                    .map(|v| v.len() == 64)
                    .unwrap_or(false)
            })
        })
        .unwrap();
    assert!(ok);
    let _ = DUMP_FILE;
}

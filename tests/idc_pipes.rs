//! Inter-domain communication end-to-end: pipes and socket pairs created
//! before `fork()` keep working across the clone family (§5.2.2).

use std::net::Ipv4Addr;

use nephele::guest::{ForkOutcome, GuestApp, GuestEnv, IdcPipe, IdcSocketPair};
use nephele::hypervisor::memory::FrameOwner;
use nephele::sim_core::{DomId, Pfn};
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{Platform, PlatformConfig};

fn cfg(name: &str) -> DomainConfig {
    DomainConfig::builder(name)
        .memory_mib(8)
        .vif(Ipv4Addr::new(10, 0, 0, 2))
        .max_clones(16)
        .build()
}

#[test]
fn pipe_spans_the_whole_family() {
    let mut p = Platform::new(PlatformConfig::small());
    let parent = p.launch_plain(&cfg("idc"), &KernelImage::unikraft("idc")).unwrap();
    let pipe = IdcPipe::create(&mut p.hv, parent, Pfn(500)).unwrap();

    // Data written before the fork is readable by a clone created after.
    pipe.write(&mut p.hv, parent, b"inheritance").unwrap();
    let kids = p.clone_domain(parent, 2).unwrap();
    assert_eq!(pipe.read(&mut p.hv, kids[0], 64).unwrap(), b"inheritance");

    // The pipe page is writable-shared: dom_cow-owned, never COW-copied.
    let mfn = p.hv.domain(parent).unwrap().lookup(Pfn(500)).unwrap();
    let frame = p.hv.frames().inspect(mfn).unwrap();
    assert_eq!(frame.owner(), FrameOwner::Cow);
    assert!(frame.writable(), "IDC pages stay writable");
    assert_eq!(frame.refcount(), 3);
    for k in &kids {
        assert_eq!(p.hv.domain(*k).unwrap().lookup(Pfn(500)).unwrap(), mfn);
    }

    // Grandchild inherits access too (clone of a clone).
    let grandchild = p.clone_domain(kids[0], 1).unwrap()[0];
    pipe.write(&mut p.hv, parent, b"to-gc").unwrap();
    assert_eq!(pipe.read(&mut p.hv, grandchild, 16).unwrap(), b"to-gc");
}

#[test]
fn socketpair_request_response_between_parent_and_clone() {
    let mut p = Platform::new(PlatformConfig::small());
    let parent = p.launch_plain(&cfg("sp"), &KernelImage::unikraft("sp")).unwrap();
    let sp = IdcSocketPair::create(&mut p.hv, parent, Pfn(600), Pfn(601)).unwrap();
    let child = p.clone_domain(parent, 1).unwrap()[0];

    // Request/response exchange, several rounds.
    for i in 0..10 {
        let req = format!("job-{i}");
        sp.parent_send(&mut p.hv, parent, req.as_bytes()).unwrap();
        let got = sp.child_recv(&mut p.hv, child, 64).unwrap();
        assert_eq!(got, req.as_bytes());
        let resp = format!("done-{i}");
        sp.child_send(&mut p.hv, child, resp.as_bytes()).unwrap();
        assert_eq!(sp.parent_recv(&mut p.hv, parent, 64).unwrap(), resp.as_bytes());
    }
}

/// A guest app that uses an IDC pipe like a work queue: the parent
/// enqueues, the clones drain on notification.
#[derive(Clone)]
struct PipeWorker {
    pipe: Option<IdcPipe>,
    received: Vec<u8>,
    is_child: bool,
}

impl GuestApp for PipeWorker {
    fn boxed_clone(&self) -> Box<dyn GuestApp> {
        Box::new(self.clone())
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn on_boot(&mut self, env: &mut GuestEnv) {
        let pipe = IdcPipe::create(env.hv, env.dom, Pfn(700)).expect("pipe");
        self.pipe = Some(pipe);
        env.fork(1);
    }
    fn on_fork(&mut self, env: &mut GuestEnv, outcome: ForkOutcome) {
        match outcome {
            ForkOutcome::Parent { .. } => {
                let pipe = self.pipe.expect("created at boot");
                pipe.write(env.hv, env.dom, b"work-item").unwrap();
            }
            ForkOutcome::Child { .. } => {
                self.is_child = true;
            }
        }
    }
    fn on_idc_event(&mut self, env: &mut GuestEnv, _port: u32) {
        if self.is_child {
            let pipe = self.pipe.expect("inherited from parent");
            let data = pipe.read(env.hv, env.dom, 64).unwrap();
            self.received.extend_from_slice(&data);
        }
    }
}

#[test]
fn idc_notifications_drive_guest_callbacks() {
    let mut p = Platform::new(PlatformConfig::small());
    let parent = p
        .launch(
            &cfg("worker"),
            &KernelImage::unikraft("worker"),
            Box::new(PipeWorker {
                pipe: None,
                received: Vec::new(),
                is_child: false,
            }),
        )
        .unwrap();
    let child = p.hv.domain(parent).unwrap().children[0];

    // The parent's post-fork write raised the IDC event channel; the
    // child's on_idc_event drained the pipe.
    let received = p
        .with_app::<PipeWorker, Vec<u8>>(child, |app, _| app.received.clone())
        .unwrap();
    assert_eq!(received, b"work-item");
}

#[test]
fn destroyed_family_releases_idc_pages() {
    let mut p = Platform::new(PlatformConfig::small());
    let baseline = p.snapshot().hyp_free_bytes;
    let parent = p.launch_plain(&cfg("teardown"), &KernelImage::unikraft("t")).unwrap();
    let pipe = IdcPipe::create(&mut p.hv, parent, Pfn(500)).unwrap();
    let kids = p.clone_domain(parent, 2).unwrap();
    pipe.write(&mut p.hv, parent, b"x").unwrap();

    for k in kids {
        p.destroy(k).unwrap();
    }
    p.destroy(parent).unwrap();
    assert_eq!(p.snapshot().hyp_free_bytes, baseline, "IDC pages must be reclaimed");
}

#[test]
fn stranger_cannot_touch_family_pipe() {
    let mut p = Platform::new(PlatformConfig::small());
    let parent = p.launch_plain(&cfg("fam"), &KernelImage::unikraft("f")).unwrap();
    let pipe = IdcPipe::create(&mut p.hv, parent, Pfn(500)).unwrap();
    p.clone_domain(parent, 1).unwrap();

    let stranger_cfg = DomainConfig::builder("stranger")
        .memory_mib(4)
        .vif(Ipv4Addr::new(10, 0, 0, 99))
        .build();
    let stranger = p
        .launch_plain(&stranger_cfg, &KernelImage::minios("s"))
        .unwrap();
    assert!(pipe.write(&mut p.hv, stranger, b"evil").is_err());
    assert!(pipe.read(&mut p.hv, stranger, 1).is_err());
    let _ = DomId::DOM0;
}

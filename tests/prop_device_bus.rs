//! Property suite for the device bus (§4.2).
//!
//! 1. **Bus dispatch ≡ legacy hand-enumeration.** For random mixes of the
//!    legacy device trio (console + 0..=2 vifs + optional 9pfs) and a
//!    random number of clones, a world whose second stage runs through
//!    `xencloned`'s bus loop must be indistinguishable — identical
//!    virtual-clock advance, identical Xenstore tree, identical device
//!    state — from a world whose second stage is replayed by hand with
//!    the deprecated per-class entry points in the historical order. The
//!    new devices (vbd/vsock/usb) have no legacy entry points by design,
//!    so they are covered by their own properties below.
//! 2. **COW block overlays.** Clone families share one base image;
//!    writes diverge per clone and never leak across members.
//! 3. **Vsock reconnect.** Every clone comes up on its own
//!    deterministically reallocated port with an empty stream.
//! 4. **Detach-on-clone (negative).** Cloning a domain holding an
//!    exclusively passed-through USB device leaves the child detached
//!    (no device state, no Xenstore nodes) and the parent attached, with
//!    a clean audit throughout.

use std::net::Ipv4Addr;
use std::rc::Rc;

use nephele::devices::block::SECTOR_SIZE;
use nephele::devices::udev::{UdevBus, UdevEvent};
use nephele::devices::DeviceManager;
use nephele::hypervisor::cloneop::CloneOp;
use nephele::hypervisor::{Hypervisor, MachineConfig};
use nephele::sim_core::{Clock, CostModel, DomId};
use nephele::toolstack::{DomainConfig, KernelImage, Xl};
use nephele::xencloned::Xencloned;
use nephele::xenstore::{XsCloneOp, Xenstore};
use nephele::{AuditMode, Platform, PlatformConfig};
use testkit::prop::{check, ranges};

// ---------------------------------------------------------------------
// Raw world: the same component wiring xencloned's own tests use, so the
// second stage can be driven either through the daemon or by hand.
// ---------------------------------------------------------------------

struct World {
    clock: Clock,
    costs: Rc<CostModel>,
    hv: Hypervisor,
    xs: Xenstore,
    dm: DeviceManager,
    udev: UdevBus,
    xl: Xl,
    daemon: Xencloned,
}

fn world() -> World {
    let clock = Clock::new();
    let costs = Rc::new(CostModel::calibrated());
    let mut w = World {
        clock: clock.clone(),
        costs: costs.clone(),
        hv: Hypervisor::new(
            clock.clone(),
            costs.clone(),
            &MachineConfig {
                guest_pool_mib: 512,
                cores: 4,
                notification_ring_capacity: 128,
            },
        ),
        xs: Xenstore::new(clock.clone(), costs.clone()),
        dm: DeviceManager::new(clock.clone(), costs.clone()),
        udev: UdevBus::new(),
        xl: Xl::new(clock.clone(), costs.clone()),
        daemon: Xencloned::new(clock, costs),
    };
    w.daemon.start(&mut w.hv).unwrap();
    w
}

fn mixed_cfg(nvifs: u64, p9: bool) -> DomainConfig {
    let mut b = DomainConfig::builder("mix").memory_mib(4).max_clones(64);
    for i in 0..nvifs {
        b = b.vif(Ipv4Addr::new(10, 0, 0, 2 + i as u8));
    }
    if p9 {
        b = b.p9fs("/export");
    }
    b.build()
}

fn boot(w: &mut World, cfg: &DomainConfig) -> DomId {
    w.dm.fs.mkdir_p("/export").ok();
    let img = KernelImage::minios("mix");
    w.xl
        .create(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, cfg, &img)
        .unwrap()
        .id
}

/// Replays the legacy hand-enumerated second stage for one pending
/// notification: the exact op-for-op sequence `xencloned` ran before the
/// bus existed, using the deprecated per-class entry points.
fn legacy_stage2(w: &mut World, first_clone: bool, seq: u32, nvifs: u64, p9: bool) -> DomId {
    let n = w.hv.clone_ring_pop().expect("pending notification");
    let (parent, child) = (n.parent, n.child);
    w.clock.advance(w.costs.xencloned_dispatch);
    let parent_name = if first_clone {
        w.clock.advance(w.costs.xencloned_parent_scan);
        w.xs
            .read(DomId::DOM0, &format!("/local/domain/{}/name", parent.0))
            .unwrap()
    } else {
        w.xs.peek(&format!("/local/domain/{}/name", parent.0)).unwrap()
    };
    w.xs.introduce_domain(child, Some(parent)).unwrap();
    let name = format!("{parent_name}-c{seq}");
    let home = format!("/local/domain/{}", child.0);
    w.xs.write(DomId::DOM0, &format!("{home}/name"), &name).unwrap();
    w.xs.write(DomId::DOM0, &format!("{home}/domid"), &child.0.to_string()).unwrap();

    let pm = format!("/local/domain/{}/memory", parent.0);
    if w.xs.exists(&pm) {
        w.xs
            .xs_clone(DomId::DOM0, XsCloneOp::Basic, parent, child, &pm, &format!("{home}/memory"))
            .unwrap();
    }

    // The historical order: console, then vifs by devid, then 9pfs.
    #[allow(deprecated)]
    {
        w.dm.clone_console(&mut w.hv, &mut w.xs, parent, child, false).unwrap();
    }
    let mut ifaces = Vec::new();
    for devid in 0..nvifs as u32 {
        #[allow(deprecated)]
        let iface = w
            .dm
            .clone_vif(&mut w.hv, &mut w.xs, &mut w.udev, parent, child, devid, false)
            .unwrap();
        ifaces.push(iface);
    }
    if p9 {
        #[allow(deprecated)]
        {
            w.dm.clone_9pfs(&mut w.xs, parent, child, false).unwrap();
        }
    }

    for e in w.udev.drain() {
        if let UdevEvent::VifCreated { .. } = e {
            w.clock.advance(w.costs.bridge_add);
        }
    }
    w.xl.register_clone(parent, child, &name, ifaces);
    w.hv.cloneop(DomId::DOM0, CloneOp::Completion { child }).unwrap();
    child
}

/// Dumps every (path, value) pair under `path`, depth-first. Uses the
/// uncharged directory peek for traversal; value reads happen in both
/// worlds symmetrically.
fn dump(xs: &Xenstore, path: &str, out: &mut Vec<(String, Option<String>)>) {
    out.push((path.to_string(), xs.peek(path)));
    for child in xs.peek_directory(path) {
        dump(xs, &format!("{path}/{child}"), out);
    }
}

#[test]
fn bus_dispatch_matches_legacy_hand_enumeration() {
    check(16, |g| {
        let nvifs = g.draw(&ranges(0u64..3));
        let p9 = g.draw(&ranges(0u64..2)) == 1;
        let nclones = g.draw(&ranges(1u64..4));
        let cfg = mixed_cfg(nvifs, p9);

        // World A: second stage through the daemon's bus loop.
        let mut a = world();
        let pa = boot(&mut a, &cfg);
        for _ in 0..nclones {
            a.hv.cloneop(pa, CloneOp::Clone { target: None, nr_clones: 1 }).unwrap();
            a.daemon
                .handle_pending(&mut a.hv, &mut a.xs, &mut a.dm, &mut a.udev, &mut a.xl, None)
                .unwrap();
        }

        // World B: identical boot, second stage replayed by hand.
        let mut b = world();
        let pb = boot(&mut b, &cfg);
        assert_eq!(pa, pb, "identical worlds must allocate the same domids");
        let mut children = Vec::new();
        for i in 0..nclones {
            b.hv.cloneop(pb, CloneOp::Clone { target: None, nr_clones: 1 }).unwrap();
            children.push(legacy_stage2(&mut b, i == 0, i as u32 + 1, nvifs, p9));
        }

        // Byte-identical virtual time: the bus charges exactly what the
        // hand-enumerated path charged.
        assert_eq!(
            a.clock.now(),
            b.clock.now(),
            "virtual clock diverged (vifs={nvifs}, p9={p9}, clones={nclones})"
        );

        // Identical Xenstore trees.
        let (mut ta, mut tb) = (Vec::new(), Vec::new());
        dump(&a.xs, "/local/domain", &mut ta);
        dump(&b.xs, "/local/domain", &mut tb);
        assert_eq!(ta, tb, "xenstore trees diverged");

        // Identical device state for every clone.
        for c in children {
            assert!(a.dm.console_attached(c) && b.dm.console_attached(c));
            for devid in 0..nvifs as u32 {
                let (va, vb) = (a.dm.vif(c, devid).unwrap(), b.dm.vif(c, devid).unwrap());
                assert_eq!(va.mac, vb.mac);
                assert_eq!(va.is_connected(), vb.is_connected());
            }
            assert_eq!(a.dm.p9_served(c), b.dm.p9_served(c));
            // Both paths registered the child's devices on the bus.
            assert_eq!(a.dm.bus_devices(c).len(), b.dm.bus_devices(c).len());
        }
    });
}

// ---------------------------------------------------------------------
// New-device properties, at platform level (audit runs on every op).
// ---------------------------------------------------------------------

fn audited(dir: &str) -> Platform {
    Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(256)
            .audit(AuditMode::EveryOp)
            .flightrec_dir(dir)
            .build(),
    )
}

#[test]
fn block_overlays_diverge_per_clone_and_share_the_base() {
    check(12, |g| {
        let sectors = g.draw(&ranges(4u64..32));
        let writes = g.draw(&ranges(1u64..8));
        let mut p = audited("target/test-prop-bus-blk");
        let cfg = DomainConfig::builder("blk")
            .memory_mib(4)
            .vbd(sectors)
            .max_clones(16)
            .build();
        let parent = p.launch_plain(&cfg, &KernelImage::unikraft("blk")).unwrap();

        // Parent dirties a few sectors, then clones.
        for s in 0..writes.min(sectors) {
            p.dm.vbd_write(parent, 0, s, &[0xAA; SECTOR_SIZE]).unwrap();
        }
        let child = p.clone_domain(parent, 1).unwrap()[0];

        // The child inherits the parent's view...
        for s in 0..writes.min(sectors) {
            assert_eq!(p.dm.vbd_read(child, 0, s).unwrap(), [0xAA; SECTOR_SIZE]);
        }
        // ...shares the base image by reference...
        let (pa, ca) = (
            p.dm.vbd(parent, 0).unwrap().base_addr(),
            p.dm.vbd(child, 0).unwrap().base_addr(),
        );
        assert_eq!(pa, ca, "clone must share the parent's base image");
        // ...and diverges privately.
        let s = writes.min(sectors) - 1;
        p.dm.vbd_write(child, 0, s, &[0xBB; SECTOR_SIZE]).unwrap();
        assert_eq!(p.dm.vbd_read(child, 0, s).unwrap(), [0xBB; SECTOR_SIZE]);
        assert_eq!(p.dm.vbd_read(parent, 0, s).unwrap(), [0xAA; SECTOR_SIZE]);

        let snap = p.snapshot();
        assert!(snap.blk_shared_bytes > 0, "family must report shared block bytes");
        assert!(p.audit().is_clean(), "audit after block divergence");
    });
}

#[test]
fn vsock_clones_reconnect_on_deterministic_ports() {
    let mut p = audited("target/test-prop-bus-vsock");
    let cfg = DomainConfig::builder("vs")
        .memory_mib(4)
        .vsock()
        .max_clones(16)
        .build();
    let parent = p.launch_plain(&cfg, &KernelImage::unikraft("vs")).unwrap();
    p.dm.vsock_send(parent, b"parent-hello".to_vec()).unwrap();

    let kids: Vec<DomId> = (0..3).map(|_| p.clone_domain(parent, 1).unwrap()[0]).collect();
    for c in &kids {
        let conn = p.dm.vsock(*c).expect("clone has a vsock");
        assert!(conn.connected);
        assert_eq!(conn.port, 52000 + c.0, "deterministic port reallocation");
        assert!(conn.sent.is_empty(), "parent's stream must not leak into the clone");
        assert_eq!(
            p.xs.peek(&format!("/local/domain/{}/device/vsock/0/port", c.0)).unwrap(),
            conn.port.to_string(),
            "frontend port entry rewritten for the child"
        );
    }
    // The parent's connection is untouched.
    let pc = p.dm.vsock(parent).unwrap();
    assert_eq!(pc.port, 52000 + parent.0);
    assert_eq!(pc.sent.len(), 1);
    assert!(p.audit().is_clean());
}

#[test]
fn usb_detach_on_clone_leaves_child_detached_and_parent_attached() {
    let mut p = audited("target/test-prop-bus-usb");
    let cfg = DomainConfig::builder("usb")
        .memory_mib(4)
        .usb("3-4.1")
        .max_clones(16)
        .build();
    let parent = p.launch_plain(&cfg, &KernelImage::unikraft("usb")).unwrap();
    assert!(p.dm.usb_submit(parent, 0).unwrap());

    let child = p.clone_domain(parent, 1).unwrap()[0];

    // Negative: the exclusive device did NOT follow the clone.
    assert!(p.dm.usb(child, 0).is_none(), "child must come up detached");
    assert!(!p.dm.usb_submit(child, 0).unwrap_or(false));
    assert!(
        !p.xs.exists(&format!("/local/domain/{}/device/vusb/0", child.0)),
        "no frontend node for the detached child"
    );
    assert!(
        !p.xs.exists(&format!("/local/domain/0/backend/vusb/{}/0", child.0)),
        "no backend node (orphan ring) for the detached child"
    );
    // The parent still holds the device and keeps working.
    assert!(p.dm.usb(parent, 0).unwrap().attached);
    assert!(p.dm.usb_submit(parent, 0).unwrap());
    // And the audit — including the orphan-ring sweep — is clean.
    assert!(p.audit().is_clean(), "audit after detach-on-clone");

    // The busid stays exclusive: a second domain cannot attach it while
    // the parent holds it.
    let cfg2 = DomainConfig::builder("usb2")
        .memory_mib(4)
        .usb("3-4.1")
        .max_clones(4)
        .build();
    assert!(p.launch_plain(&cfg2, &KernelImage::unikraft("usb2")).is_err());
}

//! Property suite for the clone-family forest: random tapes of
//! clone/write/privatize/checkpoint/reset/destroy ops are replayed
//! against a naive deep-copy reference model, and the platform must
//! match it observably (page contents and vCPU state) after every
//! single op, with a clean `Platform::audit()` throughout.
//!
//! The reference model is deliberately dumb: a checkpoint is a full
//! deep copy of every mapped page, a reset restores it wholesale. The
//! hypervisor's O(1) structural checkpoint and O(dirty) journaled
//! reset must be indistinguishable from that.

use std::collections::BTreeMap;

use nephele::hypervisor::cloneop::CloneOp;
use nephele::hypervisor::error::HvError;
use nephele::hypervisor::vcpu::Vcpu;
use nephele::sim_core::{DomId, Pfn, PAGE_SIZE};
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{AuditMode, Platform, PlatformConfig};
use testkit::prop::{check, ranges, vecs, Gen};

/// One step of a random clone-family tape. Domain indices select from
/// the currently live domains modulo the list length.
#[derive(Debug, Clone)]
enum Op {
    /// Write one byte at (pfn, offset) of domain `idx`.
    Write { idx: u64, pfn: u64, off: usize, val: u8 },
    /// Privatize a few pages of domain `idx` (COW break for breakpoints).
    CloneCow { idx: u64, pfn: u64 },
    /// Arm (or re-arm) the KFX checkpoint of domain `idx`.
    Checkpoint { idx: u64 },
    /// Restore domain `idx` to its checkpoint.
    Reset { idx: u64 },
    /// Dirty vCPU state of domain `idx`.
    VcpuDirty { idx: u64, val: u64 },
    /// Clone domain `idx`.
    Clone { idx: u64 },
    /// Destroy domain `idx`.
    Destroy { idx: u64 },
}

fn ops_gen() -> impl Gen<Value = Vec<Op>> {
    vecs(
        (ranges(0u64..9), ranges(0u64..8), ranges(0u64..1060), ranges(0u64..65536)).map(
            |(kind, idx, pfn, val)| match kind {
                // Writes dominate the tape: they are what fills the
                // dirty journals a reset has to undo.
                0 | 1 | 2 => Op::Write {
                    idx,
                    pfn,
                    off: (val as usize).wrapping_mul(61) % PAGE_SIZE,
                    val: val as u8,
                },
                3 => Op::CloneCow { idx, pfn },
                4 => Op::Checkpoint { idx },
                5 | 6 => Op::Reset { idx },
                7 => Op::Clone { idx },
                _ => {
                    if val % 2 == 0 {
                        Op::VcpuDirty { idx, val }
                    } else {
                        Op::Destroy { idx }
                    }
                }
            },
        ),
        1..22,
    )
}

/// The deep-copy reference image of one domain.
struct RefDom {
    /// Full content of every mapped guest page.
    pages: BTreeMap<u64, Vec<u8>>,
    /// Architectural vCPU state.
    vcpus: Vec<Vcpu>,
    /// The naive checkpoint: a wholesale copy of pages and vCPUs.
    checkpoint: Option<(BTreeMap<u64, Vec<u8>>, Vec<Vcpu>)>,
}

fn guest_cfg(name: &str) -> DomainConfig {
    DomainConfig::builder(name).memory_mib(4).max_clones(64).build()
}

/// Reads every mapped page of `dom` into a reference image (used to
/// seed the model from actual post-launch / post-clone state, so the
/// model never has to re-implement boot or private-page policies).
fn read_all(p: &mut Platform, dom: DomId) -> BTreeMap<u64, Vec<u8>> {
    let pfns: Vec<u64> = p
        .hv
        .domain(dom)
        .expect("live domain")
        .p2m
        .iter_mapped()
        .map(|(pfn, _)| pfn.0)
        .collect();
    pfns.into_iter()
        .map(|pfn| {
            let mut buf = vec![0u8; PAGE_SIZE];
            p.hv.read_page(dom, Pfn(pfn), 0, &mut buf).expect("mapped page");
            (pfn, buf)
        })
        .collect()
}

fn vcpus_of(p: &Platform, dom: DomId) -> Vec<Vcpu> {
    p.hv.domain(dom).expect("live domain").vcpus.clone()
}

/// Compares the platform against the model. `full` compares every byte
/// of every tracked page; the cheap variant compares a prefix of each
/// page (enough to catch shared-frame corruption promptly — the full
/// pass after every reset and at tape end catches the rest).
fn assert_equiv(p: &mut Platform, model: &BTreeMap<u32, RefDom>, full: bool, ctx: &str) {
    for (id, rd) in model {
        let dom = DomId(*id);
        let live = format!("{:?}", vcpus_of(p, dom));
        let modeled = format!("{:?}", rd.vcpus);
        assert_eq!(live, modeled, "dom{id} vcpus diverge {ctx}");
        let probe = if full { PAGE_SIZE } else { 64 };
        let mut buf = vec![0u8; probe];
        for (pfn, bytes) in &rd.pages {
            p.hv.read_page(dom, Pfn(*pfn), 0, &mut buf)
                .unwrap_or_else(|e| panic!("dom{id} pfn{pfn} unreadable {ctx}: {e}"));
            assert_eq!(
                &buf[..],
                &bytes[..probe],
                "dom{id} pfn{pfn} content diverges from the reference model {ctx}"
            );
        }
    }
    let report = p.audit();
    assert!(report.is_clean(), "audit {ctx}:\n{report}");
}

/// The hypervisor's structural checkpoint/reset must be observably
/// identical to a naive deep-copy reference model over arbitrary tapes,
/// with every intermediate state audit-clean (refcounts, overlay
/// canonical form, journal completeness — invariants 1, 9 and 10).
#[test]
fn reset_matches_deep_copy_reference_model() {
    let img = KernelImage::minios("resetprop");
    check(24, |g| {
        let ops = g.draw(&ops_gen());

        let mut p = Platform::new(
            PlatformConfig::builder()
                .guest_pool_mib(64)
                .audit(AuditMode::Off)
                .flightrec_dir("target/test-prop-reset")
                .build(),
        );
        let root = p.launch_plain(&guest_cfg("resetprop"), &img).expect("root boot");
        let mut live = vec![root];
        let mut model: BTreeMap<u32, RefDom> = BTreeMap::new();
        model.insert(
            root.0,
            RefDom {
                pages: read_all(&mut p, root),
                vcpus: vcpus_of(&p, root),
                checkpoint: None,
            },
        );

        for (step, op) in ops.iter().enumerate() {
            let ctx = format!("(step {step}: {op:?})");
            let mut full_compare = false;
            match op {
                Op::Write { idx, pfn, off, val } => {
                    let dom = live[(*idx as usize) % live.len()];
                    match p.hv.write_page(dom, Pfn(*pfn), *off, &[*val]) {
                        Ok(()) => {
                            let page = model
                                .get_mut(&dom.0)
                                .unwrap()
                                .pages
                                .get_mut(pfn)
                                .expect("write succeeded, so the model tracks the page");
                            page[*off] = *val;
                        }
                        Err(HvError::NotMapped(..)) => {}
                        Err(e) => panic!("unexpected write error {ctx}: {e}"),
                    }
                }
                Op::CloneCow { idx, pfn } => {
                    let dom = live[(*idx as usize) % live.len()];
                    let pfns: Vec<Pfn> =
                        (*pfn..pfn + 3).map(Pfn).collect();
                    // Privatization is content-preserving: whether it
                    // succeeds or fails mid-batch, the model is
                    // unchanged (only ownership moves).
                    let _ = p.hv.cloneop(DomId::DOM0, CloneOp::CloneCow { dom, pfns });
                }
                Op::Checkpoint { idx } => {
                    let dom = live[(*idx as usize) % live.len()];
                    p.hv.cloneop(DomId::DOM0, CloneOp::Checkpoint { dom })
                        .expect("checkpoint");
                    let rd = model.get_mut(&dom.0).unwrap();
                    rd.checkpoint = Some((rd.pages.clone(), rd.vcpus.clone()));
                }
                Op::Reset { idx } => {
                    let dom = live[(*idx as usize) % live.len()];
                    let rd = model.get_mut(&dom.0).unwrap();
                    let r = p.hv.cloneop(DomId::DOM0, CloneOp::CloneReset { dom });
                    match &rd.checkpoint {
                        Some((pages, vcpus)) => {
                            r.expect("reset with an armed checkpoint");
                            rd.pages = pages.clone();
                            rd.vcpus = vcpus.clone();
                            full_compare = true;
                        }
                        None => {
                            assert!(
                                r.is_err(),
                                "reset without a checkpoint must fail {ctx}"
                            );
                        }
                    }
                }
                Op::VcpuDirty { idx, val } => {
                    let dom = live[(*idx as usize) % live.len()];
                    p.hv.domain_mut(dom).expect("live").vcpus[0].regs.rip = *val;
                    model.get_mut(&dom.0).unwrap().vcpus[0].regs.rip = *val;
                }
                Op::Clone { idx } => {
                    if live.len() >= 7 {
                        continue;
                    }
                    let parent = live[(*idx as usize) % live.len()];
                    let kids = p.clone_domain(parent, 1).expect("clone");
                    // Cloning COW-shares the parent's pages, so the
                    // parent's checkpoint journals no longer describe
                    // restorable private state: the hypervisor disarms
                    // it, and so does the reference. The hypercall also
                    // returns fork-style: rax = 0 in the parent.
                    let parent_ref = model.get_mut(&parent.0).unwrap();
                    parent_ref.checkpoint = None;
                    if let Some(v) = parent_ref.vcpus.get_mut(0) {
                        v.regs.rax = 0;
                    }
                    for kid in kids {
                        // Seed the child from its actual birth state
                        // (inheritance itself is covered by the COW
                        // property suite in the hypervisor crate).
                        model.insert(
                            kid.0,
                            RefDom {
                                pages: read_all(&mut p, kid),
                                vcpus: vcpus_of(&p, kid),
                                checkpoint: None,
                            },
                        );
                        live.push(kid);
                    }
                    full_compare = true;
                }
                Op::Destroy { idx } => {
                    if live.len() <= 1 {
                        continue;
                    }
                    let pos = (*idx as usize) % live.len();
                    if live[pos] == root {
                        continue;
                    }
                    let dom = live.remove(pos);
                    p.destroy(dom).expect("destroy live domain");
                    model.remove(&dom.0);
                }
            }
            assert_equiv(&mut p, &model, full_compare, &ctx);
        }
        assert_equiv(&mut p, &model, true, "(end of tape)");
    });
}

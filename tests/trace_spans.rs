//! The observability layer end-to-end: span tree shape of a clone run,
//! virtual-time accounting, and deterministic chrome-trace export.

use std::net::Ipv4Addr;

use nephele::sim_core::trace::SpanRecord;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{Platform, PlatformConfig, TraceConfig};

fn cfg(name: &str) -> DomainConfig {
    DomainConfig::builder(name)
        .memory_mib(4)
        .vif(Ipv4Addr::new(10, 0, 0, 2))
        .max_clones(64)
        .build()
}

fn traced_platform() -> Platform {
    Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(256)
            .tracing(TraceConfig::enabled())
            .build(),
    )
}

/// Boots a parent and clones it twice; returns the platform.
fn run_two_clones() -> Platform {
    let mut p = traced_platform();
    let parent = p
        .launch_plain(&cfg("traced"), &KernelImage::minios("traced"))
        .expect("boot");
    p.clone_domain(parent, 2).expect("clone");
    p
}

fn children_of<'a>(spans: &'a [SpanRecord], parent_idx: usize) -> Vec<&'a SpanRecord> {
    spans.iter().filter(|s| s.parent == Some(parent_idx)).collect()
}

fn index_of(spans: &[SpanRecord], name: &str) -> usize {
    spans
        .iter()
        .position(|s| s.name == name)
        .unwrap_or_else(|| panic!("missing span {name}"))
}

#[test]
fn tracing_is_off_by_default_and_records_nothing() {
    let mut p = Platform::new(PlatformConfig::small());
    assert!(!p.trace().is_enabled());
    let parent = p
        .launch_plain(&cfg("dark"), &KernelImage::minios("dark"))
        .unwrap();
    p.clone_domain(parent, 1).unwrap();
    assert!(p.trace().spans().is_empty());
    assert!(p.trace().counters().is_empty());
}

#[test]
fn two_clone_run_emits_expected_span_tree() {
    let p = run_two_clones();
    let trace = p.trace();
    trace.validate_well_nested().expect("all spans closed, well nested");

    let spans = trace.spans();

    // The Dom0-triggered clone: one platform root, one hypercall under it.
    // (Earlier hv.cloneop spans exist — the daemon's global-enable at
    // platform construction — so look specifically under the clone root.)
    let clone_root = index_of(&spans, "platform.clone_domain");
    let cloneop = spans
        .iter()
        .position(|s| s.name == "hv.cloneop" && s.parent == Some(clone_root))
        .expect("clone hypercall nested under platform.clone_domain");

    // One batch span for the whole call, carrying the shared COW
    // conversion, plus one per-child span with the per-child phases.
    let batch = spans
        .iter()
        .position(|s| s.name == "clone.batch" && s.parent == Some(cloneop))
        .expect("clone.batch nested under hv.cloneop");
    let batch_children: Vec<&str> = children_of(&spans, batch).iter().map(|s| s.name).collect();
    assert_eq!(
        batch_children.iter().filter(|n| **n == "clone.cow_convert").count(),
        1,
        "shared pages are converted once for the whole batch: {batch_children:?}"
    );

    let clone_children: Vec<usize> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == "clone.child")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(clone_children.len(), 2, "one clone.child per child");
    for &ci in &clone_children {
        assert_eq!(spans[ci].parent, Some(batch));
        let phases: Vec<&str> = children_of(&spans, ci).iter().map(|s| s.name).collect();
        for phase in ["clone.vcpu_copy", "clone.private_pages", "clone.pt_rebuild"] {
            assert!(phases.contains(&phase), "{phase} missing from {phases:?}");
        }
    }

    // Two second stages, one per child, each cloning the devices.
    let stage2s: Vec<usize> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == "xencloned.stage2")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(stage2s.len(), 2, "one second stage per child");
    for &si in &stage2s {
        let names: Vec<&str> = children_of(&spans, si).iter().map(|s| s.name).collect();
        assert!(names.contains(&"xs.xs_clone"), "xenstore clone under stage2: {names:?}");
        assert!(names.contains(&"dev.clone_console"), "console clone under stage2: {names:?}");
        assert!(names.contains(&"dev.clone_vif"), "vif clone under stage2: {names:?}");
    }
}

#[test]
fn platform_span_durations_match_virtual_time() {
    let mut p = traced_platform();
    let parent = p
        .launch_plain(&cfg("timed"), &KernelImage::minios("timed"))
        .unwrap();

    let t0 = p.clock.now();
    p.clone_domain(parent, 2).unwrap();
    let observed_ns = p.clock.now().since(t0).as_ns();

    let spans = p.trace().spans();
    let clone_root = &spans[index_of(&spans, "platform.clone_domain")];
    assert_eq!(
        clone_root.duration_ns(),
        observed_ns,
        "the platform.clone_domain span must cover exactly the observed virtual-time delta"
    );

    // Children never outlive their parent, and each parent's direct
    // children account for no more time than the parent charged.
    for (i, s) in spans.iter().enumerate() {
        let child_sum: u64 = children_of(&spans, i).iter().map(|c| c.duration_ns()).sum();
        assert!(
            child_sum <= s.duration_ns(),
            "children of {} sum to {child_sum} ns > parent {} ns",
            s.name,
            s.duration_ns()
        );
    }
}

#[test]
fn chrome_trace_export_is_deterministic_across_runs() {
    let a = run_two_clones();
    let b = run_two_clones();
    let json_a = a.trace().chrome_trace_json();
    let json_b = b.trace().chrome_trace_json();
    assert!(!json_a.is_empty());
    assert_eq!(json_a, json_b, "same seed must produce byte-identical chrome traces");

    let csv_a = a.trace().span_aggregates_csv();
    let csv_b = b.trace().span_aggregates_csv();
    assert_eq!(csv_a, csv_b, "span aggregates must be deterministic too");
    assert!(csv_a.starts_with("span,count,total_ms,mean_ms\n"));
    assert!(csv_a.contains("clone.child,2,"), "aggregate counts both clones:\n{csv_a}");
    assert!(csv_a.contains("clone.batch,1,"), "one batch for the two-child call:\n{csv_a}");
}

#[test]
fn forced_clone_failure_increments_failure_counters() {
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(256)
            .tracing(TraceConfig::enabled())
            .flightrec_dir("target/test-flightrec")
            .build(),
    );
    let limited = DomainConfig::builder("limited")
        .memory_mib(4)
        .vif(Ipv4Addr::new(10, 0, 0, 2))
        .max_clones(1)
        .build();
    let parent = p
        .launch_plain(&limited, &KernelImage::minios("limited"))
        .unwrap();
    assert_eq!(p.trace().counter_total("clone.fail"), 0);

    // Two children exceed the policy's one-clone limit: the hypercall is
    // rejected and the error-outcome counter must tick.
    let err = p.clone_domain(parent, 2).expect_err("clone limit");
    assert!(matches!(err, nephele::PlatformError::Hv(_)));
    assert_eq!(p.trace().counter_total("clone.fail"), 1);

    // A failing Xenstore request ticks xs.fail the same way.
    assert_eq!(p.trace().counter_total("xs.fail"), 0);
    use nephele::sim_core::DomId;
    p.xs.read(DomId::DOM0, "/no/such/path").expect_err("missing path");
    assert_eq!(p.trace().counter_total("xs.fail"), 1);

    // The failed platform op left its trail in the flight recorder too.
    let events = p.flightrec().events();
    assert!(
        events.iter().any(|e| e.op == "platform.clone" && e.outcome == "err"),
        "flight recorder must hold the failed clone: {events:?}"
    );
}

#[test]
fn latency_histograms_are_recorded_and_deterministic() {
    let a = run_two_clones();
    let b = run_two_clones();

    let csv_a = a.trace().histograms_csv();
    let csv_b = b.trace().histograms_csv();
    assert_eq!(csv_a, csv_b, "same-seed histogram CSVs must be byte-identical");
    assert!(csv_a.starts_with("op,count,p50_us,p90_us,p99_us,max_us\n"));
    for op in ["clone.stage1", "clone.stage2", "xs.xs_clone", "xl.create"] {
        assert!(csv_a.contains(op), "{op} missing from histogram CSV:\n{csv_a}");
    }

    // The batched hypercall records once; each child's second stage once.
    let stage1 = a.trace().histogram("clone.stage1").expect("stage1 histogram");
    assert_eq!(stage1.count(), 1);
    let stage2 = a.trace().histogram("clone.stage2").expect("stage2 histogram");
    assert_eq!(stage2.count(), 2);
    // Histogram percentiles stay within the recorded extremes.
    assert!(stage2.percentile(50.0) >= stage2.min());
    assert!(stage2.percentile(99.0) <= stage2.max());
}

#[test]
fn counters_track_clone_mechanics() {
    let p = run_two_clones();
    let total = p.trace().counter_total("xencloned.parent_cache.miss")
        + p.trace().counter_total("xencloned.parent_cache.hit");
    assert_eq!(total, 2, "both second stages consulted the parent-info cache");
    assert_eq!(
        p.trace().counter_total("xencloned.parent_cache.miss"),
        1,
        "first stage2 misses, second hits"
    );
}

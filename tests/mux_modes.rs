//! The two clone-networking options of §5.2.1 — Linux bond and Open
//! vSwitch select groups — exercised end-to-end, plus save/restore
//! interplay with cloning.

use std::net::Ipv4Addr;

use nephele::apps::UdpEchoApp;
use nephele::netmux::SockEvent;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{MuxKind, Platform, PlatformConfig};

const IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn cfg(name: &str) -> DomainConfig {
    DomainConfig::builder(name)
        .memory_mib(4)
        .vif(IP)
        .max_clones(64)
        .build()
}

fn run_family_udp(mux: MuxKind) -> usize {
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(256)
            .ring_capacity(128)
            .mux(mux)
            .build(),
    );
    let parent = p
        .launch(
            &cfg("echo"),
            &KernelImage::minios("echo"),
            Box::new(UdpEchoApp::shared_port(7000)),
        )
        .unwrap();
    p.enlist_in_mux(parent);
    p.guest_fork(parent, 3).unwrap();
    p.take_host_events();
    for port in 0..24u16 {
        p.host_udp_send(IP, 5000 + port, 7000, b"q".to_vec());
    }
    p.take_host_events()
        .into_iter()
        .filter(|e| matches!(e, SockEvent::UdpData { src_port: 7000, .. }))
        .count()
}

#[test]
fn bond_and_ovs_both_serve_every_flow() {
    assert_eq!(run_family_udp(MuxKind::Bond), 24);
    assert_eq!(run_family_udp(MuxKind::Ovs), 24);
}

#[test]
fn restored_domain_can_be_cloned() {
    let mut p = Platform::new(PlatformConfig::small());
    let img = KernelImage::minios("sr");
    let d = p.launch_plain(&cfg("sr"), &img).unwrap();
    p.hv.write_page(d, nephele::sim_core::Pfn(9), 0, b"persist").unwrap();

    p.xl
        .save(&mut p.hv, &mut p.xs, &mut p.dm, &mut p.udev, d, "slot", &img)
        .unwrap();
    let restored = p
        .xl
        .restore(&mut p.hv, &mut p.xs, &mut p.dm, &mut p.udev, "slot", None)
        .unwrap()
        .id;

    // The restored domain carries its state and its clone policy, so it
    // can immediately be cloned — and the clone sees the restored state.
    let child = p.clone_domain(restored, 1).unwrap()[0];
    let mut buf = [0u8; 7];
    p.hv.read_page(child, nephele::sim_core::Pfn(9), 0, &mut buf).unwrap();
    assert_eq!(&buf, b"persist");
}

#[test]
fn clone_of_clone_chains_through_generations() {
    let mut p = Platform::new(PlatformConfig::small());
    let root = p
        .launch(&cfg("gen"), &KernelImage::minios("gen"), Box::new(UdpEchoApp::new(7000)))
        .unwrap();
    p.enlist_in_mux(root);
    let mut current = root;
    for gen in 0..5 {
        let kids = p.guest_fork(current, 1).unwrap();
        assert_eq!(kids.len(), 1, "generation {gen}");
        current = kids[0];
    }
    assert!(p.hv.is_descendant(current, root));
    // Five generations of clones plus the root are alive and connected.
    assert_eq!(p.hv.domain_count(), 7); // dom0 + 6 family members
    assert_eq!(p.snapshot().mux_members, 6); // root + 5 generations
}

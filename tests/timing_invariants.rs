//! Timing invariants the paper's evaluation rests on, checked end-to-end
//! against the calibrated platform.

use std::net::Ipv4Addr;

use nephele::apps::UdpEchoApp;
use nephele::sim_core::SimDuration;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{Platform, PlatformConfig};

fn cfg(name: &str, max_clones: u32) -> DomainConfig {
    DomainConfig::builder(name)
        .memory_mib(4)
        .vif(Ipv4Addr::new(10, 0, 0, 2))
        .max_clones(max_clones)
        .build()
}

fn boot(p: &mut Platform, name: &str, max_clones: u32) -> (nephele::sim_core::DomId, SimDuration) {
    let t0 = p.clock.now();
    let d = p
        .launch(&cfg(name, max_clones), &KernelImage::minios(name), Box::new(UdpEchoApp::new(7000)))
        .unwrap();
    (d, p.clock.now().since(t0))
}

#[test]
fn headline_clone_speedup_is_about_8x() {
    let mut p = Platform::new(PlatformConfig::small());
    let (parent, boot_time) = boot(&mut p, "udp", 64);
    // Warm the daemon's parent cache first.
    p.guest_fork(parent, 1).unwrap();
    let t0 = p.clock.now();
    for _ in 0..8 {
        p.guest_fork(parent, 1).unwrap();
    }
    let clone_time = p.clock.now().since(t0) / 8;
    let speedup = boot_time.as_ns() as f64 / clone_time.as_ns() as f64;
    assert!(
        (5.0..14.0).contains(&speedup),
        "clone speedup {speedup:.1}x (paper: ~8x; boot {boot_time}, clone {clone_time})"
    );
    // Absolute ballparks from §6.1.
    let boot_ms = boot_time.as_ms_f64();
    let clone_ms = clone_time.as_ms_f64();
    assert!((100.0..350.0).contains(&boot_ms), "boot {boot_ms:.0} ms");
    assert!((8.0..40.0).contains(&clone_ms), "clone {clone_ms:.0} ms");
}

#[test]
fn first_stage_is_about_one_millisecond() {
    use nephele::hypervisor::cloneop::CloneOp;
    use nephele::sim_core::DomId;

    let mut p = Platform::new(PlatformConfig::small());
    let (parent, _) = boot(&mut p, "udp", 64);
    let t0 = p.clock.now();
    p.hv.cloneop(
        DomId::DOM0,
        CloneOp::Clone {
            target: Some(parent),
            nr_clones: 1,
        },
    )
    .unwrap();
    let stage1 = p.clock.now().since(t0).as_ms_f64();
    assert!(
        (0.2..3.0).contains(&stage1),
        "first stage for a 4 MiB guest = {stage1:.2} ms (paper: ~1 ms)"
    );
    p.finish_pending_clones(parent).unwrap();
}

#[test]
fn deep_copy_roughly_doubles_clone_time() {
    let mut p = Platform::new(PlatformConfig::small());
    let (parent, _) = boot(&mut p, "udp", 64);
    p.guest_fork(parent, 1).unwrap(); // warm cache

    let t0 = p.clock.now();
    p.guest_fork(parent, 1).unwrap();
    let fast = p.clock.now().since(t0);

    p.daemon.config.use_xs_clone = false;
    let t1 = p.clock.now();
    p.guest_fork(parent, 1).unwrap();
    let slow = p.clock.now().since(t1);

    let ratio = slow.as_ns() as f64 / fast.as_ns() as f64;
    assert!(
        (1.2..4.0).contains(&ratio),
        "deep-copy/xs_clone ratio {ratio:.2} (paper: ~2x at the start)"
    );
}

#[test]
fn disabling_access_logging_removes_spikes_only() {
    // Boot a few instances with logging on a tiny rotation threshold via
    // many clones, then compare against logging off: means stay in the
    // same ballpark, maxima differ (the spikes).
    let run = |logging: bool| -> (f64, f64) {
        let mut p = Platform::new(PlatformConfig::small());
        p.xs.set_access_logging(logging);
        let (parent, _) = boot(&mut p, "udp", 4096);
        p.guest_fork(parent, 1).unwrap();
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let n = 60;
        for _ in 0..n {
            let t0 = p.clock.now();
            p.guest_fork(parent, 1).unwrap();
            let ms = p.clock.now().since(t0).as_ms_f64();
            max = max.max(ms);
            sum += ms;
        }
        (sum / n as f64, max)
    };
    let (mean_on, _max_on) = run(true);
    let (mean_off, _max_off) = run(false);
    let rel = (mean_on - mean_off).abs() / mean_off;
    assert!(rel < 0.25, "logging must not shift the mean much ({rel:.2})");
}

#[test]
fn name_validation_makes_boot_superlinear() {
    let boot_with = |validate: bool, n: usize| -> (f64, f64) {
        let mut p = Platform::new(PlatformConfig::small());
        p.xl.validate_names = validate;
        let img = KernelImage::minios("udp");
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..n {
            let t0 = p.clock.now();
            p.launch_plain(&cfg(&format!("g{i}"), 0), &img).unwrap();
            let ms = p.clock.now().since(t0).as_ms_f64();
            if i == 0 {
                first = ms;
            }
            last = ms;
        }
        (first, last)
    };
    let (f_novalid, l_novalid) = boot_with(false, 40);
    let (f_valid, l_valid) = boot_with(true, 40);
    // The scan makes later boots grow faster than the baseline's growth.
    let growth_novalid = l_novalid - f_novalid;
    let growth_valid = l_valid - f_valid;
    assert!(
        growth_valid > growth_novalid,
        "validated growth {growth_valid:.2} vs baseline {growth_novalid:.2}"
    );
}

#[test]
fn userspace_ops_first_vs_later_clone() {
    let mut p = Platform::new(PlatformConfig::small());
    p.daemon.config.minimal = true;
    let (parent, _) = boot(&mut p, "udp", 64);

    let measure_stage2 = |p: &mut Platform| -> f64 {
        use nephele::hypervisor::cloneop::CloneOp;
        use nephele::sim_core::DomId;
        p.hv.cloneop(
            DomId::DOM0,
            CloneOp::Clone {
                target: Some(parent),
                nr_clones: 1,
            },
        )
        .unwrap();
        let t0 = p.clock.now();
        p.finish_pending_clones(parent).unwrap();
        p.clock.now().since(t0).as_ms_f64()
    };

    let first = measure_stage2(&mut p);
    let second = measure_stage2(&mut p);
    assert!(first > second, "{first:.2} vs {second:.2}");
    // Paper: ~3 ms then ~1.9 ms.
    assert!((1.5..5.0).contains(&first), "first = {first:.2} ms");
    assert!((1.0..3.5).contains(&second), "second = {second:.2} ms");
}

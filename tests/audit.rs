//! The state invariant auditor end-to-end: clean after arbitrary
//! clone/destroy/save/restore sequences, and able to detect (and name)
//! deliberately injected frame-table corruption, dumping the flight
//! recorder alongside.

use std::net::Ipv4Addr;
use std::path::Path;

use nephele::hypervisor::cloneop::CloneOp;
use nephele::hypervisor::memory::{FrameOwner, FRAME_SHARDS};
use nephele::sim_core::{DomId, Pfn};
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{AuditMode, Platform, PlatformConfig};
use testkit::prop::{check, ranges, vecs, Gen};

fn guest_cfg(name: &str) -> DomainConfig {
    DomainConfig::builder(name)
        .memory_mib(4)
        .vif(Ipv4Addr::new(10, 0, 0, 2))
        .max_clones(64)
        .build()
}

fn audited_platform(flightrec_dir: &str) -> Platform {
    Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(256)
            .audit(AuditMode::EveryOp)
            .flightrec_dir(flightrec_dir)
            .build(),
    )
}

/// One step of a random platform lifecycle sequence. Indices select from
/// the currently live domains (modulo the list length at execution time).
#[derive(Debug, Clone)]
enum Op {
    /// Clone domain `idx` into `nr` children.
    Clone { idx: u64, nr: u64 },
    /// Destroy domain `idx`.
    Destroy { idx: u64 },
    /// Dirty a page of domain `idx` (forces a COW break on shared frames).
    Write { idx: u64, pfn: u64, val: u64 },
    /// `xl save` domain `idx` to a slot, then restore it.
    SaveRestore { idx: u64 },
}

fn ops_gen() -> impl Gen<Value = Vec<Op>> {
    vecs(
        (ranges(0u64..4), ranges(0u64..64), ranges(0u64..1024), ranges(0u64..256)).map(
            |(kind, idx, pfn, val)| match kind {
                0 => Op::Clone { idx, nr: 1 + val % 3 },
                1 => Op::Destroy { idx },
                2 => Op::Write { idx, pfn, val },
                _ => Op::SaveRestore { idx },
            },
        ),
        1..14,
    )
}

/// After any random sequence of clone/destroy/write/save/restore ops the
/// auditor must report zero violations. The platform runs with
/// `AuditMode::EveryOp`, so every intermediate state is audited too (a
/// violation mid-sequence panics inside the lifecycle hook).
#[test]
fn audit_is_clean_after_random_lifecycle_sequences() {
    let img = KernelImage::minios("audited");
    check(25, |g| {
        let ops = g.draw(&ops_gen());
        let mut p = audited_platform("target/test-flightrec");
        let root = p.launch_plain(&guest_cfg("root"), &img).expect("root boot");
        let mut live = vec![root];
        let mut slot = 0u32;
        for op in &ops {
            match op {
                Op::Clone { idx, nr } => {
                    let parent = live[(*idx as usize) % live.len()];
                    if let Ok(kids) = p.clone_domain(parent, *nr as u32) {
                        live.extend(kids);
                    }
                }
                Op::Destroy { idx } => {
                    if live.len() > 1 {
                        let dom = live.remove((*idx as usize) % live.len());
                        p.destroy(dom).expect("destroy live domain");
                    }
                }
                Op::Write { idx, pfn, val } => {
                    let dom = live[(*idx as usize) % live.len()];
                    let _ = p.hv.write_page(dom, Pfn(pfn % 1024), 0, &[*val as u8]);
                }
                Op::SaveRestore { idx } => {
                    let dom = live.remove((*idx as usize) % live.len());
                    let name = format!("slot-{slot}");
                    slot += 1;
                    p.xl
                        .save(&mut p.hv, &mut p.xs, &mut p.dm, &mut p.udev, dom, &name, &img)
                        .expect("save");
                    let restored = p
                        .xl
                        .restore(&mut p.hv, &mut p.xs, &mut p.dm, &mut p.udev, &name, None)
                        .expect("restore");
                    live.push(restored.id);
                }
            }
        }
        let report = p.audit();
        assert!(report.is_clean(), "after {ops:?}:\n{report}");
        assert!(report.checks > 0, "the audit must actually check something");
    });
}

/// A deliberately corrupted COW refcount is invisible to the incremental
/// owner counters (the owner class does not change), so only the
/// refcount-vs-p2m cross-check can catch it — and the report must name
/// the corrupted frame. The failed audit must also dump the flight
/// recorder black box.
#[test]
fn corrupted_refcount_is_detected_and_named() {
    let dir = "target/test-audit-dump";
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(256)
            .audit(AuditMode::Off)
            .flightrec_dir(dir)
            .build(),
    );
    // Dump filenames carry the platform seed so runs cannot clobber
    // each other's evidence.
    let dump = Path::new(dir).join(format!("flightrec-audit-fail-seed{:x}.json", p.seed()));
    let _ = std::fs::remove_file(&dump);
    let img = KernelImage::minios("victim");
    let parent = p.launch_plain(&guest_cfg("victim"), &img).expect("boot");
    p.clone_domain(parent, 2).expect("clone");
    assert!(p.audit().is_clean(), "pre-corruption state must be clean");

    // Pick a COW frame (parent/clone shared) and bump its refcount.
    let victim = p
        .hv
        .frames()
        .iter_frames()
        .find(|(_, f)| f.owner() == FrameOwner::Cow)
        .map(|(mfn, _)| mfn)
        .expect("a clone leaves COW frames behind");
    p.hv.frames_mut().corrupt_refcount_for_test(victim, 1);

    let report = p.audit();
    assert!(!report.is_clean(), "corruption must fail the audit");
    let v = &report.violations[0];
    assert_eq!(v.invariant, "frame-refcount");
    assert!(
        v.detail.contains(&victim.to_string()),
        "violation must name the corrupted frame {victim}: {}",
        v.detail
    );

    // The failed audit shipped its black box.
    assert!(dump.exists(), "audit failure must dump the flight recorder");
    let body = std::fs::read_to_string(&dump).unwrap();
    assert!(body.contains("\"context\":\"audit-fail\""), "dump context: {body}");
    assert!(body.contains("platform.launch"), "dump must hold lifecycle events: {body}");

    // Undoing the corruption brings the audit back to clean, proving the
    // detection was not incidental to the clone run itself.
    p.hv.frames_mut().corrupt_refcount_for_test(victim, -1);
    assert!(p.audit().is_clean());
}

/// The audit hook (AuditMode::EveryOp) panics on a corrupted platform at
/// the next lifecycle operation instead of letting it keep running.
#[test]
fn audit_hook_panics_on_corruption_at_next_op() {
    let result = std::panic::catch_unwind(|| {
        let mut p = Platform::new(
            PlatformConfig::builder()
                .guest_pool_mib(256)
                .audit(AuditMode::EveryOp)
                .flightrec_dir("target/test-audit-hook")
                .build(),
        );
        let img = KernelImage::minios("hooked");
        let parent = p.launch_plain(&guest_cfg("hooked"), &img).expect("boot");
        p.clone_domain(parent, 1).expect("clone");
        let victim = p
            .hv
            .frames()
            .iter_frames()
            .find(|(_, f)| f.owner() == FrameOwner::Cow)
            .map(|(mfn, _)| mfn)
            .expect("cow frame");
        p.hv.frames_mut().corrupt_refcount_for_test(victim, 1);
        // The next lifecycle op runs the hook, which must panic.
        p.clone_domain(parent, 1).expect("clone after corruption");
    });
    let err = result.expect_err("the audit hook must panic on corruption");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".into());
    assert!(msg.contains("audit failed"), "panic message: {msg}");
    assert!(msg.contains("frame-refcount"), "panic names the invariant: {msg}");
}

/// Two shard counters corrupted in opposite directions still sum to the
/// correct global totals, so the global counter cross-check (invariant 2)
/// stays green — only the per-shard recount (invariant 12) can see the
/// drift, and its report must name both shards.
#[test]
fn compensated_shard_drift_is_detected_by_the_shard_scan_only() {
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(256)
            .audit(AuditMode::Off)
            .flightrec_dir("target/test-flightrec")
            .build(),
    );
    let img = KernelImage::minios("shards");
    let parent = p.launch_plain(&guest_cfg("shards"), &img).expect("boot");
    p.clone_domain(parent, 2).expect("clone");
    assert!(p.audit().is_clean(), "pre-corruption state must be clean");

    // Move one COW count from a shard that has some to its neighbour.
    let scan = p.hv.frames().scan_shard_stats();
    let donor = scan
        .iter()
        .position(|s| s.cow > 0)
        .expect("a clone leaves COW frames behind");
    let receiver = (donor + 1) % FRAME_SHARDS;
    p.hv.frames_mut().corrupt_shard_counter_for_test(receiver, 1);
    p.hv.frames_mut().corrupt_shard_counter_for_test(donor, -1);

    // The drift is compensated: the global totals still agree, so the
    // whole-table counter check cannot fire.
    assert_eq!(p.hv.frames().incremental_stats(), p.hv.frames().scan_stats());

    let report = p.audit();
    assert!(!report.is_clean(), "compensated drift must fail the audit");
    assert!(
        report.violations.iter().all(|v| v.invariant == "shard-stats"),
        "only the shard invariant can see compensated drift:\n{report}"
    );
    assert_eq!(report.violations.len(), 2, "both shards flagged:\n{report}");
    for s in [donor, receiver] {
        assert!(
            report.violations.iter().any(|v| v.detail.contains(&format!("shard {s} "))),
            "violation must name shard {s}:\n{report}"
        );
    }

    // Undoing the corruption brings the audit back to clean.
    p.hv.frames_mut().corrupt_shard_counter_for_test(receiver, -1);
    p.hv.frames_mut().corrupt_shard_counter_for_test(donor, 1);
    assert!(p.audit().is_clean());
}

/// An armed KFX checkpoint with live COW-fault journals must audit
/// clean at every stage: the journal holds one keep-alive reference per
/// journaled original, and the refcount cross-check has to account for
/// it (a pure p2m back-reference count would flag every checkpointed
/// domain that faulted a page).
#[test]
fn armed_checkpoints_with_faults_audit_clean() {
    let mut p = audited_platform("target/test-flightrec");
    let img = KernelImage::minios("kfx");
    let parent = p.launch_plain(&guest_cfg("kfx"), &img).expect("boot");
    let child = p.clone_domain(parent, 1).expect("clone")[0];

    p.hv.cloneop(DomId::DOM0, CloneOp::Checkpoint { dom: child })
        .expect("checkpoint");
    assert!(p.audit().is_clean(), "armed, no faults yet");

    // COW-fault a few shared pages inside the window: each fault moves a
    // p2m reference off the original and journals a keep-alive one.
    for pfn in [3u64, 17, 42] {
        p.hv.write_page(child, Pfn(pfn), 0, &[0xAB]).expect("dirty write");
    }
    let mid = p.audit();
    assert!(mid.is_clean(), "mid-window with journaled faults:\n{mid}");

    // Reset drains the journal and turns its references back into p2m
    // references; destroy releases whatever the re-armed journal holds.
    p.hv.cloneop(DomId::DOM0, CloneOp::CloneReset { dom: child })
        .expect("reset");
    assert!(p.audit().is_clean(), "post-reset");
    p.hv.write_page(child, Pfn(3), 0, &[0xCD]).expect("re-dirty");
    p.destroy(child).expect("destroy mid-window");
    assert!(p.audit().is_clean(), "post-destroy");
}

/// A deliberately de-canonicalized p2m overlay (an entry redundantly
/// storing the template's value) is invisible to the merged view and to
/// every refcount, so only the overlay invariant can catch it — and the
/// report must name the frame involved.
#[test]
fn corrupted_overlay_is_detected_and_named() {
    let mut p = audited_platform("target/test-flightrec");
    let img = KernelImage::minios("overlay");
    let parent = p.launch_plain(&guest_cfg("overlay"), &img).expect("boot");
    p.clone_domain(parent, 1).expect("clone");
    assert!(p.audit().is_clean(), "pre-corruption state must be clean");

    // Shadow a template slot with its own value: logically a no-op, but
    // it breaks the canonical-form invariant the O(dirty) reset relies
    // on (redundant entries would make overlay comparisons lie about
    // divergence).
    let base_val = p.hv.domain(parent).expect("parent").p2m.base_get(7);
    let victim = base_val.expect("pfn 7 is part of the launch mapping");
    p.hv.domain_mut(parent)
        .expect("parent")
        .p2m
        .corrupt_overlay_for_test(7, base_val);

    let report = p.audit();
    assert!(!report.is_clean(), "corruption must fail the audit");
    let v = &report.violations[0];
    assert_eq!(v.invariant, "p2m-overlay");
    assert!(
        v.detail.contains(&victim.to_string()),
        "violation must name the shadowed frame {victim}: {}",
        v.detail
    );

    // Re-setting the slot through the canonical API removes the
    // redundant entry again.
    p.hv.domain_mut(parent).expect("parent").p2m.set(7, base_val);
    assert!(p.audit().is_clean());
}

/// One step of a random toolstack lifecycle tape for the
/// index-consistency property: create and rename draw from a small name
/// vocabulary so collisions (rejected when `validate_names` is on) are
/// common.
#[derive(Debug, Clone)]
enum NameOp {
    /// Launch a fresh domain named `n<tag>` (fails on a name collision).
    Create { tag: u64 },
    /// Clone domain `idx` into `nr` children.
    Clone { idx: u64, nr: u64 },
    /// Destroy domain `idx`.
    Destroy { idx: u64 },
    /// Rename domain `idx` to `r<tag>` (fails on a collision).
    Rename { idx: u64, tag: u64 },
}

fn name_ops_gen() -> impl Gen<Value = Vec<NameOp>> {
    vecs(
        (ranges(0u64..4), ranges(0u64..64), ranges(0u64..6)).map(|(kind, idx, tag)| match kind {
            0 => NameOp::Create { tag },
            1 => NameOp::Clone { idx, nr: 1 + tag % 3 },
            2 => NameOp::Destroy { idx },
            _ => NameOp::Rename { idx, tag },
        }),
        1..16,
    )
}

/// The scan-replacing indices (xl's name index, the hypervisor's
/// referrer and fan-out indices) must equal the scans they replaced
/// after any random create/clone/destroy/rename tape — checked both
/// directly and through the full audit (which runs the same comparison
/// as invariant 13, at every op under `AuditMode::EveryOp`).
#[test]
fn indices_match_scans_after_random_name_lifecycle_tapes() {
    let img = KernelImage::minios("indexed");
    check(25, |g| {
        let ops = g.draw(&name_ops_gen());
        let mut p = audited_platform("target/test-flightrec");
        p.xl.validate_names = true;
        let root = p.launch_plain(&guest_cfg("root"), &img).expect("root boot");
        let mut live = vec![root];
        for op in &ops {
            match op {
                NameOp::Create { tag } => {
                    let cfg = DomainConfig::builder(&format!("n{tag}")).memory_mib(4).build();
                    if let Ok(dom) = p.launch_plain(&cfg, &img) {
                        live.push(dom);
                    }
                }
                NameOp::Clone { idx, nr } => {
                    let parent = live[(*idx as usize) % live.len()];
                    if let Ok(kids) = p.clone_domain(parent, *nr as u32) {
                        live.extend(kids);
                    }
                }
                NameOp::Destroy { idx } => {
                    if live.len() > 1 {
                        let dom = live.remove((*idx as usize) % live.len());
                        p.destroy(dom).expect("destroy live domain");
                    }
                }
                NameOp::Rename { idx, tag } => {
                    let dom = live[(*idx as usize) % live.len()];
                    let _ = p.xl.rename(&mut p.xs, dom, &format!("r{tag}"));
                }
            }
        }
        assert_eq!(p.hv.audit_ref_indices(), Vec::<String>::new(), "after {ops:?}");
        assert_eq!(p.xl.audit_name_index(), Vec::<String>::new(), "after {ops:?}");
        let report = p.audit();
        assert!(report.is_clean(), "after {ops:?}:\n{report}");
    });
}

/// A name-index entry planted without a registry record is invisible to
/// every lookup that happens to probe other names, so only the
/// index-consistency invariant can catch it — and the report must name
/// the ghost entry.
#[test]
fn corrupted_name_index_is_detected_and_named() {
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(256)
            .audit(AuditMode::Off)
            .flightrec_dir("target/test-flightrec")
            .build(),
    );
    let img = KernelImage::minios("ghost");
    let parent = p.launch_plain(&guest_cfg("ghost"), &img).expect("boot");
    p.clone_domain(parent, 1).expect("clone");
    assert!(p.audit().is_clean(), "pre-corruption state must be clean");

    p.xl.corrupt_name_index_for_test("ghost-name", 4242, true);
    let report = p.audit();
    assert!(!report.is_clean(), "index drift must fail the audit");
    assert!(
        report.violations.iter().all(|v| v.invariant == "index-consistency"),
        "only the index invariant can see a planted name entry:\n{report}"
    );
    assert!(
        report.violations.iter().any(|v| v.detail.contains("ghost-name")),
        "violation must name the ghost entry:\n{report}"
    );

    p.xl.corrupt_name_index_for_test("ghost-name", 4242, false);
    assert!(p.audit().is_clean());
}

/// A drifted referrer-index count (one extra reference charged to Dom0)
/// leaves every channel and grant table untouched, so only the
/// index-vs-recount comparison can see it.
#[test]
fn corrupted_peer_ref_index_is_detected() {
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(256)
            .audit(AuditMode::Off)
            .flightrec_dir("target/test-flightrec")
            .build(),
    );
    let img = KernelImage::minios("refdrift");
    let parent = p.launch_plain(&guest_cfg("refdrift"), &img).expect("boot");
    p.clone_domain(parent, 1).expect("clone");
    assert!(p.audit().is_clean(), "pre-corruption state must be clean");

    p.hv.corrupt_peer_ref_for_test(parent, DomId::DOM0, 1);
    let report = p.audit();
    assert!(!report.is_clean(), "referrer drift must fail the audit");
    assert!(
        report.violations.iter().all(|v| v.invariant == "index-consistency"),
        "only the index invariant can see referrer drift:\n{report}"
    );

    p.hv.corrupt_peer_ref_for_test(parent, DomId::DOM0, -1);
    assert!(p.audit().is_clean());
}

/// Dom0 alone (a freshly booted platform) audits clean, and the report's
/// check count grows with platform size.
#[test]
fn audit_scales_its_coverage_with_the_platform()
{
    let mut p = audited_platform("target/test-flightrec");
    let empty_checks = p.audit().checks;
    let img = KernelImage::minios("cov");
    let parent = p.launch_plain(&guest_cfg("cov"), &img).unwrap();
    p.clone_domain(parent, 4).unwrap();
    let full_checks = p.audit().checks;
    assert!(
        full_checks > empty_checks,
        "more domains must mean more checks ({empty_checks} -> {full_checks})"
    );
}

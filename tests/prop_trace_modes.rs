//! Streaming-aggregation equivalence: for any random clone-family tape,
//! [`TraceMode::Aggregate`](nephele::TraceMode) — which folds each span
//! into histograms and per-key aggregates at close time and drops the
//! raw record — must report exactly what Full mode computes post hoc
//! from its retained O(events) record set: the same span aggregates,
//! the same histograms, the same family rollups, and byte-identical
//! `timeline_csv()` / `metrics_text()` exports.
//!
//! The same exports must also be invariant under the fork/join pool
//! width and under a same-seed rerun — the determinism contract every
//! figure gate depends on.

use nephele::hypervisor::cloneop::CloneOp;
use nephele::sim_core::{DomId, Pfn, TraceConfig, TraceMode, PAGE_SIZE};
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{AuditMode, Platform, PlatformConfig};
use testkit::prop::{check, ranges, vecs, Gen};

/// One step of a random clone-family tape. Domain indices select from
/// the currently live domains modulo the list length.
#[derive(Debug, Clone)]
enum Op {
    /// Batch-clone domain `idx` into `nr` children.
    Clone { idx: u64, nr: u32 },
    /// Write one byte at (pfn, offset) of domain `idx` (COW breaks).
    Write { idx: u64, pfn: u64, off: usize, val: u8 },
    /// Arm (or re-arm) the KFX checkpoint of domain `idx`.
    Checkpoint { idx: u64 },
    /// Restore domain `idx` to its checkpoint.
    Reset { idx: u64 },
    /// Destroy domain `idx` (retires its family membership).
    Destroy { idx: u64 },
}

fn ops_gen() -> impl Gen<Value = Vec<Op>> {
    vecs(
        (ranges(0u64..8), ranges(0u64..8), ranges(0u64..1060), ranges(0u64..65536)).map(
            |(kind, idx, pfn, val)| match kind {
                0 | 1 | 2 => Op::Clone { idx, nr: 1 + (val % 4) as u32 },
                3 | 4 => Op::Write {
                    idx,
                    pfn,
                    off: (val as usize).wrapping_mul(61) % PAGE_SIZE,
                    val: val as u8,
                },
                5 => Op::Checkpoint { idx },
                6 => Op::Reset { idx },
                _ => Op::Destroy { idx },
            },
        ),
        1..14,
    )
}

/// Everything the two modes (and every thread width) must agree on.
struct Exports {
    span_aggregates: String,
    histograms: String,
    timeline: String,
    metrics: String,
    families: String,
}

fn run_tape(threads: usize, mode: TraceMode, ops: &[Op]) -> Exports {
    let img = KernelImage::minios("traceprop");
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(64)
            .threads(threads)
            // No counter-sample cap: Full must retain every raw sample so
            // its post-hoc aggregation covers the same events Aggregate
            // folded in streaming.
            .tracing(TraceConfig::with_mode(mode))
            .audit(AuditMode::Off)
            .flightrec_dir("target/test-prop-trace")
            .build(),
    );
    let cfg = DomainConfig::builder("traceprop").memory_mib(4).max_clones(64).build();
    let root = p.launch_plain(&cfg, &img).expect("root boot");
    let mut live = vec![root];
    for op in ops {
        match op {
            Op::Clone { idx, nr } => {
                if live.len() >= 12 {
                    continue;
                }
                let parent = live[(*idx as usize) % live.len()];
                if let Ok(kids) = p.clone_domain(parent, *nr) {
                    live.extend(kids);
                }
            }
            Op::Write { idx, pfn, off, val } => {
                let dom = live[(*idx as usize) % live.len()];
                let _ = p.hv.write_page(dom, Pfn(*pfn), *off, &[*val]);
            }
            Op::Checkpoint { idx } => {
                let dom = live[(*idx as usize) % live.len()];
                let _ = p.hv.cloneop(DomId::DOM0, CloneOp::Checkpoint { dom });
            }
            Op::Reset { idx } => {
                let dom = live[(*idx as usize) % live.len()];
                let _ = p.hv.cloneop(DomId::DOM0, CloneOp::CloneReset { dom });
            }
            Op::Destroy { idx } => {
                if live.len() <= 1 {
                    continue;
                }
                let pos = (*idx as usize) % live.len();
                if live[pos] == root {
                    continue;
                }
                let dom = live.remove(pos);
                p.destroy(dom).expect("destroy live domain");
            }
        }
    }

    Exports {
        span_aggregates: p.trace().span_aggregates_csv(),
        histograms: p.trace().histograms_csv(),
        timeline: p.timeline_csv(),
        metrics: p.metrics_text(),
        families: p.family_rollup_csv(),
    }
}

/// Aggregate's streaming fold must equal Full's retain-then-aggregate on
/// every export, at every thread width, reproducibly.
#[test]
fn streaming_aggregation_matches_full_mode_post_hoc() {
    check(10, |g| {
        let ops = g.draw(&ops_gen());
        let full = run_tape(1, TraceMode::Full, &ops);
        let agg = run_tape(1, TraceMode::Aggregate, &ops);
        assert_eq!(
            full.span_aggregates, agg.span_aggregates,
            "span aggregates diverge between modes for {ops:?}"
        );
        assert_eq!(
            full.histograms, agg.histograms,
            "histograms diverge between modes for {ops:?}"
        );
        assert_eq!(full.timeline, agg.timeline, "timelines diverge between modes for {ops:?}");
        assert_eq!(full.metrics, agg.metrics, "metrics text diverges between modes for {ops:?}");
        assert_eq!(
            full.families, agg.families,
            "family rollups diverge between modes for {ops:?}"
        );

        // Thread width and a same-seed rerun must both be invisible.
        for threads in [4usize] {
            for mode in [TraceMode::Full, TraceMode::Aggregate] {
                let wide = run_tape(threads, mode, &ops);
                assert_eq!(
                    agg.timeline, wide.timeline,
                    "timeline diverges at threads={threads} mode={mode:?} for {ops:?}"
                );
                assert_eq!(
                    agg.metrics, wide.metrics,
                    "metrics diverge at threads={threads} mode={mode:?} for {ops:?}"
                );
                assert_eq!(
                    agg.families, wide.families,
                    "families diverge at threads={threads} mode={mode:?} for {ops:?}"
                );
            }
        }
        let rerun = run_tape(1, TraceMode::Aggregate, &ops);
        assert_eq!(agg.timeline, rerun.timeline, "same-seed rerun drifted for {ops:?}");
        assert_eq!(agg.metrics, rerun.metrics, "same-seed rerun drifted for {ops:?}");
    });
}

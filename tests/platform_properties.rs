//! Platform-level property tests: arbitrary mixes of boots, clones and
//! destroys must keep every component's view consistent and leak nothing.

use std::net::Ipv4Addr;

use testkit::prop::{check, just, ranges, usizes, vecs, weighted, Gen};

use nephele::sim_core::DomId;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{MuxKind, Platform, PlatformConfig};

#[derive(Debug, Clone)]
enum Op {
    Boot,
    Clone { idx: usize },
    Destroy { idx: usize },
}

fn ops() -> impl Gen<Value = Op> {
    weighted(vec![
        (1, just(Op::Boot).boxed()),
        (3, usizes().map(|idx| Op::Clone { idx }).boxed()),
        (1, usizes().map(|idx| Op::Destroy { idx }).boxed()),
    ])
}

fn small_platform() -> Platform {
    Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(512)
            .ring_capacity(128)
            .mux(MuxKind::None)
            .build(),
    )
}

fn boot(p: &mut Platform, seq: usize) -> DomId {
    let cfg = DomainConfig::builder(&format!("g{seq}"))
        .memory_mib(4)
        .vif(Ipv4Addr::new(10, 0, 0, (2 + seq % 200) as u8))
        .max_clones(u32::MAX)
        .build();
    p.launch_plain(&cfg, &KernelImage::minios("g")).expect("boot")
}

#[test]
fn platform_state_stays_consistent() {
    check(24, |g| {
        let script = g.draw(&vecs(ops(), 1..40));

        let mut p = small_platform();
        let baseline = p.snapshot().hyp_free_bytes;
        let mut live: Vec<DomId> = vec![boot(&mut p, 0)];
        let mut boots = 1;

        for op in script {
            match op {
                Op::Boot => {
                    if live.len() < 24 {
                        live.push(boot(&mut p, boots));
                        boots += 1;
                    }
                }
                Op::Clone { idx } => {
                    if live.len() < 24 {
                        let parent = live[idx % live.len()];
                        let kids = p.clone_domain(parent, 1).expect("clone");
                        live.extend(kids);
                    }
                }
                Op::Destroy { idx } => {
                    if live.len() > 1 {
                        let i = idx % live.len();
                        let d = live[i];
                        // Only leaves, to keep COW chains alive elsewhere.
                        if p.hv.domain(d).unwrap().children.is_empty() {
                            p.destroy(d).expect("destroy");
                            live.remove(i);
                        }
                    }
                }
            }

            // Cross-component consistency after every step.
            for d in &live {
                assert!(p.hv.domain_exists(*d));
                assert!(p.hv.domain(*d).unwrap().is_runnable(), "{d} not running");
                assert!(p.xl.record(*d).is_some(), "{d} missing from registry");
                assert!(
                    p.xs.exists(&format!("/local/domain/{}", d.0)),
                    "{d} missing from xenstore"
                );
                assert!(p.dm.vif(*d, 0).unwrap().is_connected());
                assert!(p.dm.console_attached(*d));
            }
            // Dom0 + live domains is all there is.
            assert_eq!(p.hv.domain_count(), live.len() + 1);
        }

        // Full teardown (leaves first) returns every byte.
        while !live.is_empty() {
            let i = live
                .iter()
                .position(|d| p.hv.domain(*d).unwrap().children.is_empty())
                .expect("leaf exists");
            let d = live.remove(i);
            p.destroy(d).expect("teardown");
        }
        assert_eq!(p.snapshot().hyp_free_bytes, baseline, "leaked guest-pool memory");
        assert_eq!(p.dm.vif_count(), 0);
        assert_eq!(p.hv.domain_count(), 1);
    });
}

/// Virtual time is monotonic and every operation costs something.
#[test]
fn operations_always_advance_time() {
    check(24, |g| {
        let n_clones = g.draw(&ranges(1usize..12));

        let mut p = small_platform();
        let parent = boot(&mut p, 0);
        let mut last = p.clock.now();
        for _ in 0..n_clones {
            p.clone_domain(parent, 1).expect("clone");
            let now = p.clock.now();
            assert!(now > last, "clone charged no time");
            last = now;
        }
    });
}

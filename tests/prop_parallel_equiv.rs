//! Same-seed multi-threaded vs single-threaded equivalence: random
//! clone/fork/checkpoint/reset/destroy tapes replayed at `threads = 1`
//! and `threads ∈ {2, 4, 8}` must produce bit-identical platforms — the
//! same [`PlatformSnapshot`], the same frame placement (every domain's
//! p2m and aux frames), the same Xenstore tree, and the same trace spans
//! (names, nesting and virtual-time stamps) — with a clean audit at
//! every width.
//!
//! This is the semantic contract of `sim_core::par::Pool`: host threads
//! only accelerate work whose outcome is already fixed by the
//! single-threaded order, so the thread count must be observably
//! invisible.

use nephele::hypervisor::cloneop::CloneOp;
use nephele::hypervisor::error::HvError;
use nephele::sim_core::{DomId, Pfn, TraceConfig, PAGE_SIZE};
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{AuditMode, Platform, PlatformConfig, PlatformSnapshot};
use testkit::prop::{check, ranges, vecs, Gen};

/// One step of a random clone-family tape. Domain indices select from
/// the currently live domains modulo the list length.
#[derive(Debug, Clone)]
enum Op {
    /// Batch-clone domain `idx` into `nr` children (the parallel path).
    Clone { idx: u64, nr: u32 },
    /// Fork domain `idx` (single-child clone).
    Fork { idx: u64 },
    /// Write one byte at (pfn, offset) of domain `idx` (COW breaks).
    Write { idx: u64, pfn: u64, off: usize, val: u8 },
    /// Arm (or re-arm) the KFX checkpoint of domain `idx`.
    Checkpoint { idx: u64 },
    /// Restore domain `idx` to its checkpoint.
    Reset { idx: u64 },
    /// Destroy domain `idx` (frees its domid for deterministic reuse).
    Destroy { idx: u64 },
}

fn ops_gen() -> impl Gen<Value = Vec<Op>> {
    vecs(
        (ranges(0u64..8), ranges(0u64..8), ranges(0u64..1060), ranges(0u64..65536)).map(
            |(kind, idx, pfn, val)| match kind {
                // Batch clones dominate: they are the parallelized path.
                0 | 1 => Op::Clone { idx, nr: 1 + (val % 4) as u32 },
                2 | 3 => Op::Write {
                    idx,
                    pfn,
                    off: (val as usize).wrapping_mul(61) % PAGE_SIZE,
                    val: val as u8,
                },
                4 => Op::Checkpoint { idx },
                5 => Op::Reset { idx },
                6 => Op::Destroy { idx },
                _ => Op::Fork { idx },
            },
        ),
        1..14,
    )
}

fn guest_cfg(name: &str) -> DomainConfig {
    DomainConfig::builder(name).memory_mib(4).max_clones(64).build()
}

/// Everything about a finished tape that must be thread-count-invariant.
struct Outcome {
    snapshot: PlatformSnapshot,
    /// Per-domain frame placement: p2m mappings and aux frames, in
    /// domain-id order.
    frames: String,
    /// The full Xenstore tree (paths and values, sorted walk).
    xenstore: String,
    /// Every recorded trace span: name, nesting, attrs and virtual-time
    /// start/end stamps.
    spans: String,
}

/// Depth-first Xenstore dump via the uncharged introspection API.
fn dump_xenstore(p: &Platform, path: &str, out: &mut String) {
    let val = p.xs.peek(path);
    out.push_str(path);
    if let Some(v) = val {
        out.push_str(" = ");
        out.push_str(&v);
    }
    out.push('\n');
    for child in p.xs.peek_directory(path) {
        let sub = if path == "/" { format!("/{child}") } else { format!("{path}/{child}") };
        dump_xenstore(p, &sub, out);
    }
}

fn run_tape(threads: usize, ops: &[Op]) -> Outcome {
    let img = KernelImage::minios("parprop");
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(64)
            .threads(threads)
            .tracing(TraceConfig::enabled())
            .audit(AuditMode::Off)
            .flightrec_dir("target/test-prop-parallel")
            .build(),
    );
    let root = p.launch_plain(&guest_cfg("parprop"), &img).expect("root boot");
    let mut live = vec![root];
    for op in ops {
        match op {
            Op::Clone { idx, nr } => {
                if live.len() >= 12 {
                    continue;
                }
                let parent = live[(*idx as usize) % live.len()];
                if let Ok(kids) = p.clone_domain(parent, *nr) {
                    live.extend(kids);
                }
            }
            Op::Fork { idx } => {
                if live.len() >= 12 {
                    continue;
                }
                let parent = live[(*idx as usize) % live.len()];
                if let Ok(kids) = p.clone_domain(parent, 1) {
                    live.extend(kids);
                }
            }
            Op::Write { idx, pfn, off, val } => {
                let dom = live[(*idx as usize) % live.len()];
                match p.hv.write_page(dom, Pfn(*pfn), *off, &[*val]) {
                    Ok(()) | Err(HvError::NotMapped(..)) => {}
                    Err(e) => panic!("unexpected write error: {e}"),
                }
            }
            Op::Checkpoint { idx } => {
                let dom = live[(*idx as usize) % live.len()];
                let _ = p.hv.cloneop(DomId::DOM0, CloneOp::Checkpoint { dom });
            }
            Op::Reset { idx } => {
                let dom = live[(*idx as usize) % live.len()];
                let _ = p.hv.cloneop(DomId::DOM0, CloneOp::CloneReset { dom });
            }
            Op::Destroy { idx } => {
                if live.len() <= 1 {
                    continue;
                }
                let pos = (*idx as usize) % live.len();
                if live[pos] == root {
                    continue;
                }
                let dom = live.remove(pos);
                p.destroy(dom).expect("destroy live domain");
            }
        }
    }

    let report = p.audit();
    assert!(report.is_clean(), "audit at threads={threads}:\n{report}");

    let mut frames = String::new();
    let mut ids: Vec<u32> = p.hv.domains().map(|d| d.id.0).collect();
    ids.sort_unstable();
    for id in ids {
        let d = p.hv.domain(DomId(id)).expect("listed domain");
        frames.push_str(&format!("dom{id} {:?} aux={:?}\n", d.name, d.aux_frames));
        for (pfn, mfn) in d.p2m.iter_mapped() {
            frames.push_str(&format!("  {pfn}->{mfn}\n"));
        }
    }

    let mut xenstore = String::new();
    dump_xenstore(&p, "/", &mut xenstore);

    let spans = format!("{:#?}", p.trace().spans());

    Outcome { snapshot: p.snapshot(), frames, xenstore, spans }
}

/// Replaying the same tape at any thread width must be observably
/// indistinguishable from the single-threaded run.
#[test]
fn parallel_execution_is_bit_identical_to_single_threaded() {
    check(10, |g| {
        let ops = g.draw(&ops_gen());
        let base = run_tape(1, &ops);
        for threads in [2usize, 4, 8] {
            let mt = run_tape(threads, &ops);
            assert_eq!(
                base.snapshot, mt.snapshot,
                "snapshot diverges at threads={threads} for {ops:?}"
            );
            assert_eq!(
                base.frames, mt.frames,
                "frame placement diverges at threads={threads} for {ops:?}"
            );
            assert_eq!(
                base.xenstore, mt.xenstore,
                "xenstore tree diverges at threads={threads} for {ops:?}"
            );
            assert_eq!(
                base.spans, mt.spans,
                "trace spans diverge at threads={threads} for {ops:?}"
            );
        }
    });
}

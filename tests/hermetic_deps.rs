//! Hermeticity guard: the workspace must build with zero external
//! registry dependencies (the seed's `proptest`/`criterion`/`rand`
//! declarations made every test and benchmark unbuildable offline).
//! This test walks every `Cargo.toml` in the workspace and fails if any
//! dependency is not a local `path` crate, so that failure class can
//! never regress.

use std::path::{Path, PathBuf};

/// Returns root + every `crates/*/Cargo.toml` manifest.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = std::fs::read_dir(root.join("crates")).expect("crates/ exists");
    for entry in crates {
        let manifest = entry.unwrap().path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(manifests.len() >= 15, "workspace shrank? found {}", manifests.len());
    manifests
}

/// True for section headers naming a dependency table, e.g.
/// `[dependencies]`, `[dev-dependencies]`, `[workspace.dependencies]`,
/// `[target.'cfg(unix)'.build-dependencies]`, `[dependencies.foo]`.
fn is_dep_section(header: &str) -> bool {
    header
        .trim_matches(['[', ']'])
        .split('.')
        .any(|part| matches!(part, "dependencies" | "dev-dependencies" | "build-dependencies"))
}

/// A dependency spec is hermetic iff it resolves to a local path crate:
/// either directly (`{ path = "..." }`) or through the workspace table
/// (`{ workspace = true }`, with `[workspace.dependencies]` itself
/// checked by the same rule on the root manifest).
fn is_hermetic_spec(spec: &str) -> bool {
    spec.contains("path =") || spec.contains("path=")
        || spec.contains("workspace = true") || spec.contains("workspace=true")
}

fn check_manifest(path: &Path, violations: &mut Vec<String>) {
    let text = std::fs::read_to_string(path).unwrap();
    let mut in_dep_section = false;
    let mut dotted_dep_header: Option<(String, bool)> = None; // ([dependencies.foo], saw path/workspace)

    let mut flush_dotted = |hdr: &mut Option<(String, bool)>, violations: &mut Vec<String>| {
        if let Some((name, ok)) = hdr.take() {
            if !ok {
                violations.push(format!("{}: {name} has no path/workspace key", path.display()));
            }
        }
    };

    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_dotted(&mut dotted_dep_header, violations);
            in_dep_section = is_dep_section(line);
            // `[dependencies.foo]`-style table: the keys follow on later
            // lines; require one of them to be `path`/`workspace`.
            if in_dep_section && line.trim_matches(['[', ']']).contains("dependencies.") {
                dotted_dep_header = Some((line.to_string(), false));
                in_dep_section = false;
            }
            continue;
        }
        if let Some((_, ok)) = &mut dotted_dep_header {
            if line.starts_with("path") || line.starts_with("workspace") {
                *ok = true;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((name, spec)) = line.split_once('=') else {
            continue;
        };
        if !is_hermetic_spec(spec) {
            violations.push(format!(
                "{}: `{} =` is not a path/workspace dependency: {}",
                path.display(),
                name.trim(),
                spec.trim()
            ));
        }
    }
    flush_dotted(&mut dotted_dep_header, violations);
}

#[test]
fn every_dependency_is_a_local_path_crate() {
    let mut violations = Vec::new();
    for manifest in workspace_manifests() {
        check_manifest(&manifest, &mut violations);
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found (the offline build would break):\n  {}",
        violations.join("\n  ")
    );
}

/// The workspace dependency table itself must map every name to a path,
/// otherwise `workspace = true` in member crates would launder a
/// registry dependency past the rule above.
#[test]
fn workspace_dependency_table_is_all_paths() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let text = std::fs::read_to_string(&root).unwrap();
    let mut in_table = false;
    let mut entries = 0;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if in_table && line.contains('=') {
            entries += 1;
            assert!(
                line.contains("path ="),
                "workspace dependency without a path: {line}"
            );
        }
    }
    assert!(entries >= 14, "workspace.dependencies shrank? found {entries}");
}

/// The old external harness names must never reappear anywhere in a
/// manifest — not even commented-in ready to be re-enabled.
#[test]
fn banned_registry_dependencies_never_return() {
    for manifest in workspace_manifests() {
        let text = std::fs::read_to_string(&manifest).unwrap();
        for banned in ["proptest", "criterion", "rand "] {
            for raw in text.lines() {
                let line = raw.split('#').next().unwrap_or("");
                assert!(
                    !line.trim_start().starts_with(banned),
                    "{}: banned registry dependency `{banned}` in: {raw}",
                    manifest.display()
                );
            }
        }
    }
}

//! End-to-end cloning lifecycle: boot → clone → COW divergence → destroy.

use std::net::Ipv4Addr;

use nephele::hypervisor::domain::DomainState;
use nephele::hypervisor::memory::FrameOwner;
use nephele::sim_core::{DomId, Pfn};
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{Platform, PlatformConfig};

fn cfg(name: &str, last_octet: u8) -> DomainConfig {
    DomainConfig::builder(name)
        .memory_mib(4)
        .vif(Ipv4Addr::new(10, 0, 0, last_octet))
        .max_clones(64)
        .build()
}

#[test]
fn full_lifecycle() {
    let mut p = Platform::new(PlatformConfig::small());
    let img = KernelImage::minios("udp");
    let parent = p.launch_plain(&cfg("udp", 2), &img).unwrap();

    // Dirty a page pre-clone so we can observe sharing.
    p.hv.write_page(parent, Pfn(50), 0, b"shared-data").unwrap();

    let kids = p.clone_domain(parent, 3).unwrap();
    assert_eq!(kids.len(), 3);

    // All four domains run; all children registered everywhere.
    assert_eq!(p.hv.domain(parent).unwrap().state, DomainState::Running);
    for k in &kids {
        assert_eq!(p.hv.domain(*k).unwrap().state, DomainState::Running);
        assert!(p.xl.record(*k).is_some(), "toolstack registry");
        assert!(p.xs.exists(&format!("/local/domain/{}", k.0)), "xenstore home");
        assert!(p.dm.vif(*k, 0).unwrap().is_connected(), "vif connected");
        assert!(p.dm.console_attached(*k), "console attached");
    }

    // The dirtied page is one COW frame shared by four domains.
    let mfn = p.hv.domain(parent).unwrap().lookup(Pfn(50)).unwrap();
    assert_eq!(p.hv.frames().inspect(mfn).unwrap().owner(), FrameOwner::Cow);
    assert_eq!(p.hv.frames().inspect(mfn).unwrap().refcount(), 4);
    for k in &kids {
        assert_eq!(p.hv.domain(*k).unwrap().lookup(Pfn(50)).unwrap(), mfn);
    }

    // One child diverges; the others and the parent are unaffected.
    p.hv.write_page(kids[0], Pfn(50), 0, b"child0-data").unwrap();
    let mut buf = [0u8; 11];
    p.hv.read_page(parent, Pfn(50), 0, &mut buf).unwrap();
    assert_eq!(&buf, b"shared-data");
    p.hv.read_page(kids[0], Pfn(50), 0, &mut buf).unwrap();
    assert_eq!(&buf, b"child0-data");
    p.hv.read_page(kids[1], Pfn(50), 0, &mut buf).unwrap();
    assert_eq!(&buf, b"shared-data");
    assert_eq!(p.hv.frames().inspect(mfn).unwrap().refcount(), 3);

    // Destroying everything returns all memory.
    let live_before_any = p.snapshot().hyp_free_bytes;
    for k in kids {
        p.destroy(k).unwrap();
    }
    p.destroy(parent).unwrap();
    assert!(p.snapshot().hyp_free_bytes > live_before_any);
    assert!(!p.hv.domain_exists(parent));
}

#[test]
fn nested_families_share_transitively() {
    let mut p = Platform::new(PlatformConfig::small());
    let img = KernelImage::minios("udp");
    let root = p.launch_plain(&cfg("root", 2), &img).unwrap();
    let child = p.clone_domain(root, 1).unwrap()[0];
    let grandchild = p.clone_domain(child, 1).unwrap()[0];

    assert!(p.hv.is_descendant(grandchild, root));
    assert!(p.hv.same_family(grandchild, root));

    // A never-written image page is one frame shared by all three.
    let mfn = p.hv.domain(root).unwrap().lookup(Pfn(0)).unwrap();
    assert_eq!(p.hv.domain(grandchild).unwrap().lookup(Pfn(0)).unwrap(), mfn);
    assert_eq!(p.hv.frames().inspect(mfn).unwrap().refcount(), 3);
}

#[test]
fn clone_of_unconfigured_domain_fails() {
    let mut p = Platform::new(PlatformConfig::small());
    let img = KernelImage::minios("udp");
    let cfg = DomainConfig::builder("noclone")
        .memory_mib(4)
        .vif(Ipv4Addr::new(10, 0, 0, 9))
        .build(); // max_clones = 0
    let d = p.launch_plain(&cfg, &img).unwrap();
    assert!(p.clone_domain(d, 1).is_err());
}

#[test]
fn paused_clone_policy_leaves_children_stopped() {
    // §5: "the child domains are either resumed or left in paused state,
    // depending on how they are configured."
    let mut p = Platform::new(PlatformConfig::small());
    let cfg = DomainConfig::builder("paused")
        .memory_mib(4)
        .vif(Ipv4Addr::new(10, 0, 0, 8))
        .max_clones(4)
        .resume_clones(false)
        .build();
    let parent = p.launch_plain(&cfg, &KernelImage::minios("paused")).unwrap();
    let child = p.clone_domain(parent, 1).unwrap()[0];

    // The parent resumed; the child stays paused until explicitly woken.
    assert_eq!(p.hv.domain(parent).unwrap().state, DomainState::Running);
    assert_eq!(p.hv.domain(child).unwrap().state, DomainState::Paused);
    p.hv.unpause(child).unwrap();
    assert!(p.hv.domain(child).unwrap().is_runnable());
}

#[test]
fn memory_density_clone_vs_boot() {
    let mut p = Platform::new(PlatformConfig::small());
    let img = KernelImage::minios("udp");
    let parent = p.launch_plain(&cfg("density", 2), &img).unwrap();

    let before = p.snapshot().hyp_free_bytes;
    p.clone_domain(parent, 8).unwrap();
    let per_clone = (before - p.snapshot().hyp_free_bytes) / 8;

    // A 4 MiB guest must cost far less than 4 MiB per clone; the paper
    // reports ~1.6 MiB dominated by the RX ring.
    assert!(per_clone < 2 * 1024 * 1024, "per-clone = {per_clone} bytes");
    assert!(per_clone > 512 * 1024, "rings must still be duplicated");
}

#[test]
fn rax_discriminates_parent_and_children() {
    let mut p = Platform::new(PlatformConfig::small());
    let img = KernelImage::minios("udp");
    let parent = p.launch_plain(&cfg("rax", 2), &img).unwrap();
    let kids = p.clone_domain(parent, 2).unwrap();
    assert_eq!(p.hv.domain(parent).unwrap().vcpus[0].regs.rax, 0);
    for k in kids {
        assert_eq!(p.hv.domain(k).unwrap().vcpus[0].regs.rax, 1);
    }
}

#[test]
fn xenstore_parent_entry_written_for_clones() {
    let mut p = Platform::new(PlatformConfig::small());
    let img = KernelImage::minios("udp");
    let parent = p.launch_plain(&cfg("xsp", 2), &img).unwrap();
    let child = p.clone_domain(parent, 1).unwrap()[0];
    assert_eq!(
        p.xs.read(DomId::DOM0, &format!("/local/domain/{}/parent", child.0))
            .unwrap(),
        parent.0.to_string()
    );
    // Clone names are generated and unique without any validation scan.
    let name = p
        .xs
        .read(DomId::DOM0, &format!("/local/domain/{}/name", child.0))
        .unwrap();
    assert_eq!(name, "xsp-c1");
}

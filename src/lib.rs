//! Root package; see the nephele crate.

//! Redis-style fork-based snapshots with unikernel clones (§7.1).
//!
//! BGSAVE forks the serving VM; the clone serializes the fork-point state
//! to the shared 9pfs root while the parent keeps serving — the exact COW
//! snapshot semantics Redis relies on.
//!
//! Run with: `cargo run --release --example redis_snapshot`

use std::net::Ipv4Addr;

use nephele::apps::RedisApp;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{ClonePolicy, DeviceClass, Platform, PlatformConfig};

fn main() {
    // Redis clones do not need network devices — xencloned clones only
    // what is needed (the paper's I/O-cloning optimization).
    let mut platform = Platform::new(
        PlatformConfig::builder()
            .clone_policy(ClonePolicy::all().set(DeviceClass::Vif, false))
            .build(),
    );

    let config = DomainConfig::builder("redis")
        .memory_mib(64)
        .vif(Ipv4Addr::new(10, 0, 0, 2))
        .p9fs("/export/redis")
        .max_clones(16)
        .build();
    let redis = platform
        .launch(&config, &KernelImage::unikraft("redis"), Box::new(RedisApp::new()))
        .expect("boot");

    // Populate the in-memory database (values live in real guest pages).
    platform
        .with_app::<RedisApp, ()>(redis, |app, env| {
            app.set(env, "answer", b"42");
            app.mass_insert(env, 1000, 32);
            println!("inserted {} keys", app.key_count());
        })
        .unwrap();

    // BGSAVE: fork a saver clone.
    let t0 = platform.clock.now();
    platform
        .with_app::<RedisApp, ()>(redis, |app, env| app.bgsave(env))
        .unwrap();
    println!("background save completed in {} (virtual)", platform.clock.now().since(t0));

    // The parent kept its state; the dump holds the fork-point snapshot.
    let dump = platform.dm.fs.read("/export/redis/dump.rdb", 0, 1 << 20).unwrap();
    let text = String::from_utf8_lossy(&dump);
    println!("dump.rdb: {} bytes, {} entries", dump.len(), text.lines().count());
    println!("first line: {}", text.lines().next().unwrap());
    assert!(text.contains("answer=42"));

    // Mutations after the fork don't retroactively change a snapshot.
    platform
        .with_app::<RedisApp, ()>(redis, |app, env| {
            app.set(env, "answer", b"43");
            app.bgsave(env);
        })
        .unwrap();
    let dump2 = platform.dm.fs.read("/export/redis/dump.rdb", 0, 1 << 20).unwrap();
    assert!(String::from_utf8_lossy(&dump2).contains("answer=43"));
    println!("second snapshot reflects the new value; parent never stopped serving");
}

//! NGINX-style worker scaling with unikernel clones (§7.1 of the paper).
//!
//! The master boots, forks four worker clones (all sharing its MAC and IP)
//! and the Dom0 bond load-balances incoming connections across them.
//!
//! Run with: `cargo run --release --example nginx_workers`

use std::net::Ipv4Addr;

use nephele::apps::{NginxApp, HTTP_PORT};
use nephele::netmux::SockEvent;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{MuxKind, Platform, PlatformConfig};

const SERVICE_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn main() {
    // The bond mux spreads flows across the cloned workers.
    let mut platform = Platform::new(PlatformConfig::builder().mux(MuxKind::Bond).build());

    let config = DomainConfig::builder("nginx")
        .memory_mib(16)
        .vif(SERVICE_IP)
        .max_clones(8)
        .build();

    // The app forks its workers from on_boot — one fork() call, four
    // ready-to-serve clones.
    let master = platform
        .launch(&config, &KernelImage::unikraft("nginx"), Box::new(NginxApp::new(4)))
        .expect("boot");
    let workers = platform.hv.domain(master).unwrap().children.clone();
    println!("master {master} spawned {} workers: {workers:?}", workers.len());
    println!("bond members: {}", platform.snapshot().mux_members);

    // Fire 60 HTTP requests from the host; the bond picks a clone per flow.
    let mut answered = 0;
    for _ in 0..60 {
        let conn = platform.host_tcp_connect(SERVICE_IP, HTTP_PORT);
        platform.take_host_events();
        platform.host_tcp_send(conn, b"GET / HTTP/1.1\r\n\r\n".to_vec());
        for e in platform.take_host_events() {
            if let SockEvent::TcpData { data, .. } = e {
                if data.starts_with(b"HTTP/1.1 200") {
                    answered += 1;
                }
            }
        }
        platform.host_tcp_close(conn);
    }
    println!("{answered}/60 requests answered");

    // Show the per-worker distribution.
    for w in &workers {
        let served = platform
            .with_app::<NginxApp, u64>(*w, |app, _| app.served)
            .unwrap();
        println!("  worker {w}: {served} requests");
    }
}

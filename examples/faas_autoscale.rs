//! FaaS autoscaling: containers vs. unikernel clones (§7.3).
//!
//! Demand rises in steps; the autoscaler adds one instance per step. The
//! trace shows why clones track demand so much more closely: they are
//! Ready in seconds, not tens of seconds.
//!
//! Run with: `cargo run --release --example faas_autoscale`

use faas::{run_faas, Backend, FaasConfig};
use nephele::sim_core::SimDuration;

fn main() {
    let cfg = FaasConfig {
        duration: SimDuration::from_secs(60),
        ..Default::default()
    };
    let containers = run_faas(&FaasConfig {
        backend: Backend::Containers,
        ..cfg.clone()
    });
    let unikernels = run_faas(&FaasConfig {
        backend: Backend::Unikernels,
        ..cfg
    });

    println!("instance-ready times (s):");
    println!("  containers: {:?}", containers.ready_times);
    println!("  unikernels: {:?}", unikernels.ready_times);
    println!();
    println!("  sec | demand-served (containers) | demand-served (unikernels) | memory MB (c/u)");
    for s in (0..60).step_by(5) {
        let c = containers.throughput_series[s].1;
        let u = unikernels.throughput_series[s].1;
        let cm = containers.memory_series[s].1;
        let um = unikernels.memory_series[s].1;
        println!("  {s:>3} | {c:>26.0} | {u:>26.0} | {cm:>6.0} / {um:<6.0}");
    }
    println!();
    println!(
        "total served: containers {:.0}, unikernels {:.0}",
        containers.served_total, unikernels.served_total
    );
}

//! VM fuzzing with clone_cow / clone_reset (§7.2).
//!
//! Runs two short KFX+AFL campaigns over the syscall adapter — with
//! cloning support and with a fresh boot per input — and prints the
//! throughput gap that motivates Fig. 9.
//!
//! Run with: `cargo run --release --example fuzzing_campaign`

use fuzz::{run_campaign, FuzzConfig, FuzzMode, FuzzTarget};
use nephele::sim_core::SimDuration;
use nephele::TraceConfig;

fn main() {
    let secs = 30;
    println!("fuzzing the Unikraft syscall adapter for {secs} virtual seconds per mode...\n");

    for (label, mode) in [
        ("with cloning (clone_cow + clone_reset)", FuzzMode::UnikraftClone),
        ("without cloning (boot per input)", FuzzMode::UnikraftBootEach),
        ("native Linux process (fork server)", FuzzMode::LinuxProcess),
    ] {
        let report = run_campaign(&FuzzConfig {
            mode,
            target: FuzzTarget::SyscallSubsystem,
            duration: SimDuration::from_secs(secs),
            seed: 7,
            tracing: TraceConfig::default(),
        });
        println!("{label}:");
        println!("  throughput : {:>10.1} exec/s", report.avg_throughput);
        println!("  executions : {:>10}", report.total_execs);
        println!("  edges      : {:>10}", report.edges);
        println!("  corpus     : {:>10}", report.corpus);
        println!("  crashes    : {:>10}", report.crashes);
        if report.avg_reset_us > 0.0 {
            println!(
                "  clone_reset: {:>10.1} us/iteration ({:.1} dirty pages avg)",
                report.avg_reset_us, report.avg_dirty_pages
            );
        }
        println!();
    }
}

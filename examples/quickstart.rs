//! Quickstart: boot a unikernel, clone it, and watch copy-on-write at work.
//!
//! Run with: `cargo run --release --example quickstart`

use std::net::Ipv4Addr;

use nephele::hypervisor::memory::FrameOwner;
use nephele::sim_core::Pfn;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{Platform, PlatformConfig};

fn main() {
    // A full virtualization platform: hypervisor, Xenstore, device
    // backends, toolstack and the xencloned daemon.
    let mut platform = Platform::new(PlatformConfig::builder().cores(4).build());

    // Boot a 4 MiB unikernel with one network interface, allowed to clone.
    let config = DomainConfig::builder("demo")
        .memory_mib(4)
        .vif(Ipv4Addr::new(10, 0, 0, 2))
        .max_clones(16)
        .build();
    let t0 = platform.clock.now();
    let parent = platform
        .launch_plain(&config, &KernelImage::minios("demo"))
        .expect("boot");
    let boot_time = platform.clock.now().since(t0);
    println!("booted {parent} in {boot_time} (virtual time)");

    // Write some state so the sharing is visible.
    platform
        .hv
        .write_page(parent, Pfn(100), 0, b"hello from the parent")
        .unwrap();

    // Clone it three times (Dom0-triggered, like VM fuzzing would).
    let t1 = platform.clock.now();
    let clones = platform.clone_domain(parent, 3).expect("clone");
    let clone_time = platform.clock.now().since(t1);
    println!("cloned 3 instances in {clone_time} total ({:.1}x faster than boot, per clone)",
        boot_time.as_ns() as f64 / (clone_time.as_ns() as f64 / 3.0));

    // All four domains share the written page through dom_cow.
    let mfn = platform.hv.domain(parent).unwrap().lookup(Pfn(100)).unwrap();
    let frame = platform.hv.frames().inspect(mfn).unwrap();
    println!(
        "page {mfn}: owner = {:?}, shared by {} domains",
        frame.owner(),
        frame.refcount()
    );
    assert_eq!(frame.owner(), FrameOwner::Cow);

    // A clone reads the parent's data...
    let mut buf = [0u8; 21];
    platform.hv.read_page(clones[0], Pfn(100), 0, &mut buf).unwrap();
    println!("clone {} reads: {:?}", clones[0], String::from_utf8_lossy(&buf));

    // ...and writing diverges it without touching anyone else.
    platform
        .hv
        .write_page(clones[0], Pfn(100), 0, b"hello from the clone!")
        .unwrap();
    platform.hv.read_page(parent, Pfn(100), 0, &mut buf).unwrap();
    println!("parent still reads: {:?}", String::from_utf8_lossy(&buf));

    // Memory economics: a clone costs a fraction of a boot.
    let before = platform.snapshot().hyp_free_bytes;
    platform.clone_domain(parent, 1).unwrap();
    let clone_cost = before - platform.snapshot().hyp_free_bytes;
    println!(
        "one more clone consumed {} KiB (a full 4 MiB boot would consume >4096 KiB)",
        clone_cost / 1024
    );
}

#!/usr/bin/env bash
# Bench regression gate.
#
# Compares the current `results/BENCH_*.json` suites against the
# checked-in baselines in `scripts/bench_baselines/` and fails when any
# metric's median regresses beyond the tolerance. The benches measure
# real (host) time, so the tolerance is deliberately loose — it exists
# to catch order-of-magnitude algorithmic regressions (a COW fault that
# went O(n), a clone path that lost its batching), not scheduler noise.
#
#   usage: scripts/bench_gate.sh [results-dir]
#
#   NEPHELE_BENCH_TOL   regression tolerance as a ratio of the baseline
#                       median (default 8.0). A metric fails the gate
#                       when current_median > TOL * baseline_median.
#
# Exit status: 0 when every metric is within tolerance, 1 on any
# regression, on a suite or metric present in the baselines but missing
# from the results, or on a malformed suite file.
set -euo pipefail
cd "$(dirname "$0")/.."

TOL="${NEPHELE_BENCH_TOL:-8.0}"
RESULTS_DIR="${1:-results}"
BASELINE_DIR="scripts/bench_baselines"

# Emits "group/name median_ns" per record. The suite files put one
# record per line exactly so that this kind of tooling never needs a
# JSON parser (see testkit's bench export).
extract() {
  sed -n 's/.*"group": "\([^"]*\)", "name": "\([^"]*\)".*"median_ns": \([0-9.eE+-]*\),.*/\1\/\2 \3/p' "$1"
}

status=0
for base in "$BASELINE_DIR"/BENCH_*.json; do
  suite="$(basename "$base")"
  cur="$RESULTS_DIR/$suite"
  if [[ ! -f "$cur" ]]; then
    echo "bench_gate: $suite: MISSING from $RESULTS_DIR (baseline exists)"
    status=1
    continue
  fi
  if ! report=$(awk -v tol="$TOL" -v suite="$suite" '
    NR == FNR { b[$1] = $2; next }
    {
      if (!($1 in b)) {
        printf "bench_gate: %s: NEW       %-40s median %s ns (no baseline; re-seed scripts/bench_baselines)\n", suite, $1, $2
        next
      }
      ratio = $2 / b[$1]
      if (ratio > tol) {
        printf "bench_gate: %s: REGRESSED %-40s %.3f -> %.3f ns (%.1fx > %.1fx tolerance)\n", suite, $1, b[$1], $2, ratio, tol
        bad = 1
      } else {
        printf "bench_gate: %s: ok        %-40s %.3f -> %.3f ns (%.2fx)\n", suite, $1, b[$1], $2, ratio
      }
      delete b[$1]
    }
    END {
      n = 0
      for (k in b) {
        printf "bench_gate: %s: MISSING   %-40s dropped from current results\n", suite, k
        bad = 1
      }
      exit bad
    }' <(extract "$base") <(extract "$cur")); then
    status=1
  fi
  echo "$report"
  if [[ -z "$(extract "$cur")" ]]; then
    echo "bench_gate: $suite: no parseable records in $cur"
    status=1
  fi
done

if [[ "$status" -ne 0 ]]; then
  echo "bench_gate: FAILED (tolerance ${TOL}x; override with NEPHELE_BENCH_TOL)"
else
  echo "bench_gate: all metrics within ${TOL}x of baseline"
fi
exit "$status"

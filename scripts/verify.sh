#!/usr/bin/env bash
# Tier-1 verification, fully offline: build, test, and compile benches
# with no registry access. The workspace is hermetic (path-only
# dependencies; see tests/hermetic_deps.rs), so --offline must succeed
# from a clean checkout.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline (tier-1: root package)"
cargo test -q --offline

echo "== NEPHELE_AUDIT=every-op cargo test -q --offline (tier-1 under the state invariant auditor)"
NEPHELE_AUDIT=every-op cargo test -q --offline

echo "== cargo test -q --workspace --offline (all member crates)"
cargo test -q --workspace --offline

echo "== cargo test -q --offline --test trace_spans (observability layer)"
cargo test -q --offline --test trace_spans

echo "== cargo test -q -p hypervisor --offline --test prop_clone_batch (batched clone equivalence + atomicity)"
cargo test -q -p hypervisor --offline --test prop_clone_batch

echo "== cargo test -q --offline --test prop_parallel_equiv (MT-vs-ST bit-identical platforms)"
cargo test -q --offline --test prop_parallel_equiv

echo "== cargo test -q --offline --test prop_trace_modes (streaming vs post-hoc aggregation equivalence)"
cargo test -q --offline --test prop_trace_modes

echo "== cargo test -q -p faas --offline scale (10^4-domain bounded-memory observability)"
cargo test -q -p faas --offline scale

echo "== cargo test -q -p faas --offline traffic (seeded traffic replay + request-cloning policies)"
cargo test -q -p faas --offline traffic

echo "== cargo bench --no-run --offline"
cargo bench --no-run --offline

echo "== cargo bench -p bench --bench clone_fanout --offline (batched vs sequential fan-out)"
cargo bench -p bench --bench clone_fanout --offline

echo "== cargo bench -p bench --bench clone_reset --offline (O(dirty) checkpoint restore)"
cargo bench -p bench --bench clone_reset --offline

echo "== cargo bench -p bench --bench parallel_stamp --offline (fork/join pool on batched stamping)"
cargo bench -p bench --bench parallel_stamp --offline

echo "== cargo bench -p bench --bench trace_overhead --offline (sink self-overhead per TraceMode)"
cargo bench -p bench --bench trace_overhead --offline

echo "== cargo bench -p bench --bench clone_density --offline (per-clone cost vs live-domain count)"
cargo bench -p bench --bench clone_density --offline

echo "== clone density gate (10^4-domain clone+destroy median <= 2x the 10^2-domain median)"
# The index work's contract: per-clone and per-destroy host cost must
# not scale with the number of concurrently live domains. Before the
# name index, the referrer index and the range-keyed device maps, the
# 10^4 median sat at ~3.5x the 10^2 one.
density_median() {
    sed -n 's/.*"group": "density_'"$1"'", "name": "clone_destroy_batch16".*"median_ns": \([0-9.eE+-]*\),.*/\1/p' \
        results/BENCH_clone_density.json
}
awk -v d100="$(density_median 100)" -v d10k="$(density_median 10000)" 'BEGIN {
    if (d100 + 0 <= 0 || d10k + 0 <= 0) {
        print "verify.sh: missing clone_density medians (d100=" d100 ", d10k=" d10k ")"
        exit 1
    }
    ratio = d10k / d100
    printf "   clone+destroy batch16 median: %.0f ns at 100 domains vs %.0f ns at 10000 (%.2fx)\n", d100, d10k, ratio
    if (ratio > 2.0) {
        print "verify.sh: per-clone cost grows " ratio "x from 10^2 to 10^4 live domains (gate: 2x)"
        exit 1
    }
}'

echo "== trace overhead budget gate (Aggregate vs Off / Full)"
# Streaming aggregation buys bounded memory; this gate asserts it stays
# within its host-cost budget: an Aggregate-mode instrumentation tick
# must cost at most 60x a disabled sink's (the mixed batch is ~1k ops,
# so that is a generous per-op budget) and at most 2x Full mode's
# retain-everything path.
trace_median() {
    sed -n 's/.*"group": "trace_overhead", "name": "'"$1"'".*"median_ns": \([0-9.eE+-]*\),.*/\1/p' \
        results/BENCH_trace_overhead.json
}
awk -v off="$(trace_median mixed_off)" \
    -v full="$(trace_median mixed_full)" \
    -v agg="$(trace_median mixed_agg)" 'BEGIN {
    if (off + 0 <= 0 || full + 0 <= 0 || agg + 0 <= 0) {
        print "verify.sh: missing trace_overhead medians (off=" off ", full=" full ", agg=" agg ")"
        exit 1
    }
    printf "   mixed tick medians: off %.0f ns, full %.0f ns, aggregate %.0f ns (agg/off %.1fx, agg/full %.2fx)\n", \
        off, full, agg, agg / off, agg / full
    if (agg > 60.0 * off) {
        print "verify.sh: Aggregate tick exceeds the 60x budget over a disabled sink"
        exit 1
    }
    if (agg > 2.0 * full) {
        print "verify.sh: Aggregate tick exceeds 2x the Full-mode cost"
        exit 1
    }
}'

echo "== parallel stamping speedup gate (fanout64: 4 threads vs 1 thread)"
# The tentpole win: stamping 64 children's private pages on 4 workers
# must beat the single-threaded pool by 2x. Wall-clock parallelism only
# exists where the host has the cores to express it, so on smaller
# hosts the ratio gate is skipped — determinism (the real contract) is
# enforced unconditionally by prop_parallel_equiv and the figure gates.
stamp_median() {
    sed -n 's/.*"group": "parallel_stamp", "name": "'"$2"'".*"median_ns": \([0-9.eE+-]*\),.*/\1/p' "$1"
}
host_cpus="$(nproc)"
awk -v st="$(stamp_median results/BENCH_parallel_stamp.json fanout64_t1)" \
    -v mt="$(stamp_median results/BENCH_parallel_stamp.json fanout64_t4)" \
    -v cpus="$host_cpus" 'BEGIN {
    if (st + 0 <= 0 || mt + 0 <= 0) {
        print "verify.sh: missing parallel_stamp medians (t1=" st ", t4=" mt ")"
        exit 1
    }
    ratio = st / mt
    printf "   fanout64 median %.0f ns at 1 thread vs %.0f ns at 4 (%.2fx on %d CPU(s))\n", st, mt, ratio, cpus
    if (cpus < 4) {
        print "   host has fewer than 4 CPUs: wall-clock ratio gate skipped"
        exit 0
    }
    if (ratio < 2.0) {
        print "verify.sh: parallel stamping speedup " ratio "x is below the 2x gate"
        exit 1
    }
}'

echo "== clone_reset speedup gate (>= 5x vs the seeded pre-overlay baseline)"
# The general bench gate only catches regressions; this one asserts the
# tentpole win itself: restoring 16 dirty pages in a 4096-page clone
# must beat the stamped-p2m baseline (which walked all of them) by 5x.
reset_median() {
    sed -n 's/.*"group": "clone_reset", "name": "dirty16_reset_4k".*"median_ns": \([0-9.eE+-]*\),.*/\1/p' "$1"
}
awk -v base="$(reset_median scripts/bench_baselines/BENCH_clone_reset.json)" \
    -v cur="$(reset_median results/BENCH_clone_reset.json)" 'BEGIN {
    if (base + 0 <= 0 || cur + 0 <= 0) {
        print "verify.sh: missing clone_reset medians (base=" base ", cur=" cur ")"
        exit 1
    }
    ratio = base / cur
    printf "   clone_reset median %.0f ns vs baseline %.0f ns (%.1fx)\n", cur, base, ratio
    if (ratio < 5.0) {
        print "verify.sh: clone_reset speedup " ratio "x is below the 5x gate"
        exit 1
    }
}'

echo "== cargo check with deprecated APIs denied (no internal callers of deprecated getters or clone shims)"
RUSTFLAGS="-D deprecated" cargo check -q --workspace --all-targets --offline

echo "== scripts/bench_gate.sh (medians vs checked-in baselines)"
scripts/bench_gate.sh

echo "== scripts/bench_gate.sh scripts/fixtures/regressed (doctored fixture must fail the gate)"
if scripts/bench_gate.sh scripts/fixtures/regressed >/dev/null 2>&1; then
    echo "verify.sh: bench gate accepted the doctored regression fixture"
    exit 1
fi

echo "== figure determinism gate (fig4/fig5/fig6/fig7/fig9 CSVs must be byte-identical)"
# Neither the COW Xenstore, the p2m overlay rework, nor the device-bus
# dispatch may perturb any virtual-time figure: re-run the key figures
# with the committed seeds and diff stdout against the checked-in CSVs.
# fig4/fig7 embed span aggregates, so they reproduce only with tracing
# enabled; fig5/fig6/fig9 run without it.
detgate() {
    local fig="$1" trace="$2" threads="${3:-1}" out
    out="$(mktemp)"
    if [[ "$trace" == trace ]]; then
        NEPHELE_THREADS="$threads" NEPHELE_TRACE=1 \
            cargo run -q -p bench --release --offline --bin "$fig" > "$out"
    else
        NEPHELE_THREADS="$threads" \
            cargo run -q -p bench --release --offline --bin "$fig" > "$out"
    fi
    if ! diff -q "results/$fig.csv" "$out" >/dev/null; then
        echo "verify.sh: $fig.csv drifted from the committed results (threads=$threads):"
        diff "results/$fig.csv" "$out" | head -20
        rm -f "$out"
        exit 1
    fi
    rm -f "$out"
    echo "   $fig.csv reproduced byte-identical (threads=$threads)"
    # Traced runs also regenerate the streaming exports in place
    # (timeline slices, family rollups, Prometheus exposition); any
    # drift from the committed copies fails the gate.
    if [[ "$trace" == trace ]]; then
        local f
        for f in "results/${fig}_timeline.csv" "results/${fig}_families.csv" "results/${fig}_metrics.prom"; do
            if ! git ls-files --error-unmatch "$f" >/dev/null 2>&1; then
                echo "verify.sh: $f is not committed (streaming exports must be tracked)"
                exit 1
            fi
            if ! git diff --quiet -- "$f"; then
                echo "verify.sh: $f drifted from the committed streaming export (threads=$threads):"
                git diff -- "$f" | head -20
                exit 1
            fi
        done
        echo "   $fig streaming exports reproduced byte-identical (threads=$threads)"
    fi
}
detgate fig4 trace
detgate fig5 notrace
detgate fig6 notrace
detgate fig7 trace
detgate fig9 notrace
detgate fig10scale notrace

echo "== figure determinism gate under NEPHELE_THREADS=4 (host parallelism must be invisible)"
# The same figures, re-run with the fork/join pool at 4 workers: every
# byte of every virtual-time CSV must be unchanged, or the parallel
# stamping leaked host scheduling into simulated results.
detgate fig4 trace 4
detgate fig5 notrace 4
detgate fig6 notrace 4
detgate fig7 trace 4
detgate fig9 notrace 4
detgate fig10scale notrace 4

echo "== scale100k (10^5 concurrently live clones, churn, and policy replay must complete)"
# The acceptance run for the density work: ramping to 100 000 live
# vif-less clones, churning 1 562 of them through destroy, and replaying
# 20 000 requests per policy. Any O(live domains) cost left on the
# create/clone/destroy path makes this run crawl; the binary asserts
# the scenario's invariants itself.
cargo run -q -p bench --release --offline --bin scale100k

echo "== cargo doc --no-deps --offline (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace --quiet

echo "verify.sh: all green"

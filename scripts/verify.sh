#!/usr/bin/env bash
# Tier-1 verification, fully offline: build, test, and compile benches
# with no registry access. The workspace is hermetic (path-only
# dependencies; see tests/hermetic_deps.rs), so --offline must succeed
# from a clean checkout.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline (tier-1: root package)"
cargo test -q --offline

echo "== NEPHELE_AUDIT=every-op cargo test -q --offline (tier-1 under the state invariant auditor)"
NEPHELE_AUDIT=every-op cargo test -q --offline

echo "== cargo test -q --workspace --offline (all member crates)"
cargo test -q --workspace --offline

echo "== cargo test -q --offline --test trace_spans (observability layer)"
cargo test -q --offline --test trace_spans

echo "== cargo test -q -p hypervisor --offline --test prop_clone_batch (batched clone equivalence + atomicity)"
cargo test -q -p hypervisor --offline --test prop_clone_batch

echo "== cargo bench --no-run --offline"
cargo bench --no-run --offline

echo "== cargo bench -p bench --bench clone_fanout --offline (batched vs sequential fan-out)"
cargo bench -p bench --bench clone_fanout --offline

echo "== cargo check with deprecated APIs denied (no internal callers of deprecated getters)"
RUSTFLAGS="-D deprecated" cargo check -q --workspace --offline

echo "== scripts/bench_gate.sh (medians vs checked-in baselines)"
scripts/bench_gate.sh

echo "== scripts/bench_gate.sh scripts/fixtures/regressed (doctored fixture must fail the gate)"
if scripts/bench_gate.sh scripts/fixtures/regressed >/dev/null 2>&1; then
    echo "verify.sh: bench gate accepted the doctored regression fixture"
    exit 1
fi

echo "== cargo doc --no-deps --offline (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace --quiet

echo "verify.sh: all green"

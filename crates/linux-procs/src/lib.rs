//! Baseline models the paper compares Nephele against: Linux processes
//! with `fork()`/COW semantics ([`process`]), Kubernetes-orchestrated
//! containers ([`container`]) and the `wrk`/`ab` load generators
//! ([`loadgen`]).

pub mod container;
pub mod loadgen;
pub mod process;

pub use container::{Container, ContainerRuntime};
pub use loadgen::{jittered_service, AbConfig, WrkConfig};
pub use process::{LinuxProcess, ProcessModel};

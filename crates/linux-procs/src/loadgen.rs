//! Load-generator models: `wrk` (closed loop) and `ab` (fixed request
//! count), as used in §7.1 and §7.3.

use sim_core::{SimDuration, SplitMix64};

/// A `wrk`-style closed-loop generator: `connections` concurrent
/// connections, each issuing its next request as soon as the previous
/// response arrives, for a fixed duration.
#[derive(Debug, Clone)]
pub struct WrkConfig {
    /// Concurrent connections ("wrk keeps 400 open HTTP connections with
    /// each worker").
    pub connections: usize,
    /// Test duration.
    pub duration: SimDuration,
    /// Repetitions (the paper repeats 30 times).
    pub repetitions: usize,
}

impl Default for WrkConfig {
    fn default() -> Self {
        WrkConfig {
            connections: 400,
            duration: SimDuration::from_secs(5),
            repetitions: 30,
        }
    }
}

/// An `ab`-style generator: `workers` concurrent workers issuing a total
/// of `total_requests` requests.
#[derive(Debug, Clone)]
pub struct AbConfig {
    /// Concurrent workers (the paper runs 8).
    pub workers: usize,
    /// Total requests across the session (the paper issues 500 K).
    pub total_requests: u64,
}

impl Default for AbConfig {
    fn default() -> Self {
        AbConfig {
            workers: 8,
            total_requests: 500_000,
        }
    }
}

/// Draws a jittered service time around `mean` with relative standard
/// deviation `rel_stddev`, clamped to a tenth of the mean.
pub fn jittered_service(rng: &mut SplitMix64, mean: SimDuration, rel_stddev: f64) -> SimDuration {
    let ns = rng.normal(mean.as_ns() as f64, mean.as_ns() as f64 * rel_stddev);
    SimDuration::from_ns(ns.max(mean.as_ns() as f64 / 10.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_methodology() {
        let w = WrkConfig::default();
        assert_eq!(w.connections, 400);
        assert_eq!(w.duration.as_secs_f64(), 5.0);
        assert_eq!(w.repetitions, 30);
        let a = AbConfig::default();
        assert_eq!(a.workers, 8);
        assert_eq!(a.total_requests, 500_000);
    }

    #[test]
    fn jitter_stays_positive_and_near_mean() {
        let mut rng = SplitMix64::new(1);
        let mean = SimDuration::from_us(30);
        let mut acc = 0u64;
        for _ in 0..1000 {
            let s = jittered_service(&mut rng, mean, 0.1);
            assert!(s.as_ns() > 0);
            acc += s.as_ns();
        }
        let avg = acc / 1000;
        assert!((27_000..33_000).contains(&avg), "avg = {avg} ns");
    }
}

//! The container baseline used by the FaaS experiments (§7.3).
//!
//! Models what the paper's vanilla OpenFaaS setup measures: Kubernetes-
//! orchestrated containers running a language runtime. Two quantities
//! matter for Figs. 10–11:
//!
//! * **readiness latency** — the delay from the scale-up decision until
//!   Kubernetes reports the new instance Ready (pod scheduling + container
//!   start + readiness probing); containers take tens of seconds, cloned
//!   unikernels a few;
//! * **memory footprint** — the first container is comparatively cheap
//!   (~90 MB: shared image layers, warm caches) but each subsequent one
//!   carries its full runtime (~220 MB average in the paper's measurement),
//!   whereas unikernel clones add only tens of MB.

use std::rc::Rc;

use sim_core::{Clock, CostModel, SimTime};

/// One running container instance.
#[derive(Debug, Clone)]
pub struct Container {
    /// Instance id.
    pub id: u32,
    /// When the scale-up decision launched it.
    pub launched_at: SimTime,
    /// When Kubernetes reports it Ready.
    pub ready_at: SimTime,
    /// Resident memory in bytes.
    pub mem_bytes: u64,
}

impl Container {
    /// Whether the instance is Ready at `now`.
    pub fn is_ready(&self, now: SimTime) -> bool {
        now >= self.ready_at
    }
}

/// The container runtime + orchestrator model.
#[derive(Debug)]
pub struct ContainerRuntime {
    clock: Clock,
    costs: Rc<CostModel>,
    next_id: u32,
    containers: Vec<Container>,
    /// Memory of the first instance (shared layers warm), bytes.
    pub first_instance_bytes: u64,
    /// Memory of each subsequent instance, bytes.
    pub per_instance_bytes: u64,
}

impl ContainerRuntime {
    /// Creates the runtime with the paper's measured footprints (≈90 MB
    /// first, ≈220 MB per additional instance).
    pub fn new(clock: Clock, costs: Rc<CostModel>) -> Self {
        ContainerRuntime {
            clock,
            costs,
            next_id: 0,
            containers: Vec::new(),
            first_instance_bytes: 90 * 1024 * 1024,
            per_instance_bytes: 220 * 1024 * 1024,
        }
    }

    /// Launches a container; returns the instance. Charging happens on the
    /// orchestration clock (`container_start`), and the instance becomes
    /// Ready only after the pod latency elapses.
    pub fn launch(&mut self) -> Container {
        let launched_at = self.clock.now();
        self.clock.advance(self.costs.container_start);
        let ready_at = launched_at + self.costs.container_start + self.costs.pod_ready_latency;
        let mem_bytes = if self.containers.is_empty() {
            self.first_instance_bytes
        } else {
            self.per_instance_bytes
        };
        let c = Container {
            id: self.next_id,
            launched_at,
            ready_at,
            mem_bytes,
        };
        self.next_id += 1;
        self.containers.push(c.clone());
        c
    }

    /// Stops an instance.
    pub fn stop(&mut self, id: u32) {
        self.containers.retain(|c| c.id != id);
    }

    /// All running instances.
    pub fn containers(&self) -> &[Container] {
        &self.containers
    }

    /// Instances Ready at `now`.
    pub fn ready_count(&self, now: SimTime) -> usize {
        self.containers.iter().filter(|c| c.is_ready(now)).count()
    }

    /// Total resident memory of all instances, bytes.
    pub fn total_mem_bytes(&self) -> u64 {
        self.containers.iter().map(|c| c.mem_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use sim_core::SimDuration;

    use super::*;

    fn rt() -> (Clock, ContainerRuntime) {
        let clock = Clock::new();
        (clock.clone(), ContainerRuntime::new(clock, Rc::new(CostModel::calibrated())))
    }

    #[test]
    fn readiness_takes_seconds() {
        let (clock, mut rt) = rt();
        let c = rt.launch();
        assert!(!c.is_ready(clock.now()));
        let wait = c.ready_at.since(SimTime::ZERO);
        assert!(wait >= SimDuration::from_secs(5), "pod readiness = {wait}");
        assert_eq!(rt.ready_count(c.ready_at), 1);
    }

    #[test]
    fn first_instance_cheaper_than_rest() {
        let (_, mut rt) = rt();
        let a = rt.launch();
        let b = rt.launch();
        let c = rt.launch();
        assert!(a.mem_bytes < b.mem_bytes);
        assert_eq!(b.mem_bytes, c.mem_bytes);
        assert_eq!(rt.total_mem_bytes(), a.mem_bytes + 2 * b.mem_bytes);
    }

    #[test]
    fn stop_releases_memory() {
        let (_, mut rt) = rt();
        let a = rt.launch();
        let before = rt.total_mem_bytes();
        rt.stop(a.id);
        assert!(rt.total_mem_bytes() < before);
        assert_eq!(rt.containers().len(), 0);
    }
}

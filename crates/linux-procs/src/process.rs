//! The Linux process baseline: `fork()` with page-table copying and COW.
//!
//! Models the behaviour the paper compares against in §6.2 and §7.1,
//! following the On-Demand-Fork observation (ref. 66 of the paper) that "process forking
//! duration is dominated by the copying of the page tables when the used
//! memory size starts reaching hundreds of megabytes":
//!
//! * `fork()` costs a fixed base plus a per-resident-page page-table copy;
//! * the *first* fork additionally write-protects every resident page
//!   (marking the whole address space COW), so the first call is always
//!   slower than the second;
//! * subsequent forks only re-protect pages dirtied since the last fork;
//! * writes to COW pages fault and copy, like the guest side.

use std::rc::Rc;

use sim_core::{ids::mib_to_pages, Clock, CostModel};

/// A process's address-space state (only what the fork model needs).
#[derive(Debug, Clone)]
pub struct LinuxProcess {
    /// Process id.
    pub pid: u32,
    /// Resident pages backing the address space.
    resident_pages: u64,
    /// Pages currently write-protected for COW.
    cow_protected: u64,
    /// Pages writable (never forked, or dirtied since the last fork).
    writable: u64,
}

impl LinuxProcess {
    /// Resident set size in pages.
    pub fn resident_pages(&self) -> u64 {
        self.resident_pages
    }

    /// Pages that would need COW marking at the next fork.
    pub fn unprotected_pages(&self) -> u64 {
        self.writable
    }
}

/// The host-side process model.
#[derive(Debug)]
pub struct ProcessModel {
    clock: Clock,
    costs: Rc<CostModel>,
    next_pid: u32,
}

impl ProcessModel {
    /// Creates the model.
    pub fn new(clock: Clock, costs: Rc<CostModel>) -> Self {
        ProcessModel {
            clock,
            costs,
            next_pid: 100,
        }
    }

    /// Spawns a process with `resident_mib` of touched memory.
    pub fn spawn(&mut self, resident_mib: u64) -> LinuxProcess {
        let pid = self.next_pid;
        self.next_pid += 1;
        let pages = mib_to_pages(resident_mib);
        LinuxProcess {
            pid,
            resident_pages: pages,
            cow_protected: 0,
            writable: pages,
        }
    }

    /// Grows the resident set by `pages` freshly touched pages.
    pub fn grow(&mut self, p: &mut LinuxProcess, pages: u64) {
        p.resident_pages += pages;
        p.writable += pages;
    }

    /// Dirties a working set of `pages` pages (the same pages on repeated
    /// calls). Pages still COW-protected fault and copy (charged);
    /// already-writable pages are free.
    pub fn touch(&mut self, p: &mut LinuxProcess, pages: u64) {
        let faulting = pages.saturating_sub(p.writable).min(p.cow_protected);
        self.clock
            .advance(self.costs.linux_cow_fault.saturating_mul(faulting));
        p.cow_protected -= faulting;
        p.writable += faulting;
    }

    /// `fork()`: returns the child. The page-table copy is charged per
    /// resident page; COW write-protection is charged only for pages not
    /// already protected (all of them on the first fork).
    pub fn fork(&mut self, p: &mut LinuxProcess) -> LinuxProcess {
        self.clock.advance(self.costs.fork_base);
        self.clock.advance(
            self.costs
                .fork_pt_copy_per_page
                .saturating_mul(p.resident_pages),
        );
        self.clock.advance(
            self.costs
                .fork_cow_mark_per_page
                .saturating_mul(p.writable),
        );
        p.cow_protected += p.writable;
        p.writable = 0;

        let pid = self.next_pid;
        self.next_pid += 1;
        LinuxProcess {
            pid,
            resident_pages: p.resident_pages,
            cow_protected: p.cow_protected,
            writable: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use sim_core::SimDuration;

    use super::*;

    fn model() -> (Clock, ProcessModel) {
        let clock = Clock::new();
        (clock.clone(), ProcessModel::new(clock, Rc::new(CostModel::calibrated())))
    }

    fn timed<T>(clock: &Clock, f: impl FnOnce() -> T) -> (T, SimDuration) {
        let t0 = clock.now();
        let r = f();
        (r, clock.now().since(t0))
    }

    #[test]
    fn first_fork_slower_than_second() {
        let (clock, mut m) = model();
        let mut p = m.spawn(256);
        let (_, first) = timed(&clock, || m.fork(&mut p));
        let (_, second) = timed(&clock, || m.fork(&mut p));
        assert!(first > second, "first {first} vs second {second}");
    }

    #[test]
    fn fork_scales_with_resident_memory() {
        let (clock, mut m) = model();
        let mut small = m.spawn(16);
        let mut large = m.spawn(4096);
        // Compare second forks (pure page-table copy).
        m.fork(&mut small);
        m.fork(&mut large);
        let (_, s) = timed(&clock, || m.fork(&mut small));
        let (_, l) = timed(&clock, || m.fork(&mut large));
        let ratio = l.as_ns() as f64 / s.as_ns() as f64;
        assert!(ratio > 50.0, "4096 MiB fork must dwarf 16 MiB fork ({ratio:.0}x)");
    }

    #[test]
    fn second_fork_of_4gib_lands_near_paper_value() {
        // §6.2 reports 65.2 ms for the second fork of the 4 GiB process.
        let (clock, mut m) = model();
        let mut p = m.spawn(4096);
        m.fork(&mut p);
        let (_, second) = timed(&clock, || m.fork(&mut p));
        let ms = second.as_ms_f64();
        assert!((40.0..100.0).contains(&ms), "second fork = {ms:.1} ms");
    }

    #[test]
    fn dirtying_between_forks_costs_remarking() {
        let (clock, mut m) = model();
        let mut p = m.spawn(256);
        m.fork(&mut p);
        let (_, clean) = timed(&clock, || m.fork(&mut p));
        m.touch(&mut p, 10_000);
        let (_, dirty) = timed(&clock, || m.fork(&mut p));
        assert!(dirty > clean, "dirty pages must be re-protected");
    }

    #[test]
    fn touch_charges_cow_faults_only_once() {
        let (clock, mut m) = model();
        let mut p = m.spawn(64);
        m.fork(&mut p);
        let (_, first) = timed(&clock, || m.touch(&mut p, 1000));
        let (_, again) = timed(&clock, || m.touch(&mut p, 1000));
        assert!(first > SimDuration::ZERO);
        assert_eq!(again, SimDuration::ZERO, "already-writable pages are free");
    }

    #[test]
    fn child_inherits_protected_space() {
        let (_, mut m) = model();
        let mut p = m.spawn(64);
        let c = m.fork(&mut p);
        assert_eq!(c.resident_pages(), p.resident_pages());
        assert_eq!(c.unprotected_pages(), 0);
        assert_ne!(c.pid, p.pid);
    }

    #[test]
    fn grow_adds_unprotected_pages() {
        let (_, mut m) = model();
        let mut p = m.spawn(4);
        m.fork(&mut p);
        m.grow(&mut p, 100);
        assert_eq!(p.unprotected_pages(), 100);
    }
}

//! Property tests for shared rings and the 9pfs backend: rings behave as
//! bounded FIFOs (no loss, no duplication, accurate counters) and the fid
//! table keeps per-domain isolation under arbitrary request interleavings.

use proptest::prelude::*;

use devices::memfs::MemFs;
use devices::p9fs::{P9Backend, P9Request, P9Response};
use devices::ring::SharedRing;
use sim_core::{DomId, Pfn};

#[derive(Debug, Clone)]
enum RingOp {
    Push(u32),
    Pop,
}

fn ring_ops() -> impl Strategy<Value = RingOp> {
    prop_oneof![
        2 => any::<u32>().prop_map(RingOp::Push),
        1 => Just(RingOp::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The ring is a bounded FIFO: it agrees with a reference deque capped
    /// at the ring capacity, and its counters add up.
    #[test]
    fn ring_is_a_bounded_fifo(
        cap in 1usize..64,
        ops in proptest::collection::vec(ring_ops(), 1..200),
    ) {
        let mut ring = SharedRing::new(Pfn(1), cap);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let (mut pushed, mut popped, mut dropped) = (0u64, 0u64, 0u64);

        for op in ops {
            match op {
                RingOp::Push(v) => {
                    let ok = ring.push(v);
                    if model.len() < cap {
                        prop_assert!(ok);
                        model.push_back(v);
                        pushed += 1;
                    } else {
                        prop_assert!(!ok, "push must fail on a full ring");
                        dropped += 1;
                    }
                }
                RingOp::Pop => {
                    prop_assert_eq!(ring.pop(), model.pop_front());
                    if ring.consumed() > popped {
                        popped += 1;
                    }
                }
            }
        }
        prop_assert_eq!(ring.len(), model.len());
        prop_assert_eq!(ring.produced(), pushed);
        prop_assert_eq!(ring.consumed(), popped);
        prop_assert_eq!(ring.dropped(), dropped);
        prop_assert_eq!(ring.produced() - ring.consumed(), ring.len() as u64);
    }

    /// Ring cloning policies: `clone_copy` preserves exact content and
    /// order; `clone_fresh` is empty; neither disturbs the parent.
    #[test]
    fn ring_clone_policies(values in proptest::collection::vec(any::<u32>(), 0..32)) {
        let mut parent = SharedRing::new(Pfn(1), 64);
        for v in &values {
            parent.push(*v);
        }
        let mut copy = parent.clone_copy(Pfn(2));
        let fresh = parent.clone_fresh(Pfn(3));
        prop_assert!(fresh.is_empty());
        let drained: Vec<u32> = std::iter::from_fn(|| copy.pop()).collect();
        prop_assert_eq!(drained, values.clone());
        prop_assert_eq!(parent.len(), values.len(), "parent untouched");
    }

    /// 9pfs fids: cloning a parent's table gives the child an equal but
    /// independent table; clunks on one side never affect the other.
    #[test]
    fn p9_fid_isolation(
        fids in proptest::collection::btree_set(0u32..64, 1..16),
        clunk_child in proptest::collection::vec(any::<u32>(), 0..8),
    ) {
        let mut fs = MemFs::new();
        fs.mkdir_p("/export").unwrap();
        let mut be = P9Backend::new("/export");
        let parent = DomId(5);
        let child = DomId(6);
        for fid in &fids {
            prop_assert_eq!(
                be.handle(&mut fs, parent, P9Request::Attach { fid: *fid }),
                P9Response::Ok
            );
        }
        let n = be.clone_fids(parent, child);
        prop_assert_eq!(n, fids.len());
        prop_assert_eq!(be.fid_count(child), fids.len());

        for c in &clunk_child {
            let _ = be.handle(&mut fs, child, P9Request::Clunk { fid: *c });
        }
        prop_assert_eq!(be.fid_count(parent), fids.len(), "parent fids untouched");
        // Forgetting the child wipes only the child.
        be.forget_domain(child);
        prop_assert_eq!(be.fid_count(child), 0);
        prop_assert_eq!(be.fid_count(parent), fids.len());
    }
}

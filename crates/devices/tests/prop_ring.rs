//! Property tests for shared rings and the 9pfs backend: rings behave as
//! bounded FIFOs (no loss, no duplication, accurate counters) and the fid
//! table keeps per-domain isolation under arbitrary request interleavings.

use testkit::prop::{btree_sets, check, just, ranges, u32s, vecs, weighted, Gen};

use devices::memfs::MemFs;
use devices::p9fs::{P9Backend, P9Request, P9Response};
use devices::ring::SharedRing;
use sim_core::{DomId, Pfn};

#[derive(Debug, Clone)]
enum RingOp {
    Push(u32),
    Pop,
}

fn ring_ops() -> impl Gen<Value = RingOp> {
    weighted(vec![
        (2, u32s().map(RingOp::Push).boxed()),
        (1, just(RingOp::Pop).boxed()),
    ])
}

/// The ring is a bounded FIFO: it agrees with a reference deque capped
/// at the ring capacity, and its counters add up.
#[test]
fn ring_is_a_bounded_fifo() {
    check(256, |g| {
        let cap = g.draw(&ranges(1usize..64));
        let ops = g.draw(&vecs(ring_ops(), 1..200));

        let mut ring = SharedRing::new(Pfn(1), cap);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let (mut pushed, mut popped, mut dropped) = (0u64, 0u64, 0u64);

        for op in ops {
            match op {
                RingOp::Push(v) => {
                    let ok = ring.push(v);
                    if model.len() < cap {
                        assert!(ok);
                        model.push_back(v);
                        pushed += 1;
                    } else {
                        assert!(!ok, "push must fail on a full ring");
                        dropped += 1;
                    }
                }
                RingOp::Pop => {
                    assert_eq!(ring.pop(), model.pop_front());
                    if ring.consumed() > popped {
                        popped += 1;
                    }
                }
            }
        }
        assert_eq!(ring.len(), model.len());
        assert_eq!(ring.produced(), pushed);
        assert_eq!(ring.consumed(), popped);
        assert_eq!(ring.dropped(), dropped);
        assert_eq!(ring.produced() - ring.consumed(), ring.len() as u64);
    });
}

/// Ring cloning policies: `clone_copy` preserves exact content and
/// order; `clone_fresh` is empty; neither disturbs the parent.
#[test]
fn ring_clone_policies() {
    check(256, |g| {
        let values = g.draw(&vecs(u32s(), 0..32));

        let mut parent = SharedRing::new(Pfn(1), 64);
        for v in &values {
            parent.push(*v);
        }
        let mut copy = parent.clone_copy(Pfn(2));
        let fresh = parent.clone_fresh(Pfn(3));
        assert!(fresh.is_empty());
        let drained: Vec<u32> = std::iter::from_fn(|| copy.pop()).collect();
        assert_eq!(drained, values.clone());
        assert_eq!(parent.len(), values.len(), "parent untouched");
    });
}

/// 9pfs fids: cloning a parent's table gives the child an equal but
/// independent table; clunks on one side never affect the other.
#[test]
fn p9_fid_isolation() {
    check(256, |g| {
        let fids = g.draw(&btree_sets(ranges(0u32..64), 1..16));
        let clunk_child = g.draw(&vecs(u32s(), 0..8));

        let mut fs = MemFs::new();
        fs.mkdir_p("/export").unwrap();
        let mut be = P9Backend::new("/export");
        let parent = DomId(5);
        let child = DomId(6);
        for fid in &fids {
            assert_eq!(
                be.handle(&mut fs, parent, P9Request::Attach { fid: *fid }),
                P9Response::Ok
            );
        }
        let n = be.clone_fids(parent, child);
        assert_eq!(n, fids.len());
        assert_eq!(be.fid_count(child), fids.len());

        for c in &clunk_child {
            let _ = be.handle(&mut fs, child, P9Request::Clunk { fid: *c });
        }
        assert_eq!(be.fid_count(parent), fids.len(), "parent fids untouched");
        // Forgetting the child wipes only the child.
        be.forget_domain(child);
        assert_eq!(be.fid_count(child), 0);
        assert_eq!(be.fid_count(parent), fids.len());
    });
}

//! The QEMU process model.
//!
//! On Xen, `xl` launches a QEMU process per guest to host userspace device
//! backends — here the 9pfs backend. Nephele's QMP extension lets
//! `xencloned` send cloning requests to an existing process so the **same
//! backend serves the parent and all its clones** instead of one process
//! per clone (§5.2.1: the per-clone-process alternative "stresses the
//! limits of the host system when reaching a high density of clones").

use std::collections::BTreeSet;

use sim_core::DomId;

use crate::p9fs::P9Backend;

/// QMP management requests (the cloning extension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QmpRequest {
    /// Clone the parent's 9pfs state (fid table) for a child.
    CloneP9 {
        /// Parent domain.
        parent: DomId,
        /// Child domain.
        child: DomId,
    },
}

/// A QEMU process hosting the 9pfs backend for one clone family.
#[derive(Debug)]
pub struct QemuProcess {
    /// Process id (cosmetic).
    pub pid: u32,
    /// The family root this process was launched for.
    pub family_root: DomId,
    /// Domains currently served. A set, not a list: one process serves a
    /// whole clone family, so membership tests and removals must not
    /// scale with family size.
    pub serves: BTreeSet<DomId>,
    /// The 9pfs backend state.
    pub p9: P9Backend,
}

impl QemuProcess {
    /// Launches a process serving `root` with a 9pfs export.
    pub fn launch(pid: u32, root: DomId, export_root: &str) -> Self {
        QemuProcess {
            pid,
            family_root: root,
            serves: BTreeSet::from([root]),
            p9: P9Backend::new(export_root),
        }
    }

    /// Whether this process serves `dom`.
    pub fn serves(&self, dom: DomId) -> bool {
        self.serves.contains(&dom)
    }

    /// Handles a QMP request; returns the number of fids cloned.
    pub fn qmp(&mut self, req: QmpRequest) -> usize {
        match req {
            QmpRequest::CloneP9 { parent, child } => {
                debug_assert!(self.serves(parent), "QMP clone for foreign domain");
                self.serves.insert(child);
                self.p9.clone_fids(parent, child)
            }
        }
    }

    /// Drops a destroyed domain's state.
    pub fn forget_domain(&mut self, dom: DomId) {
        self.serves.remove(&dom);
        self.p9.forget_domain(dom);
    }

    /// Whether the process serves no domains and can exit.
    pub fn is_idle(&self) -> bool {
        self.serves.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use crate::memfs::MemFs;
    use crate::p9fs::P9Request;

    use super::*;

    #[test]
    fn one_process_serves_whole_family() {
        let mut fs = MemFs::new();
        fs.mkdir_p("/root").unwrap();
        let mut q = QemuProcess::launch(1000, DomId(5), "/root");
        q.p9.handle(&mut fs, DomId(5), P9Request::Attach { fid: 0 });

        let n = q.qmp(QmpRequest::CloneP9 { parent: DomId(5), child: DomId(6) });
        assert_eq!(n, 1);
        assert!(q.serves(DomId(6)));
        assert_eq!(q.serves.len(), 2, "no new process per clone");

        // A grandchild cloned from the child is served by the same process.
        q.qmp(QmpRequest::CloneP9 { parent: DomId(6), child: DomId(7) });
        assert!(q.serves(DomId(7)));
    }

    #[test]
    fn forget_domain_and_idle() {
        let mut q = QemuProcess::launch(1, DomId(5), "/root");
        q.qmp(QmpRequest::CloneP9 { parent: DomId(5), child: DomId(6) });
        q.forget_domain(DomId(5));
        assert!(!q.is_idle());
        q.forget_domain(DomId(6));
        assert!(q.is_idle());
    }
}

//! The vsock-like host↔guest stream device.
//!
//! A paravirtualized stream transport between the guest and a Dom0
//! service, identified by a host-side port. A stream connection is
//! *stateful in the host endpoint* — sequence numbers, socket buffers —
//! so cloning cannot copy it the way vif rings are copied: the child
//! would alias the parent's connection. Instead the device follows the
//! [`crate::bus::CloneSemantics::Reconnect`] heuristic (the same class
//! as the console): the child's registry state is cloned, but the
//! transport is a *fresh* connection on a deterministically reallocated
//! port, with none of the parent's in-flight data inherited.
//!
//! Port allocation is a pure function of the domain id
//! ([`vsock_port_for`]), keeping clone batches reproducible regardless
//! of dispatch order.

use sim_core::DomId;

/// First host-side port of the deterministic vsock port range.
pub const VSOCK_PORT_BASE: u32 = 52000;

/// The deterministic host-side port of a domain's vsock connection.
pub fn vsock_port_for(dom: DomId) -> u32 {
    VSOCK_PORT_BASE + dom.0
}

/// The Dom0-side state of one domain's vsock connection.
#[derive(Debug, Clone)]
pub struct VsockConn {
    /// Owning domain.
    pub dom: DomId,
    /// Host-side port (deterministic; see [`vsock_port_for`]).
    pub port: u32,
    /// Whether the stream is established.
    pub connected: bool,
    /// Messages sent since this connection was (re)established. A clone
    /// starts empty — buffered parent data is never inherited.
    pub sent: Vec<Vec<u8>>,
}

impl VsockConn {
    /// Establishes a fresh connection for `dom`.
    pub fn connect(dom: DomId) -> Self {
        VsockConn {
            dom,
            port: vsock_port_for(dom),
            connected: true,
            sent: Vec::new(),
        }
    }

    /// The child's connection at clone time: a fresh stream on the
    /// child's own deterministic port; nothing of the parent's buffered
    /// data survives.
    pub fn reconnect_for_child(&self, child: DomId) -> VsockConn {
        debug_assert!(self.connected, "cloning a disconnected vsock");
        VsockConn::connect(child)
    }

    /// Sends one message on the stream; `false` when disconnected.
    pub fn send(&mut self, payload: Vec<u8>) -> bool {
        if !self.connected {
            return false;
        }
        self.sent.push(payload);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_are_deterministic_per_domain() {
        assert_eq!(vsock_port_for(DomId(1)), VSOCK_PORT_BASE + 1);
        assert_eq!(VsockConn::connect(DomId(3)).port, vsock_port_for(DomId(3)));
    }

    #[test]
    fn clone_reconnects_without_inheriting_data() {
        let mut parent = VsockConn::connect(DomId(1));
        parent.send(b"hello".to_vec());
        let child = parent.reconnect_for_child(DomId(2));
        assert!(child.connected);
        assert_eq!(child.port, vsock_port_for(DomId(2)));
        assert_ne!(child.port, parent.port, "port reallocated, not shared");
        assert!(child.sent.is_empty(), "no buffered-data inheritance");
        assert_eq!(parent.sent.len(), 1);
    }

    #[test]
    fn send_requires_connection() {
        let mut c = VsockConn::connect(DomId(1));
        c.connected = false;
        assert!(!c.send(b"x".to_vec()));
    }
}

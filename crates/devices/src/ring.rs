//! Shared I/O rings.
//!
//! Frontends and backends exchange requests/responses over single-page
//! shared rings (grant-mapped in the real system). The ring here is a
//! bounded queue with Xen-style producer/consumer counters; its backing
//! guest page is tracked so the cloning machinery can treat ring pages as
//! private memory.
//!
//! Per §4.2, ring handling differs per device on clone: network rings are
//! **copied** (their contents are tied to in-flight guest state and the RX
//! entries are guest-preallocated buffers carrying allocator metadata),
//! while the console ring is **not** (duplicating the parent's console
//! output would hinder debugging). [`SharedRing::clone_copy`] and
//! [`SharedRing::clone_fresh`] implement the two policies.

use sim_core::Pfn;

/// A bounded single-page shared ring.
#[derive(Debug, Clone)]
pub struct SharedRing<T> {
    /// The guest page backing this ring.
    pfn: Pfn,
    /// Ring capacity in entries (how many fit in one page).
    capacity: usize,
    /// Producer counter (total entries ever pushed).
    prod: u64,
    /// Consumer counter (total entries ever popped).
    cons: u64,
    entries: std::collections::VecDeque<T>,
    /// Entries dropped because the ring was full.
    dropped: u64,
}

impl<T> SharedRing<T> {
    /// Creates an empty ring backed by `pfn` holding up to `capacity`
    /// entries.
    pub fn new(pfn: Pfn, capacity: usize) -> Self {
        SharedRing {
            pfn,
            capacity: capacity.max(1),
            prod: 0,
            cons: 0,
            entries: std::collections::VecDeque::new(),
            dropped: 0,
        }
    }

    /// The backing guest page.
    pub fn pfn(&self) -> Pfn {
        self.pfn
    }

    /// Ring capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the ring is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Pushes an entry; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, entry: T) -> bool {
        if self.is_full() {
            self.dropped += 1;
            return false;
        }
        self.prod += 1;
        self.entries.push_back(entry);
        true
    }

    /// Pops the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        let e = self.entries.pop_front();
        if e.is_some() {
            self.cons += 1;
        }
        e
    }

    /// Total entries ever produced.
    pub fn produced(&self) -> u64 {
        self.prod
    }

    /// Total entries ever consumed.
    pub fn consumed(&self) -> u64 {
        self.cons
    }

    /// Entries dropped due to a full ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<T: Clone> SharedRing<T> {
    /// Clone policy for network-style rings: duplicate in-flight contents
    /// and counters onto the child's private ring page.
    pub fn clone_copy(&self, child_pfn: Pfn) -> SharedRing<T> {
        let mut r = self.clone();
        r.pfn = child_pfn;
        r
    }

    /// Clone policy for console-style rings: a fresh, empty ring so the
    /// child's output does not replay the parent's.
    pub fn clone_fresh(&self, child_pfn: Pfn) -> SharedRing<T> {
        SharedRing::new(child_pfn, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_counters() {
        let mut r = SharedRing::new(Pfn(1), 3);
        assert!(r.push(1));
        assert!(r.push(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.produced(), 2);
        assert_eq!(r.consumed(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn full_ring_drops() {
        let mut r = SharedRing::new(Pfn(1), 2);
        assert!(r.push('a'));
        assert!(r.push('b'));
        assert!(!r.push('c'));
        assert_eq!(r.dropped(), 1);
        assert!(r.is_full());
    }

    #[test]
    fn clone_copy_preserves_contents() {
        let mut r = SharedRing::new(Pfn(1), 4);
        r.push("inflight");
        let mut c = r.clone_copy(Pfn(9));
        assert_eq!(c.pfn(), Pfn(9));
        assert_eq!(c.pop(), Some("inflight"));
        // Parent untouched.
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn clone_fresh_is_empty() {
        let mut r = SharedRing::new(Pfn(1), 4);
        r.push("parent console output");
        let c = r.clone_fresh(Pfn(9));
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.produced(), 0);
    }

    #[test]
    fn zero_capacity_clamped() {
        let r: SharedRing<u8> = SharedRing::new(Pfn(0), 0);
        assert_eq!(r.capacity(), 1);
    }
}

//! The uniform device bus: one registry, per-device clone semantics.
//!
//! The paper's §4.2 describes a *heuristic per device class* for what
//! cloning a device means: consoles get fresh rings, network devices get
//! their rings copied, 9pfs shares the parent's backend process. Earlier
//! revisions hard-coded that knowledge as an `if`-chain inside the
//! `xencloned` second stage; every new device class meant editing the
//! daemon, the device model, the toolstack and the auditor in lockstep.
//!
//! This module turns the heuristics into data. Each live device registers
//! itself on the [`DeviceBus`] as a [`CloneDevice`]: a small identity
//! object declaring *who* owns it ([`CloneDevice::owner`]), *what* it is
//! ([`DeviceId`]: class + device index), *how* it clones
//! ([`CloneSemantics`]) and how to do so ([`CloneDevice::clone_into`]).
//! The second stage is then a single loop:
//!
//! ```text
//! for dev in dm.bus_devices(parent) {      // sorted: console, vifs, 9pfs, ...
//!     if policy.clones(dev.id().class) {
//!         dev.clone_into(&mut ctx)?;
//!     }
//! }
//! ```
//!
//! Devices are registered by the boot paths (`DeviceManager::setup_*_boot`)
//! and by the clone paths (a cloned child registers its own bus entries —
//! except under [`CloneSemantics::DetachOnClone`], where the child
//! deliberately gets nothing). Registration itself is host-side
//! bookkeeping and charges no virtual time, so migrating the legacy
//! devices onto the bus left every figure CSV byte-identical.

use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use netmux::IfaceId;
use sim_core::DomId;
use xenstore::Xenstore;

use crate::udev::UdevBus;
use crate::{DeviceManager, Result};
use hypervisor::Hypervisor;

/// The device classes the platform models, in bus-dispatch order.
///
/// The `Ord` derivation is load-bearing: [`DeviceBus::devices`] returns
/// devices sorted by `(class, devid)`, and `Console < Vif < P9fs`
/// reproduces the exact dispatch order of the legacy hand-enumerated
/// second stage (console first, then vifs by device index, then 9pfs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceClass {
    /// The PV console (xenconsoled-managed).
    Console,
    /// A PV network interface (netfront/netback).
    Vif,
    /// The 9pfs root filesystem (QEMU-hosted backend).
    P9fs,
    /// A PV block device: shared read-only base image + per-clone COW
    /// overlay.
    Vbd,
    /// A vsock-like host↔guest stream device.
    Vsock,
    /// USB/IP passthrough of an exclusively-assigned host device.
    Usb,
}

impl DeviceClass {
    /// Every class, in dispatch order.
    pub const ALL: [DeviceClass; 6] = [
        DeviceClass::Console,
        DeviceClass::Vif,
        DeviceClass::P9fs,
        DeviceClass::Vbd,
        DeviceClass::Vsock,
        DeviceClass::Usb,
    ];

    /// The Xenstore directory name of this class (`device/<name>/...`).
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::Console => "console",
            DeviceClass::Vif => "vif",
            DeviceClass::P9fs => "9pfs",
            DeviceClass::Vbd => "vbd",
            DeviceClass::Vsock => "vsock",
            DeviceClass::Usb => "vusb",
        }
    }

    /// The clone heuristic every device of this class declares (§4.2).
    pub fn semantics(self) -> CloneSemantics {
        match self {
            DeviceClass::Console => CloneSemantics::Reconnect,
            DeviceClass::Vif => CloneSemantics::DeepCopy,
            DeviceClass::P9fs => CloneSemantics::ShareRing,
            DeviceClass::Vbd => CloneSemantics::CowOverlay,
            DeviceClass::Vsock => CloneSemantics::Reconnect,
            DeviceClass::Usb => CloneSemantics::DetachOnClone,
        }
    }
}

/// How a device class reacts to its owner being cloned — the typed form
/// of the paper's per-device heuristics (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloneSemantics {
    /// Only registry state is cloned; the backend builds fresh transport
    /// state for the child (console: a new ring so the parent's output is
    /// not replayed; vsock: a new connection on a reallocated port).
    Reconnect,
    /// The child keeps using the *parent's* backend instance; cloning is
    /// a control-plane request to that backend (9pfs: one QMP fid-table
    /// duplication against the same QEMU process).
    ShareRing,
    /// Transport state is copied verbatim because it embeds guest-owned
    /// allocator metadata (vif rings + preallocated RX buffers).
    DeepCopy,
    /// The child shares the parent's read-only base and gets a thin
    /// private overlay for its writes (block devices).
    CowOverlay,
    /// The device cannot be shared or duplicated (exclusive host
    /// resource); the child comes up without it and the parent keeps it.
    DetachOnClone,
}

impl CloneSemantics {
    /// Short lower-case label (used in docs, traces and audits).
    pub fn name(self) -> &'static str {
        match self {
            CloneSemantics::Reconnect => "reconnect",
            CloneSemantics::ShareRing => "share-ring",
            CloneSemantics::DeepCopy => "deep-copy",
            CloneSemantics::CowOverlay => "cow-overlay",
            CloneSemantics::DetachOnClone => "detach-on-clone",
        }
    }
}

/// A device's identity on the bus: its class plus its per-domain device
/// index. Sorting by `DeviceId` gives the canonical dispatch order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId {
    /// The device class.
    pub class: DeviceClass,
    /// Device index within the owning domain (0 for singleton classes).
    pub devid: u32,
}

impl DeviceId {
    /// Convenience constructor.
    pub fn new(class: DeviceClass, devid: u32) -> Self {
        DeviceId { class, devid }
    }
}

/// Per-class clone policy: which device classes the second stage clones.
///
/// Every class defaults to enabled; §7.1's Redis experiment disables the
/// network class ("the I/O cloning is optimized to clone only the devices
/// that are needed by the clones"). Disabling
/// [`DeviceClass::Usb`] is a no-op in spirit: its
/// [`CloneSemantics::DetachOnClone`] already leaves the child without the
/// device either way.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClonePolicy {
    /// Classes explicitly overridden away from the enabled default.
    overrides: BTreeMap<DeviceClass, bool>,
}

impl ClonePolicy {
    /// The default policy: every class cloned.
    pub fn all() -> Self {
        ClonePolicy::default()
    }

    /// Sets whether `class` is cloned (builder-style).
    pub fn set(mut self, class: DeviceClass, enabled: bool) -> Self {
        if enabled {
            self.overrides.remove(&class);
        } else {
            self.overrides.insert(class, false);
        }
        self
    }

    /// Whether the second stage clones devices of `class`.
    pub fn clones(&self, class: DeviceClass) -> bool {
        *self.overrides.get(&class).unwrap_or(&true)
    }
}

/// Everything a device needs to clone itself for one child: the clone
/// pair, the copy mode, and mutable access to the platform services the
/// legacy clone paths used.
pub struct CloneCtx<'a> {
    /// The domain being cloned.
    pub parent: DomId,
    /// The new child.
    pub child: DomId,
    /// `true` selects the per-entry deep copy instead of `xs_clone` (the
    /// Fig. 4 comparison).
    pub deep_copy: bool,
    /// Hypervisor access (event channels, per-domain pages).
    pub hv: &'a mut Hypervisor,
    /// The Xenstore daemon.
    pub xs: &'a mut Xenstore,
    /// The udev event bus (vif hotplug announcements).
    pub udev: &'a mut UdevBus,
    /// The device model (backend state lives here).
    pub dm: &'a mut DeviceManager,
}

/// What one device's clone step produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CloneOutcome {
    /// Host interfaces created for the child (vifs only); the daemon
    /// enlists them in the clone mux afterwards.
    pub ifaces: Vec<IfaceId>,
    /// `true` when the device was *not* given to the child
    /// ([`CloneSemantics::DetachOnClone`]).
    pub detached: bool,
    /// Device-specific work count (9pfs: fids duplicated; vbd: overlay
    /// entries inherited; vsock: the child's reallocated port).
    pub units: u64,
}

/// A device registered on the bus.
///
/// Implementations are cheap identity objects — the actual backend state
/// stays inside [`DeviceManager`]; `clone_into` dispatches back into it so
/// the bus path and the deprecated direct entry points share one
/// implementation (and therefore identical virtual-time charges and trace
/// spans).
pub trait CloneDevice: fmt::Debug {
    /// The owning domain.
    fn owner(&self) -> DomId;

    /// Class + device index.
    fn id(&self) -> DeviceId;

    /// The declared clone heuristic.
    fn semantics(&self) -> CloneSemantics;

    /// Clones this device for `ctx.child`, registering the child's bus
    /// entry (unless the semantics detach).
    fn clone_into(&self, ctx: &mut CloneCtx<'_>) -> Result<CloneOutcome>;

    /// The Xenstore directories this device owns (frontend and backend).
    /// The auditor requires each to exist and to be claimed by exactly
    /// one registered device.
    fn xenstore_paths(&self) -> Vec<String>;

    /// Device-specific invariant checks; each returned string is one
    /// violation detail. `dm`/`xs` access is read-only and must not
    /// charge virtual time.
    fn audit(&self, dm: &DeviceManager, xs: &Xenstore) -> Vec<String>;
}

/// The per-host registry of live devices, keyed `(owner, DeviceId)`.
#[derive(Debug, Default)]
pub struct DeviceBus {
    devices: BTreeMap<(u32, DeviceId), Rc<dyn CloneDevice>>,
}

impl DeviceBus {
    /// An empty bus.
    pub fn new() -> Self {
        DeviceBus::default()
    }

    /// Registers a device under its `(owner, id)` key, replacing any
    /// previous registration of the same key.
    pub fn register(&mut self, dev: Rc<dyn CloneDevice>) {
        self.devices.insert((dev.owner().0, dev.id()), dev);
    }

    /// Removes one device.
    pub fn unregister(&mut self, owner: DomId, id: DeviceId) {
        self.devices.remove(&(owner.0, id));
    }

    /// Whether `(owner, id)` is registered.
    pub fn contains(&self, owner: DomId, id: DeviceId) -> bool {
        self.devices.contains_key(&(owner.0, id))
    }

    /// The devices a domain owns, sorted by `(class, devid)` — the
    /// canonical second-stage dispatch order.
    pub fn devices(&self, owner: DomId) -> Vec<Rc<dyn CloneDevice>> {
        self.devices
            .range((owner.0, DeviceId::new(DeviceClass::Console, 0))..)
            .take_while(|((d, _), _)| *d == owner.0)
            .map(|(_, dev)| Rc::clone(dev))
            .collect()
    }

    /// Every registered device, sorted by `(owner, class, devid)`.
    pub fn all(&self) -> Vec<Rc<dyn CloneDevice>> {
        self.devices.values().map(Rc::clone).collect()
    }

    /// Total registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the bus is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Drops every registration of a destroyed domain. O(own devices +
    /// log total): the `(owner, id)` key order makes the owner's devices
    /// one contiguous range, so teardown never scans the other domains'
    /// registrations — with 10^5 live domains a full-registry `retain`
    /// here dominated the destroy path.
    pub fn forget_domain(&mut self, owner: DomId) {
        let keys: Vec<(u32, DeviceId)> = self
            .devices
            .range((owner.0, DeviceId::new(DeviceClass::Console, 0))..)
            .take_while(|((d, _), _)| *d == owner.0)
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            self.devices.remove(&k);
        }
    }
}

// ----------------------------------------------------------------------
// The six device identity objects
// ----------------------------------------------------------------------

/// The PV console of one domain.
#[derive(Debug, Clone, Copy)]
pub struct ConsoleDev {
    /// Owning domain.
    pub dom: DomId,
}

impl CloneDevice for ConsoleDev {
    fn owner(&self) -> DomId {
        self.dom
    }
    fn id(&self) -> DeviceId {
        DeviceId::new(DeviceClass::Console, 0)
    }
    fn semantics(&self) -> CloneSemantics {
        DeviceClass::Console.semantics()
    }
    fn clone_into(&self, ctx: &mut CloneCtx<'_>) -> Result<CloneOutcome> {
        debug_assert_eq!(self.dom, ctx.parent, "console clone for foreign parent");
        ctx.dm
            .clone_console_impl(ctx.hv, ctx.xs, self.dom, ctx.child, ctx.deep_copy)?;
        Ok(CloneOutcome::default())
    }
    fn xenstore_paths(&self) -> Vec<String> {
        vec![crate::console_dir(self.dom)]
    }
    fn audit(&self, dm: &DeviceManager, _xs: &Xenstore) -> Vec<String> {
        if dm.console_attached(self.dom) {
            Vec::new()
        } else {
            vec![format!("console of {} registered but not attached", self.dom)]
        }
    }
}

/// One PV network interface of one domain.
#[derive(Debug, Clone, Copy)]
pub struct VifDev {
    /// Owning domain.
    pub dom: DomId,
    /// Device index.
    pub devid: u32,
}

impl CloneDevice for VifDev {
    fn owner(&self) -> DomId {
        self.dom
    }
    fn id(&self) -> DeviceId {
        DeviceId::new(DeviceClass::Vif, self.devid)
    }
    fn semantics(&self) -> CloneSemantics {
        DeviceClass::Vif.semantics()
    }
    fn clone_into(&self, ctx: &mut CloneCtx<'_>) -> Result<CloneOutcome> {
        debug_assert_eq!(self.dom, ctx.parent, "vif clone for foreign parent");
        let iface = ctx.dm.clone_vif_impl(
            ctx.hv,
            ctx.xs,
            ctx.udev,
            self.dom,
            ctx.child,
            self.devid,
            ctx.deep_copy,
        )?;
        Ok(CloneOutcome {
            ifaces: vec![iface],
            ..CloneOutcome::default()
        })
    }
    fn xenstore_paths(&self) -> Vec<String> {
        vec![
            crate::vif_front_dir(self.dom, self.devid),
            crate::vif_back_dir(self.dom, self.devid),
        ]
    }
    fn audit(&self, dm: &DeviceManager, _xs: &Xenstore) -> Vec<String> {
        match dm.vif(self.dom, self.devid) {
            Some(v) if v.is_connected() => Vec::new(),
            Some(_) => vec![format!("vif {}/{} registered but not connected", self.dom, self.devid)],
            None => vec![format!("vif {}/{} registered on bus but absent from the device model", self.dom, self.devid)],
        }
    }
}

/// The 9pfs root filesystem of one domain.
#[derive(Debug, Clone, Copy)]
pub struct P9fsDev {
    /// Owning domain.
    pub dom: DomId,
}

impl CloneDevice for P9fsDev {
    fn owner(&self) -> DomId {
        self.dom
    }
    fn id(&self) -> DeviceId {
        DeviceId::new(DeviceClass::P9fs, 0)
    }
    fn semantics(&self) -> CloneSemantics {
        DeviceClass::P9fs.semantics()
    }
    fn clone_into(&self, ctx: &mut CloneCtx<'_>) -> Result<CloneOutcome> {
        debug_assert_eq!(self.dom, ctx.parent, "9pfs clone for foreign parent");
        let fids = ctx
            .dm
            .clone_9pfs_impl(ctx.xs, self.dom, ctx.child, ctx.deep_copy)?;
        Ok(CloneOutcome {
            units: fids as u64,
            ..CloneOutcome::default()
        })
    }
    fn xenstore_paths(&self) -> Vec<String> {
        vec![crate::p9_front_dir(self.dom), crate::p9_back_dir(self.dom)]
    }
    fn audit(&self, dm: &DeviceManager, _xs: &Xenstore) -> Vec<String> {
        if dm.p9_served(self.dom) {
            Vec::new()
        } else {
            vec![format!("9pfs of {} registered but no backend process serves it", self.dom)]
        }
    }
}

/// One COW block device of one domain.
#[derive(Debug, Clone, Copy)]
pub struct BlockDev {
    /// Owning domain.
    pub dom: DomId,
    /// Device index.
    pub devid: u32,
}

impl CloneDevice for BlockDev {
    fn owner(&self) -> DomId {
        self.dom
    }
    fn id(&self) -> DeviceId {
        DeviceId::new(DeviceClass::Vbd, self.devid)
    }
    fn semantics(&self) -> CloneSemantics {
        DeviceClass::Vbd.semantics()
    }
    fn clone_into(&self, ctx: &mut CloneCtx<'_>) -> Result<CloneOutcome> {
        debug_assert_eq!(self.dom, ctx.parent, "vbd clone for foreign parent");
        let inherited = ctx.dm.clone_vbd_impl(
            ctx.xs,
            self.dom,
            ctx.child,
            self.devid,
            ctx.deep_copy,
        )?;
        Ok(CloneOutcome {
            units: inherited,
            ..CloneOutcome::default()
        })
    }
    fn xenstore_paths(&self) -> Vec<String> {
        vec![
            crate::vbd_front_dir(self.dom, self.devid),
            crate::vbd_back_dir(self.dom, self.devid),
        ]
    }
    fn audit(&self, dm: &DeviceManager, _xs: &Xenstore) -> Vec<String> {
        match dm.vbd(self.dom, self.devid) {
            Some(v) if v.overlay_is_canonical() => Vec::new(),
            Some(_) => vec![format!(
                "vbd {}/{} overlay is not canonical (entry equal to the base image)",
                self.dom, self.devid
            )],
            None => vec![format!(
                "vbd {}/{} registered on bus but absent from the device model",
                self.dom, self.devid
            )],
        }
    }
}

/// The vsock-like stream device of one domain.
#[derive(Debug, Clone, Copy)]
pub struct VsockDev {
    /// Owning domain.
    pub dom: DomId,
}

impl CloneDevice for VsockDev {
    fn owner(&self) -> DomId {
        self.dom
    }
    fn id(&self) -> DeviceId {
        DeviceId::new(DeviceClass::Vsock, 0)
    }
    fn semantics(&self) -> CloneSemantics {
        DeviceClass::Vsock.semantics()
    }
    fn clone_into(&self, ctx: &mut CloneCtx<'_>) -> Result<CloneOutcome> {
        debug_assert_eq!(self.dom, ctx.parent, "vsock clone for foreign parent");
        let port = ctx
            .dm
            .clone_vsock_impl(ctx.hv, ctx.xs, self.dom, ctx.child, ctx.deep_copy)?;
        Ok(CloneOutcome {
            units: port as u64,
            ..CloneOutcome::default()
        })
    }
    fn xenstore_paths(&self) -> Vec<String> {
        vec![
            crate::vsock_front_dir(self.dom),
            crate::vsock_back_dir(self.dom),
        ]
    }
    fn audit(&self, dm: &DeviceManager, _xs: &Xenstore) -> Vec<String> {
        match dm.vsock(self.dom) {
            Some(c) if c.connected && c.port == crate::vsock::vsock_port_for(self.dom) => Vec::new(),
            Some(c) if !c.connected => {
                vec![format!("vsock of {} registered but disconnected", self.dom)]
            }
            Some(c) => vec![format!(
                "vsock of {} on non-deterministic port {} (expected {})",
                self.dom,
                c.port,
                crate::vsock::vsock_port_for(self.dom)
            )],
            None => vec![format!(
                "vsock of {} registered on bus but absent from the device model",
                self.dom
            )],
        }
    }
}

/// One exclusively-assigned USB/IP passthrough device.
#[derive(Debug, Clone)]
pub struct UsbDev {
    /// Owning domain.
    pub dom: DomId,
    /// Device index.
    pub devid: u32,
}

impl CloneDevice for UsbDev {
    fn owner(&self) -> DomId {
        self.dom
    }
    fn id(&self) -> DeviceId {
        DeviceId::new(DeviceClass::Usb, self.devid)
    }
    fn semantics(&self) -> CloneSemantics {
        DeviceClass::Usb.semantics()
    }
    fn clone_into(&self, ctx: &mut CloneCtx<'_>) -> Result<CloneOutcome> {
        debug_assert_eq!(self.dom, ctx.parent, "usb clone for foreign parent");
        ctx.dm
            .clone_usb_detach_impl(self.dom, ctx.child, self.devid)?;
        Ok(CloneOutcome {
            detached: true,
            ..CloneOutcome::default()
        })
    }
    fn xenstore_paths(&self) -> Vec<String> {
        vec![
            crate::usb_front_dir(self.dom, self.devid),
            crate::usb_back_dir(self.dom, self.devid),
        ]
    }
    fn audit(&self, dm: &DeviceManager, _xs: &Xenstore) -> Vec<String> {
        let Some(u) = dm.usb(self.dom, self.devid) else {
            return vec![format!(
                "usb {}/{} registered on bus but absent from the device model",
                self.dom, self.devid
            )];
        };
        let mut v = Vec::new();
        if !u.attached {
            v.push(format!("usb {}/{} registered but detached", self.dom, self.devid));
        }
        if !dm.usb_busid_exclusive(&u.busid, self.dom, self.devid) {
            v.push(format!(
                "usb busid {} held by more than one domain (exclusive assignment violated)",
                u.busid
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_class_order_matches_legacy_dispatch() {
        assert!(DeviceClass::Console < DeviceClass::Vif);
        assert!(DeviceClass::Vif < DeviceClass::P9fs);
        assert!(DeviceClass::P9fs < DeviceClass::Vbd);
        assert_eq!(DeviceClass::ALL.len(), 6);
    }

    #[test]
    fn policy_defaults_to_all_enabled() {
        let p = ClonePolicy::all();
        for c in DeviceClass::ALL {
            assert!(p.clones(c));
        }
        let p = p.set(DeviceClass::Vif, false);
        assert!(!p.clones(DeviceClass::Vif));
        assert!(p.clones(DeviceClass::Console));
        let p = p.set(DeviceClass::Vif, true);
        assert_eq!(p, ClonePolicy::all(), "re-enabling restores the default");
    }

    #[test]
    fn bus_sorts_and_scopes_by_owner() {
        let mut bus = DeviceBus::new();
        bus.register(Rc::new(P9fsDev { dom: DomId(1) }));
        bus.register(Rc::new(VifDev { dom: DomId(1), devid: 1 }));
        bus.register(Rc::new(VifDev { dom: DomId(1), devid: 0 }));
        bus.register(Rc::new(ConsoleDev { dom: DomId(1) }));
        bus.register(Rc::new(ConsoleDev { dom: DomId(2) }));
        let ids: Vec<DeviceId> = bus.devices(DomId(1)).iter().map(|d| d.id()).collect();
        assert_eq!(
            ids,
            vec![
                DeviceId::new(DeviceClass::Console, 0),
                DeviceId::new(DeviceClass::Vif, 0),
                DeviceId::new(DeviceClass::Vif, 1),
                DeviceId::new(DeviceClass::P9fs, 0),
            ]
        );
        assert_eq!(bus.devices(DomId(2)).len(), 1);
        bus.forget_domain(DomId(1));
        assert!(bus.devices(DomId(1)).is_empty());
        assert_eq!(bus.len(), 1);
    }

    #[test]
    fn semantics_table_matches_the_paper() {
        assert_eq!(DeviceClass::Console.semantics(), CloneSemantics::Reconnect);
        assert_eq!(DeviceClass::Vif.semantics(), CloneSemantics::DeepCopy);
        assert_eq!(DeviceClass::P9fs.semantics(), CloneSemantics::ShareRing);
        assert_eq!(DeviceClass::Vbd.semantics(), CloneSemantics::CowOverlay);
        assert_eq!(DeviceClass::Vsock.semantics(), CloneSemantics::Reconnect);
        assert_eq!(DeviceClass::Usb.semantics(), CloneSemantics::DetachOnClone);
    }
}

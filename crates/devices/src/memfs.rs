//! An in-memory filesystem modelling the Dom0 ramdisk.
//!
//! The paper runs the entire Dom0 root filesystem from a ramdisk "to reduce
//! the overheads related to the storage medium" (§6) and shares one root
//! filesystem between guests over 9pfs. [`MemFs`] is that ramdisk: a plain
//! tree of directories and byte files that the 9pfs backend operates on.

use std::collections::BTreeMap;

/// Errors returned by filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path component missing.
    NotFound(String),
    /// Operation expected a file but found a directory (or vice versa).
    WrongType(String),
    /// Entry already exists.
    Exists(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "not found: {p}"),
            FsError::WrongType(p) => write!(f, "wrong type: {p}"),
            FsError::Exists(p) => write!(f, "already exists: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, FsError>;

#[derive(Debug, Clone)]
enum Entry {
    File(Vec<u8>),
    Dir(BTreeMap<String, Entry>),
}

/// An in-memory filesystem tree.
#[derive(Debug, Clone)]
pub struct MemFs {
    root: Entry,
}

fn components(path: &str) -> Vec<&str> {
    path.split('/').filter(|c| !c.is_empty()).collect()
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemFs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        MemFs {
            root: Entry::Dir(BTreeMap::new()),
        }
    }

    fn lookup(&self, path: &str) -> Result<&Entry> {
        let mut cur = &self.root;
        for c in components(path) {
            match cur {
                Entry::Dir(children) => {
                    cur = children.get(c).ok_or_else(|| FsError::NotFound(path.into()))?;
                }
                Entry::File(_) => return Err(FsError::WrongType(path.into())),
            }
        }
        Ok(cur)
    }

    fn lookup_dir_mut(&mut self, comps: &[&str], path: &str) -> Result<&mut BTreeMap<String, Entry>> {
        let mut cur = &mut self.root;
        for c in comps {
            match cur {
                Entry::Dir(children) => {
                    cur = children
                        .get_mut(*c)
                        .ok_or_else(|| FsError::NotFound(path.into()))?;
                }
                Entry::File(_) => return Err(FsError::WrongType(path.into())),
            }
        }
        match cur {
            Entry::Dir(children) => Ok(children),
            Entry::File(_) => Err(FsError::WrongType(path.into())),
        }
    }

    /// Creates a directory, including missing parents.
    pub fn mkdir_p(&mut self, path: &str) -> Result<()> {
        let mut cur = &mut self.root;
        for c in components(path) {
            match cur {
                Entry::Dir(children) => {
                    cur = children
                        .entry(c.to_string())
                        .or_insert_with(|| Entry::Dir(BTreeMap::new()));
                }
                Entry::File(_) => return Err(FsError::WrongType(path.into())),
            }
        }
        match cur {
            Entry::Dir(_) => Ok(()),
            Entry::File(_) => Err(FsError::WrongType(path.into())),
        }
    }

    /// Creates an empty file; parents must exist. Fails if it exists.
    pub fn create(&mut self, path: &str) -> Result<()> {
        let comps = components(path);
        let (name, dirs) = comps.split_last().ok_or_else(|| FsError::WrongType(path.into()))?;
        let dir = self.lookup_dir_mut(dirs, path)?;
        if dir.contains_key(*name) {
            return Err(FsError::Exists(path.into()));
        }
        dir.insert(name.to_string(), Entry::File(Vec::new()));
        Ok(())
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.lookup(path).is_ok()
    }

    /// Whether a path is a directory.
    pub fn is_dir(&self, path: &str) -> bool {
        matches!(self.lookup(path), Ok(Entry::Dir(_)))
    }

    /// Reads `len` bytes from a file starting at `offset` (short reads at
    /// EOF).
    pub fn read(&self, path: &str, offset: usize, len: usize) -> Result<Vec<u8>> {
        match self.lookup(path)? {
            Entry::File(data) => {
                let start = offset.min(data.len());
                let end = (offset + len).min(data.len());
                Ok(data[start..end].to_vec())
            }
            Entry::Dir(_) => Err(FsError::WrongType(path.into())),
        }
    }

    /// Writes bytes at `offset`, extending the file as needed. Returns the
    /// bytes written.
    pub fn write(&mut self, path: &str, offset: usize, data: &[u8]) -> Result<usize> {
        let comps = components(path);
        let (name, dirs) = comps.split_last().ok_or_else(|| FsError::WrongType(path.into()))?;
        let dir = self.lookup_dir_mut(dirs, path)?;
        match dir.get_mut(*name) {
            Some(Entry::File(buf)) => {
                if buf.len() < offset + data.len() {
                    buf.resize(offset + data.len(), 0);
                }
                buf[offset..offset + data.len()].copy_from_slice(data);
                Ok(data.len())
            }
            Some(Entry::Dir(_)) => Err(FsError::WrongType(path.into())),
            None => Err(FsError::NotFound(path.into())),
        }
    }

    /// Truncates a file to zero length.
    pub fn truncate(&mut self, path: &str) -> Result<()> {
        let comps = components(path);
        let (name, dirs) = comps.split_last().ok_or_else(|| FsError::WrongType(path.into()))?;
        let dir = self.lookup_dir_mut(dirs, path)?;
        match dir.get_mut(*name) {
            Some(Entry::File(buf)) => {
                buf.clear();
                Ok(())
            }
            Some(Entry::Dir(_)) => Err(FsError::WrongType(path.into())),
            None => Err(FsError::NotFound(path.into())),
        }
    }

    /// Size of a file in bytes.
    pub fn size(&self, path: &str) -> Result<usize> {
        match self.lookup(path)? {
            Entry::File(data) => Ok(data.len()),
            Entry::Dir(_) => Err(FsError::WrongType(path.into())),
        }
    }

    /// Lists directory entry names.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>> {
        match self.lookup(path)? {
            Entry::Dir(children) => Ok(children.keys().cloned().collect()),
            Entry::File(_) => Err(FsError::WrongType(path.into())),
        }
    }

    /// Removes a file or (recursively) a directory.
    pub fn remove(&mut self, path: &str) -> Result<()> {
        let comps = components(path);
        let (name, dirs) = comps.split_last().ok_or_else(|| FsError::WrongType(path.into()))?;
        let dir = self.lookup_dir_mut(dirs, path)?;
        dir.remove(*name)
            .map(|_| ())
            .ok_or_else(|| FsError::NotFound(path.into()))
    }

    /// Total bytes stored in files (Dom0 memory accounting).
    pub fn total_bytes(&self) -> usize {
        fn walk(e: &Entry) -> usize {
            match e {
                Entry::File(d) => d.len(),
                Entry::Dir(children) => children.values().map(walk).sum(),
            }
        }
        walk(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read() {
        let mut fs = MemFs::new();
        fs.mkdir_p("/srv/redis").unwrap();
        fs.create("/srv/redis/dump.rdb").unwrap();
        fs.write("/srv/redis/dump.rdb", 0, b"hello").unwrap();
        assert_eq!(fs.read("/srv/redis/dump.rdb", 0, 5).unwrap(), b"hello");
        assert_eq!(fs.size("/srv/redis/dump.rdb").unwrap(), 5);
    }

    #[test]
    fn offset_write_extends() {
        let mut fs = MemFs::new();
        fs.create("/f").unwrap();
        fs.write("/f", 3, b"xy").unwrap();
        assert_eq!(fs.read("/f", 0, 10).unwrap(), vec![0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn short_read_at_eof() {
        let mut fs = MemFs::new();
        fs.create("/f").unwrap();
        fs.write("/f", 0, b"abc").unwrap();
        assert_eq!(fs.read("/f", 2, 10).unwrap(), b"c");
        assert!(fs.read("/f", 9, 1).unwrap().is_empty());
    }

    #[test]
    fn create_twice_fails() {
        let mut fs = MemFs::new();
        fs.create("/f").unwrap();
        assert_eq!(fs.create("/f"), Err(FsError::Exists("/f".into())));
    }

    #[test]
    fn readdir_and_remove() {
        let mut fs = MemFs::new();
        fs.mkdir_p("/d").unwrap();
        fs.create("/d/a").unwrap();
        fs.create("/d/b").unwrap();
        assert_eq!(fs.readdir("/d").unwrap(), vec!["a", "b"]);
        fs.remove("/d/a").unwrap();
        assert_eq!(fs.readdir("/d").unwrap(), vec!["b"]);
        fs.remove("/d").unwrap();
        assert!(!fs.exists("/d"));
    }

    #[test]
    fn type_errors() {
        let mut fs = MemFs::new();
        fs.create("/f").unwrap();
        assert!(matches!(fs.readdir("/f"), Err(FsError::WrongType(_))));
        assert!(matches!(fs.read("/", 0, 1), Err(FsError::WrongType(_))));
        assert!(matches!(fs.mkdir_p("/f/sub"), Err(FsError::WrongType(_))));
    }

    #[test]
    fn truncate_and_totals() {
        let mut fs = MemFs::new();
        fs.create("/f").unwrap();
        fs.write("/f", 0, &[1; 100]).unwrap();
        assert_eq!(fs.total_bytes(), 100);
        fs.truncate("/f").unwrap();
        assert_eq!(fs.total_bytes(), 0);
    }
}

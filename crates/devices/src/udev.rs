//! The udev event bus.
//!
//! When a backend driver creates a kernel object (e.g. netback creating a
//! vif), udev events are generated and delivered to userspace, where
//! `xencloned` (or `xl` at boot) completes the setup — adding the interface
//! to a bridge, bond or OVS group (§4.2, step 2.3).

use sim_core::DomId;

/// A userspace-visible device event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdevEvent {
    /// A vif was created for (domain, device id).
    VifCreated {
        /// Owning guest.
        dom: DomId,
        /// Device index within the guest.
        devid: u32,
    },
    /// A vif was removed.
    VifRemoved {
        /// Owning guest.
        dom: DomId,
        /// Device index within the guest.
        devid: u32,
    },
}

/// A FIFO bus of udev events awaiting userspace handling.
#[derive(Debug, Default)]
pub struct UdevBus {
    queue: std::collections::VecDeque<UdevEvent>,
}

impl UdevBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        UdevBus::default()
    }

    /// Emits an event (kernel side).
    pub fn emit(&mut self, e: UdevEvent) {
        self.queue.push_back(e);
    }

    /// Takes the next pending event (userspace side).
    pub fn next(&mut self) -> Option<UdevEvent> {
        self.queue.pop_front()
    }

    /// Drains all pending events.
    pub fn drain(&mut self) -> Vec<UdevEvent> {
        self.queue.drain(..).collect()
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the bus is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_delivery() {
        let mut bus = UdevBus::new();
        bus.emit(UdevEvent::VifCreated { dom: DomId(1), devid: 0 });
        bus.emit(UdevEvent::VifRemoved { dom: DomId(1), devid: 0 });
        assert_eq!(bus.len(), 2);
        assert!(matches!(bus.next(), Some(UdevEvent::VifCreated { .. })));
        assert!(matches!(bus.next(), Some(UdevEvent::VifRemoved { .. })));
        assert!(bus.next().is_none());
        assert!(bus.is_empty());
    }

    #[test]
    fn drain_takes_everything() {
        let mut bus = UdevBus::new();
        for i in 0..5 {
            bus.emit(UdevEvent::VifCreated { dom: DomId(i), devid: 0 });
        }
        assert_eq!(bus.drain().len(), 5);
        assert!(bus.is_empty());
    }
}

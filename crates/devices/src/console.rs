//! The paravirtualized console device.
//!
//! Guests write bytes into a single-page console ring; a Dom0 process
//! (xenconsoled/QEMU) drains it into a per-domain log. Cloning a console
//! involves *only* creating the child's Xenstore entries — the managing
//! process is notified through its watch and creates the state "without
//! needing any changes in its code base" (§5.2.1), and the ring is not
//! copied so the child's output does not replay the parent's (§4.2).

use std::collections::BTreeMap;

use sim_core::{DomId, Pfn};

use crate::ring::SharedRing;

/// Dom0-side console state for all domains.
#[derive(Debug, Default)]
pub struct ConsoleBackend {
    rings: BTreeMap<u32, SharedRing<u8>>,
    outputs: BTreeMap<u32, Vec<u8>>,
}

/// Ring capacity in bytes (one page of output buffer).
const CONSOLE_RING_BYTES: usize = 4096;

impl ConsoleBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        ConsoleBackend::default()
    }

    /// Creates console state for a domain whose ring lives at `ring_pfn`.
    pub fn attach(&mut self, dom: DomId, ring_pfn: Pfn) {
        self.rings
            .insert(dom.0, SharedRing::new(ring_pfn, CONSOLE_RING_BYTES));
        self.outputs.entry(dom.0).or_default();
    }

    /// Creates console state for a clone: a fresh ring (never a copy of the
    /// parent's) and an empty output log.
    pub fn attach_clone(&mut self, parent: DomId, child: DomId, ring_pfn: Pfn) {
        debug_assert!(self.rings.contains_key(&parent.0), "parent console missing");
        self.attach(child, ring_pfn);
    }

    /// Whether a domain has console state.
    pub fn is_attached(&self, dom: DomId) -> bool {
        self.rings.contains_key(&dom.0)
    }

    /// Guest writes bytes into its console ring.
    pub fn guest_write(&mut self, dom: DomId, bytes: &[u8]) {
        if let Some(ring) = self.rings.get_mut(&dom.0) {
            for b in bytes {
                ring.push(*b);
            }
        }
    }

    /// Dom0 drains the ring into the per-domain log (normally triggered by
    /// the console event channel).
    pub fn drain(&mut self, dom: DomId) {
        let Some(ring) = self.rings.get_mut(&dom.0) else {
            return;
        };
        let out = self.outputs.entry(dom.0).or_default();
        while let Some(b) = ring.pop() {
            out.push(b);
        }
    }

    /// The accumulated output of a domain.
    pub fn output(&self, dom: DomId) -> &[u8] {
        self.outputs.get(&dom.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Drops state for a destroyed domain.
    pub fn detach(&mut self, dom: DomId) {
        self.rings.remove(&dom.0);
        self.outputs.remove(&dom.0);
    }

    /// Number of attached consoles.
    pub fn attached_count(&self) -> usize {
        self.rings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_drain_output() {
        let mut c = ConsoleBackend::new();
        c.attach(DomId(1), Pfn(100));
        c.guest_write(DomId(1), b"hello ");
        c.guest_write(DomId(1), b"world");
        c.drain(DomId(1));
        assert_eq!(c.output(DomId(1)), b"hello world");
    }

    #[test]
    fn clone_console_does_not_replay_parent_output() {
        let mut c = ConsoleBackend::new();
        c.attach(DomId(1), Pfn(100));
        c.guest_write(DomId(1), b"parent boot log");
        c.attach_clone(DomId(1), DomId(2), Pfn(200));
        c.drain(DomId(2));
        assert!(c.output(DomId(2)).is_empty(), "child console starts clean");
        c.drain(DomId(1));
        assert_eq!(c.output(DomId(1)), b"parent boot log");
    }

    #[test]
    fn detach_clears_state() {
        let mut c = ConsoleBackend::new();
        c.attach(DomId(1), Pfn(100));
        c.detach(DomId(1));
        assert!(!c.is_attached(DomId(1)));
        assert_eq!(c.attached_count(), 0);
        // Writing to a detached console is a no-op rather than a panic.
        c.guest_write(DomId(1), b"x");
        assert!(c.output(DomId(1)).is_empty());
    }
}

//! Split-driver paravirtualized devices and their Dom0 management.
//!
//! This crate implements both halves of Xen's split-device model for the
//! device types Nephele supports — console, network, 9pfs, COW block
//! devices ([`block`]), vsock-like streams ([`vsock`]) and USB/IP
//! passthrough ([`usb`]) — plus the plumbing around them: Xenbus
//! negotiation ([`xenbus`]), shared rings ([`ring`]), the udev event bus
//! ([`udev`]), the QEMU process model ([`qemu`]) and the Dom0 ramdisk
//! ([`memfs`]).
//!
//! [`DeviceManager`] is the Dom0-side registry gluing it together. It
//! offers two setup paths per device, mirroring the paper:
//!
//! * the **boot path** walks the full frontend/backend Xenbus negotiation
//!   and writes every Xenstore entry individually;
//! * the **clone path** copies the Xenstore state with `xs_clone` (or a
//!   deep per-entry copy, for the Fig. 4 comparison), creates the backend
//!   state directly in the Connected state, and reuses backend processes
//!   across the clone family.
//!
//! Each live device also registers itself on the [`bus::DeviceBus`] as a
//! [`bus::CloneDevice`], declaring its clone heuristic as a typed
//! [`bus::CloneSemantics`] value; the `xencloned` second stage dispatches
//! through the bus rather than enumerating device classes by hand.

pub mod block;
pub mod bus;
pub mod console;
pub mod memfs;
pub mod net;
pub mod p9fs;
pub mod qemu;
pub mod ring;
pub mod udev;
pub mod usb;
pub mod vsock;
pub mod xenbus;

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::net::Ipv4Addr;
use std::rc::Rc;

use hypervisor::domain::PrivatePolicy;
use hypervisor::error::HvError;
use hypervisor::Hypervisor;
use netmux::{IfaceId, MacAddr, Packet};
use sim_core::{Clock, CostModel, DomId, Pfn, TraceSink};
use xenstore::{XsCloneOp, XsError, Xenstore};

use crate::block::{Sector, Vbd, VbdSharing, SECTOR_SIZE};
use crate::bus::{
    BlockDev, CloneDevice, ConsoleDev, DeviceBus, P9fsDev, UsbDev, VifDev, VsockDev,
};
use crate::console::ConsoleBackend;
use crate::memfs::MemFs;
use crate::net::{Vif, RX_RING_SLOTS, TX_RING_SLOTS};
use crate::p9fs::{P9Request, P9Response};
use crate::qemu::{QemuProcess, QmpRequest};
use crate::ring::SharedRing;
use crate::udev::{UdevBus, UdevEvent};
use crate::usb::UsbPassthrough;
use crate::vsock::VsockConn;
use crate::xenbus::{XenbusState, NEGOTIATION_STEPS};

/// Errors from device management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevError {
    /// Underlying Xenstore failure.
    Xs(XsError),
    /// Underlying hypervisor failure.
    Hv(HvError),
    /// The referenced device does not exist.
    NoSuchDevice(DomId, u32),
    /// No backend process serves this domain.
    NoBackend(DomId),
    /// The physical USB device is already passed through to a domain.
    UsbBusy(String),
}

impl fmt::Display for DevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevError::Xs(e) => write!(f, "xenstore: {e}"),
            DevError::Hv(e) => write!(f, "hypervisor: {e}"),
            DevError::NoSuchDevice(d, i) => write!(f, "no device {i} on {d}"),
            DevError::NoBackend(d) => write!(f, "no backend process for {d}"),
            DevError::UsbBusy(busid) => write!(f, "usb device {busid} already assigned"),
        }
    }
}

impl std::error::Error for DevError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DevError::Xs(e) => Some(e),
            DevError::Hv(e) => Some(e),
            DevError::NoSuchDevice(..) | DevError::NoBackend(_) | DevError::UsbBusy(_) => None,
        }
    }
}

impl From<XsError> for DevError {
    fn from(e: XsError) -> Self {
        DevError::Xs(e)
    }
}

impl From<HvError> for DevError {
    fn from(e: HvError) -> Self {
        DevError::Hv(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DevError>;

/// Frontend-supplied parameters for creating a vif at boot.
#[derive(Debug, Clone)]
pub struct VifConfig {
    /// Device index within the guest.
    pub devid: u32,
    /// The guest's IP address.
    pub ip: Ipv4Addr,
    /// Guest page backing the TX ring.
    pub tx_pfn: Pfn,
    /// Guest page backing the RX ring.
    pub rx_pfn: Pfn,
    /// Guest pages preallocated for RX payloads (one per RX slot).
    pub rx_buffers: Vec<Pfn>,
}

pub(crate) fn vif_front_dir(dom: DomId, devid: u32) -> String {
    format!("/local/domain/{}/device/vif/{devid}", dom.0)
}

pub(crate) fn vif_back_dir(dom: DomId, devid: u32) -> String {
    format!("/local/domain/0/backend/vif/{}/{devid}", dom.0)
}

pub(crate) fn console_dir(dom: DomId) -> String {
    format!("/local/domain/{}/console", dom.0)
}

pub(crate) fn p9_front_dir(dom: DomId) -> String {
    format!("/local/domain/{}/device/9pfs/0", dom.0)
}

pub(crate) fn p9_back_dir(dom: DomId) -> String {
    format!("/local/domain/0/backend/9pfs/{}/0", dom.0)
}

pub(crate) fn vbd_front_dir(dom: DomId, devid: u32) -> String {
    format!("/local/domain/{}/device/vbd/{devid}", dom.0)
}

pub(crate) fn vbd_back_dir(dom: DomId, devid: u32) -> String {
    format!("/local/domain/0/backend/vbd/{}/{devid}", dom.0)
}

pub(crate) fn vsock_front_dir(dom: DomId) -> String {
    format!("/local/domain/{}/device/vsock/0", dom.0)
}

pub(crate) fn vsock_back_dir(dom: DomId) -> String {
    format!("/local/domain/0/backend/vsock/{}/0", dom.0)
}

pub(crate) fn usb_front_dir(dom: DomId, devid: u32) -> String {
    format!("/local/domain/{}/device/vusb/{devid}", dom.0)
}

pub(crate) fn usb_back_dir(dom: DomId, devid: u32) -> String {
    format!("/local/domain/0/backend/vusb/{}/{devid}", dom.0)
}

/// The Dom0 device registry and backend host.
#[derive(Debug)]
pub struct DeviceManager {
    clock: Clock,
    costs: Rc<CostModel>,
    /// The Dom0 ramdisk filesystem (9pfs exports live here).
    pub fs: MemFs,
    /// Keyed `(owner, devid)` in a BTreeMap so one domain's devices form
    /// a contiguous range: teardown removes exactly that range instead of
    /// retaining over every live domain's devices.
    vifs: BTreeMap<(u32, u32), Vif>,
    iface_map: HashMap<IfaceId, (DomId, u32)>,
    next_iface: u32,
    console: ConsoleBackend,
    /// QEMU processes by pid; resolved through [`Self::served_by`], never
    /// by scanning.
    qemus: BTreeMap<u32, QemuProcess>,
    /// Served domain → pid of the QEMU process hosting its 9pfs backend.
    /// One process serves a whole clone family (§5.2.1), so without this
    /// index every 9p RPC and every destroy searched all processes and
    /// their (family-sized) serve lists.
    served_by: HashMap<u32, u32>,
    next_pid: u32,
    vbds: BTreeMap<(u32, u32), Vbd>,
    vsocks: HashMap<u32, VsockConn>,
    usbs: BTreeMap<(u32, u32), UsbPassthrough>,
    bus: DeviceBus,
    trace: TraceSink,
}

impl DeviceManager {
    /// Creates an empty manager.
    pub fn new(clock: Clock, costs: Rc<CostModel>) -> Self {
        DeviceManager {
            clock,
            costs,
            fs: MemFs::new(),
            vifs: BTreeMap::new(),
            iface_map: HashMap::new(),
            next_iface: 1,
            console: ConsoleBackend::new(),
            qemus: BTreeMap::new(),
            served_by: HashMap::new(),
            next_pid: 1000,
            vbds: BTreeMap::new(),
            vsocks: HashMap::new(),
            usbs: BTreeMap::new(),
            bus: DeviceBus::new(),
            trace: TraceSink::default(),
        }
    }

    /// The device bus: every live device's identity and clone semantics.
    pub fn bus(&self) -> &DeviceBus {
        &self.bus
    }

    /// The devices `owner` holds, sorted by `(class, devid)` — the
    /// canonical second-stage dispatch order (console, vifs, 9pfs, ...).
    pub fn bus_devices(&self, owner: DomId) -> Vec<std::rc::Rc<dyn CloneDevice>> {
        self.bus.devices(owner)
    }

    /// Attaches a trace sink (disabled by default); device-clone spans and
    /// ring counters are recorded into it.
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The attached trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    fn alloc_iface(&mut self) -> IfaceId {
        let id = IfaceId(self.next_iface);
        self.next_iface += 1;
        id
    }

    // ------------------------------------------------------------------
    // Console
    // ------------------------------------------------------------------

    /// Boot-path console setup: Xenstore entries plus backend attach.
    pub fn setup_console_boot(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        udev: &mut UdevBus,
        dom: DomId,
    ) -> Result<()> {
        let _ = udev;
        let ring_pfn = hv.domain(dom)?.console_pfn;
        let dir = console_dir(dom);
        xs.write(DomId::DOM0, &format!("{dir}/ring-ref"), &ring_pfn.0.to_string())?;
        xs.write(DomId::DOM0, &format!("{dir}/port"), "2")?;
        xs.write(DomId::DOM0, &format!("{dir}/type"), "xenconsoled")?;
        xs.write(DomId::DOM0, &format!("{dir}/output"), "pty")?;
        self.clock.advance(self.costs.console_attach);
        self.console.attach(dom, ring_pfn);
        self.bus.register(Rc::new(ConsoleDev { dom }));
        Ok(())
    }

    /// Clone-path console setup: only the Xenstore entries are cloned; the
    /// managing process picks the change up via its watch and creates the
    /// child state with a fresh ring (§4.2, §5.2.1).
    #[deprecated(
        since = "0.3.0",
        note = "dispatch through the device bus (DeviceManager::bus_devices + CloneDevice::clone_into)"
    )]
    pub fn clone_console(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        parent: DomId,
        child: DomId,
        deep_copy: bool,
    ) -> Result<()> {
        self.clone_console_impl(hv, xs, parent, child, deep_copy)
    }

    /// The console clone implementation; [`bus::ConsoleDev::clone_into`]
    /// and the deprecated direct entry point both land here, so the two
    /// paths charge identical virtual time and record identical spans.
    pub(crate) fn clone_console_impl(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        parent: DomId,
        child: DomId,
        deep_copy: bool,
    ) -> Result<()> {
        let span = self.trace.span("dev.clone_console");
        span.attr("deep_copy", deep_copy);
        if deep_copy {
            self.deep_copy_dir(xs, &console_dir(parent), &console_dir(child), parent, child)?;
        } else {
            xs.xs_clone(
                DomId::DOM0,
                XsCloneOp::DevConsole,
                parent,
                child,
                &console_dir(parent),
                &console_dir(child),
            )?;
        }
        let ring_pfn = hv.domain(child)?.console_pfn;
        self.clock.advance(self.costs.console_attach);
        self.console.attach_clone(parent, child, ring_pfn);
        self.bus.register(Rc::new(ConsoleDev { dom: child }));
        Ok(())
    }

    /// Guest-side console write.
    pub fn console_write(&mut self, dom: DomId, bytes: &[u8]) {
        self.console.guest_write(dom, bytes);
        self.console.drain(dom);
    }

    /// The accumulated console output of a domain.
    pub fn console_output(&self, dom: DomId) -> &[u8] {
        self.console.output(dom)
    }

    /// Whether a console is attached for `dom`.
    pub fn console_attached(&self, dom: DomId) -> bool {
        self.console.is_attached(dom)
    }

    // ------------------------------------------------------------------
    // Network
    // ------------------------------------------------------------------

    /// Boot-path vif setup: full Xenstore population plus Xenbus
    /// negotiation, backend creation and a udev event for userspace.
    pub fn setup_vif_boot(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        udev: &mut UdevBus,
        dom: DomId,
        cfg: VifConfig,
    ) -> Result<IfaceId> {
        let mac = MacAddr::xen(dom.0, cfg.devid as u8);
        let f = vif_front_dir(dom, cfg.devid);
        let b = vif_back_dir(dom, cfg.devid);

        // Frontend entries.
        xs.write(DomId::DOM0, &format!("{f}/backend"), &b)?;
        xs.write(DomId::DOM0, &format!("{f}/backend-id"), "0")?;
        xs.write(DomId::DOM0, &format!("{f}/mac"), &mac.to_string())?;
        xs.write(DomId::DOM0, &format!("{f}/handle"), &cfg.devid.to_string())?;
        xs.write(DomId::DOM0, &format!("{f}/tx-ring-ref"), &cfg.tx_pfn.0.to_string())?;
        xs.write(DomId::DOM0, &format!("{f}/rx-ring-ref"), &cfg.rx_pfn.0.to_string())?;
        // Backend entries.
        xs.write(DomId::DOM0, &format!("{b}/frontend"), &f)?;
        xs.write(DomId::DOM0, &format!("{b}/frontend-id"), &dom.0.to_string())?;
        xs.write(DomId::DOM0, &format!("{b}/mac"), &mac.to_string())?;
        xs.write(DomId::DOM0, &format!("{b}/handle"), &cfg.devid.to_string())?;
        xs.write(DomId::DOM0, &format!("{b}/bridge"), "xenbr0")?;

        // Ring pages and RX buffers are private on clone (§4.1/§4.2).
        hv.register_private_pfn(dom, cfg.tx_pfn, PrivatePolicy::Copy)?;
        hv.register_private_pfn(dom, cfg.rx_pfn, PrivatePolicy::Copy)?;
        for pfn in &cfg.rx_buffers {
            hv.register_private_pfn(dom, *pfn, PrivatePolicy::Copy)?;
        }

        // Full Xenbus negotiation, one state write per end per step.
        for (front, back) in NEGOTIATION_STEPS {
            self.clock.advance(self.costs.xenbus_transition);
            xs.write(DomId::DOM0, &format!("{f}/state"), front.to_xs())?;
            self.clock.advance(self.costs.xenbus_transition);
            xs.write(DomId::DOM0, &format!("{b}/state"), back.to_xs())?;
        }

        // Backend creates the in-kernel vif and announces it via udev.
        self.clock.advance(self.costs.backend_create);
        let (guest_port, back_port) = hv.evtchn_connect_pair(dom, DomId::DOM0)?;
        let iface = self.alloc_iface();
        let vif = Vif {
            dom,
            devid: cfg.devid,
            mac,
            ip: cfg.ip,
            iface,
            frontend_state: XenbusState::Connected,
            backend_state: XenbusState::Connected,
            tx: SharedRing::new(cfg.tx_pfn, TX_RING_SLOTS),
            rx: SharedRing::new(cfg.rx_pfn, RX_RING_SLOTS),
            rx_buffers: cfg.rx_buffers,
            guest_port,
            back_port,
        };
        self.vifs.insert((dom.0, cfg.devid), vif);
        self.iface_map.insert(iface, (dom, cfg.devid));
        self.bus.register(Rc::new(VifDev { dom, devid: cfg.devid }));
        self.clock.advance(self.costs.udev_event);
        udev.emit(UdevEvent::VifCreated { dom, devid: cfg.devid });
        Ok(iface)
    }

    /// Clone-path vif setup: Xenstore state is cloned (via `xs_clone` or a
    /// deep per-entry copy), the backend shortcuts the negotiation and the
    /// rings are copied. Emits the udev event that prompts userspace to
    /// enslave the new interface.
    #[deprecated(
        since = "0.3.0",
        note = "dispatch through the device bus (DeviceManager::bus_devices + CloneDevice::clone_into)"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn clone_vif(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        udev: &mut UdevBus,
        parent: DomId,
        child: DomId,
        devid: u32,
        deep_copy: bool,
    ) -> Result<IfaceId> {
        self.clone_vif_impl(hv, xs, udev, parent, child, devid, deep_copy)
    }

    /// The vif clone implementation shared by [`bus::VifDev::clone_into`]
    /// and the deprecated direct entry point.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn clone_vif_impl(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        udev: &mut UdevBus,
        parent: DomId,
        child: DomId,
        devid: u32,
        deep_copy: bool,
    ) -> Result<IfaceId> {
        let span = self.trace.span("dev.clone_vif");
        span.attr("devid", devid);
        span.attr("deep_copy", deep_copy);
        let pf = vif_front_dir(parent, devid);
        let pb = vif_back_dir(parent, devid);
        let cf = vif_front_dir(child, devid);
        let cb = vif_back_dir(child, devid);
        if deep_copy {
            self.deep_copy_dir(xs, &pf, &cf, parent, child)?;
            self.deep_copy_dir(xs, &pb, &cb, parent, child)?;
        } else {
            xs.xs_clone(DomId::DOM0, XsCloneOp::DevVif, parent, child, &pf, &cf)?;
            xs.xs_clone(DomId::DOM0, XsCloneOp::DevVif, parent, child, &pb, &cb)?;
        }

        let parent_vif = self
            .vifs
            .get(&(parent.0, devid))
            .ok_or(DevError::NoSuchDevice(parent, devid))?
            .clone();

        // The netback shortcut: connect directly, no negotiation.
        self.clock.advance(self.costs.backend_create);
        let (guest_port, back_port) = hv.evtchn_connect_pair(child, DomId::DOM0)?;
        let iface = self.alloc_iface();
        let vif = parent_vif.clone_for_child(child, iface, guest_port, back_port);
        self.vifs.insert((child.0, devid), vif);
        self.iface_map.insert(iface, (child, devid));
        self.bus.register(Rc::new(VifDev { dom: child, devid }));
        self.clock.advance(self.costs.udev_event);
        udev.emit(UdevEvent::VifCreated { dom: child, devid });
        Ok(iface)
    }

    /// Looks up a vif.
    pub fn vif(&self, dom: DomId, devid: u32) -> Option<&Vif> {
        self.vifs.get(&(dom.0, devid))
    }

    /// Device ids of the vifs a domain owns (sorted). O(own vifs): the
    /// key order yields the domain's range directly, already sorted.
    pub fn vif_devids(&self, dom: DomId) -> Vec<u32> {
        self.vifs
            .range((dom.0, 0)..=(dom.0, u32::MAX))
            .map(|((_, i), _)| *i)
            .collect()
    }

    /// Total vifs registered.
    pub fn vif_count(&self) -> usize {
        self.vifs.len()
    }

    /// All `(domain, devid)` vif keys, sorted (the map's key order).
    pub fn all_vif_keys(&self) -> Vec<(DomId, u32)> {
        self.vifs.keys().map(|(d, i)| (DomId(*d), *i)).collect()
    }

    /// Whether a vif has pending TX entries.
    pub fn has_pending_tx(&self, dom: DomId, devid: u32) -> bool {
        self.vifs
            .get(&(dom.0, devid))
            .map(|v| !v.tx.is_empty())
            .unwrap_or(false)
    }

    /// Resolves a host interface to its (domain, devid).
    pub fn iface_target(&self, iface: IfaceId) -> Option<(DomId, u32)> {
        self.iface_map.get(&iface).copied()
    }

    /// Guest transmits a packet: pushed onto the TX ring (dropped if full).
    pub fn guest_tx(&mut self, dom: DomId, devid: u32, pkt: Packet) -> Result<bool> {
        let start = self.clock.now();
        self.clock.advance(
            self.costs
                .net_per_byte
                .saturating_mul(pkt.len() as u64),
        );
        let vif = self
            .vifs
            .get_mut(&(dom.0, devid))
            .ok_or(DevError::NoSuchDevice(dom, devid))?;
        let pushed = vif.tx.push(pkt);
        self.trace
            .count_dom(if pushed { "dev.ring.tx" } else { "dev.ring.tx_drop" }, dom, 1);
        self.trace
            .record_ns("dev.ring.tx", self.clock.now().since(start).as_ns());
        Ok(pushed)
    }

    /// Backend drains all pending TX packets from a vif.
    pub fn take_tx(&mut self, dom: DomId, devid: u32) -> Vec<Packet> {
        let Some(vif) = self.vifs.get_mut(&(dom.0, devid)) else {
            return Vec::new();
        };
        std::iter::from_fn(|| vif.tx.pop()).collect()
    }

    /// Backend delivers a packet into a vif's RX ring; `false` if dropped.
    pub fn deliver_rx(&mut self, iface: IfaceId, pkt: Packet) -> bool {
        let Some((dom, devid)) = self.iface_map.get(&iface).copied() else {
            return false;
        };
        let start = self.clock.now();
        self.clock.advance(
            self.costs
                .net_per_byte
                .saturating_mul(pkt.len() as u64),
        );
        let pushed = match self.vifs.get_mut(&(dom.0, devid)) {
            Some(vif) => vif.rx.push(pkt),
            None => false,
        };
        self.trace
            .count_dom(if pushed { "dev.ring.rx" } else { "dev.ring.rx_drop" }, dom, 1);
        self.trace
            .record_ns("dev.ring.rx", self.clock.now().since(start).as_ns());
        pushed
    }

    /// Guest drains its RX ring.
    pub fn take_rx(&mut self, dom: DomId, devid: u32) -> Vec<Packet> {
        let Some(vif) = self.vifs.get_mut(&(dom.0, devid)) else {
            return Vec::new();
        };
        std::iter::from_fn(|| vif.rx.pop()).collect()
    }

    // ------------------------------------------------------------------
    // 9pfs
    // ------------------------------------------------------------------

    /// Boot-path 9pfs setup: `xl` launches a QEMU backend process for the
    /// guest and the device negotiates like any other.
    pub fn setup_9pfs_boot(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        dom: DomId,
        export_root: &str,
    ) -> Result<()> {
        let f = p9_front_dir(dom);
        let b = p9_back_dir(dom);
        xs.write(DomId::DOM0, &format!("{f}/backend"), &b)?;
        xs.write(DomId::DOM0, &format!("{f}/backend-id"), "0")?;
        xs.write(DomId::DOM0, &format!("{f}/tag"), "rootfs")?;
        xs.write(DomId::DOM0, &format!("{b}/frontend"), &f)?;
        xs.write(DomId::DOM0, &format!("{b}/frontend-id"), &dom.0.to_string())?;
        xs.write(DomId::DOM0, &format!("{b}/path"), export_root)?;
        xs.write(DomId::DOM0, &format!("{b}/security_model"), "none")?;
        for (front, back) in NEGOTIATION_STEPS {
            self.clock.advance(self.costs.xenbus_transition);
            xs.write(DomId::DOM0, &format!("{f}/state"), front.to_xs())?;
            self.clock.advance(self.costs.xenbus_transition);
            xs.write(DomId::DOM0, &format!("{b}/state"), back.to_xs())?;
        }
        hv.evtchn_connect_pair(dom, DomId::DOM0)?;

        self.clock.advance(self.costs.qemu_launch);
        let pid = self.next_pid;
        self.next_pid += 1;
        self.fs.mkdir_p(export_root).map_err(|_| DevError::NoBackend(dom))?;
        debug_assert!(
            !self.served_by.contains_key(&dom.0),
            "domain {dom} already has a 9pfs backend process"
        );
        self.qemus.insert(pid, QemuProcess::launch(pid, dom, export_root));
        self.served_by.insert(dom.0, pid);
        self.bus.register(Rc::new(P9fsDev { dom }));
        Ok(())
    }

    /// Clone-path 9pfs setup: Xenstore state cloned, then a QMP request to
    /// the *parent's existing* backend process duplicates the fid table —
    /// no new process is launched (§5.2.1).
    #[deprecated(
        since = "0.3.0",
        note = "dispatch through the device bus (DeviceManager::bus_devices + CloneDevice::clone_into)"
    )]
    pub fn clone_9pfs(
        &mut self,
        xs: &mut Xenstore,
        parent: DomId,
        child: DomId,
        deep_copy: bool,
    ) -> Result<usize> {
        self.clone_9pfs_impl(xs, parent, child, deep_copy)
    }

    /// The 9pfs clone implementation shared by [`bus::P9fsDev::clone_into`]
    /// and the deprecated direct entry point.
    pub(crate) fn clone_9pfs_impl(
        &mut self,
        xs: &mut Xenstore,
        parent: DomId,
        child: DomId,
        deep_copy: bool,
    ) -> Result<usize> {
        let span = self.trace.span("dev.clone_9pfs");
        span.attr("deep_copy", deep_copy);
        let pf = p9_front_dir(parent);
        let pb = p9_back_dir(parent);
        let cf = p9_front_dir(child);
        let cb = p9_back_dir(child);
        if deep_copy {
            self.deep_copy_dir(xs, &pf, &cf, parent, child)?;
            self.deep_copy_dir(xs, &pb, &cb, parent, child)?;
        } else {
            xs.xs_clone(DomId::DOM0, XsCloneOp::Dev9pfs, parent, child, &pf, &cf)?;
            xs.xs_clone(DomId::DOM0, XsCloneOp::Dev9pfs, parent, child, &pb, &cb)?;
        }
        self.clock.advance(self.costs.qmp_request);
        let pid = *self.served_by.get(&parent.0).ok_or(DevError::NoBackend(parent))?;
        let q = self.qemus.get_mut(&pid).ok_or(DevError::NoBackend(parent))?;
        let fids = q.qmp(QmpRequest::CloneP9 { parent, child });
        self.served_by.insert(child.0, pid);
        self.clock
            .advance(self.costs.qmp_clone_per_fid.saturating_mul(fids as u64));
        span.attr("fids", fids);
        self.bus.register(Rc::new(P9fsDev { dom: child }));
        Ok(fids)
    }

    /// Whether any backend process serves `dom`'s 9pfs.
    pub fn p9_served(&self, dom: DomId) -> bool {
        self.served_by.contains_key(&dom.0)
    }

    /// Number of QEMU backend processes alive.
    pub fn qemu_count(&self) -> usize {
        self.qemus.len()
    }

    /// Handles a 9p RPC from a guest, charging the protocol round-trip and
    /// per-page write costs.
    pub fn p9_request(&mut self, dom: DomId, req: P9Request) -> Result<P9Response> {
        self.clock.advance(self.costs.p9fs_rpc);
        if let P9Request::Write { data, .. } = &req {
            let pages = (data.len() as u64).div_ceil(sim_core::PAGE_SIZE as u64);
            self.clock
                .advance(self.costs.p9fs_write_per_page.saturating_mul(pages));
        }
        let pid = *self.served_by.get(&dom.0).ok_or(DevError::NoBackend(dom))?;
        let q = self.qemus.get_mut(&pid).ok_or(DevError::NoBackend(dom))?;
        Ok(q.p9.handle(&mut self.fs, dom, req))
    }

    // ------------------------------------------------------------------
    // Block (vbd): shared base image + per-clone COW overlay
    // ------------------------------------------------------------------

    /// Boot-path vbd setup: Xenstore population, Xenbus negotiation and
    /// backend creation over a fresh base image of `sectors` sectors.
    pub fn setup_vbd_boot(
        &mut self,
        xs: &mut Xenstore,
        dom: DomId,
        devid: u32,
        sectors: u64,
    ) -> Result<()> {
        let f = vbd_front_dir(dom, devid);
        let b = vbd_back_dir(dom, devid);
        xs.write(DomId::DOM0, &format!("{f}/backend"), &b)?;
        xs.write(DomId::DOM0, &format!("{f}/backend-id"), "0")?;
        xs.write(DomId::DOM0, &format!("{f}/virtual-device"), &devid.to_string())?;
        xs.write(DomId::DOM0, &format!("{b}/frontend"), &f)?;
        xs.write(DomId::DOM0, &format!("{b}/frontend-id"), &dom.0.to_string())?;
        xs.write(DomId::DOM0, &format!("{b}/sectors"), &sectors.to_string())?;
        xs.write(DomId::DOM0, &format!("{b}/sector-size"), &SECTOR_SIZE.to_string())?;
        xs.write(DomId::DOM0, &format!("{b}/mode"), "w")?;
        for (front, back) in NEGOTIATION_STEPS {
            self.clock.advance(self.costs.xenbus_transition);
            xs.write(DomId::DOM0, &format!("{f}/state"), front.to_xs())?;
            self.clock.advance(self.costs.xenbus_transition);
            xs.write(DomId::DOM0, &format!("{b}/state"), back.to_xs())?;
        }
        self.clock.advance(self.costs.backend_create);
        self.vbds.insert((dom.0, devid), Vbd::new(dom, devid, sectors));
        self.bus.register(Rc::new(BlockDev { dom, devid }));
        Ok(())
    }

    /// The vbd clone implementation ([`bus::BlockDev::clone_into`]
    /// dispatches here): Xenstore state cloned, then an O(1) structural
    /// snapshot of the parent's base image and current overlay — the
    /// [`bus::CloneSemantics::CowOverlay`] heuristic. Returns the number
    /// of overlay sectors the child inherits.
    pub(crate) fn clone_vbd_impl(
        &mut self,
        xs: &mut Xenstore,
        parent: DomId,
        child: DomId,
        devid: u32,
        deep_copy: bool,
    ) -> Result<u64> {
        let span = self.trace.span("dev.clone_vbd");
        span.attr("devid", devid);
        span.attr("deep_copy", deep_copy);
        let pf = vbd_front_dir(parent, devid);
        let pb = vbd_back_dir(parent, devid);
        let cf = vbd_front_dir(child, devid);
        let cb = vbd_back_dir(child, devid);
        if deep_copy {
            self.deep_copy_dir(xs, &pf, &cf, parent, child)?;
            self.deep_copy_dir(xs, &pb, &cb, parent, child)?;
        } else {
            xs.xs_clone(DomId::DOM0, XsCloneOp::DevVbd, parent, child, &pf, &cf)?;
            xs.xs_clone(DomId::DOM0, XsCloneOp::DevVbd, parent, child, &pb, &cb)?;
        }
        let parent_vbd = self
            .vbds
            .get(&(parent.0, devid))
            .ok_or(DevError::NoSuchDevice(parent, devid))?;
        self.clock.advance(self.costs.blk_clone_base);
        let vbd = parent_vbd.clone_for_child(child);
        let inherited = vbd.overlay_len() as u64;
        span.attr("inherited", inherited);
        self.vbds.insert((child.0, devid), vbd);
        self.bus.register(Rc::new(BlockDev { dom: child, devid }));
        Ok(inherited)
    }

    /// Looks up a vbd.
    pub fn vbd(&self, dom: DomId, devid: u32) -> Option<&Vbd> {
        self.vbds.get(&(dom.0, devid))
    }

    /// Guest reads one sector through the merged base+overlay view.
    pub fn vbd_read(&mut self, dom: DomId, devid: u32, sector: u64) -> Result<Sector> {
        self.clock.advance(self.costs.blk_read_per_sector);
        self.vbds
            .get(&(dom.0, devid))
            .ok_or(DevError::NoSuchDevice(dom, devid))?
            .read_sector(sector)
            .ok_or(DevError::NoSuchDevice(dom, devid))
    }

    /// Guest writes one sector into its private overlay; `false` past the
    /// end of the image.
    pub fn vbd_write(&mut self, dom: DomId, devid: u32, sector: u64, data: &Sector) -> Result<bool> {
        self.clock.advance(self.costs.blk_write_per_sector);
        Ok(self
            .vbds
            .get_mut(&(dom.0, devid))
            .ok_or(DevError::NoSuchDevice(dom, devid))?
            .write_sector(sector, data))
    }

    /// Resident-byte split of vbd storage between shared and unique, by
    /// `Rc` pointer identity: a base image or overlay referenced by more
    /// than one device counts as shared at every point of use (the same
    /// convention as `P2mSharing`/`XsSharing`).
    pub fn vbd_sharing(&self) -> VbdSharing {
        let mut refs: HashMap<usize, u32> = HashMap::new();
        for v in self.vbds.values() {
            *refs.entry(v.base_addr()).or_insert(0) += 1;
            *refs.entry(v.overlay_addr()).or_insert(0) += 1;
        }
        let mut s = VbdSharing::default();
        for v in self.vbds.values() {
            for (addr, bytes) in [(v.base_addr(), v.base_bytes()), (v.overlay_addr(), v.overlay_bytes())] {
                if refs.get(&addr).copied().unwrap_or(0) > 1 {
                    s.shared_bytes += bytes;
                } else {
                    s.unique_bytes += bytes;
                }
            }
        }
        s
    }

    /// Per-domain split of [`vbd_sharing`](Self::vbd_sharing): each
    /// domain's contribution, in domain-id order (domains without vbds are
    /// absent). Summing the rows reproduces the global split, which is how
    /// the family rollups attribute resident block bytes to clone families.
    pub fn vbd_sharing_by_dom(&self) -> Vec<(DomId, VbdSharing)> {
        let mut refs: HashMap<usize, u32> = HashMap::new();
        for v in self.vbds.values() {
            *refs.entry(v.base_addr()).or_insert(0) += 1;
            *refs.entry(v.overlay_addr()).or_insert(0) += 1;
        }
        let mut per_dom: BTreeMap<u32, VbdSharing> = BTreeMap::new();
        for ((dom, _devid), v) in &self.vbds {
            let s = per_dom.entry(*dom).or_default();
            for (addr, bytes) in [(v.base_addr(), v.base_bytes()), (v.overlay_addr(), v.overlay_bytes())] {
                if refs.get(&addr).copied().unwrap_or(0) > 1 {
                    s.shared_bytes += bytes;
                } else {
                    s.unique_bytes += bytes;
                }
            }
        }
        per_dom.into_iter().map(|(d, s)| (DomId(d), s)).collect()
    }

    // ------------------------------------------------------------------
    // Vsock-like stream device
    // ------------------------------------------------------------------

    /// Boot-path vsock setup: Xenstore population, Xenbus negotiation, an
    /// event-channel pair and a fresh stream connection on the domain's
    /// deterministic port.
    pub fn setup_vsock_boot(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        dom: DomId,
    ) -> Result<()> {
        let f = vsock_front_dir(dom);
        let b = vsock_back_dir(dom);
        let port = crate::vsock::vsock_port_for(dom);
        xs.write(DomId::DOM0, &format!("{f}/backend"), &b)?;
        xs.write(DomId::DOM0, &format!("{f}/backend-id"), "0")?;
        xs.write(DomId::DOM0, &format!("{f}/port"), &port.to_string())?;
        xs.write(DomId::DOM0, &format!("{b}/frontend"), &f)?;
        xs.write(DomId::DOM0, &format!("{b}/frontend-id"), &dom.0.to_string())?;
        xs.write(DomId::DOM0, &format!("{b}/port"), &port.to_string())?;
        for (front, back) in NEGOTIATION_STEPS {
            self.clock.advance(self.costs.xenbus_transition);
            xs.write(DomId::DOM0, &format!("{f}/state"), front.to_xs())?;
            self.clock.advance(self.costs.xenbus_transition);
            xs.write(DomId::DOM0, &format!("{b}/state"), back.to_xs())?;
        }
        hv.evtchn_connect_pair(dom, DomId::DOM0)?;
        self.clock.advance(self.costs.vsock_connect);
        self.vsocks.insert(dom.0, VsockConn::connect(dom));
        self.bus.register(Rc::new(VsockDev { dom }));
        Ok(())
    }

    /// The vsock clone implementation ([`bus::VsockDev::clone_into`]
    /// dispatches here): registry state is cloned, but the transport is a
    /// *fresh* connection on the child's deterministically reallocated
    /// port — the [`bus::CloneSemantics::Reconnect`] heuristic. Returns
    /// the child's port.
    pub(crate) fn clone_vsock_impl(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        parent: DomId,
        child: DomId,
        deep_copy: bool,
    ) -> Result<u32> {
        let span = self.trace.span("dev.clone_vsock");
        span.attr("deep_copy", deep_copy);
        let pf = vsock_front_dir(parent);
        let pb = vsock_back_dir(parent);
        let cf = vsock_front_dir(child);
        let cb = vsock_back_dir(child);
        if deep_copy {
            self.deep_copy_dir(xs, &pf, &cf, parent, child)?;
            self.deep_copy_dir(xs, &pb, &cb, parent, child)?;
        } else {
            xs.xs_clone(DomId::DOM0, XsCloneOp::DevVsock, parent, child, &pf, &cf)?;
            xs.xs_clone(DomId::DOM0, XsCloneOp::DevVsock, parent, child, &pb, &cb)?;
        }
        let parent_conn = self
            .vsocks
            .get(&parent.0)
            .ok_or(DevError::NoSuchDevice(parent, 0))?;
        let conn = parent_conn.reconnect_for_child(child);
        let port = conn.port;
        // The cloned entries carry the parent's port; the reconnect
        // rewrites them to the child's deterministic allocation.
        xs.write(DomId::DOM0, &format!("{cf}/port"), &port.to_string())?;
        xs.write(DomId::DOM0, &format!("{cb}/port"), &port.to_string())?;
        hv.evtchn_connect_pair(child, DomId::DOM0)?;
        self.clock.advance(self.costs.vsock_connect);
        span.attr("port", port);
        self.vsocks.insert(child.0, conn);
        self.bus.register(Rc::new(VsockDev { dom: child }));
        Ok(port)
    }

    /// Looks up a domain's vsock connection.
    pub fn vsock(&self, dom: DomId) -> Option<&VsockConn> {
        self.vsocks.get(&dom.0)
    }

    /// Guest sends one message on its vsock stream; `false` when
    /// disconnected.
    pub fn vsock_send(&mut self, dom: DomId, payload: Vec<u8>) -> Result<bool> {
        self.clock.advance(self.costs.vsock_rpc);
        Ok(self
            .vsocks
            .get_mut(&dom.0)
            .ok_or(DevError::NoSuchDevice(dom, 0))?
            .send(payload))
    }

    // ------------------------------------------------------------------
    // USB/IP passthrough
    // ------------------------------------------------------------------

    /// Boot-path USB setup: claims the exclusive physical device `busid`
    /// for `dom` and attaches it. Fails with [`DevError::UsbBusy`] if the
    /// device is already assigned to a live domain.
    pub fn setup_usb_boot(
        &mut self,
        xs: &mut Xenstore,
        dom: DomId,
        devid: u32,
        busid: &str,
    ) -> Result<()> {
        if self.usbs.values().any(|u| u.attached && u.busid == busid) {
            return Err(DevError::UsbBusy(busid.to_string()));
        }
        let f = usb_front_dir(dom, devid);
        let b = usb_back_dir(dom, devid);
        xs.write(DomId::DOM0, &format!("{f}/backend"), &b)?;
        xs.write(DomId::DOM0, &format!("{f}/backend-id"), "0")?;
        xs.write(DomId::DOM0, &format!("{b}/frontend"), &f)?;
        xs.write(DomId::DOM0, &format!("{b}/frontend-id"), &dom.0.to_string())?;
        xs.write(DomId::DOM0, &format!("{b}/busid"), busid)?;
        for (front, back) in NEGOTIATION_STEPS {
            self.clock.advance(self.costs.xenbus_transition);
            xs.write(DomId::DOM0, &format!("{f}/state"), front.to_xs())?;
            self.clock.advance(self.costs.xenbus_transition);
            xs.write(DomId::DOM0, &format!("{b}/state"), back.to_xs())?;
        }
        self.clock.advance(self.costs.usb_attach);
        self.usbs.insert((dom.0, devid), UsbPassthrough::attach(dom, devid, busid));
        self.bus.register(Rc::new(UsbDev { dom, devid }));
        Ok(())
    }

    /// The USB clone step ([`bus::UsbDev::clone_into`] dispatches here):
    /// the physical device is exclusive, so the child comes up *without*
    /// it — no Xenstore state, no backend state, no bus registration —
    /// while the parent keeps it attached. This is the whole of
    /// [`bus::CloneSemantics::DetachOnClone`].
    pub(crate) fn clone_usb_detach_impl(
        &mut self,
        parent: DomId,
        child: DomId,
        devid: u32,
    ) -> Result<()> {
        let span = self.trace.span("dev.clone_usb");
        span.attr("devid", devid);
        span.attr("child", child.0);
        if !self.usbs.contains_key(&(parent.0, devid)) {
            return Err(DevError::NoSuchDevice(parent, devid));
        }
        // Charged for the backend's veto round-trip; deliberately no
        // child-side state of any kind.
        self.clock.advance(self.costs.usb_detach);
        Ok(())
    }

    /// Looks up a USB passthrough device.
    pub fn usb(&self, dom: DomId, devid: u32) -> Option<&UsbPassthrough> {
        self.usbs.get(&(dom.0, devid))
    }

    /// Whether no *other* attached record holds `busid` — the exclusive
    /// assignment invariant the auditor checks.
    pub fn usb_busid_exclusive(&self, busid: &str, dom: DomId, devid: u32) -> bool {
        !self
            .usbs
            .iter()
            .any(|((d, i), u)| (*d, *i) != (dom.0, devid) && u.attached && u.busid == busid)
    }

    /// Guest submits one URB; `false` when the device is detached.
    pub fn usb_submit(&mut self, dom: DomId, devid: u32) -> Result<bool> {
        self.clock.advance(self.costs.usb_urb);
        Ok(self
            .usbs
            .get_mut(&(dom.0, devid))
            .ok_or(DevError::NoSuchDevice(dom, devid))?
            .submit_urb())
    }

    // ------------------------------------------------------------------
    // Lifecycle / accounting
    // ------------------------------------------------------------------

    /// The deep-copy fallback for device directories: one Xenstore write
    /// request per entry, with the domid rewriting done client-side. This
    /// is what `xencloned` does *without* the `xs_clone` optimization and
    /// is measured by the "clone + XS deep copy" curve of Fig. 4.
    fn deep_copy_dir(
        &mut self,
        xs: &mut Xenstore,
        from: &str,
        to: &str,
        parent: DomId,
        child: DomId,
    ) -> Result<()> {
        let span = self.trace.span("dev.deep_copy");
        let keys = xs.directory(DomId::DOM0, from)?;
        span.attr("entries", keys.len());
        for key in keys {
            let v = xs.read(DomId::DOM0, &format!("{from}/{key}"))?;
            let old_home = format!("/local/domain/{}/", parent.0);
            let new_home = format!("/local/domain/{}/", child.0);
            let mut nv = v.replace(&old_home, &new_home);
            if nv == parent.0.to_string() {
                nv = child.0.to_string();
            }
            let seg_old = format!("/{}/", parent.0);
            let seg_new = format!("/{}/", child.0);
            if nv.starts_with("/local/domain/0/backend/") && nv.contains(&seg_old) {
                nv = nv.replacen(&seg_old, &seg_new, 1);
            }
            xs.write(DomId::DOM0, &format!("{to}/{key}"), &nv)?;
        }
        Ok(())
    }

    /// Releases every device of a destroyed domain. Every step is
    /// O(devices the domain owns), never O(devices on the host): the
    /// `(owner, devid)` BTreeMap keys make each domain's devices one
    /// contiguous range, and the `served_by` index names the one QEMU
    /// process whose serve set mentions the domain.
    pub fn forget_domain(&mut self, udev: &mut UdevBus, dom: DomId) {
        for key in Self::owned_range(&self.vifs, dom) {
            if let Some(v) = self.vifs.remove(&key) {
                self.iface_map.remove(&v.iface);
                udev.emit(UdevEvent::VifRemoved { dom, devid: key.1 });
            }
        }
        self.console.detach(dom);
        if let Some(pid) = self.served_by.remove(&dom.0) {
            if let Some(q) = self.qemus.get_mut(&pid) {
                q.forget_domain(dom);
                if q.is_idle() {
                    self.qemus.remove(&pid);
                }
            }
        }
        for key in Self::owned_range(&self.vbds, dom) {
            self.vbds.remove(&key);
        }
        self.vsocks.remove(&dom.0);
        for key in Self::owned_range(&self.usbs, dom) {
            self.usbs.remove(&key);
        }
        self.bus.forget_domain(dom);
    }

    /// The `(owner, devid)` keys `dom` holds in a device map — one
    /// contiguous BTreeMap range.
    fn owned_range<V>(map: &BTreeMap<(u32, u32), V>, dom: DomId) -> Vec<(u32, u32)> {
        map.range((dom.0, 0)..=(dom.0, u32::MAX)).map(|(k, _)| *k).collect()
    }

    /// Modelled Dom0 resident memory for backend state, in bytes (Fig. 5's
    /// "Dom0 free" decline): per-vif netback state, per-console state,
    /// per-QEMU process plus per-served-domain state, and ramdisk contents.
    pub fn dom0_backend_bytes(&self) -> u64 {
        const PER_VIF: u64 = 96 * 1024;
        const PER_CONSOLE: u64 = 48 * 1024;
        const PER_QEMU: u64 = 9 * 1024 * 1024;
        const PER_SERVED: u64 = 128 * 1024;
        const PER_VBD: u64 = 64 * 1024;
        const PER_VSOCK: u64 = 16 * 1024;
        const PER_USB: u64 = 32 * 1024;
        let served: u64 = self.qemus.values().map(|q| q.serves.len() as u64).sum();
        // Vbd storage is resident once per distinct blob, however many
        // devices share it.
        let mut blobs: HashMap<usize, u64> = HashMap::new();
        for v in self.vbds.values() {
            blobs.insert(v.base_addr(), v.base_bytes());
            blobs.insert(v.overlay_addr(), v.overlay_bytes());
        }
        self.vifs.len() as u64 * PER_VIF
            + self.console.attached_count() as u64 * PER_CONSOLE
            + self.qemus.len() as u64 * PER_QEMU
            + served * PER_SERVED
            + self.fs.total_bytes() as u64
            + self.vbds.len() as u64 * PER_VBD
            + blobs.values().sum::<u64>()
            + self.vsocks.len() as u64 * PER_VSOCK
            + self.usbs.len() as u64 * PER_USB
    }
}

#[cfg(test)]
mod tests {
    use hypervisor::MachineConfig;

    use super::*;

    fn setup() -> (Hypervisor, Xenstore, DeviceManager, UdevBus, DomId) {
        let clock = Clock::new();
        let costs = Rc::new(CostModel::free());
        let mut hv = Hypervisor::new(
            clock.clone(),
            costs.clone(),
            &MachineConfig {
                guest_pool_mib: 128,
                cores: 4,
                notification_ring_capacity: 16,
            },
        );
        let xs = Xenstore::new(clock.clone(), costs.clone());
        let dm = DeviceManager::new(clock, costs);
        let dom = hv.create_domain("guest", 4, 1).unwrap();
        (hv, xs, dm, UdevBus::new(), dom)
    }

    fn vif_cfg() -> VifConfig {
        VifConfig {
            devid: 0,
            ip: Ipv4Addr::new(10, 0, 0, 2),
            tx_pfn: Pfn(100),
            rx_pfn: Pfn(101),
            rx_buffers: (102..110).map(Pfn).collect(),
        }
    }

    fn pkt() -> Packet {
        Packet::udp(
            MacAddr::xen(1, 0),
            MacAddr::xen(0, 0),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            5000,
            7,
            b"ping".to_vec(),
        )
    }

    #[test]
    fn vif_boot_negotiates_and_announces() {
        let (mut hv, mut xs, mut dm, mut udev, dom) = setup();
        let iface = dm.setup_vif_boot(&mut hv, &mut xs, &mut udev, dom, vif_cfg()).unwrap();
        let vif = dm.vif(dom, 0).unwrap();
        assert!(vif.is_connected());
        assert_eq!(
            xs.read(DomId::DOM0, &format!("{}/state", vif_front_dir(dom, 0))).unwrap(),
            "4"
        );
        assert!(matches!(udev.next(), Some(UdevEvent::VifCreated { .. })));
        assert_eq!(dm.iface_target(iface), Some((dom, 0)));
        // Ring pages are registered private.
        assert!(hv.domain(dom).unwrap().private_pfns.contains_key(&Pfn(100)));
        assert!(hv.domain(dom).unwrap().private_pfns.contains_key(&Pfn(105)));
    }

    #[test]
    fn vif_data_path_roundtrip() {
        let (mut hv, mut xs, mut dm, mut udev, dom) = setup();
        let iface = dm.setup_vif_boot(&mut hv, &mut xs, &mut udev, dom, vif_cfg()).unwrap();

        assert!(dm.guest_tx(dom, 0, pkt()).unwrap());
        let out = dm.take_tx(dom, 0);
        assert_eq!(out.len(), 1);

        assert!(dm.deliver_rx(iface, pkt()));
        let inp = dm.take_rx(dom, 0);
        assert_eq!(inp.len(), 1);
        assert_eq!(inp[0].payload(), b"ping");
    }

    #[test]
    fn rx_ring_overflow_drops() {
        let (mut hv, mut xs, mut dm, mut udev, dom) = setup();
        let iface = dm.setup_vif_boot(&mut hv, &mut xs, &mut udev, dom, vif_cfg()).unwrap();
        for _ in 0..RX_RING_SLOTS {
            assert!(dm.deliver_rx(iface, pkt()));
        }
        assert!(!dm.deliver_rx(iface, pkt()), "full RX ring drops");
    }

    #[test]
    fn clone_vif_keeps_mac_ip_and_skips_negotiation() {
        let (mut hv, mut xs, mut dm, mut udev, dom) = setup();
        dm.setup_vif_boot(&mut hv, &mut xs, &mut udev, dom, vif_cfg()).unwrap();
        let child = hv.create_domain("child", 4, 1).unwrap();
        let ifc = dm
            .clone_vif_impl(&mut hv, &mut xs, &mut udev, dom, child, 0, false)
            .unwrap();
        let cv = dm.vif(child, 0).unwrap();
        let pv = dm.vif(dom, 0).unwrap();
        assert_eq!(cv.mac, pv.mac);
        assert_eq!(cv.ip, pv.ip);
        assert!(cv.is_connected());
        assert_eq!(
            xs.read(DomId::DOM0, &format!("{}/state", vif_front_dir(child, 0))).unwrap(),
            "4",
            "cloned entries exist and are Connected"
        );
        assert_eq!(dm.iface_target(ifc), Some((child, 0)));
    }

    #[test]
    fn deep_copy_clone_matches_xs_clone_content() {
        let (mut hv, mut xs, mut dm, mut udev, dom) = setup();
        dm.setup_vif_boot(&mut hv, &mut xs, &mut udev, dom, vif_cfg()).unwrap();
        let c1 = hv.create_domain("c1", 4, 1).unwrap();
        let c2 = hv.create_domain("c2", 4, 1).unwrap();
        dm.clone_vif_impl(&mut hv, &mut xs, &mut udev, dom, c1, 0, false).unwrap();
        dm.clone_vif_impl(&mut hv, &mut xs, &mut udev, dom, c2, 0, true).unwrap();
        for key in ["mac", "state", "handle", "backend-id"] {
            let a = xs.read(DomId::DOM0, &format!("{}/{key}", vif_front_dir(c1, 0))).unwrap();
            let b = xs.read(DomId::DOM0, &format!("{}/{key}", vif_front_dir(c2, 0))).unwrap();
            assert_eq!(a, b, "entry {key} must match between copy modes");
        }
        let b1 = xs.read(DomId::DOM0, &format!("{}/backend", vif_front_dir(c1, 0))).unwrap();
        let b2 = xs.read(DomId::DOM0, &format!("{}/backend", vif_front_dir(c2, 0))).unwrap();
        assert_eq!(b1, vif_back_dir(c1, 0));
        assert_eq!(b2, vif_back_dir(c2, 0));
    }

    #[test]
    fn console_boot_and_clone() {
        let (mut hv, mut xs, mut dm, mut udev, dom) = setup();
        dm.setup_console_boot(&mut hv, &mut xs, &mut udev, dom).unwrap();
        dm.console_write(dom, b"booted\n");
        assert_eq!(dm.console_output(dom), b"booted\n");

        let child = hv.create_domain("child", 4, 1).unwrap();
        dm.clone_console_impl(&mut hv, &mut xs, dom, child, false).unwrap();
        assert!(dm.console_attached(child));
        assert!(dm.console_output(child).is_empty(), "no parent output replay");
        assert!(xs.exists(&format!("{}/ring-ref", console_dir(child))));
    }

    #[test]
    fn p9_boot_clone_and_io() {
        let (mut hv, mut xs, mut dm, _udev, dom) = setup();
        dm.setup_9pfs_boot(&mut hv, &mut xs, dom, "/export").unwrap();
        assert_eq!(dm.qemu_count(), 1);

        // Parent opens a file.
        dm.p9_request(dom, P9Request::Attach { fid: 0 }).unwrap();
        dm.p9_request(dom, P9Request::Create { fid: 0, name: "db".into() }).unwrap();
        dm.p9_request(dom, P9Request::Write { fid: 0, offset: 0, data: b"v1".to_vec() })
            .unwrap();

        // Clone: same process, fids duplicated.
        let child = hv.create_domain("child", 4, 1).unwrap();
        let fids = dm.clone_9pfs_impl(&mut xs, dom, child, false).unwrap();
        assert_eq!(fids, 1);
        assert_eq!(dm.qemu_count(), 1, "no new backend process per clone");
        assert!(dm.p9_served(child));

        // The child's cloned fid is immediately usable.
        let r = dm
            .p9_request(child, P9Request::Read { fid: 0, offset: 0, count: 10 })
            .unwrap();
        assert_eq!(r, P9Response::Data(b"v1".to_vec()));
    }

    #[test]
    fn forget_domain_cleans_everything() {
        let (mut hv, mut xs, mut dm, mut udev, dom) = setup();
        dm.setup_vif_boot(&mut hv, &mut xs, &mut udev, dom, vif_cfg()).unwrap();
        dm.setup_console_boot(&mut hv, &mut xs, &mut udev, dom).unwrap();
        dm.setup_9pfs_boot(&mut hv, &mut xs, dom, "/export").unwrap();
        udev.drain();
        dm.forget_domain(&mut udev, dom);
        assert_eq!(dm.vif_count(), 0);
        assert!(!dm.console_attached(dom));
        assert_eq!(dm.qemu_count(), 0, "idle qemu exits");
        assert!(matches!(udev.next(), Some(UdevEvent::VifRemoved { .. })));
    }

    #[test]
    fn dom0_memory_grows_with_devices() {
        let (mut hv, mut xs, mut dm, mut udev, dom) = setup();
        let before = dm.dom0_backend_bytes();
        dm.setup_vif_boot(&mut hv, &mut xs, &mut udev, dom, vif_cfg()).unwrap();
        dm.setup_console_boot(&mut hv, &mut xs, &mut udev, dom).unwrap();
        assert!(dm.dom0_backend_bytes() > before);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_the_bus_implementations() {
        let (mut hv, mut xs, mut dm, mut udev, dom) = setup();
        dm.setup_console_boot(&mut hv, &mut xs, &mut udev, dom).unwrap();
        dm.setup_vif_boot(&mut hv, &mut xs, &mut udev, dom, vif_cfg()).unwrap();
        dm.setup_9pfs_boot(&mut hv, &mut xs, dom, "/export").unwrap();
        let child = hv.create_domain("child", 4, 1).unwrap();
        dm.clone_console(&mut hv, &mut xs, dom, child, false).unwrap();
        dm.clone_vif(&mut hv, &mut xs, &mut udev, dom, child, 0, false).unwrap();
        dm.clone_9pfs(&mut xs, dom, child, false).unwrap();
        assert!(dm.console_attached(child));
        assert!(dm.vif(child, 0).is_some());
        assert!(dm.p9_served(child));
        assert_eq!(dm.bus_devices(child).len(), 3, "shims register bus entries too");
    }

    #[test]
    fn bus_reflects_boot_and_clone_registrations() {
        let (mut hv, mut xs, mut dm, mut udev, dom) = setup();
        dm.setup_console_boot(&mut hv, &mut xs, &mut udev, dom).unwrap();
        dm.setup_vif_boot(&mut hv, &mut xs, &mut udev, dom, vif_cfg()).unwrap();
        dm.setup_9pfs_boot(&mut hv, &mut xs, dom, "/export").unwrap();
        let classes: Vec<bus::DeviceClass> =
            dm.bus_devices(dom).iter().map(|d| d.id().class).collect();
        assert_eq!(
            classes,
            vec![bus::DeviceClass::Console, bus::DeviceClass::Vif, bus::DeviceClass::P9fs],
            "dispatch order is console, vif, 9pfs"
        );
        udev.drain();
        dm.forget_domain(&mut udev, dom);
        assert!(dm.bus().is_empty(), "forget_domain clears bus registrations");
    }

    #[test]
    fn vbd_boot_clone_and_cow() {
        let (mut hv, mut xs, mut dm, _udev, dom) = setup();
        dm.setup_vbd_boot(&mut xs, dom, 0, 8).unwrap();
        assert!(xs.exists(&format!("{}/sectors", vbd_back_dir(dom, 0))));
        let s = [7u8; SECTOR_SIZE];
        assert!(dm.vbd_write(dom, 0, 3, &s).unwrap());

        let child = hv.create_domain("child", 4, 1).unwrap();
        let inherited = dm.clone_vbd_impl(&mut xs, dom, child, 0, false).unwrap();
        assert_eq!(inherited, 1, "child inherits the parent's overlay");
        assert!(xs.exists(&format!("{}/state", vbd_front_dir(child, 0))));
        assert_eq!(dm.vbd_read(child, 0, 3).unwrap(), s);

        // Divergence is private in both directions.
        assert!(dm.vbd_write(child, 0, 5, &[9u8; SECTOR_SIZE]).unwrap());
        assert_eq!(dm.vbd_read(dom, 0, 5).unwrap(), [5u8; SECTOR_SIZE]);
        let sh = dm.vbd_sharing();
        assert!(sh.shared_bytes > 0, "base image shared across the family");
    }

    #[test]
    fn vsock_clone_reconnects_on_child_port() {
        let (mut hv, mut xs, mut dm, _udev, dom) = setup();
        dm.setup_vsock_boot(&mut hv, &mut xs, dom).unwrap();
        assert!(dm.vsock_send(dom, b"parent msg".to_vec()).unwrap());

        let child = hv.create_domain("child", 4, 1).unwrap();
        let port = dm.clone_vsock_impl(&mut hv, &mut xs, dom, child, false).unwrap();
        assert_eq!(port, crate::vsock::vsock_port_for(child));
        assert_eq!(
            xs.read(DomId::DOM0, &format!("{}/port", vsock_front_dir(child))).unwrap(),
            port.to_string(),
            "cloned entries rewritten to the child's port"
        );
        let c = dm.vsock(child).unwrap();
        assert!(c.connected);
        assert!(c.sent.is_empty(), "no buffered-data inheritance");
    }

    #[test]
    fn usb_is_exclusive_and_detaches_on_clone() {
        let (mut hv, mut xs, mut dm, _udev, dom) = setup();
        dm.setup_usb_boot(&mut xs, dom, 0, "1-1.4").unwrap();
        assert!(dm.usb_submit(dom, 0).unwrap());

        // The same physical device cannot be attached twice.
        let other = hv.create_domain("other", 4, 1).unwrap();
        assert!(matches!(
            dm.setup_usb_boot(&mut xs, other, 0, "1-1.4"),
            Err(DevError::UsbBusy(_))
        ));

        let child = hv.create_domain("child", 4, 1).unwrap();
        dm.clone_usb_detach_impl(dom, child, 0).unwrap();
        assert!(dm.usb(child, 0).is_none(), "child comes up without the device");
        assert!(dm.usb(dom, 0).unwrap().attached, "parent keeps it");
        assert!(!dm.bus().contains(child, bus::DeviceId::new(bus::DeviceClass::Usb, 0)));
        assert!(dm.usb_busid_exclusive("1-1.4", dom, 0));
    }
}

//! The PV block device: shared read-only base image + per-clone COW
//! overlay.
//!
//! Cloning a unikernel with a writable disk must not duplicate the disk:
//! the whole clone family reads one immutable *base image* and each
//! member records only its own writes in a thin per-sector overlay. This
//! is the same persistent-structure design the p2m (PR 6) and the
//! Xenstore tree (PR 5) use: `Rc` handles make cloning an O(1)
//! structural snapshot, `Rc::make_mut` gives copy-on-write mutation, and
//! honest sharing statistics fall out of pointer identity
//! (`Rc::as_ptr`).
//!
//! The overlay is kept *canonical*: writing data equal to the base
//! sector removes the overlay entry instead of storing a redundant copy,
//! so `overlay_len` is exactly the number of sectors where the domain
//! diverges from the image. The auditor's per-device hook enforces this.

use std::collections::BTreeMap;
use std::rc::Rc;

use sim_core::DomId;

/// Bytes per sector.
pub const SECTOR_SIZE: usize = 512;

/// One sector's payload.
pub type Sector = [u8; SECTOR_SIZE];

/// Resident-byte split of vbd storage between shared base images and
/// private data, mirroring the `P2mSharing`/`XsSharing` convention:
/// shared storage is counted at every point of use, so the two fields
/// sum to the total resident figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VbdSharing {
    /// Bytes of storage (base images or overlays) referenced by more
    /// than one device, counted once per referencing device.
    pub shared_bytes: u64,
    /// Bytes backed by storage only one device references.
    pub unique_bytes: u64,
}

/// The backend state of one block device.
#[derive(Debug, Clone)]
pub struct Vbd {
    /// Owning domain.
    pub dom: DomId,
    /// Device index within the guest.
    pub devid: u32,
    /// The family's immutable base image.
    base: Rc<Vec<u8>>,
    /// Private divergences from the base, by sector index.
    overlay: Rc<BTreeMap<u64, Sector>>,
}

impl Vbd {
    /// Creates a device over a deterministically-filled base image of
    /// `sectors` sectors (byte `i` of the image is `(i / SECTOR_SIZE) as
    /// u8`, so every sector is distinguishable and reproducible).
    pub fn new(dom: DomId, devid: u32, sectors: u64) -> Self {
        let bytes = sectors as usize * SECTOR_SIZE;
        let base = (0..bytes).map(|i| (i / SECTOR_SIZE) as u8).collect();
        Vbd {
            dom,
            devid,
            base: Rc::new(base),
            overlay: Rc::new(BTreeMap::new()),
        }
    }

    /// Number of sectors in the base image.
    pub fn sectors(&self) -> u64 {
        (self.base.len() / SECTOR_SIZE) as u64
    }

    /// Reads one sector through the merged view (overlay entry if
    /// present, base image otherwise). `None` past the end of the image.
    pub fn read_sector(&self, sector: u64) -> Option<Sector> {
        if sector >= self.sectors() {
            return None;
        }
        if let Some(s) = self.overlay.get(&sector) {
            return Some(*s);
        }
        let off = sector as usize * SECTOR_SIZE;
        let mut out = [0u8; SECTOR_SIZE];
        out.copy_from_slice(&self.base[off..off + SECTOR_SIZE]);
        Some(out)
    }

    /// Writes one sector, keeping the overlay canonical: data equal to
    /// the base sector removes the entry instead of storing a redundant
    /// copy. Returns `false` past the end of the image.
    pub fn write_sector(&mut self, sector: u64, data: &Sector) -> bool {
        if sector >= self.sectors() {
            return false;
        }
        let off = sector as usize * SECTOR_SIZE;
        let overlay = Rc::make_mut(&mut self.overlay);
        if data[..] == self.base[off..off + SECTOR_SIZE] {
            overlay.remove(&sector);
        } else {
            overlay.insert(sector, *data);
        }
        true
    }

    /// Number of sectors where this device diverges from the base image.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Whether every overlay entry actually differs from the base (the
    /// invariant [`Vbd::write_sector`] maintains; the auditor checks it).
    pub fn overlay_is_canonical(&self) -> bool {
        self.overlay.iter().all(|(sector, data)| {
            let off = *sector as usize * SECTOR_SIZE;
            data[..] != self.base[off..off + SECTOR_SIZE]
        })
    }

    /// The child's device at clone time: `Rc` handles on the parent's
    /// base *and* current overlay — O(1), no data copied. Either side's
    /// next write materializes its own overlay via `Rc::make_mut`.
    pub fn clone_for_child(&self, child: DomId) -> Vbd {
        Vbd {
            dom: child,
            devid: self.devid,
            base: Rc::clone(&self.base),
            overlay: Rc::clone(&self.overlay),
        }
    }

    /// Pointer identity of the base image (sharing statistics).
    pub fn base_addr(&self) -> usize {
        Rc::as_ptr(&self.base) as usize
    }

    /// Pointer identity of the overlay (sharing statistics).
    pub fn overlay_addr(&self) -> usize {
        Rc::as_ptr(&self.overlay) as usize
    }

    /// Resident bytes of the base image.
    pub fn base_bytes(&self) -> u64 {
        self.base.len() as u64
    }

    /// Resident bytes of the overlay (payload only; B-tree overhead is
    /// ignored, as for the p2m).
    pub fn overlay_bytes(&self) -> u64 {
        self.overlay.len() as u64 * SECTOR_SIZE as u64
    }

    /// Test-only corruption hook: plants a raw overlay entry bypassing
    /// the canonicalization in [`Vbd::write_sector`], so the auditor's
    /// canonical-overlay check can be exercised. Not part of the
    /// simulated machine.
    #[doc(hidden)]
    pub fn corrupt_overlay_for_test(&mut self, sector: u64) {
        let off = sector as usize * SECTOR_SIZE;
        let mut data = [0u8; SECTOR_SIZE];
        data.copy_from_slice(&self.base[off..off + SECTOR_SIZE]);
        Rc::make_mut(&mut self.overlay).insert(sector, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_come_from_base_until_written() {
        let v = Vbd::new(DomId(1), 0, 4);
        assert_eq!(v.read_sector(2).unwrap()[0], 2);
        assert!(v.read_sector(4).is_none(), "past-the-end reads fail");
        assert_eq!(v.overlay_len(), 0);
    }

    #[test]
    fn writes_are_canonical() {
        let mut v = Vbd::new(DomId(1), 0, 4);
        let mut s = [9u8; SECTOR_SIZE];
        assert!(v.write_sector(1, &s));
        assert_eq!(v.overlay_len(), 1);
        assert_eq!(v.read_sector(1).unwrap(), s);
        // Writing the base content back removes the entry.
        s = [1u8; SECTOR_SIZE];
        assert!(v.write_sector(1, &s));
        assert_eq!(v.overlay_len(), 0);
        assert!(v.overlay_is_canonical());
        assert!(!v.write_sector(7, &s), "out-of-range write fails");
    }

    #[test]
    fn clones_share_base_and_diverge_privately() {
        let mut parent = Vbd::new(DomId(1), 0, 8);
        parent.write_sector(3, &[7u8; SECTOR_SIZE]);
        let mut child = parent.clone_for_child(DomId(2));
        assert_eq!(parent.base_addr(), child.base_addr());
        assert_eq!(parent.overlay_addr(), child.overlay_addr(), "overlay shared until first write");
        assert_eq!(child.read_sector(3).unwrap(), [7u8; SECTOR_SIZE], "child inherits parent writes");

        child.write_sector(5, &[8u8; SECTOR_SIZE]);
        assert_ne!(parent.overlay_addr(), child.overlay_addr(), "first write materializes");
        assert_eq!(parent.read_sector(5).unwrap(), [5u8; SECTOR_SIZE], "parent unaffected");
        assert_eq!(child.read_sector(3).unwrap(), [7u8; SECTOR_SIZE]);
    }

    #[test]
    fn corruption_hook_breaks_canonicality() {
        let mut v = Vbd::new(DomId(1), 0, 4);
        assert!(v.overlay_is_canonical());
        v.corrupt_overlay_for_test(2);
        assert!(!v.overlay_is_canonical());
    }
}

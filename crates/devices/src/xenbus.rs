//! Xenbus device states and the frontend/backend negotiation.
//!
//! On regular instantiation a paravirtualized device comes up through a
//! negotiation in which each end walks the Xenbus state machine until both
//! sides are [`XenbusState::Connected`]. On cloning, Nephele *skips the
//! negotiation entirely*: "the two ends are created connected from the
//! start" (§5.2.1). Both paths are implemented here so the instantiation
//! experiments exercise the real difference.

use std::fmt;

/// The standard Xenbus device states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum XenbusState {
    /// State unknown / entry missing.
    Unknown = 0,
    /// Device being initialized.
    Initialising = 1,
    /// Backend waiting for frontend details.
    InitWait = 2,
    /// Frontend provided ring/event-channel details.
    Initialised = 3,
    /// Both ends operational.
    Connected = 4,
    /// Shutting down.
    Closing = 5,
    /// Closed.
    Closed = 6,
}

impl XenbusState {
    /// Parses the numeric Xenstore representation.
    pub fn from_xs(s: &str) -> XenbusState {
        match s.trim() {
            "1" => XenbusState::Initialising,
            "2" => XenbusState::InitWait,
            "3" => XenbusState::Initialised,
            "4" => XenbusState::Connected,
            "5" => XenbusState::Closing,
            "6" => XenbusState::Closed,
            _ => XenbusState::Unknown,
        }
    }

    /// The numeric Xenstore representation.
    pub fn to_xs(self) -> &'static str {
        match self {
            XenbusState::Unknown => "0",
            XenbusState::Initialising => "1",
            XenbusState::InitWait => "2",
            XenbusState::Initialised => "3",
            XenbusState::Connected => "4",
            XenbusState::Closing => "5",
            XenbusState::Closed => "6",
        }
    }
}

impl fmt::Display for XenbusState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The state transitions each end performs during a successful boot-time
/// negotiation, in order. The instantiation path charges one
/// `xenbus_transition` per step; the cloning path charges none.
pub const NEGOTIATION_STEPS: &[(XenbusState, XenbusState)] = &[
    // (frontend, backend)
    (XenbusState::Initialising, XenbusState::Initialising),
    (XenbusState::Initialising, XenbusState::InitWait),
    (XenbusState::Initialised, XenbusState::InitWait),
    (XenbusState::Connected, XenbusState::Connected),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xs_roundtrip() {
        for s in [
            XenbusState::Unknown,
            XenbusState::Initialising,
            XenbusState::InitWait,
            XenbusState::Initialised,
            XenbusState::Connected,
            XenbusState::Closing,
            XenbusState::Closed,
        ] {
            assert_eq!(XenbusState::from_xs(s.to_xs()), s);
        }
        assert_eq!(XenbusState::from_xs("junk"), XenbusState::Unknown);
    }

    #[test]
    fn negotiation_ends_connected() {
        let (f, b) = NEGOTIATION_STEPS.last().unwrap();
        assert_eq!(*f, XenbusState::Connected);
        assert_eq!(*b, XenbusState::Connected);
    }
}

//! The 9pfs (Plan 9 filesystem) split device.
//!
//! 9pfs is the NFS-like remote filesystem Unikraft uses as its root
//! filesystem; the backend runs as a **QEMU process in Dom0** and keeps a
//! table of file ids (*fids*) for all open files, analogous to a kernel
//! file-descriptor table (§5.2.1).
//!
//! Cloning choices follow the paper: rather than launching a new backend
//! process per clone (which "stresses the limits of the host system when
//! reaching a high density of clones"), Nephele reuses the **same backend
//! process for the parent and all its clones**, and extends QMP with a
//! cloning request that duplicates the parent's fids for the child —
//! implemented in [`P9Backend::clone_fids`].

use std::collections::BTreeMap;

use sim_core::DomId;

use crate::memfs::{FsError, MemFs};

/// A client-chosen file id.
pub type Fid = u32;

/// State behind one fid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FidState {
    /// Path relative to the export root.
    pub path: String,
    /// Whether the fid has been opened for I/O.
    pub open: bool,
    /// Current file offset for sequential I/O.
    pub offset: usize,
}

/// 9p protocol requests (the subset the workloads use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum P9Request {
    /// Establish a fid for the export root.
    Attach {
        /// The new fid.
        fid: Fid,
    },
    /// Derive `newfid` from `fid` by walking `names`.
    Walk {
        /// Existing fid.
        fid: Fid,
        /// Fid to establish.
        newfid: Fid,
        /// Path components to walk.
        names: Vec<String>,
    },
    /// Open a fid for I/O.
    Open {
        /// Fid to open.
        fid: Fid,
    },
    /// Create a file under the directory `fid` references and open it as
    /// `fid`.
    Create {
        /// Directory fid, re-pointed at the new file.
        fid: Fid,
        /// New file name.
        name: String,
    },
    /// Read up to `count` bytes at `offset`.
    Read {
        /// Open fid.
        fid: Fid,
        /// Byte offset.
        offset: usize,
        /// Maximum bytes.
        count: usize,
    },
    /// Write bytes at `offset`.
    Write {
        /// Open fid.
        fid: Fid,
        /// Byte offset.
        offset: usize,
        /// Data to write.
        data: Vec<u8>,
    },
    /// Release a fid.
    Clunk {
        /// Fid to release.
        fid: Fid,
    },
    /// Remove the file behind `fid` and clunk it.
    Remove {
        /// Fid to remove.
        fid: Fid,
    },
}

/// 9p protocol responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum P9Response {
    /// Generic success.
    Ok,
    /// Read result.
    Data(Vec<u8>),
    /// Write result (bytes written).
    Count(usize),
    /// Protocol or filesystem error.
    Error(String),
}

/// The 9pfs backend state living inside a QEMU process.
#[derive(Debug, Clone)]
pub struct P9Backend {
    export_root: String,
    /// Fids keyed by (client domain, fid): one process serves the whole
    /// clone family, so the table is namespaced per domain.
    fids: BTreeMap<(u32, Fid), FidState>,
}

impl P9Backend {
    /// Creates a backend exporting `export_root` of the Dom0 filesystem.
    pub fn new(export_root: &str) -> Self {
        P9Backend {
            export_root: export_root.trim_end_matches('/').to_string(),
            fids: BTreeMap::new(),
        }
    }

    /// The export root.
    pub fn export_root(&self) -> &str {
        &self.export_root
    }

    /// Number of fids currently held by `dom`.
    pub fn fid_count(&self, dom: DomId) -> usize {
        self.fids.keys().filter(|(d, _)| *d == dom.0).count()
    }

    /// Total fids across all clients.
    pub fn total_fids(&self) -> usize {
        self.fids.len()
    }

    fn abs(&self, rel: &str) -> String {
        if rel.is_empty() {
            self.export_root.clone()
        } else {
            format!("{}/{rel}", self.export_root)
        }
    }

    /// Handles one protocol request from `dom` against the shared Dom0
    /// filesystem.
    pub fn handle(&mut self, fs: &mut MemFs, dom: DomId, req: P9Request) -> P9Response {
        match self.handle_inner(fs, dom, req) {
            Ok(r) => r,
            Err(e) => P9Response::Error(e.to_string()),
        }
    }

    fn fid(&self, dom: DomId, fid: Fid) -> Result<&FidState, FsError> {
        self.fids
            .get(&(dom.0, fid))
            .ok_or_else(|| FsError::NotFound(format!("fid {fid}")))
    }

    fn handle_inner(
        &mut self,
        fs: &mut MemFs,
        dom: DomId,
        req: P9Request,
    ) -> Result<P9Response, FsError> {
        match req {
            P9Request::Attach { fid } => {
                self.fids.insert(
                    (dom.0, fid),
                    FidState {
                        path: String::new(),
                        open: false,
                        offset: 0,
                    },
                );
                Ok(P9Response::Ok)
            }
            P9Request::Walk { fid, newfid, names } => {
                let base = self.fid(dom, fid)?.path.clone();
                let mut path = base;
                for n in names {
                    if path.is_empty() {
                        path = n;
                    } else {
                        path = format!("{path}/{n}");
                    }
                }
                if !fs.exists(&self.abs(&path)) {
                    return Err(FsError::NotFound(path));
                }
                self.fids.insert(
                    (dom.0, newfid),
                    FidState {
                        path,
                        open: false,
                        offset: 0,
                    },
                );
                Ok(P9Response::Ok)
            }
            P9Request::Open { fid } => {
                let st = self
                    .fids
                    .get_mut(&(dom.0, fid))
                    .ok_or_else(|| FsError::NotFound(format!("fid {fid}")))?;
                st.open = true;
                st.offset = 0;
                Ok(P9Response::Ok)
            }
            P9Request::Create { fid, name } => {
                let dir = self.fid(dom, fid)?.path.clone();
                let rel = if dir.is_empty() {
                    name.clone()
                } else {
                    format!("{dir}/{name}")
                };
                let abs = self.abs(&rel);
                match fs.create(&abs) {
                    Ok(()) | Err(FsError::Exists(_)) => {}
                    Err(e) => return Err(e),
                }
                let st = self
                    .fids
                    .get_mut(&(dom.0, fid))
                    .ok_or_else(|| FsError::NotFound(format!("fid {fid}")))?;
                st.path = rel;
                st.open = true;
                st.offset = 0;
                Ok(P9Response::Ok)
            }
            P9Request::Read { fid, offset, count } => {
                let st = self.fid(dom, fid)?;
                if !st.open {
                    return Err(FsError::WrongType(format!("fid {fid} not open")));
                }
                let data = fs.read(&self.abs(&st.path), offset, count)?;
                Ok(P9Response::Data(data))
            }
            P9Request::Write { fid, offset, data } => {
                let path = {
                    let st = self.fid(dom, fid)?;
                    if !st.open {
                        return Err(FsError::WrongType(format!("fid {fid} not open")));
                    }
                    self.abs(&st.path)
                };
                let n = fs.write(&path, offset, &data)?;
                Ok(P9Response::Count(n))
            }
            P9Request::Clunk { fid } => {
                self.fids
                    .remove(&(dom.0, fid))
                    .ok_or_else(|| FsError::NotFound(format!("fid {fid}")))?;
                Ok(P9Response::Ok)
            }
            P9Request::Remove { fid } => {
                let path = self.abs(&self.fid(dom, fid)?.path.clone());
                fs.remove(&path)?;
                self.fids.remove(&(dom.0, fid));
                Ok(P9Response::Ok)
            }
        }
    }

    /// QMP clone request: duplicates every fid of `parent` for `child`, so
    /// the clone's open files are immediately valid. Returns the number of
    /// fids cloned (charged per fid by the caller).
    pub fn clone_fids(&mut self, parent: DomId, child: DomId) -> usize {
        let cloned: Vec<((u32, Fid), FidState)> = self
            .fids
            .iter()
            .filter(|((d, _), _)| *d == parent.0)
            .map(|((_, f), st)| ((child.0, *f), st.clone()))
            .collect();
        let n = cloned.len();
        self.fids.extend(cloned);
        n
    }

    /// Drops every fid of a destroyed domain.
    pub fn forget_domain(&mut self, dom: DomId) {
        self.fids.retain(|(d, _), _| *d != dom.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemFs, P9Backend) {
        let mut fs = MemFs::new();
        fs.mkdir_p("/export/data").unwrap();
        fs.create("/export/data/file").unwrap();
        fs.write("/export/data/file", 0, b"contents").unwrap();
        (fs, P9Backend::new("/export"))
    }

    const D: DomId = DomId(5);
    const C: DomId = DomId(9);

    #[test]
    fn attach_walk_open_read() {
        let (mut fs, mut be) = setup();
        assert_eq!(be.handle(&mut fs, D, P9Request::Attach { fid: 0 }), P9Response::Ok);
        assert_eq!(
            be.handle(
                &mut fs,
                D,
                P9Request::Walk {
                    fid: 0,
                    newfid: 1,
                    names: vec!["data".into(), "file".into()]
                }
            ),
            P9Response::Ok
        );
        assert_eq!(be.handle(&mut fs, D, P9Request::Open { fid: 1 }), P9Response::Ok);
        assert_eq!(
            be.handle(&mut fs, D, P9Request::Read { fid: 1, offset: 0, count: 100 }),
            P9Response::Data(b"contents".to_vec())
        );
    }

    #[test]
    fn create_and_write() {
        let (mut fs, mut be) = setup();
        be.handle(&mut fs, D, P9Request::Attach { fid: 0 });
        be.handle(
            &mut fs,
            D,
            P9Request::Walk { fid: 0, newfid: 1, names: vec!["data".into()] },
        );
        assert_eq!(
            be.handle(&mut fs, D, P9Request::Create { fid: 1, name: "dump.rdb".into() }),
            P9Response::Ok
        );
        assert_eq!(
            be.handle(&mut fs, D, P9Request::Write { fid: 1, offset: 0, data: b"snap".to_vec() }),
            P9Response::Count(4)
        );
        assert_eq!(fs.read("/export/data/dump.rdb", 0, 10).unwrap(), b"snap");
    }

    #[test]
    fn walk_to_missing_fails() {
        let (mut fs, mut be) = setup();
        be.handle(&mut fs, D, P9Request::Attach { fid: 0 });
        let r = be.handle(
            &mut fs,
            D,
            P9Request::Walk { fid: 0, newfid: 1, names: vec!["nope".into()] },
        );
        assert!(matches!(r, P9Response::Error(_)));
        assert_eq!(be.fid_count(D), 1, "failed walk must not leak a fid");
    }

    #[test]
    fn read_requires_open() {
        let (mut fs, mut be) = setup();
        be.handle(&mut fs, D, P9Request::Attach { fid: 0 });
        be.handle(
            &mut fs,
            D,
            P9Request::Walk { fid: 0, newfid: 1, names: vec!["data".into(), "file".into()] },
        );
        let r = be.handle(&mut fs, D, P9Request::Read { fid: 1, offset: 0, count: 1 });
        assert!(matches!(r, P9Response::Error(_)));
    }

    #[test]
    fn clunk_releases() {
        let (mut fs, mut be) = setup();
        be.handle(&mut fs, D, P9Request::Attach { fid: 0 });
        assert_eq!(be.fid_count(D), 1);
        be.handle(&mut fs, D, P9Request::Clunk { fid: 0 });
        assert_eq!(be.fid_count(D), 0);
    }

    #[test]
    fn clone_fids_duplicates_parent_table() {
        let (mut fs, mut be) = setup();
        be.handle(&mut fs, D, P9Request::Attach { fid: 0 });
        be.handle(
            &mut fs,
            D,
            P9Request::Walk { fid: 0, newfid: 1, names: vec!["data".into(), "file".into()] },
        );
        be.handle(&mut fs, D, P9Request::Open { fid: 1 });

        let n = be.clone_fids(D, C);
        assert_eq!(n, 2);
        assert_eq!(be.fid_count(C), 2);
        // The child can immediately read through its cloned fid.
        assert_eq!(
            be.handle(&mut fs, C, P9Request::Read { fid: 1, offset: 0, count: 100 }),
            P9Response::Data(b"contents".to_vec())
        );
        // Child clunks do not disturb the parent.
        be.handle(&mut fs, C, P9Request::Clunk { fid: 1 });
        assert_eq!(be.fid_count(D), 2);
    }

    #[test]
    fn forget_domain_clears_fids() {
        let (mut fs, mut be) = setup();
        be.handle(&mut fs, D, P9Request::Attach { fid: 0 });
        be.clone_fids(D, C);
        be.forget_domain(D);
        assert_eq!(be.fid_count(D), 0);
        assert_eq!(be.fid_count(C), 1, "family members unaffected");
    }

    #[test]
    fn remove_deletes_file() {
        let (mut fs, mut be) = setup();
        be.handle(&mut fs, D, P9Request::Attach { fid: 0 });
        be.handle(
            &mut fs,
            D,
            P9Request::Walk { fid: 0, newfid: 1, names: vec!["data".into(), "file".into()] },
        );
        assert_eq!(be.handle(&mut fs, D, P9Request::Remove { fid: 1 }), P9Response::Ok);
        assert!(!fs.exists("/export/data/file"));
        assert_eq!(be.fid_count(D), 1);
    }
}

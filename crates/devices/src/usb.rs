//! USB/IP passthrough: exclusive assignment of a host USB device.
//!
//! A passed-through USB device is a *physical* resource identified by
//! its host bus id (e.g. `1-1.4`). Exactly one domain may hold it at a
//! time — there is no way to duplicate a scanner. This is the device
//! class the unikernel-security survey motivates and the one the old
//! enum-of-three second stage simply could not express: its clone
//! heuristic is [`crate::bus::CloneSemantics::DetachOnClone`] — the
//! child comes up *without* the device (no Xenstore state, no backend
//! state, no rings) while the parent keeps it attached.

use sim_core::DomId;

/// The Dom0-side state of one passed-through USB device.
#[derive(Debug, Clone)]
pub struct UsbPassthrough {
    /// Owning domain.
    pub dom: DomId,
    /// Device index within the guest.
    pub devid: u32,
    /// Host bus id of the physical device (exclusive).
    pub busid: String,
    /// Whether the device is currently attached to its owner.
    pub attached: bool,
    /// URBs submitted since attach.
    pub urbs: u64,
}

impl UsbPassthrough {
    /// Attaches the physical device `busid` to `dom`.
    pub fn attach(dom: DomId, devid: u32, busid: &str) -> Self {
        UsbPassthrough {
            dom,
            devid,
            busid: busid.to_string(),
            attached: true,
            urbs: 0,
        }
    }

    /// Submits one URB; `false` when detached.
    pub fn submit_urb(&mut self) -> bool {
        if !self.attached {
            return false;
        }
        self.urbs += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urbs_count_while_attached() {
        let mut u = UsbPassthrough::attach(DomId(1), 0, "1-1.4");
        assert!(u.submit_urb());
        assert!(u.submit_urb());
        assert_eq!(u.urbs, 2);
        u.attached = false;
        assert!(!u.submit_urb());
        assert_eq!(u.urbs, 2);
    }
}

//! The paravirtualized network device (netfront/netback pair).
//!
//! Each vif has a TX and an RX shared ring plus guest-preallocated RX
//! buffers. The RX entries "are preallocated by the guest and may contain
//! allocator metadata" (§4.2), which is why Nephele *copies* the network
//! rings when cloning. Clone devices keep the parent's MAC and IP and are
//! created directly in the Connected state, shortcutting the Xenbus
//! negotiation (the 14-line netback change of §5.2.1).

use std::net::Ipv4Addr;

use netmux::{IfaceId, MacAddr, Packet};
use sim_core::{DomId, Pfn};

use crate::ring::SharedRing;
use crate::xenbus::XenbusState;

/// Capacity of the TX ring in packets.
pub const TX_RING_SLOTS: usize = 256;
/// Capacity of the RX ring in packets; the guest preallocates one page per
/// slot, giving the 1 MiB of RX memory per clone reported in §6.2.
pub const RX_RING_SLOTS: usize = 256;

/// A connected vif: frontend and backend halves of one network device.
#[derive(Debug, Clone)]
pub struct Vif {
    /// Owning guest.
    pub dom: DomId,
    /// Device index within the guest.
    pub devid: u32,
    /// MAC address (shared verbatim by all clones).
    pub mac: MacAddr,
    /// IP address (shared verbatim by all clones).
    pub ip: Ipv4Addr,
    /// Host-side interface identity used by bridges/bonds/OVS.
    pub iface: IfaceId,
    /// Frontend Xenbus state.
    pub frontend_state: XenbusState,
    /// Backend Xenbus state.
    pub backend_state: XenbusState,
    /// Guest → host ring.
    pub tx: SharedRing<Packet>,
    /// Host → guest ring.
    pub rx: SharedRing<Packet>,
    /// Guest pages preallocated for RX payloads.
    pub rx_buffers: Vec<Pfn>,
    /// Guest-side event channel port.
    pub guest_port: u32,
    /// Dom0-side event channel port.
    pub back_port: u32,
}

impl Vif {
    /// Whether both ends are connected.
    pub fn is_connected(&self) -> bool {
        self.frontend_state == XenbusState::Connected
            && self.backend_state == XenbusState::Connected
    }

    /// Produces the child's vif at clone time: same MAC/IP/devid, copied
    /// rings (per §4.2), a new host interface identity and new event
    /// channel ports; both ends are born Connected.
    #[allow(clippy::too_many_arguments)]
    pub fn clone_for_child(
        &self,
        child: DomId,
        iface: IfaceId,
        guest_port: u32,
        back_port: u32,
    ) -> Vif {
        Vif {
            dom: child,
            devid: self.devid,
            mac: self.mac,
            ip: self.ip,
            iface,
            frontend_state: XenbusState::Connected,
            backend_state: XenbusState::Connected,
            tx: self.tx.clone_copy(self.tx.pfn()),
            rx: self.rx.clone_copy(self.rx.pfn()),
            rx_buffers: self.rx_buffers.clone(),
            guest_port,
            back_port,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vif() -> Vif {
        Vif {
            dom: DomId(3),
            devid: 0,
            mac: MacAddr::xen(3, 0),
            ip: Ipv4Addr::new(10, 0, 0, 3),
            iface: IfaceId(1),
            frontend_state: XenbusState::Connected,
            backend_state: XenbusState::Connected,
            tx: SharedRing::new(Pfn(10), TX_RING_SLOTS),
            rx: SharedRing::new(Pfn(11), RX_RING_SLOTS),
            rx_buffers: (12..20).map(Pfn).collect(),
            guest_port: 4,
            back_port: 9,
        }
    }

    #[test]
    fn clone_keeps_identity_and_rings() {
        let mut parent = vif();
        let pkt = Packet::udp(
            parent.mac,
            MacAddr::BROADCAST,
            parent.ip,
            Ipv4Addr::new(10, 0, 0, 1),
            5000,
            53,
            vec![1],
        );
        parent.tx.push(pkt.clone());

        let mut child = parent.clone_for_child(DomId(9), IfaceId(7), 4, 22);
        assert_eq!(child.mac, parent.mac, "transparent cloning: same MAC");
        assert_eq!(child.ip, parent.ip, "transparent cloning: same IP");
        assert!(child.is_connected(), "negotiation skipped");
        assert_ne!(child.iface, parent.iface);
        // In-flight TX entries were copied (pending requests must be
        // serviced in both parent and child, §4.2).
        assert_eq!(child.tx.pop(), Some(pkt));
        assert_eq!(parent.tx.len(), 1);
    }
}

//! KFX+AFL-style fuzzing over cloned unikernels (§7.2 / Fig. 9).
//!
//! [`afl`] implements the coverage-guided engine; [`campaign`] implements
//! the four experimental setups of the paper's fuzzing evaluation, with the
//! Nephele modes running on the real simulated platform (`clone_cow`
//! instrumentation, per-iteration `clone_reset`).

pub mod afl;
pub mod campaign;

pub use afl::{Afl, MAP_SIZE};
pub use campaign::{run_campaign, FuzzConfig, FuzzMode, FuzzReport, FuzzTarget};

//! An AFL-style coverage-guided fuzzing engine.
//!
//! The real evaluation (§7.2) drives the Kernel Fuzzer for Xen (KFX) with
//! AFL. This module implements the AFL half: a corpus of interesting
//! inputs, a 64 K edge-coverage bitmap, havoc-style mutations and the
//! is-this-input-interesting decision.

use sim_core::SplitMix64;

/// Size of the AFL edge-coverage bitmap.
pub const MAP_SIZE: usize = 1 << 16;

/// The fuzzing engine state.
#[derive(Debug, Clone)]
pub struct Afl {
    rng: SplitMix64,
    corpus: Vec<Vec<u8>>,
    coverage: Vec<bool>,
    edges_covered: usize,
    executions: u64,
    crashes: u64,
    next_pick: usize,
}

impl Afl {
    /// Creates the engine with a single seed input.
    pub fn new(seed: u64, initial_input: Vec<u8>) -> Self {
        Afl {
            rng: SplitMix64::new(seed),
            corpus: vec![initial_input],
            coverage: vec![false; MAP_SIZE],
            edges_covered: 0,
            executions: 0,
            crashes: 0,
            next_pick: 0,
        }
    }

    /// Produces the next input to execute (a mutation of a corpus entry).
    pub fn next_input(&mut self) -> Vec<u8> {
        let base = &self.corpus[self.next_pick % self.corpus.len()];
        self.next_pick = self.next_pick.wrapping_add(1);
        let mut input = base.clone();
        // Havoc: 1–8 random mutations.
        let rounds = 1 + self.rng.next_below(8);
        for _ in 0..rounds {
            match self.rng.next_below(4) {
                0 if !input.is_empty() => {
                    // Byte flip.
                    let i = self.rng.next_below(input.len() as u64) as usize;
                    input[i] ^= 1 << self.rng.next_below(8);
                }
                1 if !input.is_empty() => {
                    // Byte set.
                    let i = self.rng.next_below(input.len() as u64) as usize;
                    input[i] = self.rng.next_u64() as u8;
                }
                2 if input.len() < 256 => {
                    // Insert.
                    let i = self.rng.next_below(input.len() as u64 + 1) as usize;
                    input.insert(i, self.rng.next_u64() as u8);
                }
                _ if input.len() > 2 => {
                    // Delete.
                    let i = self.rng.next_below(input.len() as u64) as usize;
                    input.remove(i);
                }
                _ => {}
            }
        }
        if input.is_empty() {
            input.push(0);
        }
        input
    }

    /// Reports an execution's coverage; returns `true` if the input found
    /// new edges (and was added to the corpus).
    pub fn report(&mut self, input: &[u8], edges: &[u32], crashed: bool) -> bool {
        self.executions += 1;
        if crashed {
            self.crashes += 1;
        }
        let mut new = false;
        for e in edges {
            let idx = (*e as usize) % MAP_SIZE;
            if !self.coverage[idx] {
                self.coverage[idx] = true;
                self.edges_covered += 1;
                new = true;
            }
        }
        if new {
            self.corpus.push(input.to_vec());
        }
        new
    }

    /// Total executions reported.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Crashing executions reported.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Edges covered so far.
    pub fn edges_covered(&self) -> usize {
        self.edges_covered
    }

    /// Corpus size.
    pub fn corpus_size(&self) -> usize {
        self.corpus.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let mut a = Afl::new(7, vec![1, 2, 3, 4]);
        let mut b = Afl::new(7, vec![1, 2, 3, 4]);
        for _ in 0..50 {
            assert_eq!(a.next_input(), b.next_input());
        }
    }

    #[test]
    fn new_coverage_grows_corpus() {
        let mut a = Afl::new(1, vec![0]);
        assert!(a.report(&[1], &[100, 200], false));
        assert_eq!(a.corpus_size(), 2);
        assert_eq!(a.edges_covered(), 2);
        // Same edges again: not interesting.
        assert!(!a.report(&[2], &[100], false));
        assert_eq!(a.corpus_size(), 2);
    }

    #[test]
    fn crashes_counted() {
        let mut a = Afl::new(1, vec![0]);
        a.report(&[1], &[], true);
        a.report(&[2], &[], false);
        assert_eq!(a.crashes(), 1);
        assert_eq!(a.executions(), 2);
    }

    #[test]
    fn inputs_never_empty() {
        let mut a = Afl::new(3, vec![0]);
        for _ in 0..1000 {
            assert!(!a.next_input().is_empty());
        }
    }
}

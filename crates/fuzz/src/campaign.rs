//! Fuzzing campaigns reproducing Fig. 9 (§7.2).
//!
//! Four setups are modelled, matching the paper's experiment matrix:
//!
//! * **Unikraft + cloning (KFX+AFL)** — the target VM is cloned once, the
//!   clone is instrumented with breakpoints via `clone_cow`, then each
//!   iteration executes one AFL input and restores the memory with
//!   `clone_reset`. Runs on the full platform; resets and dirty pages are
//!   the real hypervisor operations.
//! * **Unikraft without cloning** — "we start a new VM instance for each
//!   AFL input because it is the only way of reaching the same state";
//!   yields ~2 executions/second.
//! * **Linux process (AFL)** — the same adapter source built natively and
//!   fuzzed through a fork server (no KFX, no code coverage instrumentation
//!   overhead in the paper's baseline).
//! * **Linux kernel module (KFX+AFL)** — an HVM Linux guest; pricier VM
//!   exits and roughly twice the reset cost (more dirty pages).

use apps::{default_syscall_table, interpret_input, FuzzAdapterApp, SYS_GETPPID};
use linux_procs::ProcessModel;
use nephele::hypervisor::cloneop::{CloneOp, CloneOpResult};
use nephele::sim_core::{Clock, DomId, Pfn, SimDuration, SimTime, SplitMix64};
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{Platform, PlatformConfig, TraceConfig, TraceSink};

use crate::afl::Afl;

/// What is being fuzzed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzTarget {
    /// The whole (partially supported) syscall subsystem — throughput
    /// varies with crashes in unsupported paths.
    SyscallSubsystem,
    /// Only `getppid`, the fully supported baseline syscall.
    Getppid,
}

/// The experimental setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzMode {
    /// KFX+AFL over a Nephele clone with `clone_cow`/`clone_reset`.
    UnikraftClone,
    /// A fresh VM boot per input (no cloning support).
    UnikraftBootEach,
    /// Native Linux process through an AFL fork server.
    LinuxProcess,
    /// KFX+AFL over an HVM Linux guest running a kernel module.
    LinuxKernelModule,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Setup to run.
    pub mode: FuzzMode,
    /// Fuzz target.
    pub target: FuzzTarget,
    /// Virtual campaign duration (the paper plots 300 s).
    pub duration: SimDuration,
    /// PRNG seed.
    pub seed: u64,
    /// Observability knobs for the campaign platform (off by default; the
    /// platform modes thread this through [`PlatformConfig`], the bare
    /// Linux models have no platform and ignore it).
    pub tracing: TraceConfig,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            mode: FuzzMode::UnikraftClone,
            target: FuzzTarget::SyscallSubsystem,
            duration: SimDuration::from_secs(300),
            seed: 0xF022,
            tracing: TraceConfig::default(),
        }
    }
}

/// Campaign results.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// `(second, executions-in-that-second)` series — the Fig. 9 curves.
    pub series: Vec<(f64, f64)>,
    /// Total executions.
    pub total_execs: u64,
    /// Mean throughput in executions/second.
    pub avg_throughput: f64,
    /// Crashing inputs observed.
    pub crashes: u64,
    /// Coverage edges discovered.
    pub edges: usize,
    /// Corpus size at the end.
    pub corpus: usize,
    /// Mean `clone_reset` duration in microseconds (clone modes only).
    pub avg_reset_us: f64,
    /// Mean dirty pages restored per reset (clone modes only).
    pub avg_dirty_pages: f64,
    /// The campaign platform's trace sink (disabled for the Linux modes
    /// and when [`FuzzConfig::tracing`] left tracing off).
    pub trace: TraceSink,
}

struct Bucketizer {
    duration: SimDuration,
    buckets: Vec<u64>,
}

impl Bucketizer {
    fn new(duration: SimDuration) -> Self {
        Bucketizer {
            duration,
            buckets: vec![0; duration.as_secs_f64().ceil() as usize + 1],
        }
    }

    fn record(&mut self, at: SimTime) {
        let s = at.as_ns() / 1_000_000_000;
        if let Some(b) = self.buckets.get_mut(s as usize) {
            *b += 1;
        }
    }

    fn series(&self) -> Vec<(f64, f64)> {
        let secs = self.duration.as_secs_f64() as usize;
        self.buckets
            .iter()
            .take(secs)
            .enumerate()
            .map(|(i, c)| (i as f64, *c as f64))
            .collect()
    }
}

fn seed_input(target: FuzzTarget, rng: &mut SplitMix64) -> Vec<u8> {
    match target {
        FuzzTarget::SyscallSubsystem => (0..16).map(|_| rng.next_u64() as u8).collect(),
        FuzzTarget::Getppid => vec![SYS_GETPPID, 0],
    }
}

fn constrain(target: FuzzTarget, mut input: Vec<u8>) -> Vec<u8> {
    if target == FuzzTarget::Getppid {
        // The baseline fuzzes a single fully supported syscall: pin every
        // dispatched syscall number to getppid.
        for b in input.iter_mut().step_by(2) {
            *b = SYS_GETPPID;
        }
    }
    input
}

/// Runs one campaign and returns its report.
pub fn run_campaign(cfg: &FuzzConfig) -> FuzzReport {
    match cfg.mode {
        FuzzMode::UnikraftClone => run_unikraft_clone(cfg),
        FuzzMode::UnikraftBootEach => run_unikraft_boot_each(cfg),
        FuzzMode::LinuxProcess => run_linux_process(cfg),
        FuzzMode::LinuxKernelModule => run_linux_module(cfg),
    }
}

fn finish(
    afl: &Afl,
    buckets: &Bucketizer,
    duration: SimDuration,
    reset_us_sum: f64,
    dirty_sum: u64,
    resets: u64,
    trace: TraceSink,
) -> FuzzReport {
    FuzzReport {
        trace,
        series: buckets.series(),
        total_execs: afl.executions(),
        avg_throughput: afl.executions() as f64 / duration.as_secs_f64(),
        crashes: afl.crashes(),
        edges: afl.edges_covered(),
        corpus: afl.corpus_size(),
        avg_reset_us: if resets > 0 { reset_us_sum / resets as f64 } else { 0.0 },
        avg_dirty_pages: if resets > 0 { dirty_sum as f64 / resets as f64 } else { 0.0 },
    }
}

fn fuzz_platform(cfg: &FuzzConfig) -> Platform {
    Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(256)
            .ring_capacity(128)
            .mux(nephele::MuxKind::None)
            .tracing(cfg.tracing.clone())
            .build(),
    )
}

fn fuzz_guest_cfg() -> DomainConfig {
    DomainConfig::builder("fuzz-target")
        .memory_mib(16)
        .max_clones(100_000)
        .resume_clones(false)
        .build()
}

fn run_unikraft_clone(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut p = fuzz_platform(cfg);
    let parent = p
        .launch(
            &fuzz_guest_cfg(),
            &KernelImage::unikraft("fuzz-adapter"),
            Box::new(FuzzAdapterApp::new()),
        )
        .unwrap();

    // KFX clones the target and instruments the *clone* (§7.2).
    let clone = p.clone_domain(parent, 1).unwrap()[0];
    let text_pages: Vec<Pfn> = (0..64).map(Pfn).collect();
    p.hv.cloneop(
        DomId::DOM0,
        CloneOp::CloneCow {
            dom: clone,
            pfns: text_pages.clone(),
        },
    )
    .unwrap();
    // Breakpoint insertion into the privatized pages.
    for (i, pfn) in text_pages.iter().enumerate() {
        p.clock.advance(p.costs.kfx_breakpoint_insert);
        let marker = [0xCCu8, i as u8];
        p.hv.write_page(clone, *pfn, 0, &marker).unwrap();
    }
    p.hv
        .cloneop(DomId::DOM0, CloneOp::Checkpoint { dom: clone })
        .unwrap();

    let mut afl = Afl::new(cfg.seed, seed_input(cfg.target, &mut rng));
    let mut buckets = Bucketizer::new(cfg.duration);
    let t_end = p.clock.now() + cfg.duration;
    let (mut reset_us, mut dirty_sum, mut resets) = (0.0f64, 0u64, 0u64);

    while p.clock.now() < t_end {
        p.clock.advance(p.costs.afl_overhead);
        p.clock.advance(p.costs.kfx_coverage_overhead_pv);
        p.clock.advance(p.costs.fuzz_exec_body);
        let input = constrain(cfg.target, afl.next_input());

        let result = p
            .with_app::<FuzzAdapterApp, apps::ExecResult>(clone, |app, env| {
                app.execute(env, &input)
            })
            .expect("fuzz clone has the adapter app");
        if result.crashed {
            // Crash handling: KFX collects the report before resetting.
            p.clock.advance(SimDuration::from_ms(2));
        }
        afl.report(&input, &result.edges, result.crashed);

        let t0 = p.clock.now();
        let r = p
            .hv
            .cloneop(DomId::DOM0, CloneOp::CloneReset { dom: clone })
            .unwrap();
        if let CloneOpResult::Reset { dirty_pages } = r {
            dirty_sum += dirty_pages;
        }
        reset_us += p.clock.now().since(t0).as_us_f64();
        resets += 1;
        buckets.record(p.clock.now());
    }
    finish(&afl, &buckets, cfg.duration, reset_us, dirty_sum, resets, p.trace().clone())
}

fn run_unikraft_boot_each(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut p = fuzz_platform(cfg);
    let mut afl = Afl::new(cfg.seed, seed_input(cfg.target, &mut rng));
    let mut buckets = Bucketizer::new(cfg.duration);
    let t_end = p.clock.now() + cfg.duration;
    let image = KernelImage::unikraft("fuzz-adapter");
    let mut seq = 0u64;

    while p.clock.now() < t_end {
        p.clock.advance(p.costs.afl_overhead);
        // A fresh VM per input: the only way to reach the same state.
        seq += 1;
        let guest_cfg = DomainConfig::builder(&format!("fuzz-{seq}"))
            .memory_mib(16)
            .build();
        let dom = p
            .launch(&guest_cfg, &image, Box::new(FuzzAdapterApp::new()))
            .unwrap();
        // KFX must attach to every fresh instance.
        p.clock.advance(p.costs.kfx_attach);
        p.clock.advance(p.costs.kfx_coverage_overhead_pv);
        p.clock.advance(p.costs.fuzz_exec_body);
        let input = constrain(cfg.target, afl.next_input());
        let result = p
            .with_app::<FuzzAdapterApp, apps::ExecResult>(dom, |app, env| app.execute(env, &input))
            .expect("fresh VM has the adapter");
        afl.report(&input, &result.edges, result.crashed);
        p.destroy(dom).unwrap();
        buckets.record(p.clock.now());
    }
    finish(&afl, &buckets, cfg.duration, 0.0, 0, 0, p.trace().clone())
}

fn run_linux_process(cfg: &FuzzConfig) -> FuzzReport {
    let clock = Clock::new();
    let costs = sim_core_costs();
    let mut pm = ProcessModel::new(clock.clone(), costs.clone());
    let mut parent = pm.spawn(16);
    pm.fork(&mut parent); // warm up: mark the space COW once

    let mut rng = SplitMix64::new(cfg.seed);
    let mut afl = Afl::new(cfg.seed, seed_input(cfg.target, &mut rng));
    let mut buckets = Bucketizer::new(cfg.duration);
    let table = default_syscall_table();
    let t_end = clock.now() + cfg.duration;

    while clock.now() < t_end {
        clock.advance(costs.afl_overhead);
        // Fork server: one child per input; no KFX coverage overhead (the
        // paper's process baseline runs AFL only).
        let _child = pm.fork(&mut parent);
        clock.advance(costs.fuzz_exec_body);
        let input = constrain(cfg.target, afl.next_input());
        let result = interpret_input(&input, &table);
        if result.crashed {
            clock.advance(SimDuration::from_ms(1));
        }
        // The child dirtied a few pages; the parent remarks them next fork.
        pm.touch(&mut parent, 3);
        afl.report(&input, &result.edges, result.crashed);
        buckets.record(clock.now());
    }
    finish(&afl, &buckets, cfg.duration, 0.0, 0, 0, TraceSink::disabled())
}

fn run_linux_module(cfg: &FuzzConfig) -> FuzzReport {
    let clock = Clock::new();
    let costs = sim_core_costs();
    let mut rng = SplitMix64::new(cfg.seed);
    let mut afl = Afl::new(cfg.seed, seed_input(cfg.target, &mut rng));
    let mut buckets = Bucketizer::new(cfg.duration);
    let table = default_syscall_table();
    let t_end = clock.now() + cfg.duration;
    let (mut reset_us, mut dirty_sum, mut resets) = (0.0f64, 0u64, 0u64);

    while clock.now() < t_end {
        clock.advance(costs.afl_overhead);
        clock.advance(costs.kfx_coverage_overhead_hvm);
        clock.advance(costs.fuzz_exec_body);
        let input = constrain(cfg.target, afl.next_input());
        let result = interpret_input(&input, &table);
        afl.report(&input, &result.edges, result.crashed);

        // HVM reset: "a consistent average of 8 [dirty] pages for Linux in
        // comparison to an average of 3 pages for Unikraft".
        let t0 = clock.now();
        let dirty = 8;
        clock.advance(costs.kfx_reset_base);
        clock.advance(costs.kfx_reset_per_page.saturating_mul(dirty));
        reset_us += clock.now().since(t0).as_us_f64();
        dirty_sum += dirty;
        resets += 1;
        buckets.record(clock.now());
    }
    finish(&afl, &buckets, cfg.duration, reset_us, dirty_sum, resets, TraceSink::disabled())
}

fn sim_core_costs() -> std::rc::Rc<nephele::sim_core::CostModel> {
    std::rc::Rc::new(nephele::sim_core::CostModel::calibrated())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: FuzzMode, target: FuzzTarget) -> FuzzReport {
        run_campaign(&FuzzConfig {
            mode,
            target,
            duration: SimDuration::from_secs(10),
            seed: 42,
            tracing: TraceConfig::default(),
        })
    }

    #[test]
    fn cloning_raises_throughput_by_orders_of_magnitude() {
        let with = quick(FuzzMode::UnikraftClone, FuzzTarget::Getppid);
        let without = quick(FuzzMode::UnikraftBootEach, FuzzTarget::Getppid);
        assert!(
            with.avg_throughput > 50.0 * without.avg_throughput,
            "cloning {} vs boot-each {}",
            with.avg_throughput,
            without.avg_throughput
        );
        assert!(without.avg_throughput < 10.0, "boot-each should be ~2/s");
    }

    #[test]
    fn process_beats_clone_by_a_modest_margin() {
        let proc = quick(FuzzMode::LinuxProcess, FuzzTarget::Getppid);
        let clone = quick(FuzzMode::UnikraftClone, FuzzTarget::Getppid);
        assert!(proc.avg_throughput > clone.avg_throughput);
        let gap = (proc.avg_throughput - clone.avg_throughput) / proc.avg_throughput;
        assert!(gap < 0.45, "gap should be modest (paper: 18.6%), got {gap:.2}");
    }

    #[test]
    fn module_slower_than_unikraft_clone() {
        let module = quick(FuzzMode::LinuxKernelModule, FuzzTarget::Getppid);
        let clone = quick(FuzzMode::UnikraftClone, FuzzTarget::Getppid);
        assert!(clone.avg_throughput > module.avg_throughput);
        // Dirty pages: 8 (Linux) vs ~3 (Unikraft).
        assert!(module.avg_dirty_pages > clone.avg_dirty_pages);
        assert!(module.avg_reset_us > clone.avg_reset_us);
    }

    #[test]
    fn reset_restores_state_every_iteration() {
        let r = quick(FuzzMode::UnikraftClone, FuzzTarget::SyscallSubsystem);
        assert!(r.total_execs > 100);
        // Scratch pages + instrumented-state pages get restored.
        assert!(r.avg_dirty_pages >= 1.0, "dirty avg {}", r.avg_dirty_pages);
        assert!(r.avg_dirty_pages <= 6.0, "dirty avg {}", r.avg_dirty_pages);
    }

    #[test]
    fn syscall_fuzzing_finds_coverage_and_crashes() {
        let r = quick(FuzzMode::UnikraftClone, FuzzTarget::SyscallSubsystem);
        assert!(r.edges > 50, "edges {}", r.edges);
        assert!(r.corpus > 1);
        assert!(r.crashes > 0, "unsupported syscalls should crash sometimes");
        // Getppid-only fuzzing covers almost nothing new after warmup.
        let b = quick(FuzzMode::UnikraftClone, FuzzTarget::Getppid);
        assert!(b.edges < r.edges);
    }

    #[test]
    fn series_covers_whole_duration() {
        let r = quick(FuzzMode::LinuxProcess, FuzzTarget::Getppid);
        assert_eq!(r.series.len(), 10);
        assert!(r.series.iter().all(|(_, c)| *c > 0.0));
    }
}

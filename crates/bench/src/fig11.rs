//! Fig. 11 — Reaction of containers vs. unikernels to increasing function
//! call demand.
//!
//! The offered load rises in steps; every step pushes the per-instance RPS
//! over the threshold and triggers a scale-up. Containers need tens of
//! seconds to become Ready, so served throughput lags the demand;
//! unikernel clones come up within seconds and track the load closely,
//! despite the lower per-instance capacity of the lwip stack (the paper
//! measures ~300 req/s vs ~600 req/s for the native stack).

use faas::{run_faas, Backend, FaasConfig, FaasReport};
use nephele::sim_core::SimDuration;
use sim_core::stats::Series;

/// Runs both backends for `secs` seconds.
pub fn run(secs: u64) -> (Series, FaasReport, FaasReport) {
    let base = FaasConfig {
        duration: SimDuration::from_secs(secs),
        ..Default::default()
    };
    let containers = run_faas(&FaasConfig {
        backend: Backend::Containers,
        ..base.clone()
    });
    let unikernels = run_faas(&FaasConfig {
        backend: Backend::Unikernels,
        ..base
    });

    let mut series = Series::new("second", &["containers_rps", "unikernels_rps"]);
    for s in 0..secs as usize {
        series.row(
            s as f64,
            &[
                containers
                    .throughput_series
                    .get(s)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0),
                unikernels
                    .throughput_series
                    .get(s)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0),
            ],
        );
    }
    (series, containers, unikernels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unikernels_react_faster_to_demand() {
        let (_, containers, unikernels) = run(90);

        // Readiness marks: ~3/14/25 s for unikernels, ~33/42/56 s for
        // containers in the paper; ours must preserve the ordering and
        // second-scale vs tens-of-seconds character.
        assert!(unikernels.ready_times[0] < 8.0);
        assert!(containers.ready_times[0] > 5.0);
        for (u, c) in unikernels.ready_times.iter().zip(&containers.ready_times) {
            assert!(u < c, "unikernel {u}s vs container {c}s");
        }

        // Total requests served during the ramp favours the unikernels.
        assert!(unikernels.served_total > containers.served_total * 0.9);
    }
}

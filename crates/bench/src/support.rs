//! Shared helpers for the figure experiments.

use std::net::Ipv4Addr;
use std::path::Path;

use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{Platform, PlatformConfig, TraceConfig, TraceSink};

/// The service IP every UDP-server family shares.
pub const UDP_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// The tracing knob for the figure experiments: opt in by setting the
/// `NEPHELE_TRACE` environment variable to anything but `0` or the empty
/// string. Off by default so the benchmark numbers stay untouched.
pub fn trace_config_from_env() -> TraceConfig {
    match std::env::var("NEPHELE_TRACE") {
        Ok(v) if !v.is_empty() && v != "0" => TraceConfig::enabled(),
        _ => TraceConfig::default(),
    }
}

/// Builds the paper's Fig. 4/5 machine: 12 GiB guest pool, 4 cores.
/// Tracing follows `NEPHELE_TRACE` (see [`trace_config_from_env`]).
pub fn paper_platform() -> Platform {
    Platform::new(PlatformConfig::builder().tracing(trace_config_from_env()).build())
}

/// Builds a platform with a custom guest pool (MiB).
pub fn platform_with_pool(pool_mib: u64) -> Platform {
    Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(pool_mib)
            .tracing(trace_config_from_env())
            .build(),
    )
}

/// Exports a figure run's trace: chrome-trace JSON (loadable in
/// `about:tracing` / Perfetto), the span-aggregate CSV and the latency
/// histogram CSV (per-operation p50/p90/p99/max) under `results/`, with
/// the aggregates also printed to stdout next to the figure's series.
/// Also writes the streaming exports — virtual-time timeline CSV,
/// per-clone-family rollup CSV and the Prometheus-style text exposition —
/// to files only (stdout stays byte-identical to earlier releases, which
/// the determinism gate relies on). No-op when the sink is disabled.
///
/// This is the one export path every figure runner goes through, so any
/// figure run with `NEPHELE_TRACE=1` yields the same artifact set.
pub fn export_trace(trace: &TraceSink, fig: &str) {
    if !trace.is_enabled() {
        return;
    }
    println!("# {fig}: span aggregates");
    print!("{}", trace.span_aggregates_csv());
    println!("# {fig}: latency histograms (us)");
    print!("{}", trace.histograms_csv());
    let dir = Path::new("results");
    let export = |name: &str, r: std::io::Result<()>, path: &Path| match r {
        Ok(()) => eprintln!("{fig}: wrote {}", path.display()),
        Err(e) => eprintln!("{fig}: {name} export failed: {e}"),
    };
    let json = dir.join(format!("{fig}_trace.json"));
    let csv = dir.join(format!("{fig}_spans.csv"));
    let hist = dir.join(format!("{fig}_hist.csv"));
    let timeline = dir.join(format!("{fig}_timeline.csv"));
    let families = dir.join(format!("{fig}_families.csv"));
    let prom = dir.join(format!("{fig}_metrics.prom"));
    export("chrome-trace", trace.write_chrome_trace(&json), &json);
    export("span-aggregate", trace.write_span_aggregates(&csv), &csv);
    export("histogram", trace.write_histograms(&hist), &hist);
    export("timeline", trace.write_timeline(&timeline), &timeline);
    export("family-rollup", trace.write_family_rollup(&families), &families);
    export("metrics-text", trace.write_metrics_text(&prom), &prom);
}

/// Percentile summary of one measured curve (used for the figure
/// percentile columns; units are whatever the samples are in).
#[derive(Debug, Clone, PartialEq)]
pub struct PctRow {
    /// Curve name, e.g. `clone_deepcopy_ms`.
    pub curve: String,
    /// Number of samples.
    pub count: usize,
    /// Nearest-rank percentiles (same convention as
    /// `sim_core::stats::percentile` and `sim_core::hist::Histogram`).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

/// Builds a [`PctRow`] from raw samples.
pub fn pct_row(curve: impl Into<String>, samples: &[f64]) -> PctRow {
    use sim_core::stats::percentile;
    let mut s = samples.to_vec();
    PctRow {
        curve: curve.into(),
        count: samples.len(),
        p50: percentile(&mut s, 50.0),
        p90: percentile(&mut s, 90.0),
        p99: percentile(&mut s, 99.0),
        max: percentile(&mut s, 100.0),
    }
}

/// Renders percentile rows as CSV (`curve,count,p50,p90,p99,max`), with
/// three fixed decimals so same-seed runs are byte-identical.
pub fn pct_csv(rows: &[PctRow]) -> String {
    let mut out = String::from("curve,count,p50,p90,p99,max\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3},{:.3}\n",
            r.curve, r.count, r.p50, r.p90, r.p99, r.max
        ));
    }
    out
}

/// Prints the percentile columns for a figure and writes them to
/// `results/{fig}_percentiles.csv`.
pub fn export_percentiles(fig: &str, rows: &[PctRow]) {
    let csv = pct_csv(rows);
    println!("# {fig}: percentiles");
    print!("{csv}");
    let path = Path::new("results").join(format!("{fig}_percentiles.csv"));
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, csv) {
        Ok(()) => eprintln!("{fig}: wrote {}", path.display()),
        Err(e) => eprintln!("{fig}: percentile export failed: {e}"),
    }
}

/// The Fig. 4/5 guest: 4 MiB Mini-OS UDP server with one vif.
pub fn udp_guest_cfg(name: &str, max_clones: u32) -> DomainConfig {
    DomainConfig::builder(name)
        .memory_mib(4)
        .vif(UDP_IP)
        .max_clones(max_clones)
        .build()
}

/// The Mini-OS image for the UDP server.
pub fn udp_image() -> KernelImage {
    KernelImage::minios("minios-udp")
}

/// Prints a series as CSV to stdout with a `# figN` header comment.
pub fn print_csv(fig: &str, series: &sim_core::stats::Series) {
    println!("# {fig}");
    print!("{}", series.to_csv());
}

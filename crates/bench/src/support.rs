//! Shared helpers for the figure experiments.

use std::net::Ipv4Addr;

use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{Platform, PlatformConfig};

/// The service IP every UDP-server family shares.
pub const UDP_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Builds the paper's Fig. 4/5 machine: 12 GiB guest pool, 4 cores.
pub fn paper_platform() -> Platform {
    Platform::new(PlatformConfig::default())
}

/// Builds a platform with a custom guest pool (MiB).
pub fn platform_with_pool(pool_mib: u64) -> Platform {
    let mut cfg = PlatformConfig::default();
    cfg.machine.guest_pool_mib = pool_mib;
    Platform::new(cfg)
}

/// The Fig. 4/5 guest: 4 MiB Mini-OS UDP server with one vif.
pub fn udp_guest_cfg(name: &str, max_clones: u32) -> DomainConfig {
    DomainConfig::builder(name)
        .memory_mib(4)
        .vif(UDP_IP)
        .max_clones(max_clones)
        .build()
}

/// The Mini-OS image for the UDP server.
pub fn udp_image() -> KernelImage {
    KernelImage::minios("minios-udp")
}

/// Prints a series as CSV to stdout with a `# figN` header comment.
pub fn print_csv(fig: &str, series: &sim_core::stats::Series) {
    println!("# {fig}");
    print!("{}", series.to_csv());
}

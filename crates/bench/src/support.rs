//! Shared helpers for the figure experiments.

use std::net::Ipv4Addr;
use std::path::Path;

use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{Platform, PlatformConfig, TraceConfig, TraceSink};

/// The service IP every UDP-server family shares.
pub const UDP_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// The tracing knob for the figure experiments: opt in by setting the
/// `NEPHELE_TRACE` environment variable to anything but `0` or the empty
/// string. Off by default so the benchmark numbers stay untouched.
pub fn trace_config_from_env() -> TraceConfig {
    match std::env::var("NEPHELE_TRACE") {
        Ok(v) if !v.is_empty() && v != "0" => TraceConfig::enabled(),
        _ => TraceConfig::default(),
    }
}

/// Builds the paper's Fig. 4/5 machine: 12 GiB guest pool, 4 cores.
/// Tracing follows `NEPHELE_TRACE` (see [`trace_config_from_env`]).
pub fn paper_platform() -> Platform {
    Platform::new(PlatformConfig::builder().tracing(trace_config_from_env()).build())
}

/// Builds a platform with a custom guest pool (MiB).
pub fn platform_with_pool(pool_mib: u64) -> Platform {
    Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(pool_mib)
            .tracing(trace_config_from_env())
            .build(),
    )
}

/// Exports a figure run's trace: chrome-trace JSON (loadable in
/// `about:tracing` / Perfetto) and the span-aggregate CSV under
/// `results/`, with the aggregates also printed to stdout next to the
/// figure's series. No-op when the sink is disabled.
pub fn export_trace(trace: &TraceSink, fig: &str) {
    if !trace.is_enabled() {
        return;
    }
    println!("# {fig}: span aggregates");
    print!("{}", trace.span_aggregates_csv());
    let dir = Path::new("results");
    let json = dir.join(format!("{fig}_trace.json"));
    let csv = dir.join(format!("{fig}_spans.csv"));
    match trace.write_chrome_trace(&json) {
        Ok(()) => eprintln!("{fig}: wrote {}", json.display()),
        Err(e) => eprintln!("{fig}: chrome-trace export failed: {e}"),
    }
    match trace.write_span_aggregates(&csv) {
        Ok(()) => eprintln!("{fig}: wrote {}", csv.display()),
        Err(e) => eprintln!("{fig}: span-aggregate export failed: {e}"),
    }
}

/// The Fig. 4/5 guest: 4 MiB Mini-OS UDP server with one vif.
pub fn udp_guest_cfg(name: &str, max_clones: u32) -> DomainConfig {
    DomainConfig::builder(name)
        .memory_mib(4)
        .vif(UDP_IP)
        .max_clones(max_clones)
        .build()
}

/// The Mini-OS image for the UDP server.
pub fn udp_image() -> KernelImage {
    KernelImage::minios("minios-udp")
}

/// Prints a series as CSV to stdout with a `# figN` header comment.
pub fn print_csv(fig: &str, series: &sim_core::stats::Series) {
    println!("# {fig}");
    print!("{}", series.to_csv());
}

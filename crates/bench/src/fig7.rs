//! Fig. 7 — NGINX HTTP request throughput vs. number of workers.
//!
//! Methodology per §7.1: `wrk` keeps 400 open connections per worker for
//! 5 seconds, repeated 30 times; workers run either as Linux processes
//! (socket sharding via `SO_REUSEPORT`, kernel load balancing) or as
//! Unikraft clones (bond load balancing in Dom0, each clone pinned to its
//! own core).
//!
//! The throughput numbers come from a closed-loop queueing simulation over
//! the platform's cost model: each worker's core serves requests serially;
//! clones avoid user/kernel crossings (lower mean service time) and enjoy
//! exclusive cores (lower variance), which is exactly the paper's
//! explanation for the higher and less variable clone throughput. The
//! functional clone-serving path is exercised end-to-end by the
//! integration tests.

use linux_procs::{jittered_service, WrkConfig};
use nephele::sim_core::{CostModel, SimDuration, SplitMix64};
use sim_core::stats::{OnlineStats, Series};

use crate::support::{pct_row, PctRow};

/// Worker flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerKind {
    /// NGINX worker processes on Linux.
    Process,
    /// Unikraft clone workers behind the bond.
    Clone,
}

/// One configuration's result.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Point {
    /// Worker count.
    pub workers: u32,
    /// Mean requests/second over the repetitions.
    pub mean_rps: f64,
    /// Standard deviation over the repetitions.
    pub stddev_rps: f64,
}

/// Simulates one 5-second wrk run against `workers` workers of `kind` and
/// returns total completed requests.
fn simulate_run(kind: WorkerKind, workers: u32, cfg: &WrkConfig, rng: &mut SplitMix64) -> u64 {
    let costs = CostModel::calibrated();
    let (mean, rel_stddev) = match kind {
        // Clones: no user/kernel switches, exclusive pinned core.
        WorkerKind::Clone => (costs.http_service_unikernel, 0.05),
        // Processes: syscall crossings plus shared-kernel interference.
        WorkerKind::Process => (costs.http_service_process, 0.12),
    };
    let horizon = cfg.duration;
    let mut total = 0u64;
    for _worker in 0..workers {
        // A saturated worker core: 400 connections keep it busy, so the
        // completions are one long back-to-back service sequence.
        let mut t = SimDuration::ZERO;
        while t < horizon {
            let mut service = jittered_service(rng, mean, rel_stddev);
            if kind == WorkerKind::Process {
                // Occasional scheduler/softirq interference on the shared
                // kernel: rare but large additions (variance source).
                if rng.chance(0.0008) {
                    service += SimDuration::from_us(rng.range(200, 1200));
                }
            }
            t += service;
            total += 1;
        }
    }
    total
}

/// Runs the experiment for 1..=4 workers with the paper's wrk parameters.
/// Besides the mean/stddev series, returns per-configuration percentile
/// rows over the repetition distribution (req/s).
pub fn run(reps: usize) -> (Series, Vec<(Fig7Point, Fig7Point)>, Vec<PctRow>) {
    let cfg = WrkConfig {
        repetitions: reps,
        ..Default::default()
    };
    let mut series = Series::new(
        "workers",
        &[
            "processes_rps",
            "processes_stddev",
            "clones_rps",
            "clones_stddev",
        ],
    );
    let mut points = Vec::new();
    let mut pcts = Vec::new();
    let mut rng = SplitMix64::new(0x716);
    for workers in 1..=4u32 {
        let mut proc = OnlineStats::new();
        let mut clone = OnlineStats::new();
        let mut proc_samples = Vec::with_capacity(cfg.repetitions);
        let mut clone_samples = Vec::with_capacity(cfg.repetitions);
        for _ in 0..cfg.repetitions {
            let p = simulate_run(WorkerKind::Process, workers, &cfg, &mut rng);
            let c = simulate_run(WorkerKind::Clone, workers, &cfg, &mut rng);
            let (p, c) = (
                p as f64 / cfg.duration.as_secs_f64(),
                c as f64 / cfg.duration.as_secs_f64(),
            );
            proc.push(p);
            clone.push(c);
            proc_samples.push(p);
            clone_samples.push(c);
        }
        pcts.push(pct_row(format!("processes_{workers}w_rps"), &proc_samples));
        pcts.push(pct_row(format!("clones_{workers}w_rps"), &clone_samples));
        series.row(
            workers as f64,
            &[proc.mean(), proc.stddev(), clone.mean(), clone.stddev()],
        );
        points.push((
            Fig7Point {
                workers,
                mean_rps: proc.mean(),
                stddev_rps: proc.stddev(),
            },
            Fig7Point {
                workers,
                mean_rps: clone.mean(),
                stddev_rps: clone.stddev(),
            },
        ));
    }
    (series, points, pcts)
}

/// The platform-side counterpart of the queueing numbers: boots the
/// 4-worker clone family end-to-end (parent plus three clones behind the
/// bond, as §7.1 deploys NGINX) with tracing taken from `NEPHELE_TRACE`,
/// so the figure can report the span breakdown of the real clone path the
/// throughput simulation abstracts away.
pub fn traced_worker_family() -> nephele::TraceSink {
    use apps::UdpEchoApp;
    use nephele::{MuxKind, Platform, PlatformConfig};

    use crate::support::{trace_config_from_env, udp_guest_cfg, udp_image};

    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(512)
            .mux(MuxKind::Bond)
            .tracing(trace_config_from_env())
            .build(),
    );
    let cfg = udp_guest_cfg("worker", 8);
    let parent = p
        .launch(&cfg, &udp_image(), Box::new(UdpEchoApp::new(7000)))
        .expect("worker boot");
    p.enlist_in_mux(parent);
    p.guest_fork(parent, 3).expect("worker clones");
    p.trace().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_linearly_and_clones_win() {
        let (_, pts, _) = run(10);
        for (proc, clone) in &pts {
            assert!(
                clone.mean_rps > proc.mean_rps,
                "{} workers: clones {} vs processes {}",
                clone.workers,
                clone.mean_rps,
                proc.mean_rps
            );
            assert!(
                clone.stddev_rps < proc.stddev_rps,
                "clone throughput must be less variable"
            );
        }
        // Linear growth: 4 workers ≈ 4x 1 worker (within 10%).
        let r = pts[3].1.mean_rps / pts[0].1.mean_rps;
        assert!((3.6..=4.4).contains(&r), "clone scaling factor {r:.2}");
        let r = pts[3].0.mean_rps / pts[0].0.mean_rps;
        assert!((3.6..=4.4).contains(&r), "process scaling factor {r:.2}");
        // Absolute range sanity (paper peaks around 110-120 k req/s).
        assert!((90_000.0..140_000.0).contains(&pts[3].1.mean_rps));
    }

    #[test]
    fn percentile_rows_cover_every_configuration() {
        let (_, _, pcts) = run(5);
        assert_eq!(pcts.len(), 8, "2 kinds x 4 worker counts");
        for r in &pcts {
            assert_eq!(r.count, 5);
            assert!(
                r.p50 <= r.p90 && r.p90 <= r.p99 && r.p99 <= r.max,
                "percentiles must be monotone: {r:?}"
            );
        }
    }
}

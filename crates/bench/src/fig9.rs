//! Fig. 9 — Fuzzing throughput over time (§7.2).
//!
//! Seven curves: Unikraft with and without cloning (each with the getppid
//! baseline), the native Linux process (AFL only, with baseline) and the
//! Linux kernel module baseline. Delegates to the [`fuzz`] crate's
//! campaigns, where the cloning modes run on the real platform
//! (`clone_cow` instrumentation, per-iteration `clone_reset`).

use fuzz::{run_campaign, FuzzConfig, FuzzMode, FuzzReport, FuzzTarget};
use nephele::sim_core::SimDuration;
use sim_core::stats::Series;

use crate::support::trace_config_from_env;

/// The labelled curves of the figure.
pub const CURVES: &[(&str, FuzzMode, FuzzTarget)] = &[
    ("unikraft_baseline", FuzzMode::UnikraftBootEach, FuzzTarget::Getppid),
    ("unikraft", FuzzMode::UnikraftBootEach, FuzzTarget::SyscallSubsystem),
    ("unikraft_cloning_baseline", FuzzMode::UnikraftClone, FuzzTarget::Getppid),
    ("unikraft_cloning", FuzzMode::UnikraftClone, FuzzTarget::SyscallSubsystem),
    ("linux_process_baseline", FuzzMode::LinuxProcess, FuzzTarget::Getppid),
    ("linux_process", FuzzMode::LinuxProcess, FuzzTarget::SyscallSubsystem),
    ("linux_module_baseline", FuzzMode::LinuxKernelModule, FuzzTarget::Getppid),
];

/// Runs every curve for `secs` virtual seconds; returns per-curve reports
/// plus a merged series (one throughput column per curve).
pub fn run(secs: u64) -> (Series, Vec<(&'static str, FuzzReport)>) {
    let mut reports = Vec::new();
    for (label, mode, target) in CURVES {
        let report = run_campaign(&FuzzConfig {
            mode: *mode,
            target: *target,
            duration: SimDuration::from_secs(secs),
            seed: 0xF19,
            tracing: trace_config_from_env(),
        });
        reports.push((*label, report));
    }

    let columns: Vec<&str> = CURVES.iter().map(|(l, _, _)| *l).collect();
    let mut series = Series::new("second", &columns);
    for s in 0..secs as usize {
        let row: Vec<f64> = reports
            .iter()
            .map(|(_, r)| r.series.get(s).map(|(_, v)| *v).unwrap_or(0.0))
            .collect();
        series.row(s as f64, &row);
    }
    (series, reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_ordering_matches_the_paper() {
        let (_, reports) = run(12);
        let get = |label: &str| {
            reports
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, r)| r.avg_throughput)
                .unwrap()
        };
        let boot_each = get("unikraft_baseline");
        let cloning = get("unikraft_cloning_baseline");
        let process = get("linux_process_baseline");
        let module = get("linux_module_baseline");

        // Paper: ~2 / ~470 / ~590 / ~320 exec/s.
        assert!(boot_each < 10.0, "boot-each {boot_each}");
        assert!(cloning > 100.0, "cloning {cloning}");
        assert!(process > cloning, "process {process} vs cloning {cloning}");
        assert!(cloning > module, "cloning {cloning} vs module {module}");
        let gap = (process - cloning) / process;
        assert!(gap < 0.40, "process-vs-cloning gap {gap:.2} (paper 18.6%)");
        let module_gap = (cloning - module) / cloning;
        assert!(
            (0.05..0.60).contains(&module_gap),
            "cloning-vs-module gap {module_gap:.2} (paper 31.9%)"
        );
    }
}

//! Fig. 6 — Fork and cloning duration vs. allocated memory size.
//!
//! The same application (allocate a resident chunk, then accept
//! fork/clone requests) is built for Linux and run as a process, and built
//! for Unikraft and run as a VM (§6.2). For each allocation size
//! (1 MiB – 4 GiB) the first and second fork/clone durations are measured;
//! the clone numbers "skip cloning the I/O devices and keep only the
//! mandatory operations of the second stage", whose userspace cost is the
//! separate flat line (~3 ms first / ~1.9 ms later).

use apps::MemhogApp;
use linux_procs::ProcessModel;
use nephele::hypervisor::cloneop::CloneOp;
use nephele::sim_core::{Clock, CostModel, DomId};
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{MuxKind, Platform, PlatformConfig, TraceSink};
use sim_core::stats::Series;

use crate::support::trace_config_from_env;

/// The allocation sizes of the figure's x-axis (MiB).
pub const SIZES_MIB: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// One size's measurements, milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Point {
    /// Allocation size in MiB.
    pub size_mib: u64,
    /// First process fork.
    pub process_fork1_ms: f64,
    /// Second process fork.
    pub process_fork2_ms: f64,
    /// First unikernel clone.
    pub clone1_ms: f64,
    /// Second unikernel clone.
    pub clone2_ms: f64,
    /// Userspace (second-stage) operations within the second clone.
    pub userspace_ms: f64,
}

fn measure_process(size_mib: u64) -> (f64, f64) {
    let clock = Clock::new();
    let mut pm = ProcessModel::new(clock.clone(), std::rc::Rc::new(CostModel::calibrated()));
    let mut p = pm.spawn(size_mib);
    let t0 = clock.now();
    pm.fork(&mut p);
    let first = clock.now().since(t0).as_ms_f64();
    let t1 = clock.now();
    pm.fork(&mut p);
    let second = clock.now().since(t1).as_ms_f64();
    (first, second)
}

fn measure_clone(size_mib: u64) -> (f64, f64, f64, TraceSink) {
    let mut p = Platform::new(
        PlatformConfig::builder()
            // Headroom for the VM plus its clones' private memory.
            .guest_pool_mib((size_mib + 64).next_power_of_two().max(512) + 1024)
            .mux(MuxKind::None)
            .tracing(trace_config_from_env())
            .build(),
    );
    // Only the mandatory second-stage operations (§6.2).
    p.daemon.config.minimal = true;

    let cfg = DomainConfig::builder("memhog")
        .memory_mib(size_mib + 16)
        .max_clones(8)
        .resume_clones(true)
        .build();
    let parent = p
        .launch(
            &cfg,
            &KernelImage::unikraft("memhog"),
            Box::new(MemhogApp::new(size_mib)),
        )
        .expect("memhog boot");

    let mut clone_once = || {
        let t0 = p.clock.now();
        p.hv.cloneop(
            DomId::DOM0,
            CloneOp::Clone {
                target: Some(parent),
                nr_clones: 1,
            },
        )
        .expect("stage 1");
        let stage1_done = p.clock.now();
        p.finish_pending_clones(parent).expect("stage 2");
        let total = p.clock.now().since(t0).as_ms_f64();
        let userspace = p.clock.now().since(stage1_done).as_ms_f64();
        (total, userspace)
    };

    let (first, _us1) = clone_once();
    let (second, us2) = clone_once();
    let trace = p.trace().clone();
    (first, second, us2, trace)
}

/// Runs the experiment over `sizes` (defaults to [`SIZES_MIB`]). The
/// returned sink holds the trace of the largest size's clone run
/// (disabled unless `NEPHELE_TRACE` is set).
pub fn run(sizes: &[u64]) -> (Series, Vec<Fig6Point>, TraceSink) {
    let mut series = Series::new(
        "size_mib",
        &[
            "process_fork1_ms",
            "process_fork2_ms",
            "clone1_ms",
            "clone2_ms",
            "userspace_ms",
        ],
    );
    let mut points = Vec::new();
    let mut trace = TraceSink::disabled();
    for &size in sizes {
        let (pf1, pf2) = measure_process(size);
        let (c1, c2, us, t) = measure_clone(size);
        trace = t;
        series.row(size as f64, &[pf1, pf2, c1, c2, us]);
        points.push(Fig6Point {
            size_mib: size,
            process_fork1_ms: pf1,
            process_fork2_ms: pf2,
            clone1_ms: c1,
            clone2_ms: c2,
            userspace_ms: us,
        });
    }
    (series, points, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_between_fork_and_clone_narrows_with_size() {
        let (_, pts, _) = run(&[1, 256, 1024]);
        let small = &pts[0];
        let large = &pts[2];

        // Small sizes: the clone's fixed overhead dominates; the relative
        // gap is enormous (paper: 5757% at the low end).
        let small_gap = small.clone2_ms / small.process_fork2_ms;
        // Large sizes: page-table work dominates both; the gap collapses
        // (paper: 21% at 4 GiB).
        let large_gap = large.clone2_ms / large.process_fork2_ms;
        assert!(small_gap > 10.0, "small gap {small_gap:.1}x");
        assert!(large_gap < 2.5, "large gap {large_gap:.2}x");

        // First is slower than second for both variants.
        assert!(small.process_fork1_ms > small.process_fork2_ms);
        assert!(large.clone1_ms > large.clone2_ms);
    }

    #[test]
    fn sub_minimum_sizes_clone_alike() {
        // Xen's 4 MiB domain minimum keeps the curve flat below it.
        let (_, tiny, _) = run(&[1, 2]);
        let rel = (tiny[0].clone2_ms - tiny[1].clone2_ms).abs() / tiny[0].clone2_ms;
        assert!(rel < 0.25, "sub-minimum sizes should clone alike ({rel:.2})");
    }

    #[test]
    fn userspace_operations_are_flat_and_small() {
        let (_, pts, _) = run(&[1, 512]);
        for p in &pts {
            assert!(
                p.userspace_ms < 5.0,
                "userspace ops should be a few ms, got {}",
                p.userspace_ms
            );
        }
        let rel = (pts[0].userspace_ms - pts[1].userspace_ms).abs() / pts[0].userspace_ms;
        assert!(rel < 0.3, "userspace ops must not scale with memory ({rel:.2})");
    }
}

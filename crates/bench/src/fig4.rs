//! Fig. 4 — Instantiation times for the Mini-OS UDP server.
//!
//! Four curves, 1000 instances each, methodology per §6.1:
//!
//! * **boot** — iteratively `xl create` new 4 MiB VMs (name validation
//!   disabled, as the paper does for a fair baseline);
//! * **restore** — per iteration: create, save to an image, restore; the
//!   plotted value is the restore duration (it copies the *entire*
//!   configured memory back);
//! * **clone + XS deep copy** — `fork()` from the parent guest with
//!   `xencloned` copying Xenstore entries one write request at a time;
//! * **clone** — the same with the `xs_clone` request.
//!
//! Latency spikes come from Xenstore access-log rotation; with `xs_clone`
//! only a couple of rotations remain across the 1000 clones.

use apps::UdpEchoApp;
use nephele::TraceSink;
use sim_core::stats::Series;

use crate::support::{paper_platform, pct_row, udp_guest_cfg, udp_image, PctRow};

/// Measured instantiation curves.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// instance-index → milliseconds, one column per curve.
    pub series: Series,
    /// Access-log rotations observed during the plain-clone run.
    pub clone_run_rotations: u64,
    /// Access-log rotations observed during the boot run.
    pub boot_run_rotations: u64,
    /// Mean of each curve (boot, restore, deep-copy clone, clone), ms.
    pub means: [f64; 4],
    /// Percentile summary per curve (ms). The deep-copy clone's p99 is
    /// where the Xenstore log-rotation spikes show up — the means hide
    /// them entirely.
    pub percentiles: Vec<PctRow>,
    /// The trace recorded during the `xs_clone` run (disabled unless the
    /// experiment was run with tracing on; see `support::export_trace`).
    pub trace: TraceSink,
}

fn measure_boot(n: usize) -> (Vec<f64>, u64) {
    let mut p = paper_platform();
    let img = udp_image();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let cfg = udp_guest_cfg(&format!("udp-{i}"), 0);
        let t0 = p.clock.now();
        p.launch(&cfg, &img, Box::new(UdpEchoApp::new(7000)))
            .expect("boot");
        out.push(p.clock.now().since(t0).as_ms_f64());
    }
    (out, p.xs.log_rotations())
}

fn measure_restore(n: usize) -> Vec<f64> {
    let mut p = paper_platform();
    let img = udp_image();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let cfg = udp_guest_cfg(&format!("udp-{i}"), 0);
        let created = p.launch(&cfg, &img, Box::new(UdpEchoApp::new(7000))).unwrap();
        let slot = format!("img-{i}");
        p.xl
            .save(&mut p.hv, &mut p.xs, &mut p.dm, &mut p.udev, created, &slot, &img)
            .expect("save");
        let t0 = p.clock.now();
        p.xl
            .restore(&mut p.hv, &mut p.xs, &mut p.dm, &mut p.udev, &slot, None)
            .expect("restore");
        out.push(p.clock.now().since(t0).as_ms_f64());
    }
    out
}

fn measure_clone(n: usize, use_xs_clone: bool) -> (Vec<f64>, u64, TraceSink) {
    let mut p = paper_platform();
    p.daemon.config.use_xs_clone = use_xs_clone;
    let img = udp_image();
    let cfg = udp_guest_cfg("udp", n as u32 + 1);
    let parent = p
        .launch(&cfg, &img, Box::new(UdpEchoApp::new(7000)))
        .expect("parent boot");
    p.enlist_in_mux(parent);
    let rotations_before = p.xs.log_rotations();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = p.clock.now();
        p.guest_fork(parent, 1).expect("fork");
        out.push(p.clock.now().since(t0).as_ms_f64());
    }
    // The sink outlives the platform (shared buffer), so the caller can
    // export after the run is torn down.
    (out, p.xs.log_rotations() - rotations_before, p.trace().clone())
}

/// Runs the experiment with `n` instances per curve (the paper uses 1000).
pub fn run(n: usize) -> Fig4Result {
    let (boot, boot_rot) = measure_boot(n);
    let restore = measure_restore(n);
    let (deep, _, _) = measure_clone(n, false);
    let (clone, clone_rot, trace) = measure_clone(n, true);

    let mut series = Series::new(
        "instance",
        &["boot_ms", "restore_ms", "clone_deepcopy_ms", "clone_ms"],
    );
    let mut sums = [0.0f64; 4];
    for i in 0..n {
        series.row(
            (i + 1) as f64,
            &[boot[i], restore[i], deep[i], clone[i]],
        );
        for (s, v) in sums.iter_mut().zip([boot[i], restore[i], deep[i], clone[i]]) {
            *s += v;
        }
    }
    let percentiles = vec![
        pct_row("boot_ms", &boot),
        pct_row("restore_ms", &restore),
        pct_row("clone_deepcopy_ms", &deep),
        pct_row("clone_ms", &clone),
    ];
    Fig4Result {
        series,
        clone_run_rotations: clone_rot,
        boot_run_rotations: boot_rot,
        means: sums.map(|s| s / n as f64),
        percentiles,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        // A reduced run keeps the test fast; trends already show at 120.
        let r = run(120);
        let [boot, restore, deep, clone] = r.means;

        // Clone is several times faster than boot (paper: ~8x).
        assert!(boot / clone > 4.0, "boot {boot:.1} / clone {clone:.1}");
        // Restore is slower than boot.
        assert!(restore > boot, "restore {restore:.1} vs boot {boot:.1}");
        // Deep copy sits between plain clone and boot.
        assert!(deep > clone && deep < boot, "deep {deep:.1}");

        // Boot grows with the instance count; clone stays much flatter.
        let boots = r.series.column("boot_ms").unwrap();
        let clones = r.series.column("clone_ms").unwrap();
        let boot_growth = boots[110..].iter().sum::<f64>() / 10.0
            - boots[..10].iter().sum::<f64>() / 10.0;
        let clone_growth = clones[110..].iter().sum::<f64>() / 10.0
            - clones[..10].iter().sum::<f64>() / 10.0;
        assert!(boot_growth > 2.0 * clone_growth.max(0.01),
            "boot growth {boot_growth:.2} vs clone growth {clone_growth:.2}");

        // Tail behaviour: the deep-copy curve's Xenstore log-rotation
        // spikes live in the upper tail, far above both the p90 and the
        // mean (which dilutes them away); the xs_clone curve's body stays
        // flat (only a couple of rotations remain, so p99 hugs p50).
        let pct = |name: &str| r.percentiles.iter().find(|p| p.curve == name).unwrap();
        let deep_pct = pct("clone_deepcopy_ms");
        assert!(
            deep_pct.max > 2.0 * deep_pct.p90,
            "rotation spike must dominate the deep-copy tail: {deep_pct:?}"
        );
        assert!(
            deep_pct.max > 2.0 * r.means[2],
            "the mean ({:.1} ms) must hide the spike ({:.1} ms)",
            r.means[2],
            deep_pct.max
        );
        let clone_pct = pct("clone_ms");
        assert!(
            clone_pct.p99 < 1.2 * clone_pct.p50,
            "xs_clone body must stay flat: {clone_pct:?}"
        );
    }
}

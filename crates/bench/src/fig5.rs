//! Fig. 5 — Memory consumption: booting vs. cloning.
//!
//! The machine is split as in §6.2: 4 GiB for Dom0, 12 GiB for the guest
//! pool. Instances of the 4 MiB UDP server are created until memory runs
//! out — by booting in one run and by cloning in the other — while free
//! memory is sampled on both sides. The paper reaches ~2800 booted
//! instances vs ~8900 clones (~3x), each clone consuming ~1.6 MB of which
//! 1 MB is the preallocated RX ring.

use apps::UdpEchoApp;
use nephele::TraceSink;
use sim_core::stats::Series;

use crate::support::{platform_with_pool, udp_guest_cfg, udp_image};

/// Result of one packing run.
#[derive(Debug, Clone)]
pub struct PackingRun {
    /// `(instances, hyp free GB, dom0 free GB)` samples.
    pub series: Series,
    /// Instances running when memory was exhausted.
    pub max_instances: u64,
    /// Mean memory per instance, bytes.
    pub bytes_per_instance: u64,
    /// Host-side p2m bytes shared between family members at the end of
    /// the run (zero when booting: every boot builds its own template).
    pub p2m_shared_bytes: u64,
    /// Host-side p2m bytes private to one domain at the end of the run.
    pub p2m_unique_bytes: u64,
    /// The run's trace sink (disabled unless `NEPHELE_TRACE` is set).
    pub trace: TraceSink,
}

/// Combined experiment result.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The boot run.
    pub booting: PackingRun,
    /// The clone run.
    pub cloning: PackingRun,
}

const SAMPLE_EVERY: u64 = 25;

fn run_boot(pool_mib: u64, limit: u64) -> PackingRun {
    let mut p = platform_with_pool(pool_mib);
    let img = udp_image();
    let mut series = Series::new("instances", &["hyp_free_gb", "dom0_free_gb"]);
    let free0 = p.snapshot().hyp_free_bytes;
    let mut count = 0u64;
    while count < limit {
        let cfg = udp_guest_cfg(&format!("udp-{count}"), 0);
        match p.launch(&cfg, &img, Box::new(UdpEchoApp::new(7000))) {
            Ok(_) => count += 1,
            Err(_) => break,
        }
        if count % SAMPLE_EVERY == 0 {
            let snap = p.snapshot();
            series.row(
                count as f64,
                &[
                    snap.hyp_free_bytes as f64 / (1 << 30) as f64,
                    snap.dom0_free_bytes as f64 / (1 << 30) as f64,
                ],
            );
        }
    }
    let end = p.snapshot();
    PackingRun {
        series,
        max_instances: count,
        bytes_per_instance: (free0 - end.hyp_free_bytes) / count.max(1),
        p2m_shared_bytes: end.p2m_shared_bytes,
        p2m_unique_bytes: end.p2m_unique_bytes,
        trace: p.trace().clone(),
    }
}

fn run_clone(pool_mib: u64, limit: u64) -> PackingRun {
    let mut p = platform_with_pool(pool_mib);
    let img = udp_image();
    let cfg = udp_guest_cfg("udp", u32::MAX);
    let parent = p
        .launch(&cfg, &img, Box::new(UdpEchoApp::new(7000)))
        .expect("parent");
    p.enlist_in_mux(parent);
    let mut series = Series::new("instances", &["hyp_free_gb", "dom0_free_gb"]);
    let free_after_parent = p.snapshot().hyp_free_bytes;
    let mut count = 1u64; // the parent
    while count < limit {
        match p.guest_fork(parent, 1) {
            Ok(kids) if !kids.is_empty() => count += 1,
            _ => break,
        }
        if count % SAMPLE_EVERY == 0 {
            let snap = p.snapshot();
            series.row(
                count as f64,
                &[
                    snap.hyp_free_bytes as f64 / (1 << 30) as f64,
                    snap.dom0_free_bytes as f64 / (1 << 30) as f64,
                ],
            );
        }
    }
    let end = p.snapshot();
    PackingRun {
        series,
        max_instances: count,
        bytes_per_instance: (free_after_parent - end.hyp_free_bytes) / (count - 1).max(1),
        p2m_shared_bytes: end.p2m_shared_bytes,
        p2m_unique_bytes: end.p2m_unique_bytes,
        trace: p.trace().clone(),
    }
}

/// Runs both packing experiments on the paper's 12 GiB pool, capping each
/// at `limit` instances (`u64::MAX` replicates run-to-exhaustion).
pub fn run(limit: u64) -> Fig5Result {
    run_with_pool(12 * 1024, limit)
}

/// Runs both packing experiments on a guest pool of `pool_mib` MiB (a
/// smaller machine packs proportionally fewer instances with the same
/// density ratio — handy for quick runs).
pub fn run_with_pool(pool_mib: u64, limit: u64) -> Fig5Result {
    Fig5Result {
        booting: run_boot(pool_mib, limit),
        cloning: run_clone(pool_mib, limit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloning_packs_several_times_more_instances() {
        // A 1 GiB pool keeps the test quick; the density ratio is
        // pool-size independent.
        let r = run_with_pool(1024, u64::MAX);
        let boots = r.booting.max_instances;
        let clones = r.cloning.max_instances;
        assert!(
            clones as f64 / boots as f64 > 2.0,
            "clones {clones} vs boots {boots}"
        );
        // Per-instance footprints: ~4 MiB booted vs ~1-2 MiB cloned.
        assert!(r.booting.bytes_per_instance > 4 * 1024 * 1024);
        assert!(
            r.cloning.bytes_per_instance < 2 * 1024 * 1024,
            "clone footprint = {}",
            r.cloning.bytes_per_instance
        );
        // The RX ring alone accounts for ~1 MiB of each clone.
        assert!(r.cloning.bytes_per_instance > 1024 * 1024);
    }
}

//! Fig. 10 — OpenFaaS memory consumption: containers vs. unikernels.
//!
//! Delegates to the [`faas`] crate with the paper's setup: a Python
//! "Hello World" function, RPS autoscaling, and either Kubernetes
//! containers or Nephele unikernel clones as instances. Reports the memory
//! occupied by the deployment over time and the instants at which new
//! instances are reported Ready (the dashed lines).

use faas::{run_faas, Backend, FaasConfig, FaasReport};
use nephele::sim_core::SimDuration;
use sim_core::stats::Series;

/// Runs both backends for `secs` seconds.
pub fn run(secs: u64) -> (Series, FaasReport, FaasReport) {
    let base = FaasConfig {
        duration: SimDuration::from_secs(secs),
        ..Default::default()
    };
    let containers = run_faas(&FaasConfig {
        backend: Backend::Containers,
        ..base.clone()
    });
    let unikernels = run_faas(&FaasConfig {
        backend: Backend::Unikernels,
        ..base
    });

    let mut series = Series::new("second", &["containers_mb", "unikernels_mb"]);
    for s in 0..secs as usize {
        series.row(
            s as f64,
            &[
                containers.memory_series.get(s).map(|(_, m)| *m).unwrap_or(0.0),
                unikernels.memory_series.get(s).map(|(_, m)| *m).unwrap_or(0.0),
            ],
        );
    }
    (series, containers, unikernels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unikernel_memory_grows_by_tens_not_hundreds_of_mb() {
        let (_, containers, unikernels) = run(90);
        // Per-added-instance growth.
        let growth = |r: &FaasReport| {
            let first = r.memory_series[5].1;
            let last = r.memory_series.last().unwrap().1;
            (last - first) / (r.instances as f64 - 1.0).max(1.0)
        };
        let c = growth(&containers);
        let u = growth(&unikernels);
        assert!(c > 120.0, "container growth {c:.0} MB/instance");
        assert!(u < 80.0, "unikernel growth {u:.0} MB/instance");
        // Clones become ready sooner (paper: ~5 s on average).
        let avg_delta: f64 = containers
            .ready_times
            .iter()
            .zip(&unikernels.ready_times)
            .map(|(c, u)| c - u)
            .sum::<f64>()
            / containers.ready_times.len() as f64;
        assert!(avg_delta > 3.0, "avg readiness advantage {avg_delta:.1}s");
    }
}

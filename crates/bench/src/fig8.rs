//! Fig. 8 — Redis database saving times vs. number of updated keys.
//!
//! Methodology per §7.1: after an initial save (which marks the address
//! space COW), the database is populated by mass insertion and a second
//! save is issued. Reported per key count:
//!
//! * the second `fork()`/clone duration (grows with the dirtied memory);
//! * the time to write the snapshot to the 9pfs share;
//! * for clones, the constant userspace I/O-cloning cost (toolstack
//!   introduction + 9pfs QMP cloning), which is amortized for larger
//!   databases. Network devices are not cloned ("the Redis clones do not
//!   need any network support").
//!
//! The baseline runs Redis as a process inside an Alpine Linux VM, saving
//! to the same 9pfs share.

use std::net::Ipv4Addr;

use apps::RedisApp;
use linux_procs::ProcessModel;
use nephele::hypervisor::cloneop::CloneOp;
use nephele::sim_core::{Clock, CostModel, DomId, PAGE_SIZE};
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{ClonePolicy, DeviceClass, MuxKind, Platform, PlatformConfig, TraceSink};
use sim_core::stats::Series;

use crate::support::trace_config_from_env;

/// Key counts on the figure's x-axis.
pub const KEY_COUNTS: &[u64] = &[0, 1, 10, 100, 1000, 10_000, 100_000, 1_000_000];

/// Bytes per value in the mass insertion.
pub const VALUE_LEN: usize = 64;

/// One key count's measurements, milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Point {
    /// Updated keys between the saves.
    pub keys: u64,
    /// Second fork of the VM-hosted Redis process.
    pub process_fork_ms: f64,
    /// Process snapshot write to 9pfs.
    pub process_save_ms: f64,
    /// Second clone of the Unikraft Redis.
    pub clone_ms: f64,
    /// Clone snapshot write to 9pfs.
    pub clone_save_ms: f64,
    /// Userspace I/O-cloning operations inside the clone time.
    pub userspace_ms: f64,
}

/// The Alpine-VM process baseline: fork + serialize + 9pfs write, using
/// the same cost knobs as the guest path.
fn measure_process(keys: u64) -> (f64, f64) {
    let clock = Clock::new();
    let costs = CostModel::calibrated();
    let mut pm = ProcessModel::new(clock.clone(), std::rc::Rc::new(costs.clone()));
    // Redis resident base ~16 MiB plus the inserted keys.
    let mut redis = pm.spawn(16);
    pm.fork(&mut redis); // initial save marks the space COW

    // Mass insertion dirties pages: key+value+overhead per entry.
    let entry_bytes = (VALUE_LEN + 48) as u64;
    let dirtied_pages = (keys * entry_bytes).div_ceil(PAGE_SIZE as u64);
    pm.grow(&mut redis, dirtied_pages);

    let t0 = clock.now();
    pm.fork(&mut redis);
    let fork_ms = clock.now().since(t0).as_ms_f64();

    // The forked child serializes and writes through the 9pfs mount.
    let t1 = clock.now();
    clock.advance(costs.p9fs_rpc * 3); // attach + create + clunk
    clock.advance(costs.redis_serialize_per_key.saturating_mul(keys));
    let bytes = keys * (8 + 1 + VALUE_LEN as u64 + 1);
    clock.advance(
        costs
            .p9fs_write_per_page
            .saturating_mul(bytes.div_ceil(PAGE_SIZE as u64)),
    );
    let save_ms = clock.now().since(t1).as_ms_f64();
    (fork_ms, save_ms)
}

/// The Unikraft clone path, end-to-end on the platform.
fn measure_clone(keys: u64) -> (f64, f64, f64, TraceSink) {
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(2048)
            .mux(MuxKind::None)
            .tracing(trace_config_from_env())
            .build(),
    );
    p.daemon.config.policy = ClonePolicy::all().set(DeviceClass::Vif, false); // §7.1 optimization
    p.dm.fs.mkdir_p("/export/redis").ok();

    let cfg = DomainConfig::builder("redis")
        .memory_mib(512)
        .vif(Ipv4Addr::new(10, 0, 0, 2))
        .p9fs("/export/redis")
        .max_clones(16)
        .build();
    let parent = p
        .launch(&cfg, &KernelImage::unikraft("redis"), Box::new(RedisApp::new()))
        .expect("redis boot");

    fn clone_and_save(p: &mut Platform, parent: DomId) -> (f64, f64, f64) {
        let t0 = p.clock.now();
        p.hv.cloneop(
            DomId::DOM0,
            CloneOp::Clone {
                target: Some(parent),
                nr_clones: 1,
            },
        )
        .expect("stage 1");
        let stage1_done = p.clock.now();
        let completed = p.finish_pending_clones(parent).expect("stage 2");
        let clone_ms = p.clock.now().since(t0).as_ms_f64();
        let userspace_ms = p.clock.now().since(stage1_done).as_ms_f64();
        let child = completed[0];
        // Build the saver's guest slot and dump the fork-point state.
        let t1 = p.clock.now();
        // The cloned slot was not created through guest_fork here, so run
        // the dump from the parent's app against the child domain via the
        // platform's registered child slot.
        let save_ms = p
            .with_app::<RedisApp, f64>(child, |app, env| {
                let start = env.hv.clock().now();
                app.dump_to_fs(env);
                env.hv.clock().now().since(start).as_ms_f64()
            })
            .unwrap_or_else(|| p.clock.now().since(t1).as_ms_f64());
        let _ = p.destroy(child);
        (clone_ms, save_ms, userspace_ms)
    }

    // Initial save: first clone marks everything COW.
    let _ = clone_and_save(&mut p, parent);

    // Mass insert, then the measured second save.
    p.with_app::<RedisApp, ()>(parent, |app, env| {
        app.mass_insert(env, keys, VALUE_LEN);
    })
    .unwrap();
    let (clone_ms, save_ms, userspace_ms) = clone_and_save(&mut p, parent);
    (clone_ms, save_ms, userspace_ms, p.trace().clone())
}

/// Runs the experiment over `key_counts`. The returned sink is the trace
/// of the largest key count's clone run (histograms of `clone.stage1`,
/// `clone.stage2`, ring transfers, ...), enabled via `NEPHELE_TRACE`.
pub fn run(key_counts: &[u64]) -> (Series, Vec<Fig8Point>, TraceSink) {
    let mut series = Series::new(
        "keys",
        &[
            "process_fork_ms",
            "process_save_ms",
            "clone_ms",
            "clone_save_ms",
            "userspace_ms",
        ],
    );
    let mut points = Vec::new();
    let mut trace = TraceSink::disabled();
    for &keys in key_counts {
        let (pf, ps) = measure_process(keys);
        let (c, cs, us, t) = measure_clone(keys);
        trace = t;
        series.row(keys as f64, &[pf, ps, c, cs, us]);
        points.push(Fig8Point {
            keys,
            process_fork_ms: pf,
            process_save_ms: ps,
            clone_ms: c,
            clone_save_ms: cs,
            userspace_ms: us,
        });
    }
    (series, points, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_cloning_cost_amortizes_with_database_size() {
        let (_, pts, _) = run(&[0, 20_000]);
        let small = &pts[0];
        let large = &pts[1];

        // Userspace I/O cloning is a (small) constant.
        assert!(small.userspace_ms < 10.0);
        let rel = (small.userspace_ms - large.userspace_ms).abs() / small.userspace_ms;
        assert!(rel < 0.4, "userspace should be ~constant ({rel:.2})");

        // Save time grows with keys and dominates at large counts.
        assert!(large.clone_save_ms > 10.0 * small.clone_save_ms.max(0.05));
        // Clone duration grows with dirtied memory.
        assert!(large.clone_ms > small.clone_ms);

        // At large counts the clone save converges towards the process
        // save (the paper: "save times that are comparable").
        let ratio = large.clone_save_ms / large.process_save_ms;
        assert!((0.5..2.0).contains(&ratio), "save ratio {ratio:.2}");
    }

    #[test]
    fn dump_contains_every_key() {
        // Cross-check of the measured path's functional output.
        let (_, pts, _) = run(&[100]);
        assert_eq!(pts.len(), 1);
    }
}

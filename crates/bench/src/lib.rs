//! The benchmark harness: one module per figure of the paper's evaluation.
//!
//! Every module exposes a `run(...)` function returning a
//! [`Series`](sim_core::stats::Series) (or a set of labelled series) with
//! the same curves the paper plots, plus a binary (`cargo run -p bench
//! --release --bin figN`) that prints the series as CSV together with a
//! summary of the headline comparisons. See `DESIGN.md` for the experiment
//! index and `EXPERIMENTS.md` for recorded paper-vs-measured results.

pub mod fig10;
pub mod fig10scale;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod support;

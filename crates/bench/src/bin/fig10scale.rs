//! Regenerates the Fig. 10 scale companion: request-cloning policy
//! latency percentiles at high clone density.
//!
//! Usage: `cargo run -p bench --release --bin fig10scale [live_domains]`
//! (default 10000). Honors `NEPHELE_THREADS`; the CSV is byte-identical
//! at any width.

fn main() {
    let live: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let threads: usize = std::env::var("NEPHELE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    eprintln!("fig10scale: replaying traffic against {live} live clones ({threads} thread(s))...");
    let (series, report) = bench::fig10scale::run(live, threads);
    bench::support::print_csv("fig10scale: request-cloning policy latency (us)", &series);

    eprintln!();
    eprintln!("summary:");
    eprintln!(
        "  live domains at replay: {} ({} churned through destroy)",
        report.live_at_replay, report.destroyed
    );
    eprintln!(
        "  clone_request_k3: {} served, {} loser replicas cancelled, p99 {:.1} us",
        report.clone_request.served,
        report.clone_request.cancelled,
        report.clone_request.latency.percentile(99.0) as f64 / 1_000.0
    );
    eprintln!(
        "  clone_vm: {} served, {} cloned on demand, {} queued, p99 {:.1} us",
        report.clone_vm.served,
        report.clone_vm.cloned_on_demand,
        report.clone_vm.queued,
        report.clone_vm.latency.percentile(99.0) as f64 / 1_000.0
    );
}

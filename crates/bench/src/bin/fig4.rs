//! Regenerates Fig. 4: instantiation times for the Mini-OS UDP server.
//!
//! Usage: `cargo run -p bench --release --bin fig4 [instances]`
//! (default 1000, as in the paper).

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    eprintln!("fig4: measuring boot / restore / clone curves for {n} instances each...");
    let r = bench::fig4::run(n);
    bench::support::print_csv("fig4: instantiation times (ms)", &r.series);
    bench::support::export_percentiles("fig4", &r.percentiles);
    bench::support::export_trace(&r.trace, "fig4");

    let [boot, restore, deep, clone] = r.means;
    eprintln!();
    eprintln!("summary (means over {n} instances):");
    eprintln!("  boot               = {boot:8.1} ms");
    eprintln!("  restore            = {restore:8.1} ms");
    eprintln!("  clone + deep copy  = {deep:8.1} ms");
    eprintln!("  clone (xs_clone)   = {clone:8.1} ms");
    eprintln!("  clone speedup over boot = {:.1}x (paper: ~8x)", boot / clone);
    eprintln!(
        "  access-log rotations: boot run = {}, clone run = {} (paper: spikes drop to 2)",
        r.boot_run_rotations, r.clone_run_rotations
    );
}

//! Ablation study: isolates the contribution of individual Nephele design
//! choices (see DESIGN.md §4).
//!
//! Usage: `cargo run -p bench --release --bin ablation`

use std::net::Ipv4Addr;

use bench::support::{udp_guest_cfg, udp_image};
use nephele::apps::UdpEchoApp;
use nephele::sim_core::DomId;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{ClonePolicy, DeviceClass, MuxKind, Platform, PlatformConfig};

fn clone_mean_ms(p: &mut Platform, parent: DomId, n: usize) -> f64 {
    let t0 = p.clock.now();
    for _ in 0..n {
        p.guest_fork(parent, 1).expect("fork");
    }
    p.clock.now().since(t0).as_ms_f64() / n as f64
}

fn platform(mux: MuxKind) -> Platform {
    Platform::new(PlatformConfig::builder().mux(mux).build())
}

fn boot_parent(p: &mut Platform) -> DomId {
    let parent = p
        .launch(
            &udp_guest_cfg("udp", u32::MAX),
            &udp_image(),
            Box::new(UdpEchoApp::new(7000)),
        )
        .expect("boot");
    p.enlist_in_mux(parent);
    parent
}

fn ablate_xs_clone() {
    println!("## xs_clone vs deep copy (mean clone time, ms)");
    println!("instances,xs_clone,deep_copy");
    for n in [50usize, 200, 500] {
        let mut with = platform(MuxKind::Bond);
        let parent = boot_parent(&mut with);
        let fast = clone_mean_ms(&mut with, parent, n);

        let mut without = platform(MuxKind::Bond);
        without.daemon.config.use_xs_clone = false;
        let parent = boot_parent(&mut without);
        let slow = clone_mean_ms(&mut without, parent, n);
        println!("{n},{fast:.2},{slow:.2}");
    }
}

fn ablate_mux() {
    println!("\n## clone mux flavour (mean clone time over 100 clones, ms)");
    println!("mux,clone_ms");
    for (label, mux) in [
        ("bond", MuxKind::Bond),
        ("ovs", MuxKind::Ovs),
        ("none", MuxKind::None),
    ] {
        let mut p = platform(mux);
        let parent = boot_parent(&mut p);
        let ms = clone_mean_ms(&mut p, parent, 100);
        println!("{label},{ms:.2}");
    }
}

fn ablate_ring_capacity() {
    println!("\n## notification-ring capacity (burst of 64 clones in one hypercall)");
    println!("capacity,succeeded_without_drain");
    for cap in [4usize, 16, 64, 128] {
        let mut p = Platform::new(
            PlatformConfig::builder()
                .ring_capacity(cap)
                .mux(MuxKind::None)
                .build(),
        );
        let parent = p
            .launch(
                &udp_guest_cfg("udp", u32::MAX),
                &udp_image(),
                Box::new(UdpEchoApp::new(7000)),
            )
            .unwrap();
        // Issue first-stage clones without draining: backpressure kicks in
        // once the ring fills (§5).
        use nephele::hypervisor::cloneop::CloneOp;
        let mut ok = 0;
        for _ in 0..64 {
            if p
                .hv
                .cloneop(
                    DomId::DOM0,
                    CloneOp::Clone {
                        target: Some(parent),
                        nr_clones: 1,
                    },
                )
                .is_ok()
            {
                ok += 1;
            } else {
                break;
            }
        }
        println!("{cap},{ok}");
        let _ = p.finish_pending_clones(parent);
    }
}

fn ablate_device_cloning() {
    println!("\n## device-cloning scope (mean clone time over 50 clones, ms)");
    println!("devices_cloned,clone_ms");
    for (label, network, p9) in [
        ("all", true, true),
        ("no_network", false, true),
        ("minimal", false, false),
    ] {
        let mut p = Platform::new(
            PlatformConfig::builder()
                .mux(MuxKind::None)
                .clone_policy(
                    ClonePolicy::all()
                        .set(DeviceClass::Vif, network)
                        .set(DeviceClass::P9fs, p9),
                )
                .build(),
        );
        p.daemon.config.minimal = !network && !p9;
        let cfg = DomainConfig::builder("redis")
            .memory_mib(16)
            .vif(Ipv4Addr::new(10, 0, 0, 2))
            .p9fs("/export")
            .max_clones(u32::MAX)
            .build();
        // No guest app: we isolate the second stage's device work from
        // application-level fork behaviour.
        let parent = p.launch_plain(&cfg, &KernelImage::unikraft("redis")).unwrap();
        let t0 = p.clock.now();
        for _ in 0..50 {
            p.clone_domain(parent, 1).expect("clone");
        }
        let ms = p.clock.now().since(t0).as_ms_f64() / 50.0;
        println!("{label},{ms:.2}");
    }
}

fn main() {
    eprintln!("ablation: isolating Nephele design choices...");
    ablate_xs_clone();
    ablate_mux();
    ablate_ring_capacity();
    ablate_device_cloning();
}

//! Regenerates Fig. 11: reaction of containers vs. unikernels to
//! increasing function call demand.
//!
//! Usage: `cargo run -p bench --release --bin fig11 [seconds]`
//! (default 150, the paper's window).

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    eprintln!("fig11: FaaS throughput reaction over {secs} s...");
    let (series, containers, unikernels) = bench::fig11::run(secs);
    bench::support::print_csv("fig11: FaaS served throughput (req/s)", &series);

    eprintln!();
    eprintln!("summary:");
    eprintln!("  instance-ready marks (s):");
    eprintln!("    containers: {:?} (paper: 33/42/56 s)", round(&containers.ready_times));
    eprintln!("    unikernels: {:?} (paper: 3/14/25 s)", round(&unikernels.ready_times));
    eprintln!(
        "  total served: containers {:.0}, unikernels {:.0}",
        containers.served_total, unikernels.served_total
    );
    eprintln!("  (expected: unikernel clones track the demand closely)");
}

fn round(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 10.0).round() / 10.0).collect()
}

//! Regenerates Fig. 8: Redis database saving times vs. number of keys.
//!
//! Usage: `cargo run -p bench --release --bin fig8 [max_keys]`
//! (default 1000000, the paper's full sweep).

fn main() {
    let max: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let counts: Vec<u64> = bench::fig8::KEY_COUNTS
        .iter()
        .copied()
        .filter(|k| *k <= max)
        .collect();
    eprintln!("fig8: Redis snapshot fork/save times for up to {max} keys...");
    let (series, pts, trace) = bench::fig8::run(&counts);
    bench::support::print_csv("fig8: Redis save times (ms)", &series);
    bench::support::export_trace(&trace, "fig8");

    eprintln!();
    eprintln!("summary:");
    for p in &pts {
        eprintln!(
            "  {:>8} keys: fork {:8.2} ms / save {:9.2} ms (process) | clone {:8.2} ms / save {:9.2} ms / userspace {:4.2} ms",
            p.keys, p.process_fork_ms, p.process_save_ms, p.clone_ms, p.clone_save_ms, p.userspace_ms
        );
    }
    eprintln!("  (expected: constant userspace I/O-cloning cost, amortized at large key counts)");
}

//! Regenerates Fig. 6: fork and cloning duration vs. used memory size.
//!
//! Usage: `cargo run -p bench --release --bin fig6 [max_size_mib]`
//! (default 4096, the paper's full sweep).

fn main() {
    let max: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let sizes: Vec<u64> = bench::fig6::SIZES_MIB
        .iter()
        .copied()
        .filter(|s| *s <= max)
        .collect();
    eprintln!("fig6: fork/clone durations for allocation sizes up to {max} MiB...");
    let (series, pts, trace) = bench::fig6::run(&sizes);
    bench::support::print_csv("fig6: fork/clone duration (ms) vs allocation size (MiB)", &series);
    bench::support::export_trace(&trace, "fig6");

    eprintln!();
    if let (Some(first), Some(last)) = (pts.first(), pts.last()) {
        let small_gap = (first.clone2_ms / first.process_fork2_ms - 1.0) * 100.0;
        let large_gap = (last.clone2_ms / last.process_fork2_ms - 1.0) * 100.0;
        eprintln!("summary:");
        eprintln!(
            "  gap 2nd-clone vs 2nd-fork at {:4} MiB = {small_gap:8.0}% (paper: 5757% at the low end)",
            first.size_mib
        );
        eprintln!(
            "  gap 2nd-clone vs 2nd-fork at {:4} MiB = {large_gap:8.0}% (paper: 21% at 4 GiB)",
            last.size_mib
        );
        eprintln!(
            "  userspace operations ≈ {:.1} ms, flat across sizes (paper: ~1.9 ms)",
            last.userspace_ms
        );
    }
}

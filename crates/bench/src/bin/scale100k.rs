//! The 10^5 live-domain scenario: ramps one platform to 100 000
//! concurrently live vif-less clones (with destroy churn), then replays
//! the seeded traffic tape under both request-cloning policies.
//!
//! This is the acceptance run for the index work — every create, clone,
//! destroy and replay step must cost O(log pool) or O(refs), never
//! O(live domains), or the run visibly crawls. `scripts/verify.sh` runs
//! it once in release mode and asserts the scenario completes.
//!
//! Usage: `cargo run -p bench --release --bin scale100k [live_domains]`
//! (default 100000).

use faas::{run_macro, MacroConfig, TrafficConfig};

fn main() {
    let live: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    eprintln!("scale100k: ramping to {live} live clones...");
    let report = run_macro(&MacroConfig {
        live_domains: live,
        batch: 1_000,
        pool_mib: 8_192,
        // Small enough that burst episodes overflow it, so the replay
        // exercises on-demand cloning at full density too.
        warm_pool: 32,
        fanout_k: 3,
        churn_every: 64,
        traffic: TrafficConfig::default(),
        ..MacroConfig::default()
    });

    assert!(
        report.live_at_replay >= live as u64,
        "only {} of {live} domains live at replay",
        report.live_at_replay
    );
    assert_eq!(report.clone_request.served, report.clone_vm.served);
    assert!(report.destroyed > 0, "churn phase did not run");

    println!(
        "scale100k OK: {} live domains at replay, {} churned, {} requests per policy",
        report.live_at_replay, report.destroyed, report.clone_request.served
    );
    println!(
        "  clone_request_k3 p50/p99 us: {:.1}/{:.1} ({} cancelled)",
        report.clone_request.latency.percentile(50.0) as f64 / 1_000.0,
        report.clone_request.latency.percentile(99.0) as f64 / 1_000.0,
        report.clone_request.cancelled
    );
    println!(
        "  clone_vm p50/p99 us: {:.1}/{:.1} ({} cloned on demand, {} queued)",
        report.clone_vm.latency.percentile(50.0) as f64 / 1_000.0,
        report.clone_vm.latency.percentile(99.0) as f64 / 1_000.0,
        report.clone_vm.cloned_on_demand,
        report.clone_vm.queued
    );
}

//! Regenerates Fig. 7: NGINX HTTP request throughput vs. workers.
//!
//! Usage: `cargo run -p bench --release --bin fig7 [repetitions]`
//! (default 30, as in the paper).

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    eprintln!("fig7: wrk (400 conns/worker, 5 s, {reps} reps) vs 1..4 workers...");
    let (series, pts, pcts) = bench::fig7::run(reps);
    bench::support::print_csv("fig7: NGINX throughput (req/s)", &series);
    bench::support::export_percentiles("fig7", &pcts);
    // The queueing model has no platform; trace the real 4-worker clone
    // family so the figure still ships a span breakdown.
    bench::support::export_trace(&bench::fig7::traced_worker_family(), "fig7");

    eprintln!();
    eprintln!("summary:");
    for (proc, clone) in &pts {
        eprintln!(
            "  {} workers: processes {:7.0} ± {:5.0} req/s | clones {:7.0} ± {:5.0} req/s",
            proc.workers, proc.mean_rps, proc.stddev_rps, clone.mean_rps, clone.stddev_rps
        );
    }
    eprintln!("  (expected: linear growth; clones higher and less variable)");
}

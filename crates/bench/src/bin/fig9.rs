//! Regenerates Fig. 9: fuzzing throughput over time.
//!
//! Usage: `cargo run -p bench --release --bin fig9 [seconds]`
//! (default 300, as in the paper).

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    eprintln!("fig9: running 7 fuzzing campaigns for {secs} virtual seconds each...");
    let (series, reports) = bench::fig9::run(secs);
    bench::support::print_csv("fig9: fuzzing throughput (executions/s)", &series);
    for (label, r) in &reports {
        bench::support::export_trace(&r.trace, &format!("fig9_{label}"));
    }

    eprintln!();
    eprintln!("summary (mean executions/second):");
    for (label, r) in &reports {
        eprintln!(
            "  {label:28} {:8.1} exec/s  (crashes {:5}, edges {:5}, reset {:6.1} us, dirty {:4.1} pages)",
            r.avg_throughput, r.crashes, r.edges, r.avg_reset_us, r.avg_dirty_pages
        );
    }
    eprintln!("  (paper: boot-each ~2, cloning ~470, process ~590, module ~320 exec/s)");
    eprintln!(
        "  (host-side clone_reset walks only the dirty journals — the \"dirty\" column \
         above — instead of the full p2m; guest-visible virtual time is unchanged)"
    );
}

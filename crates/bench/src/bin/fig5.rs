//! Regenerates Fig. 5: memory consumption for booting vs. cloning.
//!
//! Usage: `cargo run -p bench --release --bin fig5 [max_instances]`
//! (default: run both to memory exhaustion, as in the paper).

fn main() {
    let limit: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(u64::MAX);
    eprintln!("fig5: packing the 12 GiB guest pool by booting, then by cloning...");
    let r = bench::fig5::run(limit);

    bench::support::print_csv("fig5: free memory while booting", &r.booting.series);
    println!();
    bench::support::print_csv("fig5: free memory while cloning", &r.cloning.series);
    bench::support::export_trace(&r.booting.trace, "fig5_boot");
    bench::support::export_trace(&r.cloning.trace, "fig5_clone");

    eprintln!();
    eprintln!("summary:");
    eprintln!(
        "  booted instances = {} ({} KiB each)",
        r.booting.max_instances,
        r.booting.bytes_per_instance / 1024
    );
    eprintln!(
        "  cloned instances = {} ({} KiB each; paper: ~1.6 MB, 1 MB RX ring)",
        r.cloning.max_instances,
        r.cloning.bytes_per_instance / 1024
    );
    eprintln!(
        "  density gain = {:.1}x (paper: ~3x, 2800 vs 8900)",
        r.cloning.max_instances as f64 / r.booting.max_instances as f64
    );
    eprintln!(
        "  host p2m while cloning = {} KiB shared templates + {} KiB private \
         (booting keeps {} KiB, all private)",
        r.cloning.p2m_shared_bytes / 1024,
        r.cloning.p2m_unique_bytes / 1024,
        r.booting.p2m_unique_bytes / 1024
    );
}

//! Regenerates Fig. 10: OpenFaaS memory consumption, containers vs.
//! unikernels.
//!
//! Usage: `cargo run -p bench --release --bin fig10 [seconds]`
//! (default 200, the paper's window).

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    eprintln!("fig10: FaaS memory consumption over {secs} s...");
    let (series, containers, unikernels) = bench::fig10::run(secs);
    bench::support::print_csv("fig10: FaaS memory (MB)", &series);

    eprintln!();
    eprintln!("summary:");
    eprintln!(
        "  containers: first instance {:.0} MB, final {:.0} MB across {} instances",
        containers.memory_series[0].1,
        containers.memory_series.last().unwrap().1,
        containers.instances
    );
    eprintln!(
        "  unikernels: first instance {:.0} MB, final {:.0} MB across {} instances",
        unikernels.memory_series[0].1,
        unikernels.memory_series.last().unwrap().1,
        unikernels.instances
    );
    eprintln!("  ready times (s): containers {:?}", round(&containers.ready_times));
    eprintln!("                   unikernels {:?}", round(&unikernels.ready_times));
    eprintln!("  (paper: ~90 vs ~85 MB first; ~220 vs ~35 MB per additional instance)");
}

fn round(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 10.0).round() / 10.0).collect()
}

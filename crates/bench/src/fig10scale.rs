//! Fig. 10 (scale companion) — request-cloning policies at high clone
//! density.
//!
//! Delegates to [`faas::traffic`]: a platform is rammed to `live`
//! concurrently live vif-less clones (with destroy churn on the way up),
//! then one seeded bursty arrival tape is replayed under both serving
//! policies — `clone_request_k3` (fan each request to 3 warm instances,
//! first response wins) and `clone_vm` (Nephele-clone an instance on
//! demand when the warm pool is busy). The emitted series is the latency
//! percentile curve per policy, in microseconds.
//!
//! The run is deterministic: integer log-bucketed histograms plus an
//! all-virtual-time tape make the CSV byte-identical for the same seed at
//! any `NEPHELE_THREADS` width, which is exactly what the determinism
//! gate checks.

use faas::{run_macro, MacroConfig, MacroReport, TrafficConfig};
use sim_core::stats::Series;

/// Percentiles plotted on the x axis.
pub const PERCENTILES: [f64; 6] = [50.0, 90.0, 95.0, 99.0, 99.9, 100.0];

/// Runs the macro scenario at `live` concurrently live clones and
/// returns the per-policy latency-percentile series plus the raw report.
pub fn run(live: u32, threads: usize) -> (Series, MacroReport) {
    let report = run_macro(&MacroConfig {
        live_domains: live,
        batch: 500,
        pool_mib: pool_mib_for(live),
        threads,
        // Small enough that burst episodes overflow it: the clone_vm
        // policy must actually clone on demand, not coast on idle warmth.
        warm_pool: 32,
        fanout_k: 3,
        churn_every: 64,
        traffic: TrafficConfig::default(),
        ..MacroConfig::default()
    });

    let mut series = Series::new("percentile", &["clone_request_k3_us", "clone_vm_us"]);
    for p in PERCENTILES {
        series.row(
            p,
            &[
                report.clone_request.latency.percentile(p) as f64 / 1_000.0,
                report.clone_vm.latency.percentile(p) as f64 / 1_000.0,
            ],
        );
    }
    (series, report)
}

/// Guest pool sized for `live` vif-less 4 MiB clones (~26 pages each)
/// plus template, warm pool and on-demand headroom.
pub fn pool_mib_for(live: u32) -> u64 {
    (live as u64 / 4).clamp(512, 16_384)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_is_identical_across_thread_widths() {
        let (a, ra) = run(2_000, 1);
        let (b, rb) = run(2_000, 4);
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(ra.live_at_replay, rb.live_at_replay);
        assert!(ra.live_at_replay > 2_000);
    }
}

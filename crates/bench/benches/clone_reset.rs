//! KFX reset loop: host-side cost of one fuzzing iteration's
//! dirty-then-reset cycle on a 4k-page (16 MiB) clone whose working set
//! has been privatized with `CloneCow` (the Fig. 9 harness shape, §7.2).
//! Virtual time is identical before and after the persistent-overlay
//! rework (asserted by the fig9 determinism gate); this benchmark tracks
//! the *host* cost of `CloneReset`, which must scale with the pages the
//! iteration actually dirtied — not with the clone's private footprint.

use std::rc::Rc;

use testkit::bench::Bench;

use nephele::hypervisor::cloneop::CloneOp;
use nephele::hypervisor::domain::ClonePolicy;
use nephele::hypervisor::{Hypervisor, MachineConfig};
use nephele::sim_core::{Clock, CostModel, DomId, Pfn};

/// RAM pages of the guest under reset (16 MiB).
const GUEST_PAGES: u64 = 4096;
/// Pages privatized up front, KFX-style (text + scratch working set).
const PRIVATE_PAGES: u64 = 4096;
/// Pages dirtied by each simulated fuzzing iteration.
const DIRTY_PAGES: u64 = 16;

/// Boots a parent, materializes every RAM page (so private copies carry
/// real `Bytes` content, as they would after loading a kernel image),
/// clones it once, privatizes the working set, and arms the checkpoint.
/// Returns the hypervisor and the checkpointed clone.
fn checkpointed_clone() -> (Hypervisor, DomId) {
    let mut hv = Hypervisor::new(
        Clock::new(),
        Rc::new(CostModel::calibrated()),
        &MachineConfig {
            guest_pool_mib: 64,
            cores: 4,
            notification_ring_capacity: 512,
        },
    );
    hv.set_cloning_enabled(true);
    let parent = hv.create_domain("parent", 16, 1).unwrap();
    hv.set_clone_policy(
        parent,
        ClonePolicy {
            enabled: true,
            max_clones: u32::MAX,
            resume_children: true,
        },
    )
    .unwrap();
    hv.unpause(parent).unwrap();
    for pfn in 0..GUEST_PAGES {
        hv.write_page(parent, Pfn(pfn), 0, &[pfn as u8]).unwrap();
    }
    let children = match hv
        .cloneop(DomId::DOM0, CloneOp::Clone { target: Some(parent), nr_clones: 1 })
        .unwrap()
    {
        nephele::hypervisor::cloneop::CloneOpResult::Cloned(c) => c,
        other => panic!("unexpected clone result {other:?}"),
    };
    let clone = children[0];
    hv.cloneop(
        DomId::DOM0,
        CloneOp::CloneCow {
            dom: clone,
            pfns: (0..PRIVATE_PAGES).map(Pfn).collect(),
        },
    )
    .unwrap();
    hv.cloneop(DomId::DOM0, CloneOp::Checkpoint { dom: clone }).unwrap();
    (hv, clone)
}

fn main() {
    let mut c = Bench::new("clone_reset");
    {
        let mut g = c.benchmark_group("clone_reset");
        g.sample_size(20);
        // The reset restores the clone to its checkpoint, so one armed
        // clone serves every iteration: the timed region is exactly one
        // fuzzing iteration's dirty + reset cycle.
        let (mut hv, clone) = checkpointed_clone();
        g.bench_function("dirty16_reset_4k", |b| {
            b.iter(|| {
                for pfn in 0..DIRTY_PAGES {
                    hv.write_page(clone, Pfn(pfn * 7 + 1), 0, b"!").unwrap();
                }
                hv.cloneop(DomId::DOM0, CloneOp::CloneReset { dom: clone })
                    .unwrap();
            })
        });
        g.finish();
    }
    c.finish();
}

//! Micro-benchmarks for the memory subsystem: frame allocation, COW
//! sharing/resharing (the per-page costs dominating the Fig. 6 curves)
//! and both fault resolutions.

use testkit::bench::Bench;

use nephele::hypervisor::memory::{FrameOwner, FrameTable};
use nephele::sim_core::DomId;

const D1: DomId = DomId(1);
const D2: DomId = DomId(2);

fn bench_frames(c: &mut Bench) {
    let mut g = c.benchmark_group("frame_table");
    g.bench_function("alloc_free", |b| {
        let mut ft = FrameTable::new(1024);
        b.iter(|| {
            let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
            ft.free(m, FrameOwner::Dom(D1)).unwrap();
        });
    });
    g.bench_function("share_unshare", |b| {
        let mut ft = FrameTable::new(1024);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        b.iter(|| {
            ft.share_to_cow(m, D1, 2, false).unwrap();
            // Drop one sharer, transfer the frame back via a fault.
            ft.unshare_drop(m).unwrap();
            ft.cow_fault(m, D1).unwrap();
        });
    });
    g.bench_function("cow_fault_copy_path", |b| {
        let mut ft = FrameTable::new(1 << 16);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        ft.write(m, 0, &[7u8; 512]).unwrap();
        ft.share_to_cow(m, D1, 2, false).unwrap();
        b.iter(|| {
            // Copy for D2, then undo so every iteration is identical.
            match ft.cow_fault(m, D2).unwrap() {
                nephele::hypervisor::memory::CowResolution::Copied(copy) => {
                    ft.free(copy, FrameOwner::Dom(D2)).unwrap();
                    ft.reshare(m, 1).unwrap();
                }
                other => panic!("unexpected {other:?}"),
            }
        });
    });
    g.bench_function("page_write_materialized", |b| {
        let mut ft = FrameTable::new(16);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        ft.write(m, 0, &[1u8; 4096]).unwrap();
        let mut off = 0usize;
        b.iter(|| {
            off = (off + 64) % 4032;
            ft.write(m, off, &[0xAA; 64]).unwrap();
        });
    });
    g.finish();
}

fn main() {
    let mut c = Bench::new("memory_cow");
    bench_frames(&mut c);
    c.finish();
}

//! Per-clone latency as a function of live-domain count: the gate that
//! pins clone cost independent of density.
//!
//! Before the index work, each create/clone/destroy walked structures
//! sized by the number of live domains — the xl name-uniqueness scan and
//! the hypervisor's all-domains peer sweep — so per-clone host cost grew
//! linearly with density. With the name index, the per-table peer/grantee
//! indexes and the hypervisor-level referrer index, the hot path is
//! O(refs actually held), so a clone into a 10^4-domain platform must
//! cost the same as a clone into a 10^2-domain one. `scripts/verify.sh`
//! asserts the 10^4 median stays within 2x of the 10^2 median.
//!
//! Each iteration clones a fresh batch into the pre-ramped platform and
//! destroys it again, so the measurement covers exactly the two hot-path
//! ops (clone_domain and destroy) at the given density — the pool always
//! returns to its ramped size between iterations.

use testkit::bench::Bench;

use nephele::sim_core::SimDuration;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{AuditMode, MuxKind, Platform, PlatformConfig, TraceConfig};

/// Clones per timed batch (kept small so the batch itself does not
/// dominate; the point is the density of the surrounding pool).
const BATCH: u32 = 16;

/// Builds a platform pre-ramped to `live` live vif-less clones and
/// returns it with the template.
fn rammed_platform(live: u32) -> (Platform, nephele::sim_core::DomId) {
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(((live as u64) / 4).clamp(256, 8_192))
            .ring_capacity(1_024)
            .mux(MuxKind::None)
            .seed(0xd_e2_51_7e)
            .threads(1)
            .tracing(TraceConfig::default())
            .audit(AuditMode::Off)
            .build(),
    );
    let cfg = DomainConfig::builder("density-tmpl")
        .memory_mib(4)
        .max_clones(u32::MAX)
        .resume_clones(false)
        .build();
    let template = p
        .launch_plain(&cfg, &KernelImage::unikraft("density-fn"))
        .expect("template boot");
    let mut made = 0u32;
    while made < live {
        let want = (live - made).min(500);
        let kids = p.clone_domain(template, want).expect("ramp clone");
        assert_eq!(kids.len() as u32, want, "pool exhausted during ramp");
        made += want;
        p.run_for(SimDuration::from_ms(10));
    }
    (p, template)
}

fn main() {
    let mut c = Bench::new("clone_density");
    for live in [100u32, 1_000, 10_000] {
        let mut g = c.benchmark_group(&format!("density_{live}"));
        g.sample_size(if live >= 10_000 { 10 } else { 20 });
        // One ramp per density, shared across samples: each iteration
        // clones a batch and destroys it again, leaving the pool at its
        // ramped size.
        let (mut p, template) = rammed_platform(live);
        g.bench_function("clone_destroy_batch16", |b| {
            b.iter(|| {
                let kids = p.clone_domain(template, BATCH).expect("timed clone");
                for k in kids {
                    p.destroy(k).expect("timed destroy");
                }
            })
        });
        g.finish();
    }
    c.finish();
}

//! Clone fan-out series: host-side cost of the batched first stage,
//! `Clone { nr_clones: N }`, versus N sequential single-clone hypercalls —
//! the fan-out pattern Fig. 7/8 and the FaaS simulation lean on. Virtual
//! time is identical on both paths (asserted by the equivalence property
//! suite); this benchmark tracks the *host* speedup of the single parent
//! walk, O(M + N·P) instead of O(N·M).

use std::rc::Rc;

use testkit::bench::Bench;

use nephele::hypervisor::cloneop::CloneOp;
use nephele::hypervisor::domain::ClonePolicy;
use nephele::hypervisor::{Hypervisor, MachineConfig};
use nephele::sim_core::{Clock, CostModel, DomId};

/// A hypervisor holding one cloneable 4 MiB parent, sized so a 256-wide
/// fan-out fits in both the guest pool and the notification ring.
fn fresh_parent() -> (Hypervisor, DomId) {
    let mut hv = Hypervisor::new(
        Clock::new(),
        Rc::new(CostModel::calibrated()),
        &MachineConfig {
            guest_pool_mib: 32,
            cores: 4,
            notification_ring_capacity: 512,
        },
    );
    hv.set_cloning_enabled(true);
    let d = hv.create_domain("parent", 4, 1).unwrap();
    hv.set_clone_policy(
        d,
        ClonePolicy {
            enabled: true,
            max_clones: u32::MAX,
            resume_children: true,
        },
    )
    .unwrap();
    hv.unpause(d).unwrap();
    (hv, d)
}

fn main() {
    let mut c = Bench::new("clone_fanout");
    {
        let mut g = c.benchmark_group("clone_fanout");
        g.sample_size(20);
        for n in [1u32, 8, 64, 256] {
            // Each iteration consumes a fresh hypervisor built outside the
            // timed region, so the measurement covers exactly the first
            // stage — not machine construction or teardown.
            g.bench_function(&format!("batched_n{n}"), |b| {
                b.iter_with_setup(fresh_parent, |(mut hv, parent)| {
                    hv.cloneop(
                        DomId::DOM0,
                        CloneOp::Clone {
                            target: Some(parent),
                            nr_clones: n,
                        },
                    )
                    .unwrap();
                    hv
                })
            });
            g.bench_function(&format!("sequential_n{n}"), |b| {
                b.iter_with_setup(fresh_parent, |(mut hv, parent)| {
                    for _ in 0..n {
                        hv.cloneop(
                            DomId::DOM0,
                            CloneOp::Clone {
                                target: Some(parent),
                                nr_clones: 1,
                            },
                        )
                        .unwrap();
                    }
                    hv
                })
            });
        }
        g.finish();
    }
    c.finish();
}

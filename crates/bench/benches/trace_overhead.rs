//! Sink self-overhead: host cost of one instrumentation "tick" — a mixed
//! batch of spans, counters, gauges and explicit histogram records — per
//! [`TraceMode`](nephele::TraceMode).
//!
//! The streaming-aggregation promise is that Aggregate mode buys its
//! bounded memory (fold-at-close instead of retain-everything) without
//! making the hot path meaningfully more expensive than Full mode, and
//! that a disabled sink stays near-free. verify.sh gates the Aggregate /
//! Off ratio against a loose budget; the general bench gate tracks all
//! three medians against the seeded baselines.

use nephele::sim_core::{Clock, DomId};
use nephele::{TraceConfig, TraceMode, TraceSink};
use testkit::bench::Bench;

/// Spans (each with a `dom` attribute) per timed batch.
const SPANS: u64 = 256;
/// Domain-attributed counter bumps per batch.
const COUNTS: u64 = 512;
/// Gauge observations per batch.
const GAUGES: u64 = 128;
/// Explicit histogram records per batch.
const RECORDS: u64 = 128;

/// Builds a sink in `mode` with a two-member clone family registered, so
/// the Aggregate path exercises family attribution like a real platform.
fn sink(mode: TraceMode) -> TraceSink {
    let s = TraceSink::new(Clock::new(), &TraceConfig::with_mode(mode));
    s.family_root_created(DomId(1), "bench-root");
    s.family_cloned(DomId(2), Some(DomId(1)));
    s
}

/// One instrumentation tick: the mixed batch above, attributed to the
/// registered family. The sink is cleared first so Full mode's retained
/// records do not accumulate across iterations (clear is O(retained),
/// i.e. part of the cost being compared).
fn tick(s: &TraceSink) {
    s.clear();
    for i in 0..SPANS {
        let span = s.span("bench.op");
        span.attr("dom", 1 + (i & 1));
    }
    for i in 0..COUNTS {
        s.count_dom("bench.counter", DomId(1 + (i & 1) as u32), 1);
    }
    for i in 0..GAUGES {
        s.gauge("bench.gauge", DomId(1 + (i & 1) as u32), i * 4096);
    }
    for i in 0..RECORDS {
        s.record_ns("bench.latency", 1000 + i * 37);
    }
}

fn main() {
    let mut c = Bench::new("trace_overhead");
    {
        let mut g = c.benchmark_group("trace_overhead");
        g.sample_size(30);
        let off = sink(TraceMode::Off);
        g.bench_function("mixed_off", |b| b.iter(|| tick(&off)));
        let full = sink(TraceMode::Full);
        g.bench_function("mixed_full", |b| b.iter(|| tick(&full)));
        let agg = sink(TraceMode::Aggregate);
        g.bench_function("mixed_agg", |b| b.iter(|| tick(&agg)));
        g.finish();
    }
    c.finish();
}

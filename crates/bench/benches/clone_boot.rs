//! Micro-benchmarks for the instantiation paths: full boot, clone (both
//! Xenstore copy modes) and save/restore, plus the process fork baseline.
//! These measure the *simulator's* host-side performance; the
//! virtual-time results are produced by the `fig4`/`fig6` binaries.

use testkit::bench::Bench;

use bench::support::{udp_guest_cfg, udp_image};
use nephele::linux_procs::ProcessModel;
use nephele::sim_core::{Clock, CostModel};
use nephele::{MuxKind, Platform, PlatformConfig};

fn small_platform() -> Platform {
    Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(2048)
            .ring_capacity(128)
            .mux(MuxKind::None)
            .build(),
    )
}

fn bench_boot(c: &mut Bench) {
    let mut g = c.benchmark_group("instantiation");
    g.sample_size(20);
    g.bench_function("boot_4mib_guest", |b| {
        let mut p = small_platform();
        let img = udp_image();
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            let cfg = udp_guest_cfg(&format!("b{i}"), 0);
            let d = p
                .launch(&cfg, &img, Box::new(nephele::apps::UdpEchoApp::new(7000)))
                .unwrap();
            p.destroy(d).unwrap();
        });
    });

    g.bench_function("clone_4mib_guest", |b| {
        let mut p = small_platform();
        let img = udp_image();
        let cfg = udp_guest_cfg("parent", u32::MAX);
        let parent = p
            .launch(&cfg, &img, Box::new(nephele::apps::UdpEchoApp::new(7000)))
            .unwrap();
        b.iter(|| {
            let kids = p.guest_fork(parent, 1).unwrap();
            p.destroy(kids[0]).unwrap();
        });
    });

    g.bench_function("clone_4mib_guest_deep_copy", |b| {
        let mut p = small_platform();
        p.daemon.config.use_xs_clone = false;
        let img = udp_image();
        let cfg = udp_guest_cfg("parent", u32::MAX);
        let parent = p
            .launch(&cfg, &img, Box::new(nephele::apps::UdpEchoApp::new(7000)))
            .unwrap();
        b.iter(|| {
            let kids = p.guest_fork(parent, 1).unwrap();
            p.destroy(kids[0]).unwrap();
        });
    });

    g.bench_function("save_restore_4mib_guest", |b| {
        let mut p = small_platform();
        let img = udp_image();
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            let cfg = udp_guest_cfg(&format!("s{i}"), 0);
            let d = p
                .launch(&cfg, &img, Box::new(nephele::apps::UdpEchoApp::new(7000)))
                .unwrap();
            p.xl
                .save(&mut p.hv, &mut p.xs, &mut p.dm, &mut p.udev, d, "slot", &img)
                .unwrap();
            let r = p
                .xl
                .restore(&mut p.hv, &mut p.xs, &mut p.dm, &mut p.udev, "slot", None)
                .unwrap();
            p.destroy(r.id).unwrap();
        });
    });
    g.finish();
}

fn bench_fork_model(c: &mut Bench) {
    c.bench_function("process_fork_model_256mib", |b| {
        let clock = Clock::new();
        let mut pm = ProcessModel::new(clock, std::rc::Rc::new(CostModel::calibrated()));
        let mut p = pm.spawn(256);
        b.iter(|| pm.fork(&mut p));
    });
}

fn main() {
    let mut c = Bench::new("clone_boot");
    bench_boot(&mut c);
    bench_fork_model(&mut c);
    c.finish();
}

//! Host-side speedup of the deterministic fork/join pool on the batched
//! clone first stage: one memcpy-heavy parent (256 `Copy`-private pages
//! with materialized byte content) fanned out to 64 children at pool
//! widths 1/2/4. Virtual time, frame placement and ids are bit-identical
//! at every width (asserted by `prop_parallel_equiv`); this benchmark
//! tracks the *host* wall-clock of stamping the children's page images,
//! vCPU files and grant/event tables on real threads.
//!
//! `verify.sh` gates `fanout64_t4` against `fanout64_t1`: ≥ 2x on hosts
//! with at least 4 CPUs, no-regression on smaller hosts (a single-core
//! CI runner cannot speed anything up, only prove the pool costs
//! nothing).

use std::rc::Rc;

use testkit::bench::Bench;

use nephele::hypervisor::cloneop::CloneOp;
use nephele::hypervisor::domain::{ClonePolicy, PrivatePolicy};
use nephele::hypervisor::{Hypervisor, MachineConfig};
use nephele::sim_core::par::Pool;
use nephele::sim_core::{Clock, CostModel, DomId, Pfn};

/// How many `Copy`-private pages the parent carries: each child's stamp
/// memcpies this many 4 KiB page images (1 MiB per child, 64 MiB per
/// fan-out), which is the work the pool distributes.
const PRIVATE_PAGES: u64 = 256;

/// A hypervisor whose pool runs `threads` workers, holding one cloneable
/// 4 MiB parent with `PRIVATE_PAGES` materialized private pages, sized
/// so a 64-wide fan-out fits in the guest pool and notification ring.
fn memcpy_heavy_parent(threads: usize) -> (Hypervisor, DomId) {
    let mut hv = Hypervisor::new(
        Clock::new(),
        Rc::new(CostModel::calibrated()),
        &MachineConfig {
            guest_pool_mib: 96,
            cores: 4,
            notification_ring_capacity: 512,
        },
    );
    hv.attach_pool(Pool::new(threads));
    hv.set_cloning_enabled(true);
    let d = hv.create_domain("parent", 4, 1).unwrap();
    hv.set_clone_policy(
        d,
        ClonePolicy {
            enabled: true,
            max_clones: u32::MAX,
            resume_children: true,
        },
    )
    .unwrap();
    hv.unpause(d).unwrap();
    for pfn in 0..PRIVATE_PAGES {
        // A partial write materializes the full page as owned bytes, so
        // every per-child copy is a real 4 KiB memcpy, not a cheap
        // `Zero`/`Fill` tag clone.
        hv.write_page(d, Pfn(pfn), 0, &[pfn as u8 ^ 0xA5; 64]).unwrap();
        hv.register_private_pfn(d, Pfn(pfn), PrivatePolicy::Copy).unwrap();
    }
    (hv, d)
}

fn main() {
    let mut c = Bench::new("parallel_stamp");
    {
        let mut g = c.benchmark_group("parallel_stamp");
        g.sample_size(20);
        for threads in [1usize, 2, 4] {
            // Setup (machine build + parent boot + page materialization)
            // runs outside the timed region: the measurement covers
            // exactly the batched first stage.
            g.bench_function(&format!("fanout64_t{threads}"), |b| {
                b.iter_with_setup(
                    || memcpy_heavy_parent(threads),
                    |(mut hv, parent)| {
                        hv.cloneop(
                            DomId::DOM0,
                            CloneOp::Clone {
                                target: Some(parent),
                                nr_clones: 64,
                            },
                        )
                        .unwrap();
                        hv
                    },
                )
            });
        }
        g.finish();
    }
    c.finish();
}

//! Micro-benchmarks for Xenstore: basic requests, watch matching, and
//! the `xs_clone` request against its deep-copy equivalent (the
//! mechanism behind the Fig. 4 gap).

use testkit::bench::Bench;

use nephele::sim_core::{Clock, CostModel, DomId};
use nephele::xenstore::{XsCloneOp, Xenstore};

fn fresh_store() -> Xenstore {
    Xenstore::new(Clock::new(), std::rc::Rc::new(CostModel::free()))
}

fn populate_device_dir(xs: &mut Xenstore, dom: u32) {
    let f = format!("/local/domain/{dom}/device/vif/0");
    for (k, v) in [
        ("backend", format!("/local/domain/0/backend/vif/{dom}/0")),
        ("backend-id", "0".into()),
        ("mac", "00:16:3e:00:00:01".into()),
        ("handle", "0".into()),
        ("tx-ring-ref", "1022".into()),
        ("rx-ring-ref", "1023".into()),
        ("state", "4".into()),
    ] {
        xs.write(DomId::DOM0, &format!("{f}/{k}"), &v).unwrap();
    }
}

fn bench_requests(c: &mut Bench) {
    let mut g = c.benchmark_group("xenstore");
    g.bench_function("write", |b| {
        let mut xs = fresh_store();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            xs.write(DomId::DOM0, &format!("/tool/k{}", i % 4096), "v").unwrap();
        });
    });
    g.bench_function("read", |b| {
        let mut xs = fresh_store();
        xs.write(DomId::DOM0, "/tool/key", "value").unwrap();
        b.iter(|| xs.read(DomId::DOM0, "/tool/key").unwrap());
    });
    g.bench_function("write_with_1000_watches", |b| {
        let mut xs = fresh_store();
        for i in 0..1000 {
            xs.watch(DomId::DOM0, &format!("w{i}"), &format!("/local/domain/{i}"))
                .unwrap();
        }
        b.iter(|| {
            xs.write(DomId::DOM0, "/local/domain/500/state", "4").unwrap();
            xs.drain_watch_events()
        });
    });
    g.finish();
}

/// Populates `/local/domain/3/device/vif/{0..dirs}` with `fanout` entries
/// each, so the store holds roughly `dirs * fanout` entries.
fn populate_big_store(xs: &mut Xenstore, dirs: u32, fanout: u32) {
    for d in 0..dirs {
        for k in 0..fanout {
            xs.write(
                DomId::DOM0,
                &format!("/local/domain/3/device/vif/{d}/e{k}"),
                "/local/domain/3/x",
            )
            .unwrap();
        }
    }
}

fn bench_xs_clone(c: &mut Bench) {
    let mut g = c.benchmark_group("xs_clone");
    g.bench_function("xs_clone_big_store", |b| {
        // ~10k entries, source directory with fanout 64. Cloning onto the
        // same destination every iteration keeps the store size stable.
        let mut xs = fresh_store();
        populate_big_store(&mut xs, 156, 64);
        b.iter(|| {
            xs.xs_clone(
                DomId::DOM0,
                XsCloneOp::DevVif,
                DomId(3),
                DomId(9),
                "/local/domain/3/device/vif/0",
                "/local/domain/9/device/vif/0",
            )
            .unwrap();
        });
    });
    g.bench_function("txn_snapshot_big_store", |b| {
        // A transaction snapshot over the ~10k-entry store is an O(1)
        // handle clone; a repeatable read then resolves through it.
        let mut xs = fresh_store();
        populate_big_store(&mut xs, 156, 64);
        b.iter(|| {
            let t = xs.txn_start(DomId::DOM0);
            let v = xs
                .txn_read(DomId::DOM0, t, "/local/domain/3/device/vif/7/e3")
                .unwrap();
            xs.txn_abort(t).unwrap();
            v
        });
    });
    g.bench_function("xs_clone_device_dir", |b| {
        let mut xs = fresh_store();
        populate_device_dir(&mut xs, 3);
        let mut child = 100u32;
        b.iter(|| {
            child += 1;
            xs.xs_clone(
                DomId::DOM0,
                XsCloneOp::DevVif,
                DomId(3),
                DomId(child),
                "/local/domain/3/device/vif/0",
                &format!("/local/domain/{child}/device/vif/0"),
            )
            .unwrap();
        });
    });
    g.bench_function("deep_copy_device_dir", |b| {
        let mut xs = fresh_store();
        populate_device_dir(&mut xs, 3);
        let mut child = 100u32;
        b.iter(|| {
            child += 1;
            // One read + one write request per entry, client-side rewrite.
            let keys = xs.directory(DomId::DOM0, "/local/domain/3/device/vif/0").unwrap();
            for k in keys {
                let v = xs
                    .read(DomId::DOM0, &format!("/local/domain/3/device/vif/0/{k}"))
                    .unwrap();
                let v = v.replace("/3/", &format!("/{child}/"));
                xs.write(
                    DomId::DOM0,
                    &format!("/local/domain/{child}/device/vif/0/{k}"),
                    &v,
                )
                .unwrap();
            }
        });
    });
    g.finish();
}

fn main() {
    let mut c = Bench::new("xenstore_ops");
    bench_requests(&mut c);
    bench_xs_clone(&mut c);
    c.finish();
}

//! Micro-benchmarks for the data-path components: bond slave selection,
//! OVS group selection, shared-ring transfer, the mini TCP stack and the
//! tinyalloc guest allocator.

use std::net::Ipv4Addr;

use testkit::bench::Bench;

use nephele::devices::ring::SharedRing;
use nephele::guest::TinyAlloc;
use nephele::netmux::{
    Bond,
    CloneMux,
    IfaceId,
    MacAddr,
    NetStack,
    Packet,
    SelectGroup,
    XmitHashPolicy, //
};
use nephele::sim_core::Pfn;

fn pkt(port: u16) -> Packet {
    Packet::udp(
        MacAddr::xen(1, 0),
        MacAddr::xen(2, 0),
        Ipv4Addr::new(10, 0, 0, 2),
        Ipv4Addr::new(10, 0, 0, 1),
        port,
        7,
        vec![0u8; 64],
    )
}

fn bench_mux(c: &mut Bench) {
    let mut g = c.benchmark_group("mux");
    g.bench_function("bond_select_1000_slaves", |b| {
        let mut bond = Bond::new(XmitHashPolicy::Layer34);
        for i in 0..1000 {
            bond.add_member(IfaceId(i));
        }
        let mut port = 0u16;
        b.iter(|| {
            port = port.wrapping_add(1);
            bond.select(&pkt(port))
        });
    });
    g.bench_function("ovs_select_1000_buckets", |b| {
        let mut grp = SelectGroup::hashed();
        for i in 0..1000 {
            grp.add_member(IfaceId(i));
        }
        let mut port = 0u16;
        b.iter(|| {
            port = port.wrapping_add(1);
            grp.select(&pkt(port))
        });
    });
    g.finish();
}

fn bench_ring(c: &mut Bench) {
    c.bench_function("shared_ring_push_pop", |b| {
        let mut ring = SharedRing::new(Pfn(1), 256);
        b.iter(|| {
            ring.push(pkt(1));
            ring.pop()
        });
    });
}

fn bench_stack(c: &mut Bench) {
    c.bench_function("tcp_request_response", |b| {
        let mut server = NetStack::new(MacAddr::xen(1, 0), Ipv4Addr::new(10, 0, 0, 1));
        let mut client = NetStack::new(MacAddr::xen(2, 0), Ipv4Addr::new(10, 0, 0, 2));
        server.tcp_listen(80);
        let (conn, syn) = client.tcp_connect(server.mac(), server.ip(), 80);
        for r in server.handle_packet(&syn) {
            client.handle_packet(&r);
        }
        server.poll_events();
        client.poll_events();
        b.iter(|| {
            let req = client.tcp_send(conn, b"GET /".to_vec()).unwrap();
            server.handle_packet(&req);
            server.poll_events()
        });
    });
}

fn bench_tinyalloc(c: &mut Bench) {
    let mut g = c.benchmark_group("tinyalloc");
    g.bench_function("alloc_free_cycle", |b| {
        let mut ta = TinyAlloc::new(0, 1 << 24, 1024);
        b.iter(|| {
            let p = ta.alloc(256).unwrap();
            ta.free(p);
        });
    });
    g.bench_function("fragmented_alloc", |b| {
        let mut ta = TinyAlloc::new(0, 1 << 24, 4096);
        // Pre-fragment: allocate many, free every other one.
        let ptrs: Vec<u64> = (0..1024).map(|_| ta.alloc(512).unwrap()).collect();
        for p in ptrs.iter().step_by(2) {
            ta.free(*p);
        }
        b.iter(|| {
            let p = ta.alloc(384).unwrap();
            ta.free(p);
        });
    });
    g.finish();
}

fn main() {
    let mut c = Bench::new("net_and_alloc");
    bench_mux(&mut c);
    bench_ring(&mut c);
    bench_stack(&mut c);
    bench_tinyalloc(&mut c);
    c.finish();
}

//! State invariant auditor — the simulator's equivalent of Xen's debug-key
//! dumps, but checking instead of printing.
//!
//! [`Platform::audit`](crate::Platform::audit) cross-checks the redundant
//! state the components keep about each other and returns a structured
//! [`AuditReport`]. The invariants verified:
//!
//! 1. **Frame refcounts vs p2m back-references.** Every machine frame's
//!    metadata must agree with the set of p2m slots (and aux-frame lists)
//!    that reference it: free and Xen-owned frames are referenced by
//!    nobody, a domain-owned frame is referenced exactly once and only by
//!    its owner, and a COW frame's refcount equals the number of p2m slots
//!    pointing at it across all domains.
//! 2. **Incremental counters vs full scan.** The frame table maintains
//!    free/COW/Xen counts incrementally on every ownership transition;
//!    they must match a fresh O(frames) recount.
//! 3. **Grant entries vs frame ownership.** Active grants must name a
//!    live grantee (or the `DOMID_CHILD` wildcard) and a frame that is
//!    still allocated.
//! 4. **Event channels vs live domains.** Every connected interdomain
//!    channel must point at a live peer (or `DOMID_CHILD`).
//! 5. **Clone-ring entries vs live domains.** Queued clone notifications
//!    must reference parents and children that still exist.
//! 6. **Wildcard child bindings vs live domains.** The hypervisor's
//!    `DOMID_CHILD` binding fan-out tables must only list live clones.
//! 7. **Toolstack records vs hypervisor domains.** Every `xl` record must
//!    have a backing domain, and every running domain an `xl` record.
//! 8. **Xenstore tree vs registered devices.** Every running domain has
//!    its `/local/domain/<id>` home, and every vif the device manager
//!    knows about has both its frontend and backend directories.
//!
//! The checks are read-only and O(total frames + domains + devices); they
//! run on demand, after every clone/destroy in debug builds, and after
//! every lifecycle operation under `NEPHELE_AUDIT=every-op`.

use std::collections::HashMap;
use std::fmt;

use hypervisor::domain::DomainState;
use hypervisor::event::Channel;
use hypervisor::grant::GrantEntry;
use hypervisor::memory::FrameOwner;
use sim_core::DomId;

use crate::platform::Platform;

/// One invariant violation found by [`Platform::audit`](crate::Platform::audit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Which invariant failed (stable kebab-case tag, e.g.
    /// `frame-refcount`).
    pub invariant: &'static str,
    /// Human-readable description naming the offending frame/domain/port.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// The outcome of a full state audit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Number of individual cross-checks performed (a progress/coverage
    /// indicator; grows with platform size).
    pub checks: u64,
    /// Every violation found, in deterministic (frame/domain) order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "audit clean ({} checks)", self.checks);
        }
        writeln!(
            f,
            "audit FAILED: {} violation(s) in {} checks",
            self.violations.len(),
            self.checks
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Back-references to one machine frame gathered from domain state.
#[derive(Default, Clone, Copy)]
struct BackRefs {
    /// p2m slots pointing at the frame, across all domains.
    p2m: u32,
    /// Aux-frame list entries pointing at the frame.
    aux: u32,
    /// The first domain seen referencing the frame.
    first_dom: u32,
}

/// Whether a domain is past construction and expected to have toolstack
/// and Xenstore state (freshly cloned children get theirs during the
/// second stage; `Created`/`Dying` domains are mid-transition).
fn fully_set_up(state: DomainState) -> bool {
    matches!(state, DomainState::Running | DomainState::Paused | DomainState::PausedForClone)
}

pub(crate) fn run(p: &Platform) -> AuditReport {
    let mut report = AuditReport::default();
    let hv = &p.hv;

    // Gather p2m/aux back-references for every frame in one pass.
    let mut refs: HashMap<u64, BackRefs> = HashMap::new();
    for d in hv.domains() {
        for mfn in d.p2m.iter().flatten() {
            let r = refs.entry(mfn.0).or_default();
            if r.p2m == 0 && r.aux == 0 {
                r.first_dom = d.id.0;
            }
            r.p2m += 1;
        }
        for mfn in &d.aux_frames {
            let r = refs.entry(mfn.0).or_default();
            if r.p2m == 0 && r.aux == 0 {
                r.first_dom = d.id.0;
            }
            r.aux += 1;
        }
    }

    // 1. Per-frame metadata vs back-references.
    for (mfn, frame) in hv.frames().iter_frames() {
        report.checks += 1;
        let r = refs.get(&mfn.0).copied().unwrap_or_default();
        let total = r.p2m + r.aux;
        match frame.owner() {
            FrameOwner::Free => {
                if total != 0 || frame.refcount() != 0 {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!(
                            "free {mfn} still referenced ({} p2m, {} aux refs, refcount {})",
                            r.p2m,
                            r.aux,
                            frame.refcount()
                        ),
                    });
                }
            }
            FrameOwner::Xen => {
                if total != 0 {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!(
                            "xen-owned {mfn} referenced by guest state ({} p2m, {} aux refs)",
                            r.p2m, r.aux
                        ),
                    });
                }
            }
            FrameOwner::Dom(d) => {
                if !hv.domain_exists(d) {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!("{mfn} owned by dead {d}"),
                    });
                } else if total != 1 || r.first_dom != d.0 {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!(
                            "{mfn} owned by {d} must have exactly one back-reference from \
                             its owner, found {} p2m + {} aux (first from domain {})",
                            r.p2m, r.aux, r.first_dom
                        ),
                    });
                } else if frame.refcount() != 0 {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!(
                            "exclusive {mfn} (owner {d}) has nonzero refcount {}",
                            frame.refcount()
                        ),
                    });
                }
            }
            FrameOwner::Cow => {
                if r.aux != 0 {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!("cow {mfn} referenced by {} aux-frame entries", r.aux),
                    });
                }
                if frame.refcount() != r.p2m {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!(
                            "cow {mfn} refcount {} but {} p2m references",
                            frame.refcount(),
                            r.p2m
                        ),
                    });
                }
            }
        }
    }

    // 2. Incremental owner counters vs full scan.
    report.checks += 1;
    let incremental = hv.frames().incremental_stats();
    let scanned = hv.frames().scan_stats();
    if incremental != scanned {
        report.violations.push(AuditViolation {
            invariant: "counter-drift",
            detail: format!("incremental stats {incremental:?} != scanned {scanned:?}"),
        });
    }

    let total_frames = hv.frames().total_frames();
    let live = |d: DomId| d == DomId::CHILD || hv.domain_exists(d);

    for d in hv.domains() {
        // 3. Grant entries vs frame ownership and grantee liveness.
        for (gref, entry) in d.grants.iter_active() {
            report.checks += 1;
            let GrantEntry::Access { grantee, mfn, .. } = entry else {
                continue;
            };
            if !live(*grantee) {
                report.violations.push(AuditViolation {
                    invariant: "grant-liveness",
                    detail: format!("{} grant {gref} names dead grantee {grantee}", d.id),
                });
            }
            if mfn.0 >= total_frames
                || matches!(hv.frames().inspect(*mfn).map(|f| f.owner()), Ok(FrameOwner::Free))
            {
                report.violations.push(AuditViolation {
                    invariant: "grant-frame",
                    detail: format!("{} grant {gref} names unallocated {mfn}", d.id),
                });
            }
        }

        // 4. Interdomain channels vs live peers.
        for (port, ch) in d.evtchn.iter_active() {
            report.checks += 1;
            if let Channel::Interdomain { remote_dom, .. } = ch {
                if !live(*remote_dom) {
                    report.violations.push(AuditViolation {
                        invariant: "channel-liveness",
                        detail: format!("{} port {port} connected to dead {remote_dom}", d.id),
                    });
                }
            }
        }

        // 7. Running domains must have a toolstack record (clones gain
        // theirs during the second stage).
        if !d.id.is_dom0() && fully_set_up(d.state) {
            report.checks += 1;
            if p.xl.record(d.id).is_none() {
                report.violations.push(AuditViolation {
                    invariant: "toolstack-record",
                    detail: format!("{} ({:?}) has no xl record", d.id, d.state),
                });
            }
            // 8a. ... and a Xenstore home.
            report.checks += 1;
            if !p.xs.exists(&format!("/local/domain/{}", d.id.0)) {
                report.violations.push(AuditViolation {
                    invariant: "xenstore-tree",
                    detail: format!("{} ({:?}) has no /local/domain entry", d.id, d.state),
                });
            }
        }
    }

    // 5. Clone-ring entries vs live domains.
    for n in hv.clone_ring_pending() {
        report.checks += 1;
        if !hv.domain_exists(n.parent) || !hv.domain_exists(n.child) {
            report.violations.push(AuditViolation {
                invariant: "clone-ring",
                detail: format!(
                    "queued notification references dead domain (parent {}, child {})",
                    n.parent, n.child
                ),
            });
        }
    }

    // 6. DOMID_CHILD fan-out bindings vs live domains.
    for ((parent, port), bindings) in hv.child_bindings() {
        for (child, child_port) in bindings {
            report.checks += 1;
            if !hv.domain_exists(DomId(parent)) || !hv.domain_exists(*child) {
                report.violations.push(AuditViolation {
                    invariant: "child-binding",
                    detail: format!(
                        "wildcard binding domain {parent} port {port} -> {child} port \
                         {child_port} references a dead domain"
                    ),
                });
            }
        }
    }

    // 7b. Toolstack records vs hypervisor domains.
    for (name, dom) in p.xl.list() {
        report.checks += 1;
        if !hv.domain_exists(dom) {
            report.violations.push(AuditViolation {
                invariant: "toolstack-record",
                detail: format!("xl record \"{name}\" names dead {dom}"),
            });
        }
    }

    // 8b. Registered vifs vs the Xenstore tree.
    for (dom, devid) in p.dm.all_vif_keys() {
        report.checks += 1;
        if !hv.domain_exists(dom) {
            report.violations.push(AuditViolation {
                invariant: "device-liveness",
                detail: format!("vif {devid} registered for dead {dom}"),
            });
            continue;
        }
        let frontend = format!("/local/domain/{}/device/vif/{devid}", dom.0);
        let backend = format!("/local/domain/0/backend/vif/{}/{devid}", dom.0);
        if !p.xs.exists(&frontend) || !p.xs.exists(&backend) {
            report.violations.push(AuditViolation {
                invariant: "xenstore-tree",
                detail: format!("vif {}/{devid} missing frontend or backend entry", dom.0),
            });
        }
    }

    // 8c. The persistent Xenstore tree's internal accounting: cached
    // per-node entry counts, the store-level entry count, and the
    // sharing walk's logical total must all agree.
    report.checks += 1;
    if let Err(e) = p.xs.audit_tree() {
        report.violations.push(AuditViolation {
            invariant: "xenstore-count",
            detail: e,
        });
    }

    report
}

//! State invariant auditor — the simulator's equivalent of Xen's debug-key
//! dumps, but checking instead of printing.
//!
//! [`Platform::audit`](crate::Platform::audit) cross-checks the redundant
//! state the components keep about each other and returns a structured
//! [`AuditReport`]. The invariants verified:
//!
//! 1. **Frame refcounts vs p2m back-references.** Every machine frame's
//!    metadata must agree with the set of p2m slots (and aux-frame lists)
//!    that reference it: free and Xen-owned frames are referenced by
//!    nobody, a domain-owned frame is referenced exactly once and only by
//!    its owner, and a COW frame's refcount equals the number of p2m slots
//!    pointing at it across all domains.
//! 2. **Incremental counters vs full scan.** The frame table maintains
//!    free/COW/Xen counts incrementally on every ownership transition;
//!    they must match a fresh O(frames) recount.
//! 3. **Grant entries vs frame ownership.** Active grants must name a
//!    live grantee (or the `DOMID_CHILD` wildcard) and a frame that is
//!    still allocated.
//! 4. **Event channels vs live domains.** Every connected interdomain
//!    channel must point at a live peer (or `DOMID_CHILD`).
//! 5. **Clone-ring entries vs live domains.** Queued clone notifications
//!    must reference parents and children that still exist.
//! 6. **Wildcard child bindings vs live domains.** The hypervisor's
//!    `DOMID_CHILD` binding fan-out tables must only list live clones.
//! 7. **Toolstack records vs hypervisor domains.** Every `xl` record must
//!    have a backing domain, and every running domain an `xl` record.
//! 8. **Xenstore tree vs registered devices.** Every running domain has
//!    its `/local/domain/<id>` home, and every vif the device manager
//!    knows about has both its frontend and backend directories.
//! 9. **P2m overlays vs the family template.** Each domain's overlay must
//!    be canonical (no entry storing the same value as the shared base
//!    slot), in-range, and every mapped overlay slot must point at a
//!    frame the domain can legitimately reference (its own or `dom_cow`).
//! 10. **Checkpoint journals vs the p2m.** An armed KFX checkpoint's
//!     dirty_cow journal must name live COW frames matching the
//!     checkpoint-time layout, and every slot where the current overlay
//!     diverges from the checkpoint snapshot must be journaled — a
//!     divergence the journal misses is state `clone_reset` would leak.
//! 11. **Device bus vs the Xenstore device tree.** Every registered bus
//!     device has a live owner and all of its Xenstore nodes present,
//!     every device node is claimed by exactly one registered device,
//!     no live domain's device node exists without a registered owner
//!     (no orphan rings after detach-on-clone; dead domains' stale
//!     backend entries are legacy destroy behavior pinned by the
//!     determinism-gated figures), and each device's own invariants
//!     ([`CloneDevice::audit`](crate::CloneDevice::audit)) hold.
//! 12. **Frame-table shards vs a per-shard scan.** The frame table keeps
//!     its COW/Xen counters per deterministic shard; each shard's
//!     incremental counters must match a fresh recount over exactly that
//!     shard's frame range, the shard ranges must partition the frame
//!     space (no frame counted by two shards), and their sum must equal
//!     the global stats. Catches compensated drift — two shards off in
//!     opposite directions — that the global check (invariant 2) cannot
//!     see.
//! 13. **Scan-replacing indices vs the scans they replaced.** The hot
//!     paths look up maintained indices instead of scanning: the
//!     per-table event-channel peer and grant grantee indices, the
//!     hypervisor's referrer index (which domains' tables name which),
//!     the `DOMID_CHILD` fan-out registry's reverse indices, and the
//!     toolstack's name index. Each must agree exactly with a fresh
//!     recount over the ground-truth state — any divergence means a
//!     destroy or create would tear down the wrong (or miss the right)
//!     references.
//!
//! The checks are read-only and O(total frames + domains + devices); they
//! run on demand, after every clone/destroy in debug builds, and after
//! every lifecycle operation under `NEPHELE_AUDIT=every-op`.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use hypervisor::domain::DomainState;
use hypervisor::event::Channel;
use hypervisor::grant::GrantEntry;
use hypervisor::memory::FrameOwner;
use sim_core::{DomId, Mfn, Pfn};

use crate::platform::Platform;

/// One invariant violation found by [`Platform::audit`](crate::Platform::audit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Which invariant failed (stable kebab-case tag, e.g.
    /// `frame-refcount`).
    pub invariant: &'static str,
    /// Human-readable description naming the offending frame/domain/port.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// The outcome of a full state audit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Number of individual cross-checks performed (a progress/coverage
    /// indicator; grows with platform size).
    pub checks: u64,
    /// Every violation found, in deterministic (frame/domain) order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "audit clean ({} checks)", self.checks);
        }
        writeln!(
            f,
            "audit FAILED: {} violation(s) in {} checks",
            self.violations.len(),
            self.checks
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Back-references to one machine frame gathered from domain state.
#[derive(Default, Clone, Copy)]
struct BackRefs {
    /// p2m slots pointing at the frame, across all domains.
    p2m: u32,
    /// Aux-frame list entries pointing at the frame.
    aux: u32,
    /// Keep-alive references held by checkpoint dirty_cow journals.
    journal: u32,
    /// The first domain seen referencing the frame.
    first_dom: u32,
}

/// Whether a domain is past construction and expected to have toolstack
/// and Xenstore state (freshly cloned children get theirs during the
/// second stage; `Created`/`Dying` domains are mid-transition).
fn fully_set_up(state: DomainState) -> bool {
    matches!(state, DomainState::Running | DomainState::Paused | DomainState::PausedForClone)
}

/// Render a p2m slot value for violation messages.
fn slot(v: Option<Mfn>) -> String {
    match v {
        Some(m) => m.to_string(),
        None => "unmapped".to_string(),
    }
}

pub(crate) fn run(p: &Platform) -> AuditReport {
    let mut report = AuditReport::default();
    let hv = &p.hv;

    // Gather p2m/aux back-references for every frame in one pass.
    let mut refs: HashMap<u64, BackRefs> = HashMap::new();
    for d in hv.domains() {
        for mfn in d.p2m.iter().flatten() {
            let r = refs.entry(mfn.0).or_default();
            if r.p2m == 0 && r.aux == 0 {
                r.first_dom = d.id.0;
            }
            r.p2m += 1;
        }
        for mfn in &d.aux_frames {
            let r = refs.entry(mfn.0).or_default();
            if r.p2m == 0 && r.aux == 0 {
                r.first_dom = d.id.0;
            }
            r.aux += 1;
        }
        // An armed checkpoint's dirty_cow journal holds one keep-alive
        // reference per journaled original (released on reset, re-
        // checkpoint, clone and destroy), so those count toward the COW
        // refcount like p2m slots do.
        if let Some(cp) = &d.checkpoint {
            for orig in cp.dirty_cow.values() {
                refs.entry(orig.0).or_default().journal += 1;
            }
        }
    }

    // 1. Per-frame metadata vs back-references.
    for (mfn, frame) in hv.frames().iter_frames() {
        report.checks += 1;
        let r = refs.get(&mfn.0).copied().unwrap_or_default();
        let total = r.p2m + r.aux;
        match frame.owner() {
            FrameOwner::Free => {
                if total != 0 || r.journal != 0 || frame.refcount() != 0 {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!(
                            "free {mfn} still referenced ({} p2m, {} aux, {} journal refs, \
                             refcount {})",
                            r.p2m,
                            r.aux,
                            r.journal,
                            frame.refcount()
                        ),
                    });
                }
            }
            FrameOwner::Xen => {
                if total != 0 {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!(
                            "xen-owned {mfn} referenced by guest state ({} p2m, {} aux refs)",
                            r.p2m, r.aux
                        ),
                    });
                }
            }
            FrameOwner::Dom(d) => {
                if !hv.domain_exists(d) {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!("{mfn} owned by dead {d}"),
                    });
                } else if total != 1 || r.first_dom != d.0 {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!(
                            "{mfn} owned by {d} must have exactly one back-reference from \
                             its owner, found {} p2m + {} aux (first from domain {})",
                            r.p2m, r.aux, r.first_dom
                        ),
                    });
                } else if frame.refcount() != 0 {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!(
                            "exclusive {mfn} (owner {d}) has nonzero refcount {}",
                            frame.refcount()
                        ),
                    });
                }
            }
            FrameOwner::Cow => {
                if r.aux != 0 {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!("cow {mfn} referenced by {} aux-frame entries", r.aux),
                    });
                }
                if frame.refcount() != r.p2m + r.journal {
                    report.violations.push(AuditViolation {
                        invariant: "frame-refcount",
                        detail: format!(
                            "cow {mfn} refcount {} but {} p2m + {} journal references",
                            frame.refcount(),
                            r.p2m,
                            r.journal
                        ),
                    });
                }
            }
        }
    }

    // 2. Incremental owner counters vs full scan.
    report.checks += 1;
    let incremental = hv.frames().incremental_stats();
    let scanned = hv.frames().scan_stats();
    if incremental != scanned {
        report.violations.push(AuditViolation {
            invariant: "counter-drift",
            detail: format!("incremental stats {incremental:?} != scanned {scanned:?}"),
        });
    }

    // 12. Per-shard incremental counters vs a scoped recount, and the
    // shard ranges partitioning the frame space. The global check above
    // cannot see compensated drift (two shards off in opposite
    // directions); this one can.
    report.checks += 1;
    let shard_inc = hv.frames().shard_incremental_stats();
    let shard_scan = hv.frames().scan_shard_stats();
    for (s, (inc, scan)) in shard_inc.iter().zip(shard_scan.iter()).enumerate() {
        if inc != scan {
            report.violations.push(AuditViolation {
                invariant: "shard-stats",
                detail: format!(
                    "shard {s} (frames {:?}) incremental {inc:?} != scanned {scan:?}",
                    hv.frames().shard_range(s)
                ),
            });
        }
    }
    let mut expect_start = 0u64;
    for s in 0..hypervisor::memory::FRAME_SHARDS {
        let r = hv.frames().shard_range(s);
        if r.start != expect_start {
            report.violations.push(AuditViolation {
                invariant: "shard-stats",
                detail: format!(
                    "shard {s} starts at frame {} instead of {expect_start}: \
                     ranges must partition the frame space",
                    r.start
                ),
            });
        }
        expect_start = r.end;
    }
    if expect_start != hv.frames().total_frames() {
        report.violations.push(AuditViolation {
            invariant: "shard-stats",
            detail: format!(
                "shard ranges end at frame {expect_start}, not at the {} total",
                hv.frames().total_frames()
            ),
        });
    }

    let total_frames = hv.frames().total_frames();
    let live = |d: DomId| d == DomId::CHILD || hv.domain_exists(d);

    for d in hv.domains() {
        // 3. Grant entries vs frame ownership and grantee liveness.
        for (gref, entry) in d.grants.iter_active() {
            report.checks += 1;
            let GrantEntry::Access { grantee, mfn, .. } = entry else {
                continue;
            };
            if !live(*grantee) {
                report.violations.push(AuditViolation {
                    invariant: "grant-liveness",
                    detail: format!("{} grant {gref} names dead grantee {grantee}", d.id),
                });
            }
            if mfn.0 >= total_frames
                || matches!(hv.frames().inspect(*mfn).map(|f| f.owner()), Ok(FrameOwner::Free))
            {
                report.violations.push(AuditViolation {
                    invariant: "grant-frame",
                    detail: format!("{} grant {gref} names unallocated {mfn}", d.id),
                });
            }
        }

        // 4. Interdomain channels vs live peers.
        for (port, ch) in d.evtchn.iter_active() {
            report.checks += 1;
            if let Channel::Interdomain { remote_dom, .. } = ch {
                if !live(*remote_dom) {
                    report.violations.push(AuditViolation {
                        invariant: "channel-liveness",
                        detail: format!("{} port {port} connected to dead {remote_dom}", d.id),
                    });
                }
            }
        }

        // 9. P2m overlay vs the family template: canonical, in-range,
        // and every mapped divergence names a frame this domain can
        // legitimately reference.
        for (idx, val) in d.p2m.overlay_entries() {
            report.checks += 1;
            if idx >= d.p2m.len() as u64 {
                report.violations.push(AuditViolation {
                    invariant: "p2m-overlay",
                    detail: format!(
                        "{} overlay slot {idx} is past the p2m length {}",
                        d.id,
                        d.p2m.len()
                    ),
                });
                continue;
            }
            if val == d.p2m.base_get(idx as usize) {
                report.violations.push(AuditViolation {
                    invariant: "p2m-overlay",
                    detail: format!(
                        "{} overlay slot {idx} redundantly stores the template value {} \
                         (non-canonical overlay)",
                        d.id,
                        slot(val)
                    ),
                });
            }
            if let Some(mfn) = val {
                let owner = if mfn.0 < total_frames {
                    hv.frames().inspect(mfn).ok().map(|f| f.owner())
                } else {
                    None
                };
                let legitimate = matches!(owner, Some(FrameOwner::Cow))
                    || owner == Some(FrameOwner::Dom(d.id));
                if !legitimate {
                    report.violations.push(AuditViolation {
                        invariant: "p2m-overlay",
                        detail: format!(
                            "{} overlay slot {idx} maps {mfn}, which is not a cow frame \
                             or one of the domain's own ({owner:?})",
                            d.id
                        ),
                    });
                }
            }
        }

        // 10. Armed checkpoint journals vs the live p2m.
        if let Some(cp) = &d.checkpoint {
            for (pfn, orig) in &cp.dirty_cow {
                report.checks += 1;
                // The journaled original must still be a live COW frame
                // (its keep-alive reference guarantees it) and must be
                // what the checkpoint-time layout mapped at this slot.
                let still_cow = orig.0 < total_frames
                    && matches!(
                        hv.frames().inspect(*orig).map(|f| f.owner()),
                        Ok(FrameOwner::Cow)
                    );
                if !still_cow {
                    report.violations.push(AuditViolation {
                        invariant: "checkpoint",
                        detail: format!(
                            "{} dirty_cow journal for {pfn} names {orig}, which is no \
                             longer a live cow frame",
                            d.id
                        ),
                    });
                }
                let cp_view = cp
                    .overlay
                    .get(&pfn.0)
                    .copied()
                    .unwrap_or_else(|| d.p2m.base_get(pfn.0 as usize));
                if cp_view != Some(*orig) {
                    report.violations.push(AuditViolation {
                        invariant: "checkpoint",
                        detail: format!(
                            "{} dirty_cow journal for {pfn} names {orig} but the \
                             checkpoint layout mapped {}",
                            d.id,
                            slot(cp_view)
                        ),
                    });
                }
            }
            // Journaled pre-images only make sense for pages the domain
            // owns outright: private writes and last-sharer transfers
            // both leave the slot dom-owned until reset or release.
            for pfn in cp.dirty_transfer.keys().chain(cp.dirty_private.keys()) {
                report.checks += 1;
                let owner = d
                    .lookup(*pfn)
                    .and_then(|m| hv.frames().inspect(m).ok().map(|f| f.owner()));
                if owner != Some(FrameOwner::Dom(d.id)) {
                    report.violations.push(AuditViolation {
                        invariant: "checkpoint",
                        detail: format!(
                            "{} journaled a pre-image for {pfn} but the slot is not \
                             backed by a domain-owned frame ({owner:?})",
                            d.id
                        ),
                    });
                }
            }
            // Journal completeness: every slot where the live overlay
            // diverges from the checkpoint snapshot must be a journaled
            // COW fault — a divergence the journal misses is state a
            // reset would leak.
            let mut idxs: BTreeSet<u64> = d.p2m.overlay_entries().map(|(i, _)| i).collect();
            idxs.extend(cp.overlay.keys().copied());
            for idx in idxs {
                report.checks += 1;
                let now = d.p2m.get(idx as usize);
                let then = cp
                    .overlay
                    .get(&idx)
                    .copied()
                    .unwrap_or_else(|| d.p2m.base_get(idx as usize));
                if now != then && !cp.dirty_cow.contains_key(&Pfn(idx)) {
                    report.violations.push(AuditViolation {
                        invariant: "checkpoint",
                        detail: format!(
                            "{} p2m slot {idx} diverged from its checkpoint ({} -> {}) \
                             without a dirty_cow journal entry",
                            d.id,
                            slot(then),
                            slot(now)
                        ),
                    });
                }
            }
        }

        // 7. Running domains must have a toolstack record (clones gain
        // theirs during the second stage).
        if !d.id.is_dom0() && fully_set_up(d.state) {
            report.checks += 1;
            if p.xl.record(d.id).is_none() {
                report.violations.push(AuditViolation {
                    invariant: "toolstack-record",
                    detail: format!("{} ({:?}) has no xl record", d.id, d.state),
                });
            }
            // 8a. ... and a Xenstore home.
            report.checks += 1;
            if !p.xs.exists(&format!("/local/domain/{}", d.id.0)) {
                report.violations.push(AuditViolation {
                    invariant: "xenstore-tree",
                    detail: format!("{} ({:?}) has no /local/domain entry", d.id, d.state),
                });
            }
        }
    }

    // 5. Clone-ring entries vs live domains.
    for n in hv.clone_ring_pending() {
        report.checks += 1;
        if !hv.domain_exists(n.parent) || !hv.domain_exists(n.child) {
            report.violations.push(AuditViolation {
                invariant: "clone-ring",
                detail: format!(
                    "queued notification references dead domain (parent {}, child {})",
                    n.parent, n.child
                ),
            });
        }
    }

    // 6. DOMID_CHILD fan-out bindings vs live domains.
    for ((parent, port), bindings) in hv.child_bindings() {
        for (child, child_port) in bindings {
            report.checks += 1;
            if !hv.domain_exists(DomId(parent)) || !hv.domain_exists(child) {
                report.violations.push(AuditViolation {
                    invariant: "child-binding",
                    detail: format!(
                        "wildcard binding domain {parent} port {port} -> {child} port \
                         {child_port} references a dead domain"
                    ),
                });
            }
        }
    }

    // 7b. Toolstack records vs hypervisor domains.
    for (name, dom) in p.xl.list() {
        report.checks += 1;
        if !hv.domain_exists(dom) {
            report.violations.push(AuditViolation {
                invariant: "toolstack-record",
                detail: format!("xl record \"{name}\" names dead {dom}"),
            });
        }
    }

    // 8b. Registered vifs vs the Xenstore tree.
    for (dom, devid) in p.dm.all_vif_keys() {
        report.checks += 1;
        if !hv.domain_exists(dom) {
            report.violations.push(AuditViolation {
                invariant: "device-liveness",
                detail: format!("vif {devid} registered for dead {dom}"),
            });
            continue;
        }
        let frontend = format!("/local/domain/{}/device/vif/{devid}", dom.0);
        let backend = format!("/local/domain/0/backend/vif/{}/{devid}", dom.0);
        if !p.xs.exists(&frontend) || !p.xs.exists(&backend) {
            report.violations.push(AuditViolation {
                invariant: "xenstore-tree",
                detail: format!("vif {}/{devid} missing frontend or backend entry", dom.0),
            });
        }
    }

    // 11. Device bus vs the Xenstore device tree. First pass: every
    // registered device has a live owner, its nodes exist, and its own
    // invariants hold; each node is claimed by exactly one device.
    let mut claimed: BTreeMap<String, u32> = BTreeMap::new();
    for dev in p.dm.bus().all() {
        report.checks += 1;
        let id = dev.id();
        let owner = dev.owner();
        if !hv.domain_exists(owner) {
            report.violations.push(AuditViolation {
                invariant: "device-bus",
                detail: format!(
                    "{} {} registered on the bus for dead {owner}",
                    id.class.name(),
                    id.devid
                ),
            });
            continue;
        }
        for path in dev.xenstore_paths() {
            report.checks += 1;
            if !p.xs.exists(&path) {
                report.violations.push(AuditViolation {
                    invariant: "device-bus",
                    detail: format!(
                        "{} {} of {owner} is missing its Xenstore node {path}",
                        id.class.name(),
                        id.devid
                    ),
                });
            }
            *claimed.entry(path).or_default() += 1;
        }
        for detail in dev.audit(&p.dm, &p.xs) {
            report.violations.push(AuditViolation { invariant: "device-bus", detail });
        }
    }
    for (path, n) in claimed.iter().filter(|(_, n)| **n > 1) {
        report.violations.push(AuditViolation {
            invariant: "device-bus",
            detail: format!("Xenstore node {path} claimed by {n} bus devices"),
        });
    }

    // Second pass: walk the actual device nodes (frontends per live
    // domain, backends under Dom0) — each must belong to a registered
    // device. An unclaimed node is an orphan: exactly what a buggy
    // detach-on-clone would leave behind. The backend walk is scoped to
    // live domains: the legacy toolstack leaves a destroyed domain's
    // backend entries in place, and the determinism-gated figures pin
    // that behavior (every Xenstore charge scales with the store's
    // entry count).
    let mut device_nodes: Vec<String> = Vec::new();
    for d in hv.domains() {
        if d.id.is_dom0() {
            continue;
        }
        let home = format!("/local/domain/{}", d.id.0);
        let console = format!("{home}/console");
        if p.xs.exists(&console) {
            device_nodes.push(console);
        }
        for class in p.xs.peek_directory(&format!("{home}/device")) {
            for devid in p.xs.peek_directory(&format!("{home}/device/{class}")) {
                device_nodes.push(format!("{home}/device/{class}/{devid}"));
            }
        }
    }
    for class in p.xs.peek_directory("/local/domain/0/backend") {
        for domid in p.xs.peek_directory(&format!("/local/domain/0/backend/{class}")) {
            let alive = domid
                .parse::<u32>()
                .map(|d| hv.domain_exists(DomId(d)))
                .unwrap_or(false);
            if !alive {
                continue;
            }
            for devid in
                p.xs.peek_directory(&format!("/local/domain/0/backend/{class}/{domid}"))
            {
                device_nodes.push(format!("/local/domain/0/backend/{class}/{domid}/{devid}"));
            }
        }
    }
    for node in device_nodes {
        report.checks += 1;
        if !claimed.contains_key(&node) {
            report.violations.push(AuditViolation {
                invariant: "device-bus",
                detail: format!("device node {node} has no registered bus device (orphan)"),
            });
        }
    }

    // 8c. The persistent Xenstore tree's internal accounting: cached
    // per-node entry counts, the store-level entry count, and the
    // sharing walk's logical total must all agree.
    report.checks += 1;
    if let Err(e) = p.xs.audit_tree() {
        report.violations.push(AuditViolation {
            invariant: "xenstore-count",
            detail: e,
        });
    }

    // 13. Scan-replacing indices vs the scans they replaced: the
    // hypervisor's per-table and referrer indices, the fan-out
    // registry's reverse indices, and the toolstack's name index.
    report.checks += 1;
    for detail in hv.audit_ref_indices() {
        report.violations.push(AuditViolation { invariant: "index-consistency", detail });
    }
    report.checks += 1;
    for detail in p.xl.audit_name_index() {
        report.violations.push(AuditViolation { invariant: "index-consistency", detail });
    }

    report
}

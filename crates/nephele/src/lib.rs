//! Nephele: cloning support for unikernel-based VMs — the platform facade.
//!
//! This crate assembles every component of the reproduction — hypervisor,
//! Xenstore, device manager, toolstack, `xencloned`, network fabric and the
//! guest runtime — into one [`Platform`] with a deterministic event loop.
//! It is the public API a downstream user programs against:
//!
//! ```
//! use nephele::{Platform, PlatformConfig};
//! use nephele::toolstack::{DomainConfig, KernelImage};
//!
//! let mut p = Platform::new(PlatformConfig::default());
//! let cfg = DomainConfig::builder("quick").memory_mib(4).max_clones(4).build();
//! let dom = p.launch_plain(&cfg, &KernelImage::minios("quick")).unwrap();
//! let kids = p.clone_domain(dom, 2).unwrap();
//! assert_eq!(kids.len(), 2);
//! ```
//!
//! Devices hang off a uniform bus: every live device registers on the
//! [`DeviceBus`] declaring its identity ([`DeviceId`]) and its clone
//! heuristic ([`CloneSemantics`], paper §4.2); the cloning daemon's
//! second stage dispatches through [`CloneDevice::clone_into`], and
//! which classes follow a clone is a per-class [`ClonePolicy`]:
//!
//! ```
//! use nephele::{ClonePolicy, CloneSemantics, DeviceClass, Platform, PlatformConfig};
//!
//! // Redis-style clones: skip network-device cloning (§7.1).
//! let p = Platform::new(
//!     PlatformConfig::builder()
//!         .clone_policy(ClonePolicy::all().set(DeviceClass::Vif, false))
//!         .build(),
//! );
//! assert!(!p.daemon.config.policy.clones(DeviceClass::Vif));
//! assert_eq!(DeviceClass::Vbd.semantics(), CloneSemantics::CowOverlay);
//! assert_eq!(DeviceClass::Usb.semantics(), CloneSemantics::DetachOnClone);
//! ```
//!
//! To observe what a run did, enable tracing and export the recorded
//! spans ([`TraceConfig`], [`Platform::trace`], chrome-trace JSON and CSV
//! exporters in [`sim_core::trace`]). Long or wide runs should switch the
//! sink to streaming aggregation ([`TraceMode::Aggregate`], or
//! `NEPHELE_TRACE_MODE=aggregate` at runtime): raw records are folded into
//! histograms, virtual-time timeline slices and per-clone-family rollups
//! as they close, so sink memory stays bounded by distinct metric keys
//! rather than events. [`Platform::timeline_csv`],
//! [`Platform::metrics_text`] and [`Platform::family_rollup_csv`] export
//! identical bytes in either mode.
//!
//! Re-exports give access to every subsystem (`nephele::hypervisor`,
//! `nephele::xenstore`, ...).

pub use apps;
pub use devices;
pub use guest;
pub use hypervisor;
pub use linux_procs;
pub use netmux;
pub use sim_core;
pub use toolstack;
pub use xencloned;
pub use xenstore;

pub mod audit;
mod platform;

pub use audit::{AuditReport, AuditViolation};
pub use platform::{
    AuditMode,
    MuxKind,
    Platform,
    PlatformConfig,
    PlatformConfigBuilder,
    PlatformError,
    PlatformSnapshot, //
};

// The device bus: the uniform per-device clone-semantics surface (see
// the crate-level example).
pub use devices::bus::{
    CloneCtx,
    CloneDevice,
    CloneOutcome,
    ClonePolicy,
    CloneSemantics,
    DeviceBus,
    DeviceClass,
    DeviceId, //
};

// The observability surface and the component error types wrapped by
// `PlatformError`, so downstream code rarely needs to name member crates.
pub use devices::DevError;
pub use hypervisor::error::HvError;
pub use sim_core::{
    FamilyRow,
    SinkOverhead,
    TimelineConfig,
    TraceConfig,
    TraceMode,
    TraceSink, //
};
pub use toolstack::XlError;
pub use xencloned::CloneDaemonError;
pub use xenstore::XsError;

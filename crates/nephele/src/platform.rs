//! The assembled virtualization platform and its event loop.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use devices::bus::ClonePolicy;
use devices::udev::UdevBus;
use devices::{DevError, DeviceManager};
use guest::{ForkOutcome, GuestAction, GuestApp, GuestEnv, GuestHeap, HOST_MAC};
use hypervisor::cloneop::{CloneOp, CloneOpResult};
use hypervisor::error::HvError;
use hypervisor::event::Virq;
use hypervisor::{Hypervisor, MachineConfig, PendingEvent};
use netmux::{
    Bond,
    CloneMux,
    ConnId,
    IfaceId,
    MacAddr,
    NetStack,
    Packet,
    SelectGroup,
    SockEvent,
    XmitHashPolicy, //
};
use sim_core::rollup::render_family_csv;
use sim_core::{
    Clock,
    CostModel,
    DomId,
    EventQueue,
    FamilyRow,
    FlightEvent,
    FlightRecorder,
    SimDuration,
    SplitMix64,
    TraceConfig,
    TraceMode,
    TraceSink,
    DEFAULT_FLIGHTREC_CAPACITY, //
};
use toolstack::{CreatedDomain, Dom0Model, DomainConfig, KernelImage, Xl, XlError};
use xencloned::{CloneDaemonError, Xencloned};
use xenstore::{XsError, Xenstore};

use crate::audit::{self, AuditReport};

/// The host endpoint's IP (Dom0 side of the bridge).
pub const HOST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

/// Which clone-interface multiplexer the platform uses (§5.2.1 evaluates
/// both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MuxKind {
    /// Plain bridge only; no clone multiplexing.
    None,
    /// Linux bond, balance-xor with the layer3+4 policy (the paper's
    /// stateless choice).
    #[default]
    Bond,
    /// Open vSwitch select group (hash-based).
    Ovs,
}

/// When the platform runs the state invariant auditor on its own (see
/// [`Platform::audit`] for the on-demand entry point).
///
/// The default is resolved at [`Platform::new`] from the `NEPHELE_AUDIT`
/// environment variable (`off`, `lifecycle`, `every-op`); an explicit
/// [`PlatformConfigBuilder::audit`] choice wins over the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditMode {
    /// Never audit automatically.
    Off,
    /// Audit after clone/destroy lifecycle transitions, in debug builds
    /// only (release builds skip the hook entirely). This is the default.
    #[default]
    Lifecycle,
    /// Audit after every platform operation and at the end of every
    /// [`Platform::run_for`], in all build profiles.
    EveryOp,
}

impl AuditMode {
    /// Parses the `NEPHELE_AUDIT` environment variable; unknown values are
    /// ignored (returns `None`).
    fn from_env() -> Option<AuditMode> {
        match std::env::var("NEPHELE_AUDIT").ok()?.as_str() {
            "off" | "0" => Some(AuditMode::Off),
            "lifecycle" | "debug" => Some(AuditMode::Lifecycle),
            "every-op" | "every_op" | "all" => Some(AuditMode::EveryOp),
            _ => None,
        }
    }
}

/// Platform-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// Hypervisor failure.
    Hv(HvError),
    /// Toolstack failure.
    Xl(XlError),
    /// Xenstore failure.
    Xs(XsError),
    /// Device failure.
    Dev(DevError),
    /// Cloning-daemon failure.
    Daemon(CloneDaemonError),
    /// The domain has no registered guest application.
    NoGuest(DomId),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Hv(e) => write!(f, "{e}"),
            PlatformError::Xl(e) => write!(f, "{e}"),
            PlatformError::Xs(e) => write!(f, "{e}"),
            PlatformError::Dev(e) => write!(f, "{e}"),
            PlatformError::Daemon(e) => write!(f, "{e}"),
            PlatformError::NoGuest(d) => write!(f, "no guest app for {d}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Hv(e) => Some(e),
            PlatformError::Xl(e) => Some(e),
            PlatformError::Xs(e) => Some(e),
            PlatformError::Dev(e) => Some(e),
            PlatformError::Daemon(e) => Some(e),
            PlatformError::NoGuest(_) => None,
        }
    }
}

impl From<HvError> for PlatformError {
    fn from(e: HvError) -> Self {
        PlatformError::Hv(e)
    }
}
impl From<XlError> for PlatformError {
    fn from(e: XlError) -> Self {
        PlatformError::Xl(e)
    }
}
impl From<XsError> for PlatformError {
    fn from(e: XsError) -> Self {
        PlatformError::Xs(e)
    }
}
impl From<DevError> for PlatformError {
    fn from(e: DevError) -> Self {
        PlatformError::Dev(e)
    }
}
impl From<CloneDaemonError> for PlatformError {
    fn from(e: CloneDaemonError) -> Self {
        PlatformError::Daemon(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PlatformError>;

/// Platform construction options.
///
/// Build one with [`PlatformConfig::builder`] (preferred), start from
/// [`PlatformConfig::default`], or use the [`PlatformConfig::small`]
/// preset. The fields stay public for ad-hoc tweaking.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Machine shape (defaults to the paper's: 12 GiB guest pool, 4 cores).
    pub machine: MachineConfig,
    /// Cost model (defaults to the calibrated model).
    pub costs: CostModel,
    /// Clone-interface multiplexer.
    pub mux: MuxKind,
    /// Master PRNG seed.
    pub seed: u64,
    /// Observability knobs (tracing is off by default; when off, the
    /// instrumentation throughout the platform does near-zero work).
    pub tracing: TraceConfig,
    /// Capacity of the always-on flight recorder ring (events kept).
    /// Overridable at runtime with a numeric `NEPHELE_FLIGHTREC` value.
    pub flightrec_capacity: usize,
    /// Directory flight-recorder dumps are written to on the first error
    /// or audit failure.
    pub flightrec_dir: PathBuf,
    /// Whether error/audit-failure dumps are written at all. Setting
    /// `NEPHELE_FLIGHTREC=0` (or `off`) disables them at runtime.
    pub flightrec_dumps: bool,
    /// Automatic-audit policy. `None` defers to `NEPHELE_AUDIT` (falling
    /// back to [`AuditMode::Lifecycle`]); `Some` pins it.
    pub audit: Option<AuditMode>,
    /// Host worker threads for the deterministic fork/join pool used by
    /// batch cloning (hypervisor stamping and `xencloned` stage-2 plan
    /// building). `1` (the default) runs everything inline on the calling
    /// thread — byte-for-byte the historical behavior; any value produces
    /// identical results, only faster. Overridable at runtime with a
    /// numeric `NEPHELE_THREADS` value.
    pub threads: usize,
    /// Per-device-class clone policy handed to `xencloned` (defaults to
    /// cloning every class).
    pub clone_policy: ClonePolicy,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            machine: MachineConfig::default(),
            costs: CostModel::calibrated(),
            mux: MuxKind::Bond,
            seed: 0x6e65_7068_656c_65, // "nephele"
            tracing: TraceConfig::default(),
            flightrec_capacity: DEFAULT_FLIGHTREC_CAPACITY,
            flightrec_dir: PathBuf::from("results"),
            flightrec_dumps: true,
            audit: None,
            threads: 1,
            clone_policy: ClonePolicy::all(),
        }
    }
}

impl PlatformConfig {
    /// Starts a builder from the default (paper-calibrated) configuration.
    ///
    /// ```
    /// use nephele::{MuxKind, PlatformConfig, TraceConfig};
    ///
    /// let cfg = PlatformConfig::builder()
    ///     .cores(4)
    ///     .mux(MuxKind::Ovs)
    ///     .tracing(TraceConfig::enabled())
    ///     .build();
    /// assert_eq!(cfg.mux, MuxKind::Ovs);
    /// assert!(cfg.tracing.enabled);
    /// ```
    pub fn builder() -> PlatformConfigBuilder {
        PlatformConfigBuilder {
            config: PlatformConfig::default(),
        }
    }

    /// A small-machine preset for tests (256 MiB pool, free costs are NOT
    /// applied — timing stays calibrated).
    pub fn small() -> Self {
        PlatformConfig::builder()
            .guest_pool_mib(256)
            .cores(4)
            .ring_capacity(128)
            .build()
    }
}

/// Builder for [`PlatformConfig`]; created by [`PlatformConfig::builder`].
#[derive(Debug, Clone)]
pub struct PlatformConfigBuilder {
    config: PlatformConfig,
}

impl PlatformConfigBuilder {
    /// Replaces the whole machine shape.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.config.machine = machine;
        self
    }

    /// Replaces the cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.config.costs = costs;
        self
    }

    /// Sets the guest memory pool size in MiB.
    pub fn guest_pool_mib(mut self, mib: u64) -> Self {
        self.config.machine.guest_pool_mib = mib;
        self
    }

    /// Sets the number of physical cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.config.machine.cores = cores;
        self
    }

    /// Sets the clone notification ring capacity.
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.config.machine.notification_ring_capacity = capacity;
        self
    }

    /// Selects the clone-interface multiplexer.
    pub fn mux(mut self, mux: MuxKind) -> Self {
        self.config.mux = mux;
        self
    }

    /// Sets the master PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the observability knobs (see [`TraceConfig`]).
    pub fn tracing(mut self, tracing: TraceConfig) -> Self {
        self.config.tracing = tracing;
        self
    }

    /// Sets the trace retention mode, flipping the master switch to match
    /// ([`TraceMode::Off`] disables the sink). Other tracing knobs are
    /// preserved. `NEPHELE_TRACE_MODE` overrides this at runtime.
    ///
    /// ```
    /// use nephele::{PlatformConfig, TraceMode};
    ///
    /// let cfg = PlatformConfig::builder().trace_mode(TraceMode::Aggregate).build();
    /// assert!(cfg.tracing.enabled);
    /// assert_eq!(cfg.tracing.effective_mode(), TraceMode::Aggregate);
    /// ```
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.config.tracing.mode = mode;
        self.config.tracing.enabled = mode != TraceMode::Off;
        self
    }

    /// Caps the raw counter samples a Full-mode sink retains; the oldest
    /// samples are dropped past the cap (totals, timelines and streaming
    /// aggregates are unaffected).
    pub fn counter_sample_cap(mut self, cap: usize) -> Self {
        self.config.tracing.counter_sample_cap = Some(cap);
        self
    }

    /// Sets the flight recorder ring capacity (number of events kept).
    pub fn flightrec_capacity(mut self, capacity: usize) -> Self {
        self.config.flightrec_capacity = capacity;
        self
    }

    /// Sets the directory flight-recorder dumps are written to.
    pub fn flightrec_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.flightrec_dir = dir.into();
        self
    }

    /// Enables or disables flight-recorder dump files.
    pub fn flightrec_dumps(mut self, dumps: bool) -> Self {
        self.config.flightrec_dumps = dumps;
        self
    }

    /// Pins the automatic-audit policy (overrides `NEPHELE_AUDIT`).
    pub fn audit(mut self, mode: AuditMode) -> Self {
        self.config.audit = Some(mode);
        self
    }

    /// Sets the host worker-thread count for the deterministic fork/join
    /// pool (clamped to at least 1). Results are identical at any value;
    /// only host wall-clock changes. `NEPHELE_THREADS` overrides this at
    /// runtime.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Sets the per-device-class clone policy.
    ///
    /// ```
    /// use nephele::{ClonePolicy, DeviceClass, PlatformConfig};
    ///
    /// let cfg = PlatformConfig::builder()
    ///     .clone_policy(ClonePolicy::all().set(DeviceClass::Vif, false))
    ///     .build();
    /// assert!(!cfg.clone_policy.clones(DeviceClass::Vif));
    /// ```
    pub fn clone_policy(mut self, policy: ClonePolicy) -> Self {
        self.config.clone_policy = policy;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> PlatformConfig {
        self.config
    }
}

/// A point-in-time view of the platform's introspection metrics, returned
/// by [`Platform::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformSnapshot {
    /// Free hypervisor-pool memory in bytes (Fig. 5 "Hyp free").
    pub hyp_free_bytes: u64,
    /// Free Dom0 memory in bytes (Fig. 5 "Dom0 free").
    pub dom0_free_bytes: u64,
    /// Machine frames currently owned by `dom_cow` — i.e. pages shared
    /// between a parent and its clones, counted once. Maintained
    /// incrementally by the frame table, so sampling it per clone is O(1).
    pub cow_shared_frames: u64,
    /// Machine frames owned by the hypervisor itself.
    pub xen_frames: u64,
    /// Packets the fabric has routed.
    pub packets_routed: u64,
    /// Number of members in the clone mux.
    pub mux_members: usize,
    /// Live domains, Dom0 included.
    pub domains: usize,
    /// Clones whose second stage completed.
    pub clones_completed: u64,
    /// Xenstore resident bytes attributable to entries structurally
    /// shared between clones (counted at every point of use). Falls as
    /// clones diverge and shared nodes are materialized.
    pub xs_shared_entry_bytes: u64,
    /// Xenstore resident bytes backed by unshared nodes. The two fields
    /// always sum to [`Xenstore::resident_bytes`], which stays the
    /// logical (sharing-agnostic) figure Fig. 5 plots.
    pub xs_unique_entry_bytes: u64,
    /// P2m resident bytes attributable to family base templates shared
    /// between clones (counted at every point of use, like the Xenstore
    /// split). Grows with fan-out: N clones of one parent reference one
    /// template N+1 times.
    pub p2m_shared_bytes: u64,
    /// P2m resident bytes private to a single domain: sole-owner
    /// templates plus every overlay entry. Grows as clones diverge
    /// through COW faults.
    pub p2m_unique_bytes: u64,
    /// Vbd storage bytes referenced by more than one block device
    /// (counted at every point of use): base images across a clone
    /// family, plus overlays still structurally shared after a clone.
    pub blk_shared_bytes: u64,
    /// Vbd storage bytes only a single block device references.
    pub blk_unique_bytes: u64,
}

struct GuestSlot {
    app: Box<dyn GuestApp>,
    heap: GuestHeap,
    stack: NetStack,
    devids: Vec<u32>,
}

/// The assembled platform.
pub struct Platform {
    /// The shared virtual clock.
    pub clock: Clock,
    /// The shared cost model.
    pub costs: Rc<CostModel>,
    /// The hypervisor.
    pub hv: Hypervisor,
    /// The Xenstore daemon.
    pub xs: Xenstore,
    /// The Dom0 device manager.
    pub dm: DeviceManager,
    /// The udev bus.
    pub udev: UdevBus,
    /// The toolstack.
    pub xl: Xl,
    /// The cloning daemon.
    pub daemon: Xencloned,
    /// The Dom0 memory model.
    pub dom0: Dom0Model,
    /// Deterministic PRNG for workloads.
    pub rng: SplitMix64,
    mux: Option<Box<dyn CloneMux>>,
    mux_ip: Option<Ipv4Addr>,
    host_stack: NetStack,
    host_events: Vec<SockEvent>,
    mac_first: HashMap<MacAddr, IfaceId>,
    guests: HashMap<u32, GuestSlot>,
    timers: EventQueue<(u32, u64)>,
    packets_routed: u64,
    seed: u64,
    trace: TraceSink,
    flightrec: FlightRecorder,
    flightrec_dir: PathBuf,
    flightrec_dumps: bool,
    flightrec_dumped: Cell<bool>,
    audit_mode: AuditMode,
}

impl Platform {
    /// Boots the platform: hypervisor, Xenstore, device manager, toolstack
    /// and the `xencloned` daemon (cloning enabled globally).
    pub fn new(config: PlatformConfig) -> Self {
        let clock = Clock::new();
        let costs = Rc::new(config.costs);
        // `NEPHELE_TRACE_MODE=off|full|aggregate` overrides the configured
        // retention mode (and the master switch with it); the remaining
        // tracing knobs are kept as configured.
        let mut tracing = config.tracing.clone();
        if let Some(mode) = std::env::var("NEPHELE_TRACE_MODE")
            .ok()
            .and_then(|v| TraceMode::parse(v.trim()))
        {
            tracing.mode = mode;
            tracing.enabled = mode != TraceMode::Off;
        }
        let trace = TraceSink::new(clock.clone(), &tracing);
        let mut hv = Hypervisor::new(clock.clone(), costs.clone(), &config.machine);
        let mut xs = Xenstore::new(clock.clone(), costs.clone());
        let mut dm = DeviceManager::new(clock.clone(), costs.clone());
        let mut xl = Xl::new(clock.clone(), costs.clone());
        let mut daemon = Xencloned::new(clock.clone(), costs.clone());
        hv.attach_trace(trace.clone());
        xs.attach_trace(trace.clone());
        dm.attach_trace(trace.clone());
        xl.attach_trace(trace.clone());
        daemon.attach_trace(trace.clone());

        // `NEPHELE_THREADS=<n>` overrides the configured worker count for
        // the deterministic fork/join pool. Any value yields identical
        // results (the pool only parallelizes order-fixed work), so the
        // override is safe to apply from the environment.
        let mut threads = config.threads.max(1);
        if let Ok(v) = std::env::var("NEPHELE_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                threads = n.max(1);
            }
        }
        let pool = sim_core::par::Pool::new(threads).with_seed(config.seed);
        hv.attach_pool(pool);
        daemon.attach_pool(pool);
        daemon.start(&mut hv).expect("daemon start on fresh hypervisor");
        daemon.config.policy = config.clone_policy.clone();

        let mux: Option<Box<dyn CloneMux>> = match config.mux {
            MuxKind::None => None,
            MuxKind::Bond => Some(Box::new(Bond::new(XmitHashPolicy::Layer34))),
            MuxKind::Ovs => Some(Box::new(SelectGroup::hashed())),
        };

        // `NEPHELE_FLIGHTREC=0`/`off` disables dump files; a numeric value
        // overrides the ring capacity. The ring itself is always on.
        let mut flightrec_capacity = config.flightrec_capacity;
        let mut flightrec_dumps = config.flightrec_dumps;
        if let Ok(v) = std::env::var("NEPHELE_FLIGHTREC") {
            match v.as_str() {
                "0" | "off" => flightrec_dumps = false,
                other => {
                    if let Ok(n) = other.parse::<usize>() {
                        flightrec_capacity = n;
                    }
                }
            }
        }
        let audit_mode = config
            .audit
            .or_else(AuditMode::from_env)
            .unwrap_or_default();

        Platform {
            clock,
            costs,
            hv,
            xs,
            dm,
            udev: UdevBus::new(),
            xl,
            daemon,
            dom0: Dom0Model::default(),
            rng: SplitMix64::new(config.seed),
            mux,
            mux_ip: None,
            host_stack: NetStack::new(HOST_MAC, HOST_IP),
            host_events: Vec::new(),
            mac_first: HashMap::new(),
            guests: HashMap::new(),
            timers: EventQueue::new(),
            packets_routed: 0,
            seed: config.seed,
            trace,
            flightrec: FlightRecorder::with_capacity(flightrec_capacity),
            flightrec_dir: config.flightrec_dir,
            flightrec_dumps,
            flightrec_dumped: Cell::new(false),
            audit_mode,
        }
    }

    /// Borrows the platform's trace sink (disabled unless
    /// [`PlatformConfig::tracing`] enabled it). Components share this sink,
    /// so spans recorded by the hypervisor, Xenstore, devices, toolstack
    /// and daemon all land in the same buffer.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Borrows the always-on flight recorder: the last-N platform
    /// operations (op, domain, virtual timestamp, outcome), recorded at
    /// O(1) cost per event even with tracing off.
    pub fn flightrec(&self) -> &FlightRecorder {
        &self.flightrec
    }

    /// The master PRNG seed this platform was built with (also stamped
    /// into flight-recorder dump filenames).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    // ------------------------------------------------------------------
    // Observability exports
    // ------------------------------------------------------------------

    /// The virtual-time timeline as CSV (see
    /// [`TraceSink::timeline_csv`]): counters, gauges and span closes
    /// folded into fixed-width virtual-time slices. Identical in Full and
    /// Aggregate mode; the header alone when tracing is off.
    pub fn timeline_csv(&self) -> String {
        self.trace.timeline_csv()
    }

    /// Writes [`timeline_csv`](Self::timeline_csv) to `path`, creating
    /// parent directories as needed.
    pub fn write_timeline(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.trace.write_timeline(path)
    }

    /// A Prometheus-style text exposition of the end-of-run metric state
    /// (see [`TraceSink::metrics_text`]). Identical in Full and Aggregate
    /// mode; empty when tracing is off.
    pub fn metrics_text(&self) -> String {
        self.trace.metrics_text()
    }

    /// Writes [`metrics_text`](Self::metrics_text) to `path`, creating
    /// parent directories as needed.
    pub fn write_metrics_text(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.trace.write_metrics_text(path)
    }

    /// Per-clone-family rollup rows: the sink's span/counter/gauge
    /// attributions (see [`TraceSink::family_rows`]) plus point-in-time
    /// `resident.*` rows splitting the platform's resident bytes (p2m
    /// templates, Xenstore subtrees, block storage) across the live
    /// members of each family.
    pub fn family_rollup_rows(&self) -> Vec<FamilyRow> {
        let mut rows = self.trace.family_rows();
        if rows.is_empty() {
            return rows;
        }
        let names: BTreeMap<u32, String> =
            rows.iter().map(|r| (r.family, r.root_name.clone())).collect();
        let mut resident: BTreeMap<(u32, &'static str), u64> = BTreeMap::new();
        for (dom, s) in self.hv.p2m_sharing_by_dom() {
            let Some(root) = self.trace.family_root_of(dom) else { continue };
            *resident.entry((root, "resident.p2m_shared_bytes")).or_default() += s.shared_bytes;
            *resident.entry((root, "resident.p2m_unique_bytes")).or_default() += s.unique_bytes;
            *resident.entry((root, "resident.xs_entry_bytes")).or_default() +=
                self.xs.subtree_entry_bytes(&format!("/local/domain/{}", dom.0));
        }
        for (dom, s) in self.dm.vbd_sharing_by_dom() {
            let Some(root) = self.trace.family_root_of(dom) else { continue };
            *resident.entry((root, "resident.blk_shared_bytes")).or_default() += s.shared_bytes;
            *resident.entry((root, "resident.blk_unique_bytes")).or_default() += s.unique_bytes;
        }
        for ((family, metric), value) in resident {
            let Some(root_name) = names.get(&family) else { continue };
            rows.push(FamilyRow {
                family,
                root_name: root_name.clone(),
                metric: metric.to_string(),
                value,
            });
        }
        rows
    }

    /// [`family_rollup_rows`](Self::family_rollup_rows) rendered as
    /// `family,root,metric,value` CSV, sorted by `(family, metric)`.
    pub fn family_rollup_csv(&self) -> String {
        render_family_csv(self.family_rollup_rows())
    }

    /// Writes [`family_rollup_csv`](Self::family_rollup_csv) to `path`,
    /// creating parent directories as needed.
    pub fn write_family_rollup(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.family_rollup_csv())
    }

    /// Runs the state invariant auditor over the whole platform (frame
    /// table vs p2m back-references, incremental counters vs full scan,
    /// grants/channels/ring vs live domains, toolstack and Xenstore vs
    /// hypervisor state). Read-only; safe to call at any point.
    ///
    /// A dirty report also dumps the flight recorder (first failure only),
    /// so the black box ships alongside the violation list.
    pub fn audit(&self) -> AuditReport {
        let report = audit::run(self);
        if !report.is_clean() {
            self.flightrec.record(FlightEvent {
                op: "platform.audit",
                dom: 0,
                at_ns: self.clock.now().as_ns(),
                outcome: "fail",
                arg: report.violations.len() as u64,
            });
            self.dump_flightrec("audit-fail");
        }
        report
    }

    /// Flight-records the outcome of a platform operation; on error, dumps
    /// the recorder; on success, runs the automatic audit hook.
    fn note_op<T>(&mut self, op: &'static str, dom: DomId, arg: u64, r: Result<T>) -> Result<T> {
        self.flightrec.record(FlightEvent {
            op,
            dom: dom.0,
            at_ns: self.clock.now().as_ns(),
            outcome: if r.is_ok() { "ok" } else { "err" },
            arg,
        });
        match &r {
            Ok(_) => self.audit_after(op),
            Err(_) => self.dump_flightrec(op),
        }
        r
    }

    /// The automatic audit hook: runs per [`AuditMode`] and panics (after
    /// dumping the flight recorder, via [`Platform::audit`]) on the first
    /// violation, so a corrupted platform can't silently keep running.
    fn audit_after(&self, op: &'static str) {
        let lifecycle = matches!(
            op,
            "platform.clone" | "platform.fork" | "platform.stage2" | "platform.destroy"
        );
        let run = match self.audit_mode {
            AuditMode::Off => false,
            AuditMode::Lifecycle => cfg!(debug_assertions) && lifecycle,
            AuditMode::EveryOp => true,
        };
        if !run {
            return;
        }
        let report = self.audit();
        assert!(report.is_clean(), "nephele state audit failed after {op}:\n{report}");
    }

    /// Writes `flightrec-<context>-seed<seed>.json` into the configured
    /// dump directory. Only the first dump per platform is written, so the
    /// black box reflects the original failure, not the fallout. The seed
    /// in the name keeps concurrent differently-seeded runs from colliding
    /// on one file; if a dump with the same name but *different* contents
    /// already exists (a crashed earlier run, say), it is preserved and
    /// this dump is dropped with a note.
    fn dump_flightrec(&self, context: &str) {
        if !self.flightrec_dumps || self.flightrec_dumped.get() {
            return;
        }
        self.flightrec_dumped.set(true);
        let file = format!("flightrec-{}-seed{:x}.json", context.replace('.', "-"), self.seed);
        let path = self.flightrec_dir.join(file);
        let json = self.flightrec.to_json(context);
        if let Ok(existing) = std::fs::read_to_string(&path) {
            if existing != json {
                eprintln!(
                    "nephele: refusing to clobber differing flight-recorder dump {}",
                    path.display()
                );
                return;
            }
        }
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(&path, &json)
        };
        if write().is_ok() {
            eprintln!("nephele: flight recorder dumped to {}", path.display());
        }
    }

    /// Records the memory gauges (free hypervisor pool and Dom0 memory)
    /// at the current virtual time. No-op when tracing is off.
    fn record_mem_gauges(&self) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace
            .gauge("mem.hyp_free_bytes", DomId::DOM0, self.hv.free_pages() * sim_core::PAGE_SIZE as u64);
        self.trace
            .gauge("mem.dom0_free_bytes", DomId::DOM0, self.dom0.free_bytes(&self.xs, &self.dm, &self.xl));
    }

    // ------------------------------------------------------------------
    // Domain lifecycle
    // ------------------------------------------------------------------

    /// Boots a domain with no application attached (pure instantiation, as
    /// in the Fig. 4 baseline measurements).
    pub fn launch_plain(&mut self, cfg: &DomainConfig, image: &KernelImage) -> Result<DomId> {
        let r = self.launch_plain_impl(cfg, image);
        let dom = DomId(r.as_ref().map(|d| d.0).unwrap_or(0));
        self.note_op("platform.launch", dom, 0, r)
    }

    fn launch_plain_impl(&mut self, cfg: &DomainConfig, image: &KernelImage) -> Result<DomId> {
        let span = self.trace.span("platform.launch");
        span.attr("name", cfg.name.as_str());
        let created = self.create_and_register(cfg, image, None)?;
        span.attr("dom", created.id.0 as u64);
        drop(span);
        self.record_mem_gauges();
        Ok(created.id)
    }

    /// Boots a domain running `app`; `on_boot` fires before this returns
    /// and the network is pumped to quiescence.
    pub fn launch(
        &mut self,
        cfg: &DomainConfig,
        image: &KernelImage,
        app: Box<dyn GuestApp>,
    ) -> Result<DomId> {
        let r = self.launch_impl(cfg, image, app);
        let dom = DomId(r.as_ref().map(|d| d.0).unwrap_or(0));
        self.note_op("platform.launch", dom, 0, r)
    }

    fn launch_impl(
        &mut self,
        cfg: &DomainConfig,
        image: &KernelImage,
        app: Box<dyn GuestApp>,
    ) -> Result<DomId> {
        let span = self.trace.span("platform.launch");
        span.attr("name", cfg.name.as_str());
        let created = self.create_and_register(cfg, image, Some(app))?;
        let dom = created.id;
        span.attr("dom", dom.0 as u64);
        self.dispatch(dom, |app, env| app.on_boot(env));
        self.pump();
        drop(span);
        self.record_mem_gauges();
        Ok(dom)
    }

    fn create_and_register(
        &mut self,
        cfg: &DomainConfig,
        image: &KernelImage,
        app: Option<Box<dyn GuestApp>>,
    ) -> Result<CreatedDomain> {
        let created = self
            .xl
            .create(&mut self.hv, &mut self.xs, &mut self.dm, &mut self.udev, cfg, image)?;
        let dom = created.id;
        for iface in &created.ifaces {
            if let Some(v) = self.dm.iface_target(*iface).and_then(|(d, i)| self.dm.vif(d, i)) {
                self.mac_first.entry(v.mac).or_insert(*iface);
            }
        }
        if let Some(app) = app {
            let ip = cfg.vifs.first().map(|v| v.ip).unwrap_or(Ipv4Addr::UNSPECIFIED);
            let mac = MacAddr::xen(dom.0, 0);
            let slot = GuestSlot {
                app,
                heap: GuestHeap::new(dom, created.layout.heap_start, created.layout.heap_pages),
                stack: NetStack::new(mac, ip),
                devids: (0..cfg.vifs.len() as u32).collect(),
            };
            self.guests.insert(dom.0, slot);
        }
        Ok(created)
    }

    /// Destroys a domain (guest slot included).
    pub fn destroy(&mut self, dom: DomId) -> Result<()> {
        let r = self.destroy_impl(dom);
        self.note_op("platform.destroy", dom, 0, r)
    }

    fn destroy_impl(&mut self, dom: DomId) -> Result<()> {
        self.guests.remove(&dom.0);
        self.xl
            .destroy(&mut self.hv, &mut self.xs, &mut self.dm, &mut self.udev, dom)?;
        Ok(())
    }

    /// Clones `dom` from the outside (Dom0-triggered, as for VM fuzzing):
    /// runs both stages and returns the children.
    pub fn clone_domain(&mut self, dom: DomId, nr: u32) -> Result<Vec<DomId>> {
        let r = self.clone_domain_impl(dom, nr);
        self.note_op("platform.clone", dom, nr as u64, r)
    }

    fn clone_domain_impl(&mut self, dom: DomId, nr: u32) -> Result<Vec<DomId>> {
        let span = self.trace.span("platform.clone_domain");
        span.attr("parent", dom.0 as u64);
        span.attr("nr", nr as u64);
        let r = self.hv.cloneop(
            DomId::DOM0,
            CloneOp::Clone {
                target: Some(dom),
                nr_clones: nr,
            },
        )?;
        let CloneOpResult::Cloned(children) = r else {
            return Ok(Vec::new());
        };
        self.finish_clones(dom)?;
        drop(span);
        self.record_mem_gauges();
        Ok(children)
    }

    /// Registers a parent vif in the clone mux (done for the family root so
    /// that parent and clones share the load, as in §6.1).
    pub fn enlist_in_mux(&mut self, dom: DomId) {
        let Some(v) = self.dm.vif(dom, 0) else { return };
        let (iface, ip) = (v.iface, v.ip);
        if let Some(m) = self.mux.as_deref_mut() {
            m.add_member(iface);
            self.mux_ip = Some(ip);
        }
    }

    /// Runs the second stage for all queued clone notifications of
    /// `parent` and creates guest slots for the new children. Exposed so
    /// experiments can time the two stages separately (the hypercall via
    /// [`Platform::hv`], then this).
    pub fn finish_pending_clones(&mut self, parent: DomId) -> Result<Vec<DomId>> {
        let r = self.finish_clones(parent);
        let nr = r.as_ref().map(|c| c.len() as u64).unwrap_or(0);
        self.note_op("platform.stage2", parent, nr, r)
    }

    /// Runs the second stage for all queued clone notifications and
    /// creates guest slots for the new children.
    fn finish_clones(&mut self, parent: DomId) -> Result<Vec<DomId>> {
        // Snapshot the parent's state *at the fork point*.
        let snapshot = self.guests.get(&parent.0).map(|s| {
            (
                s.app.boxed_clone(),
                s.heap.clone(),
                s.stack.clone(),
                s.devids.clone(),
            )
        });
        let completed = self.daemon.handle_pending(
            &mut self.hv,
            &mut self.xs,
            &mut self.dm,
            &mut self.udev,
            &mut self.xl,
            self.mux.as_deref_mut(),
        )?;
        if self.mux.is_some() && !completed.is_empty() {
            if let Some(v) = self.dm.vif(parent, 0) {
                self.mux_ip = Some(v.ip);
            }
        }
        let mut children = Vec::new();
        for c in &completed {
            children.push(c.child);
            if let Some((app, heap, stack, devids)) = &snapshot {
                let mut heap = heap.clone();
                heap.rebind(c.child);
                self.guests.insert(
                    c.child.0,
                    GuestSlot {
                        app: app.boxed_clone(),
                        heap,
                        stack: stack.clone(),
                        devids: devids.clone(),
                    },
                );
            }
        }
        Ok(children)
    }

    // ------------------------------------------------------------------
    // Guest dispatch and actions
    // ------------------------------------------------------------------

    fn dispatch(&mut self, dom: DomId, f: impl FnOnce(&mut dyn GuestApp, &mut GuestEnv)) {
        let Some(mut slot) = self.guests.remove(&dom.0) else {
            return;
        };
        let mut actions = Vec::new();
        {
            let mut env = GuestEnv {
                dom,
                now: self.clock.now(),
                hv: &mut self.hv,
                dm: &mut self.dm,
                heap: &mut slot.heap,
                stack: &mut slot.stack,
                actions: &mut actions,
            };
            f(slot.app.as_mut(), &mut env);
        }
        self.guests.insert(dom.0, slot);
        self.process_actions(dom, actions);
    }

    /// Runs `f` against the concrete application of `dom` (downcast to
    /// `T`), inside a full guest environment; deferred actions are
    /// processed and the network pumped afterwards. Returns `None` when the
    /// domain has no guest or its app is not a `T`.
    pub fn with_app<T: 'static, R>(
        &mut self,
        dom: DomId,
        f: impl FnOnce(&mut T, &mut GuestEnv) -> R,
    ) -> Option<R> {
        let mut slot = self.guests.remove(&dom.0)?;
        let mut actions = Vec::new();
        let result = {
            let mut env = GuestEnv {
                dom,
                now: self.clock.now(),
                hv: &mut self.hv,
                dm: &mut self.dm,
                heap: &mut slot.heap,
                stack: &mut slot.stack,
                actions: &mut actions,
            };
            slot.app.as_any_mut().downcast_mut::<T>().map(|t| f(t, &mut env))
        };
        self.guests.insert(dom.0, slot);
        if result.is_some() {
            self.process_actions(dom, actions);
            self.pump();
        }
        result
    }

    fn process_actions(&mut self, dom: DomId, actions: Vec<GuestAction>) {
        for a in actions {
            match a {
                GuestAction::Fork { nr } => {
                    // Errors surface through the fork outcome being absent;
                    // experiments check domain counts.
                    let _ = self.guest_fork(dom, nr);
                }
                GuestAction::Timer { delay, tag } => {
                    self.timers.push(self.clock.now() + delay, (dom.0, tag));
                }
                GuestAction::Shutdown => {
                    let _ = self.destroy(dom);
                }
            }
        }
    }

    /// Executes a guest-initiated fork: the `CLONEOP` hypercall, second
    /// stage, guest-slot duplication and the `on_fork` callbacks in parent
    /// and children.
    pub fn guest_fork(&mut self, dom: DomId, nr: u32) -> Result<Vec<DomId>> {
        let r = self.guest_fork_impl(dom, nr);
        self.note_op("platform.fork", dom, nr as u64, r)
    }

    fn guest_fork_impl(&mut self, dom: DomId, nr: u32) -> Result<Vec<DomId>> {
        let span = self.trace.span("platform.guest_fork");
        span.attr("parent", dom.0 as u64);
        span.attr("nr", nr as u64);
        let r = self.hv.cloneop(
            dom,
            CloneOp::Clone {
                target: None,
                nr_clones: nr,
            },
        )?;
        let CloneOpResult::Cloned(_) = r else {
            return Ok(Vec::new());
        };
        let children = self.finish_clones(dom)?;
        self.dispatch(dom, |app, env| {
            app.on_fork(
                env,
                ForkOutcome::Parent {
                    children: children.clone(),
                },
            )
        });
        for c in &children {
            self.dispatch(*c, |app, env| app.on_fork(env, ForkOutcome::Child { parent: dom }));
        }
        self.pump();
        drop(span);
        self.record_mem_gauges();
        Ok(children)
    }

    // ------------------------------------------------------------------
    // Network fabric
    // ------------------------------------------------------------------

    fn route_to_guest(&mut self, pkt: Packet) {
        self.clock.advance(self.costs.net_link_latency);
        self.packets_routed += 1;
        self.trace.count("net.packets_routed", 1);
        let iface = if self.mux_ip == Some(pkt.dst_ip) {
            match self.mux.as_deref_mut().and_then(|m| m.select(&pkt)) {
                Some(i) => Some(i),
                None => self.mac_first.get(&pkt.dst_mac).copied(),
            }
        } else {
            self.mac_first.get(&pkt.dst_mac).copied()
        };
        if let Some(iface) = iface {
            self.dm.deliver_rx(iface, pkt);
        }
    }

    fn route_from_guest(&mut self, pkt: Packet) {
        self.clock.advance(self.costs.net_link_latency);
        self.packets_routed += 1;
        self.trace.count("net.packets_routed", 1);
        if pkt.dst_ip == HOST_IP {
            let replies = self.host_stack.handle_packet(&pkt);
            self.host_events.extend(self.host_stack.poll_events());
            for r in replies {
                self.route_to_guest(r);
            }
        } else {
            self.route_to_guest(pkt);
        }
    }

    /// Drives the platform to quiescence: drains vif TX rings, delivers RX
    /// packets into guest stacks, fires guest network callbacks, routes
    /// hypervisor events (IDC notifications, `VIRQ_CLONED`) — until no
    /// component makes progress.
    pub fn pump(&mut self) {
        for _round in 0..10_000 {
            let mut progress = false;

            // Guest → fabric.
            for (dom, devid) in self.dm.all_vif_keys() {
                for pkt in self.dm.take_tx(dom, devid) {
                    progress = true;
                    self.route_from_guest(pkt);
                }
            }

            // Fabric → guest stacks → app callbacks.
            let keys = self.dm.all_vif_keys();
            for (dom, devid) in keys {
                let pkts = self.dm.take_rx(dom, devid);
                if pkts.is_empty() {
                    continue;
                }
                progress = true;
                let Some(mut slot) = self.guests.remove(&dom.0) else {
                    continue;
                };
                let mut replies = Vec::new();
                for p in pkts {
                    replies.extend(slot.stack.handle_packet(&p));
                }
                let events = slot.stack.poll_events();
                self.guests.insert(dom.0, slot);
                for r in replies {
                    let _ = self.dm.guest_tx(dom, devid, r);
                }
                for e in events {
                    self.dispatch(dom, |app, env| app.on_net_event(env, e.clone()));
                }
            }

            // Hypervisor events.
            let events = self.hv.drain_events();
            for e in events {
                progress = true;
                self.route_hv_event(e);
            }

            if !progress {
                break;
            }
        }
    }

    fn route_hv_event(&mut self, e: PendingEvent) {
        match e.virq {
            Some(Virq::Cloned) => {
                // Externally triggered clones (no parent slot known): run
                // second stages for whatever is queued. Parents are read
                // from the ring entries by the daemon itself.
                let _ = self.daemon.handle_pending(
                    &mut self.hv,
                    &mut self.xs,
                    &mut self.dm,
                    &mut self.udev,
                    &mut self.xl,
                    self.mux.as_deref_mut(),
                );
            }
            _ => {
                if !e.dom.is_dom0() {
                    self.dispatch(e.dom, |app, env| app.on_idc_event(env, e.port));
                }
            }
        }
    }

    /// Advances virtual time by `d`, firing due guest timers and pumping
    /// between them.
    pub fn run_for(&mut self, d: SimDuration) {
        let horizon = self.clock.now() + d;
        loop {
            self.pump();
            match self.timers.peek_time() {
                Some(t) if t <= horizon => {
                    let (at, (dom, tag)) = self.timers.pop().expect("peeked");
                    self.clock.advance_to(at);
                    self.dispatch(DomId(dom), |app, env| app.on_timer(env, tag));
                }
                _ => break,
            }
        }
        self.clock.advance_to(horizon);
        self.pump();
        // Periodic audit from the sim loop (under `every-op` only; the
        // lifecycle hooks already cover clone/destroy in debug builds).
        if self.audit_mode == AuditMode::EveryOp {
            self.audit_after("platform.run_for");
        }
    }

    // ------------------------------------------------------------------
    // Host endpoint (Dom0-side load generation)
    // ------------------------------------------------------------------

    /// Sends a UDP datagram from the host endpoint to a guest. The source
    /// port is bound automatically so replies are received.
    pub fn host_udp_send(&mut self, dst_ip: Ipv4Addr, src_port: u16, dst_port: u16, payload: Vec<u8>) {
        self.host_stack.udp_bind(src_port);
        let pkt = self
            .host_stack
            .udp_send(MacAddr::BROADCAST, dst_ip, src_port, dst_port, payload);
        // Destination MAC resolution happens in the fabric (mux/mac table);
        // rewrite dst MAC to the target family's if known.
        let pkt = Packet {
            dst_mac: self
                .mac_for_ip(dst_ip)
                .unwrap_or(MacAddr::BROADCAST),
            ..pkt
        };
        self.route_to_guest(pkt);
        self.pump();
    }

    /// Opens a TCP connection from the host endpoint to `dst_ip:port`.
    pub fn host_tcp_connect(&mut self, dst_ip: Ipv4Addr, port: u16) -> ConnId {
        let mac = self.mac_for_ip(dst_ip).unwrap_or(MacAddr::BROADCAST);
        let (conn, syn) = self.host_stack.tcp_connect(mac, dst_ip, port);
        self.route_to_guest(syn);
        self.pump();
        self.host_events.extend(self.host_stack.poll_events());
        conn
    }

    /// Sends data on a host-side TCP connection.
    pub fn host_tcp_send(&mut self, conn: ConnId, data: Vec<u8>) {
        if let Some(pkt) = self.host_stack.tcp_send(conn, data) {
            self.route_to_guest(pkt);
            self.pump();
            self.host_events.extend(self.host_stack.poll_events());
        }
    }

    /// Closes a host-side TCP connection.
    pub fn host_tcp_close(&mut self, conn: ConnId) {
        if let Some(pkt) = self.host_stack.tcp_close(conn) {
            self.route_to_guest(pkt);
            self.pump();
        }
    }

    /// Drains the events the host endpoint observed (responses, closes).
    pub fn take_host_events(&mut self) -> Vec<SockEvent> {
        self.host_events.extend(self.host_stack.poll_events());
        std::mem::take(&mut self.host_events)
    }

    fn mac_for_ip(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        if self.mux_ip == Some(ip) {
            // Any family member's MAC (they are identical by design).
            return self
                .dm
                .all_vif_keys()
                .iter()
                .find_map(|(d, i)| self.dm.vif(*d, *i).filter(|v| v.ip == ip).map(|v| v.mac));
        }
        self.dm
            .all_vif_keys()
            .iter()
            .find_map(|(d, i)| self.dm.vif(*d, *i).filter(|v| v.ip == ip).map(|v| v.mac))
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Takes a point-in-time snapshot of the platform's introspection
    /// metrics. This is the one-stop replacement for the individual
    /// deprecated getters.
    pub fn snapshot(&self) -> PlatformSnapshot {
        let mem = self.hv.memory_stats();
        let xs_sharing = self.xs.sharing();
        let p2m_sharing = self.hv.p2m_sharing();
        let blk_sharing = self.dm.vbd_sharing();
        PlatformSnapshot {
            hyp_free_bytes: mem.free * sim_core::PAGE_SIZE as u64,
            dom0_free_bytes: self.dom0.free_bytes(&self.xs, &self.dm, &self.xl),
            cow_shared_frames: mem.cow_shared,
            xen_frames: mem.xen,
            packets_routed: self.packets_routed,
            mux_members: self.mux.as_deref().map(|m| m.member_count()).unwrap_or(0),
            domains: self.hv.domain_count(),
            clones_completed: self.daemon.clones_completed(),
            xs_shared_entry_bytes: xs_sharing.shared_entry_bytes,
            xs_unique_entry_bytes: xs_sharing.unique_entry_bytes,
            p2m_shared_bytes: p2m_sharing.shared_bytes,
            p2m_unique_bytes: p2m_sharing.unique_bytes,
            blk_shared_bytes: blk_sharing.shared_bytes,
            blk_unique_bytes: blk_sharing.unique_bytes,
        }
    }

    /// Free hypervisor-pool memory in bytes (Fig. 5 "Hyp free").
    #[deprecated(since = "0.2.0", note = "use Platform::snapshot().hyp_free_bytes")]
    pub fn hyp_free_bytes(&self) -> u64 {
        self.snapshot().hyp_free_bytes
    }

    /// Free Dom0 memory in bytes (Fig. 5 "Dom0 free").
    #[deprecated(since = "0.2.0", note = "use Platform::snapshot().dom0_free_bytes")]
    pub fn dom0_free_bytes(&self) -> u64 {
        self.snapshot().dom0_free_bytes
    }

    /// Packets the fabric has routed.
    #[deprecated(since = "0.2.0", note = "use Platform::snapshot().packets_routed")]
    pub fn packets_routed(&self) -> u64 {
        self.snapshot().packets_routed
    }

    /// Whether a guest slot exists for `dom`.
    pub fn has_guest(&self, dom: DomId) -> bool {
        self.guests.contains_key(&dom.0)
    }

    /// Number of members in the clone mux.
    #[deprecated(since = "0.2.0", note = "use Platform::snapshot().mux_members")]
    pub fn mux_members(&self) -> usize {
        self.snapshot().mux_members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct UdpEcho {
        port: u16,
        seen: u32,
    }

    impl GuestApp for UdpEcho {
        fn boxed_clone(&self) -> Box<dyn GuestApp> {
            Box::new(self.clone())
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn on_boot(&mut self, env: &mut GuestEnv) {
            env.stack.udp_bind(self.port);
            env.console_log("udp echo up\n");
            env.udp_send_host(0, self.port, 9999, b"ready".to_vec());
        }
        fn on_net_event(&mut self, env: &mut GuestEnv, evt: SockEvent) {
            if let SockEvent::UdpData { src_ip, src_port, payload, .. } = evt {
                self.seen += 1;
                let reply = env.stack.udp_send(HOST_MAC, src_ip, self.port, src_port, payload);
                env.transmit(0, reply);
            }
        }
    }

    fn plat() -> Platform {
        Platform::new(PlatformConfig::small())
    }

    fn udp_cfg(name: &str, ip: Ipv4Addr) -> DomainConfig {
        DomainConfig::builder(name)
            .memory_mib(4)
            .vif(ip)
            .max_clones(32)
            .build()
    }

    #[test]
    fn boot_notification_reaches_host() {
        let mut p = plat();
        let ip = Ipv4Addr::new(10, 0, 0, 2);
        p.host_stack.udp_bind(9999);
        p.launch(
            &udp_cfg("echo", ip),
            &KernelImage::minios("echo"),
            Box::new(UdpEcho { port: 7, seen: 0 }),
        )
        .unwrap();
        let evts = p.take_host_events();
        assert!(
            evts.iter().any(|e| matches!(
                e,
                SockEvent::UdpData { payload, .. } if payload == b"ready"
            )),
            "boot notification missing: {evts:?}"
        );
    }

    #[test]
    fn udp_echo_roundtrip() {
        let mut p = plat();
        let ip = Ipv4Addr::new(10, 0, 0, 2);
        p.launch(
            &udp_cfg("echo", ip),
            &KernelImage::minios("echo"),
            Box::new(UdpEcho { port: 7, seen: 0 }),
        )
        .unwrap();
        p.take_host_events();
        p.host_udp_send(ip, 5555, 7, b"ping".to_vec());
        let evts = p.take_host_events();
        assert!(
            evts.iter().any(|e| matches!(
                e,
                SockEvent::UdpData { payload, src_port: 7, .. } if payload == b"ping"
            )),
            "echo missing: {evts:?}"
        );
    }

    #[derive(Clone)]
    struct Forker {
        is_child: bool,
        fork_done: bool,
    }

    impl GuestApp for Forker {
        fn boxed_clone(&self) -> Box<dyn GuestApp> {
            Box::new(self.clone())
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn on_boot(&mut self, env: &mut GuestEnv) {
            env.fork(2);
        }
        fn on_fork(&mut self, env: &mut GuestEnv, outcome: ForkOutcome) {
            self.fork_done = true;
            match outcome {
                ForkOutcome::Parent { children } => {
                    env.console_log(&format!("parent of {}\n", children.len()));
                }
                ForkOutcome::Child { .. } => {
                    self.is_child = true;
                    env.console_log("child alive\n");
                }
            }
        }
    }

    #[test]
    fn guest_initiated_fork_runs_both_stages() {
        let mut p = plat();
        let dom = p
            .launch(
                &udp_cfg("forker", Ipv4Addr::new(10, 0, 0, 3)),
                &KernelImage::minios("forker"),
                Box::new(Forker { is_child: false, fork_done: false }),
            )
            .unwrap();
        // on_boot requested fork(2); processed synchronously.
        assert_eq!(p.hv.domain(dom).unwrap().children.len(), 2);
        let kids = p.hv.domain(dom).unwrap().children.clone();
        for k in &kids {
            assert!(p.has_guest(*k), "child slot created");
            assert!(p.hv.domain(*k).unwrap().is_runnable());
            let out = p.dm.console_output(*k);
            assert_eq!(out, b"child alive\n", "child resumed from fork point");
        }
        let parent_out = p.dm.console_output(dom);
        assert!(parent_out.ends_with(b"parent of 2\n"));
        // Clone vifs were enslaved to the default bond.
        assert_eq!(p.snapshot().mux_members, 2);
    }

    #[test]
    fn cloned_udp_servers_receive_via_bond() {
        let mut p = plat();
        let ip = Ipv4Addr::new(10, 0, 0, 2);
        let dom = p
            .launch(
                &udp_cfg("echo", ip),
                &KernelImage::minios("echo"),
                Box::new(UdpEcho { port: 7, seen: 0 }),
            )
            .unwrap();
        p.enlist_in_mux(dom);
        p.guest_fork(dom, 3).unwrap();
        assert_eq!(p.snapshot().mux_members, 4, "parent + 3 clones in the bond");
        p.take_host_events();
        // Spray flows; every one must be answered by exactly one clone.
        for port in 0..32u16 {
            p.host_udp_send(ip, 6000 + port, 7, format!("q{port}").into_bytes());
        }
        let replies = p
            .take_host_events()
            .into_iter()
            .filter(|e| matches!(e, SockEvent::UdpData { src_port: 7, .. }))
            .count();
        assert_eq!(replies, 32, "every flow answered despite identical MAC/IP");
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Clone)]
        struct Timed {
            fired: Vec<u64>,
        }
        impl GuestApp for Timed {
            fn boxed_clone(&self) -> Box<dyn GuestApp> {
                Box::new(self.clone())
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
            fn on_boot(&mut self, env: &mut GuestEnv) {
                env.set_timer(SimDuration::from_ms(20), 2);
                env.set_timer(SimDuration::from_ms(10), 1);
            }
            fn on_timer(&mut self, env: &mut GuestEnv, tag: u64) {
                self.fired.push(tag);
                env.console_log(&format!("t{tag}\n"));
            }
        }
        let mut p = plat();
        let dom = p
            .launch(
                &udp_cfg("timed", Ipv4Addr::new(10, 0, 0, 4)),
                &KernelImage::minios("timed"),
                Box::new(Timed { fired: vec![] }),
            )
            .unwrap();
        p.run_for(SimDuration::from_ms(50));
        assert_eq!(p.dm.console_output(dom), b"t1\nt2\n");
    }

    #[test]
    fn external_clone_via_dom0() {
        let mut p = plat();
        let dom = p
            .launch_plain(
                &udp_cfg("target", Ipv4Addr::new(10, 0, 0, 5)),
                &KernelImage::minios("target"),
            )
            .unwrap();
        let kids = p.clone_domain(dom, 1).unwrap();
        assert_eq!(kids.len(), 1);
        assert!(p.hv.domain_exists(kids[0]));
        assert!(p.xl.record(kids[0]).is_some());
    }

    #[test]
    fn memory_shrinks_with_clones_not_boots() {
        let mut p = plat();
        let img = KernelImage::minios("m");
        let d1 = p
            .launch_plain(&udp_cfg("m1", Ipv4Addr::new(10, 0, 0, 6)), &img)
            .unwrap();
        let free_before = p.snapshot().hyp_free_bytes;
        p.clone_domain(d1, 1).unwrap();
        let clone_cost = free_before - p.snapshot().hyp_free_bytes;
        let free_before2 = p.snapshot().hyp_free_bytes;
        p.launch_plain(&udp_cfg("m2", Ipv4Addr::new(10, 0, 0, 7)), &img)
            .unwrap();
        let boot_cost = free_before2 - p.snapshot().hyp_free_bytes;
        assert!(
            clone_cost * 2 < boot_cost,
            "clone ({clone_cost}) must use far less memory than boot ({boot_cost})"
        );
    }

    #[test]
    fn snapshot_exposes_cow_sharing() {
        let mut p = plat();
        let dom = p
            .launch_plain(
                &udp_cfg("shared", Ipv4Addr::new(10, 0, 0, 8)),
                &KernelImage::minios("shared"),
            )
            .unwrap();
        assert_eq!(p.snapshot().cow_shared_frames, 0, "no sharing before any clone");
        p.clone_domain(dom, 2).unwrap();
        let snap = p.snapshot();
        // Most of the 4 MiB guest's pages are shareable; both children
        // share the same set, counted once.
        assert!(
            snap.cow_shared_frames >= 500,
            "clones must share the parent's pages ({} cow frames)",
            snap.cow_shared_frames
        );
        assert_eq!(snap.xen_frames, 0);
    }

    #[test]
    fn snapshot_tracks_xenstore_sharing_through_divergence() {
        let mut p = plat();
        let dom = p
            .launch_plain(
                &udp_cfg("xsshare", Ipv4Addr::new(10, 0, 0, 9)),
                &KernelImage::minios("xsshare"),
            )
            .unwrap();
        let before = p.snapshot();
        assert_eq!(
            before.xs_shared_entry_bytes, 0,
            "nothing is structurally shared before any clone"
        );
        let kids = p.clone_domain(dom, 2).unwrap();
        let cloned = p.snapshot();
        assert!(
            cloned.xs_shared_entry_bytes > 0,
            "cloning must leave device subtrees structurally shared"
        );
        // The split is additive over the logical resident figure.
        assert_eq!(
            cloned.xs_shared_entry_bytes + cloned.xs_unique_entry_bytes,
            p.xs.resident_bytes()
        );
        // Diverge one clone: writing through its cloned vif frontend
        // materializes the write spine's shared nodes, moving bytes from
        // the shared column to the unique one.
        p.xs
            .write(
                sim_core::DomId::DOM0,
                &format!("/local/domain/{}/device/vif/0/state", kids[0].0),
                "5",
            )
            .unwrap();
        let diverged = p.snapshot();
        assert!(
            diverged.xs_shared_entry_bytes < cloned.xs_shared_entry_bytes
                && diverged.xs_unique_entry_bytes > cloned.xs_unique_entry_bytes,
            "divergence must move bytes shared -> unique (shared {} -> {}, unique {} -> {})",
            cloned.xs_shared_entry_bytes,
            diverged.xs_shared_entry_bytes,
            cloned.xs_unique_entry_bytes,
            diverged.xs_unique_entry_bytes
        );
        assert_eq!(
            diverged.xs_shared_entry_bytes + diverged.xs_unique_entry_bytes,
            p.xs.resident_bytes()
        );
        p.xs.audit_tree().unwrap();
    }

    #[test]
    fn family_rollup_includes_resident_rows_for_live_families() {
        let mut cfg = PlatformConfig::small();
        cfg.tracing = TraceConfig::aggregate();
        let mut p = Platform::new(cfg);
        let dom = p
            .launch_plain(
                &udp_cfg("rollup", Ipv4Addr::new(10, 0, 0, 12)),
                &KernelImage::minios("rollup"),
            )
            .unwrap();
        p.clone_domain(dom, 2).unwrap();
        let csv = p.family_rollup_csv();
        let family = p.trace().family_root_of(dom).unwrap();
        for metric in [
            "members_total,3",
            "members_live,3",
            "resident.p2m_shared_bytes",
            "resident.p2m_unique_bytes",
            "resident.xs_entry_bytes",
        ] {
            assert!(
                csv.contains(&format!("{family},rollup,{metric}")),
                "missing {metric} row in:\n{csv}"
            );
        }
        // The resident p2m split sums to the platform-wide snapshot.
        let snap = p.snapshot();
        let sum_metric = |name: &str| -> u64 {
            csv.lines()
                .filter(|l| l.contains(name))
                .map(|l| l.rsplit(',').next().unwrap().parse::<u64>().unwrap())
                .sum()
        };
        assert_eq!(sum_metric("resident.p2m_shared_bytes"), snap.p2m_shared_bytes);
        assert_eq!(sum_metric("resident.p2m_unique_bytes"), snap.p2m_unique_bytes);
        // Timeline and exposition exports are non-empty in Aggregate mode.
        assert!(p.timeline_csv().lines().count() > 1, "timeline has rows");
        assert!(p.metrics_text().contains("nephele_"), "exposition has metrics");
    }

    #[test]
    fn flightrec_dump_names_carry_the_seed_and_refuse_clobber() {
        let dir = std::path::PathBuf::from("target/test-flightrec-seed");
        let _ = std::fs::remove_dir_all(&dir);
        let build = |seed: u64| {
            Platform::new(
                PlatformConfig::builder()
                    .guest_pool_mib(64)
                    .ring_capacity(32)
                    .seed(seed)
                    .flightrec_dir(&dir)
                    .build(),
            )
        };
        // Destroying a nonexistent domain is an error, which dumps.
        let mut p = build(0xABC);
        let _ = p.destroy(DomId(42));
        let path = dir.join("flightrec-platform-destroy-seedabc.json");
        assert!(path.exists(), "dump named with the seed");
        let original = std::fs::read_to_string(&path).unwrap();
        // A different same-seed run whose ring differs must not clobber it.
        let mut p2 = build(0xABC);
        let _ = p2.launch_plain(
            &udp_cfg("extra", Ipv4Addr::new(10, 0, 0, 13)),
            &KernelImage::minios("extra"),
        );
        let _ = p2.destroy(DomId(42));
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            original,
            "differing dump must not overwrite the original"
        );
        // A different seed lands in its own file.
        let mut p3 = build(0xDEF);
        let _ = p3.destroy(DomId(42));
        assert!(dir.join("flightrec-platform-destroy-seeddef.json").exists());
    }

    #[test]
    fn snapshot_tracks_p2m_template_sharing_through_divergence() {
        use hypervisor::p2m::{BASE_SLOT_BYTES, OVERLAY_ENTRY_BYTES};

        let mut p = plat();
        let dom = p
            .launch_plain(
                &udp_cfg("p2mshare", Ipv4Addr::new(10, 0, 0, 11)),
                &KernelImage::minios("p2mshare"),
            )
            .unwrap();
        let before = p.snapshot();
        assert_eq!(
            before.p2m_shared_bytes, 0,
            "every template has a sole owner before cloning"
        );
        assert!(before.p2m_unique_bytes > 0, "templates always cost something");

        let kids = p.clone_domain(dom, 2).unwrap();
        let tmpl_bytes = p.hv.domain(dom).unwrap().p2m.base_len() as u64 * BASE_SLOT_BYTES;
        let cloned = p.snapshot();
        // The parent and both clones reference one template; the shared
        // column counts it at every point of use.
        assert_eq!(
            cloned.p2m_shared_bytes,
            3 * tmpl_bytes,
            "one family template, three referencing domains"
        );
        // Diverge one clone: a COW fault re-points a slot through the
        // overlay, growing the private column by exactly one entry while
        // the template stays shared.
        p.hv.write_page(kids[0], sim_core::Pfn(3), 0, &[7]).unwrap();
        let diverged = p.snapshot();
        assert_eq!(diverged.p2m_shared_bytes, cloned.p2m_shared_bytes);
        assert_eq!(
            diverged.p2m_unique_bytes,
            cloned.p2m_unique_bytes + OVERLAY_ENTRY_BYTES,
            "a fault costs one overlay entry"
        );
        // When the family dies the template has a sole owner again.
        for k in kids {
            p.destroy(k).unwrap();
        }
        assert_eq!(p.snapshot().p2m_shared_bytes, 0, "sole ownership after the family dies");
    }
}

//! A port of the `tinyalloc` memory allocator.
//!
//! The paper's memory-scaling experiment (§6.2 / Fig. 6) uses the
//! `tinyalloc` allocator on Unikraft because it "yields the best results
//! from all the supported allocators". This is a faithful reimplementation
//! of the thi.ng/tinyalloc design: a fixed pool of block descriptors kept
//! in three lists (*fresh*, *free*, *used*), first-fit allocation from the
//! free list with optional splitting, a bump pointer for virgin memory, and
//! compaction of adjacent free blocks on release.

/// One block descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block {
    addr: u64,
    size: u64,
}

/// The allocator state.
#[derive(Debug, Clone)]
pub struct TinyAlloc {
    base: u64,
    limit: u64,
    /// Bump pointer for memory never handed out before.
    top: u64,
    /// Free chunks, sorted by address (enables merging).
    free: Vec<Block>,
    /// Allocated chunks, sorted by address (enables lookup on free).
    used: Vec<Block>,
    /// Descriptors still available (fresh list size).
    fresh_remaining: usize,
    /// Minimum leftover size worth splitting off.
    split_thresh: u64,
    alignment: u64,
}

impl TinyAlloc {
    /// Creates an allocator managing `[base, base + size)` with at most
    /// `max_blocks` live block descriptors, 16-byte alignment and the
    /// reference implementation's split threshold of 16 bytes.
    pub fn new(base: u64, size: u64, max_blocks: usize) -> Self {
        TinyAlloc {
            base,
            limit: base + size,
            top: base,
            free: Vec::new(),
            used: Vec::new(),
            fresh_remaining: max_blocks,
            split_thresh: 16,
            alignment: 16,
        }
    }

    fn align(&self, v: u64) -> u64 {
        v.div_ceil(self.alignment) * self.alignment
    }

    /// Allocates `size` bytes; returns the address or `None` when out of
    /// memory or out of block descriptors.
    pub fn alloc(&mut self, size: u64) -> Option<u64> {
        if size == 0 {
            return None;
        }
        let size = self.align(size);

        // First fit from the free list.
        if let Some(idx) = self.free.iter().position(|b| b.size >= size) {
            let mut block = self.free.remove(idx);
            let leftover = block.size - size;
            if leftover >= self.split_thresh && self.fresh_remaining > 0 {
                // Split: the tail goes back to the free list.
                self.fresh_remaining -= 1;
                let tail = Block {
                    addr: block.addr + size,
                    size: leftover,
                };
                let pos = self.free.partition_point(|b| b.addr < tail.addr);
                self.free.insert(pos, tail);
                block.size = size;
            }
            let pos = self.used.partition_point(|b| b.addr < block.addr);
            self.used.insert(pos, block);
            return Some(block.addr);
        }

        // Virgin memory from the bump pointer.
        if self.fresh_remaining == 0 {
            return None;
        }
        let addr = self.top;
        if addr + size > self.limit {
            return None;
        }
        self.fresh_remaining -= 1;
        self.top = addr + size;
        let block = Block { addr, size };
        let pos = self.used.partition_point(|b| b.addr < block.addr);
        self.used.insert(pos, block);
        Some(addr)
    }

    /// Releases the allocation at `addr`; returns `false` if unknown.
    pub fn free(&mut self, addr: u64) -> bool {
        let Ok(idx) = self.used.binary_search_by_key(&addr, |b| b.addr) else {
            return false;
        };
        let block = self.used.remove(idx);
        let pos = self.free.partition_point(|b| b.addr < block.addr);
        self.free.insert(pos, block);
        self.compact(pos);
        true
    }

    /// Merges the free block at `idx` with adjacent neighbours; merged
    /// descriptors return to the fresh pool.
    fn compact(&mut self, idx: usize) {
        // Merge forward.
        while idx + 1 < self.free.len()
            && self.free[idx].addr + self.free[idx].size == self.free[idx + 1].addr
        {
            self.free[idx].size += self.free[idx + 1].size;
            self.free.remove(idx + 1);
            self.fresh_remaining += 1;
        }
        // Merge backward.
        let mut idx = idx;
        while idx > 0 && self.free[idx - 1].addr + self.free[idx - 1].size == self.free[idx].addr {
            self.free[idx - 1].size += self.free[idx].size;
            self.free.remove(idx);
            self.fresh_remaining += 1;
            idx -= 1;
        }
    }

    /// The arena base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used.iter().map(|b| b.size).sum()
    }

    /// Bytes on the free list (not counting virgin memory).
    pub fn free_list_bytes(&self) -> u64 {
        self.free.iter().map(|b| b.size).sum()
    }

    /// Virgin bytes never handed out.
    pub fn virgin_bytes(&self) -> u64 {
        self.limit - self.top
    }

    /// Number of live allocations.
    pub fn num_used(&self) -> usize {
        self.used.len()
    }

    /// Number of free-list chunks.
    pub fn num_free(&self) -> usize {
        self.free.len()
    }

    /// Whether `addr` is a live allocation.
    pub fn is_allocated(&self, addr: u64) -> bool {
        self.used.binary_search_by_key(&addr, |b| b.addr).is_ok()
    }

    /// The size of the live allocation at `addr`.
    pub fn allocation_size(&self, addr: u64) -> Option<u64> {
        self.used
            .binary_search_by_key(&addr, |b| b.addr)
            .ok()
            .map(|i| self.used[i].size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ta() -> TinyAlloc {
        TinyAlloc::new(0x1000, 64 * 1024, 256)
    }

    #[test]
    fn alloc_is_aligned_and_within_bounds() {
        let mut a = ta();
        let p = a.alloc(10).unwrap();
        assert_eq!(p % 16, 0);
        assert!(p >= 0x1000);
        assert_eq!(a.allocation_size(p), Some(16));
    }

    #[test]
    fn zero_alloc_fails() {
        assert!(ta().alloc(0).is_none());
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = TinyAlloc::new(0, 1024, 256);
        assert!(a.alloc(512).is_some());
        assert!(a.alloc(512).is_some());
        assert!(a.alloc(16).is_none());
    }

    #[test]
    fn free_and_reuse() {
        let mut a = ta();
        let p1 = a.alloc(100).unwrap();
        let _p2 = a.alloc(100).unwrap();
        assert!(a.free(p1));
        let p3 = a.alloc(100).unwrap();
        assert_eq!(p3, p1, "freed chunk is reused first-fit");
        assert!(!a.free(0xdead), "unknown address rejected");
    }

    #[test]
    fn split_leaves_tail_on_free_list() {
        let mut a = ta();
        let p = a.alloc(1024).unwrap();
        a.free(p);
        let q = a.alloc(100).unwrap();
        assert_eq!(q, p);
        assert_eq!(a.num_free(), 1, "tail of the split remains free");
        assert!(a.free_list_bytes() >= 1024 - 112);
    }

    #[test]
    fn adjacent_frees_compact() {
        let mut a = ta();
        let p1 = a.alloc(128).unwrap();
        let p2 = a.alloc(128).unwrap();
        let p3 = a.alloc(128).unwrap();
        let _guard = a.alloc(128).unwrap();
        a.free(p1);
        a.free(p3);
        assert_eq!(a.num_free(), 2);
        a.free(p2);
        assert_eq!(a.num_free(), 1, "three adjacent chunks merged into one");
        assert_eq!(a.free_list_bytes(), 384);
    }

    #[test]
    fn no_overlapping_allocations() {
        let mut a = ta();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for i in 0..100u64 {
            let size = 16 + (i % 7) * 48;
            let p = a.alloc(size).unwrap();
            let sz = a.allocation_size(p).unwrap();
            for (q, qs) in &spans {
                assert!(p + sz <= *q || *q + *qs <= p, "overlap at {p:#x}");
            }
            spans.push((p, sz));
        }
    }

    #[test]
    fn accounting_is_consistent() {
        let mut a = ta();
        let p = a.alloc(1000).unwrap();
        assert_eq!(a.used_bytes(), 1008);
        assert_eq!(a.num_used(), 1);
        a.free(p);
        assert_eq!(a.used_bytes(), 0);
        assert_eq!(a.free_list_bytes(), 1008);
    }

    #[test]
    fn descriptor_pool_bounds_allocations() {
        let mut a = TinyAlloc::new(0, 1 << 30, 4);
        let mut got = 0;
        while a.alloc(16).is_some() {
            got += 1;
        }
        assert_eq!(got, 4, "fresh descriptor pool limits live allocations");
    }
}

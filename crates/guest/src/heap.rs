//! The guest heap: tinyalloc over real guest pages.
//!
//! Allocations come from the [`TinyAlloc`] arena; reads and writes go
//! through the hypervisor's guest-memory path, so heap traffic dirties real
//! frames — which is exactly what drives the COW behaviour the experiments
//! measure (a Redis mass-insert dirties heap pages, making the next
//! fork/clone proportionally more expensive).

use hypervisor::error::Result;
use hypervisor::Hypervisor;
use sim_core::{DomId, Pfn, PAGE_SIZE};

use crate::tinyalloc::TinyAlloc;

/// A byte offset into the guest's RAM (pfn-space address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GuestPtr(pub u64);

/// The per-guest heap manager.
#[derive(Debug, Clone)]
pub struct GuestHeap {
    dom: DomId,
    alloc: TinyAlloc,
}

impl GuestHeap {
    /// Creates a heap for `dom` covering `pages` pages starting at
    /// `start`.
    pub fn new(dom: DomId, start: Pfn, pages: u64) -> Self {
        let base = start.0 * PAGE_SIZE as u64;
        // Size the descriptor pool to the arena: enough for one live
        // allocation per 128 bytes (a Redis-style store holds millions of
        // small values).
        let bytes = pages * PAGE_SIZE as u64;
        let max_blocks = (bytes / 128).clamp(4096, 8_000_000) as usize;
        GuestHeap {
            dom,
            alloc: TinyAlloc::new(base, bytes, max_blocks),
        }
    }

    /// The owning domain.
    pub fn dom(&self) -> DomId {
        self.dom
    }

    /// Re-homes the heap after a fork (the child's copy keeps identical
    /// allocator state but belongs to the child domain).
    pub fn rebind(&mut self, dom: DomId) {
        self.dom = dom;
    }

    /// Allocates `size` bytes.
    pub fn alloc(&mut self, size: u64) -> Option<GuestPtr> {
        self.alloc.alloc(size).map(GuestPtr)
    }

    /// Frees an allocation.
    pub fn free(&mut self, ptr: GuestPtr) -> bool {
        self.alloc.free(ptr.0)
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.alloc.used_bytes()
    }

    /// Writes `data` at `ptr`, spanning pages as needed. Each touched page
    /// goes through the COW-aware write path.
    pub fn write(&self, hv: &mut Hypervisor, ptr: GuestPtr, data: &[u8]) -> Result<()> {
        let mut addr = ptr.0;
        let mut rest = data;
        while !rest.is_empty() {
            let pfn = Pfn(addr / PAGE_SIZE as u64);
            let off = (addr % PAGE_SIZE as u64) as usize;
            let n = rest.len().min(PAGE_SIZE - off);
            hv.write_page(self.dom, pfn, off, &rest[..n])?;
            addr += n as u64;
            rest = &rest[n..];
        }
        Ok(())
    }

    /// Reads `len` bytes at `ptr`.
    pub fn read(&self, hv: &Hypervisor, ptr: GuestPtr, len: usize) -> Result<Vec<u8>> {
        let mut out = vec![0u8; len];
        let mut addr = ptr.0;
        let mut filled = 0;
        while filled < len {
            let pfn = Pfn(addr / PAGE_SIZE as u64);
            let off = (addr % PAGE_SIZE as u64) as usize;
            let n = (len - filled).min(PAGE_SIZE - off);
            hv.read_page(self.dom, pfn, off, &mut out[filled..filled + n])?;
            addr += n as u64;
            filled += n;
        }
        Ok(out)
    }

    /// Allocates and dirties `bytes` of resident memory (the `memhog`
    /// pattern of §6.2: "allocates a chunk of memory that must be
    /// resident"). Every page of the allocation is touched.
    pub fn alloc_resident(&mut self, hv: &mut Hypervisor, bytes: u64) -> Option<GuestPtr> {
        let ptr = self.alloc(bytes)?;
        let first = ptr.0 / PAGE_SIZE as u64;
        let last = (ptr.0 + bytes - 1) / PAGE_SIZE as u64;
        for pfn in first..=last {
            hv.fill_page(self.dom, Pfn(pfn), 0x5ca1_ab1e_0000_0000 | pfn)
                .ok()?;
        }
        Some(ptr)
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use hypervisor::MachineConfig;
    use sim_core::{Clock, CostModel};

    use super::*;

    fn setup() -> (Hypervisor, DomId, GuestHeap) {
        let mut hv = Hypervisor::new(
            Clock::new(),
            Rc::new(CostModel::free()),
            &MachineConfig {
                guest_pool_mib: 64,
                cores: 1,
                notification_ring_capacity: 8,
            },
        );
        let d = hv.create_domain("g", 4, 1).unwrap();
        let heap = GuestHeap::new(d, Pfn(100), 512);
        (hv, d, heap)
    }

    #[test]
    fn write_read_roundtrip_across_pages() {
        let (mut hv, _d, mut heap) = setup();
        let ptr = heap.alloc(10_000).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        heap.write(&mut hv, ptr, &data).unwrap();
        assert_eq!(heap.read(&hv, ptr, data.len()).unwrap(), data);
    }

    #[test]
    fn alloc_resident_touches_every_page() {
        let (mut hv, d, mut heap) = setup();
        let bytes = 5 * PAGE_SIZE as u64;
        let ptr = heap.alloc_resident(&mut hv, bytes).unwrap();
        let first = Pfn(ptr.0 / PAGE_SIZE as u64);
        let mut buf = [0u8; 8];
        hv.read_page(d, first, 0, &mut buf).unwrap();
        assert_ne!(buf, [0u8; 8], "page was dirtied");
    }

    #[test]
    fn rebind_changes_owner() {
        let (_hv, d, mut heap) = setup();
        assert_eq!(heap.dom(), d);
        heap.rebind(DomId(42));
        assert_eq!(heap.dom(), DomId(42));
    }
}

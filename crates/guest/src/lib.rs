//! The Unikraft-like unikernel runtime.
//!
//! Everything a guest application sees lives here: the
//! [`tinyalloc`] memory allocator the paper uses for its memory-scaling
//! experiments, the [`heap`] tying it to real guest pages, the event-driven
//! [`runtime`] ([`GuestApp`]/[`GuestEnv`]) with transparent `fork()`
//! support, and the [`idc`] inter-domain communication API (pipes and
//! socket pairs over `DOMID_CHILD` grants and event channels, §5.2.2).
//!
//! [`GuestApp`]: runtime::GuestApp
//! [`GuestEnv`]: runtime::GuestEnv

pub mod heap;
pub mod idc;
pub mod runtime;
pub mod tinyalloc;

pub use heap::{GuestHeap, GuestPtr};
pub use idc::{IdcPipe, IdcSharedRegion, IdcSocketPair, PIPE_CAPACITY};
pub use runtime::{ForkOutcome, GuestAction, GuestApp, GuestEnv, HOST_MAC};
pub use tinyalloc::TinyAlloc;

//! Inter-domain communication (IDC): the unikernel-side API of §5.2.2.
//!
//! After `fork()`, related processes expect IPC; Nephele replicates the
//! POSIX mechanisms as *inter-domain* communication built on the platform's
//! two primitives, both extended with the `DOMID_CHILD` wildcard:
//!
//! * **shared memory** — the parent grants pages to `DOMID_CHILD` before
//!   any clone exists; on cloning, the pages move to `dom_cow` but remain
//!   *writable-shared* (no COW) and every clone may map them;
//! * **notifications** — IDC event channels created with `DOMID_CHILD` are
//!   implicitly bound by every clone; parent-side sends fan out to all
//!   children, child-side sends reach the parent.
//!
//! On top of these, [`IdcPipe`] implements an anonymous pipe (a byte ring
//! in one shared page) and [`IdcSocketPair`] a bidirectional socket pair —
//! the mechanisms the paper's ported applications use.

use hypervisor::error::{HvError, Result};
use hypervisor::event::Port;
use hypervisor::grant::GrantRef;
use hypervisor::Hypervisor;
use sim_core::{DomId, Mfn, Pfn, PAGE_SIZE};

/// Byte offset of the ring's read index.
const HEAD_OFF: usize = 0;
/// Byte offset of the ring's write index.
const TAIL_OFF: usize = 4;
/// First data byte.
const DATA_OFF: usize = 8;
/// Usable ring capacity (one byte kept free to distinguish full/empty).
pub const PIPE_CAPACITY: usize = PAGE_SIZE - DATA_OFF - 1;

/// An anonymous pipe between a parent and its clones: a single shared page
/// holding a byte ring, plus an IDC event channel for readiness
/// notifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdcPipe {
    /// The domain that created (and originally owned) the pipe page.
    pub owner: DomId,
    /// The pipe page in the owner's address space.
    pub pfn: Pfn,
    /// Grant reference allowing `DOMID_CHILD` to map the page.
    pub gref: GrantRef,
    /// The IDC event-channel port (same port number in parent and clones).
    pub port: Port,
}

impl IdcPipe {
    /// Creates a pipe in `owner` backed by the page at `pfn`. Must be
    /// called *before* forking so clones inherit access (the whole point of
    /// the `DOMID_CHILD` wildcard: the grant is established before any
    /// child id is known).
    pub fn create(hv: &mut Hypervisor, owner: DomId, pfn: Pfn) -> Result<IdcPipe> {
        // Zero the ring indices.
        hv.write_page(owner, pfn, HEAD_OFF, &0u32.to_le_bytes())?;
        hv.write_page(owner, pfn, TAIL_OFF, &0u32.to_le_bytes())?;
        hv.register_idc_pfn(owner, pfn)?;
        let gref = hv.grant_access(owner, DomId::CHILD, pfn, false)?;
        let port = hv.evtchn_alloc_idc(owner)?;
        Ok(IdcPipe {
            owner,
            pfn,
            gref,
            port,
        })
    }

    /// Resolves the pipe page for `accessor`, validating access through the
    /// grant for non-owners.
    fn resolve(&self, hv: &mut Hypervisor, accessor: DomId) -> Result<Mfn> {
        if accessor == self.owner {
            return hv
                .domain(self.owner)?
                .lookup(self.pfn)
                .ok_or(HvError::NotMapped(self.owner, self.pfn));
        }
        let (mfn, _ro) = hv.map_grant(accessor, self.owner, self.gref)?;
        hv.unmap_grant(self.owner, self.gref)?;
        Ok(mfn)
    }

    fn read_u32(hv: &Hypervisor, mfn: Mfn, off: usize) -> Result<u32> {
        let mut b = [0u8; 4];
        hv.frames().read(mfn, off, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn write_u32(hv: &mut Hypervisor, mfn: Mfn, off: usize, v: u32) -> Result<()> {
        hv.frames_mut().write(mfn, off, &v.to_le_bytes())
    }

    /// Bytes available to read.
    pub fn available(&self, hv: &mut Hypervisor, accessor: DomId) -> Result<usize> {
        let mfn = self.resolve(hv, accessor)?;
        let head = Self::read_u32(hv, mfn, HEAD_OFF)? as usize;
        let tail = Self::read_u32(hv, mfn, TAIL_OFF)? as usize;
        Ok((tail + PIPE_CAPACITY + 1 - head) % (PIPE_CAPACITY + 1))
    }

    /// Writes as much of `data` as fits; returns the bytes written and
    /// notifies the other side through the event channel.
    pub fn write(&self, hv: &mut Hypervisor, writer: DomId, data: &[u8]) -> Result<usize> {
        let mfn = self.resolve(hv, writer)?;
        let head = Self::read_u32(hv, mfn, HEAD_OFF)? as usize;
        let mut tail = Self::read_u32(hv, mfn, TAIL_OFF)? as usize;
        let used = (tail + PIPE_CAPACITY + 1 - head) % (PIPE_CAPACITY + 1);
        let space = PIPE_CAPACITY - used;
        let n = data.len().min(space);
        for &b in &data[..n] {
            hv.frames_mut().write(mfn, DATA_OFF + tail, &[b])?;
            tail = (tail + 1) % (PIPE_CAPACITY + 1);
        }
        Self::write_u32(hv, mfn, TAIL_OFF, tail as u32)?;
        if n > 0 {
            // Notify the peer(s); ignore delivery errors for ends that are
            // gone.
            let _ = hv.send_event(writer, self.port);
        }
        Ok(n)
    }

    /// Reads up to `max` bytes.
    pub fn read(&self, hv: &mut Hypervisor, reader: DomId, max: usize) -> Result<Vec<u8>> {
        let mfn = self.resolve(hv, reader)?;
        let mut head = Self::read_u32(hv, mfn, HEAD_OFF)? as usize;
        let tail = Self::read_u32(hv, mfn, TAIL_OFF)? as usize;
        let avail = (tail + PIPE_CAPACITY + 1 - head) % (PIPE_CAPACITY + 1);
        let n = avail.min(max);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut b = [0u8; 1];
            hv.frames().read(mfn, DATA_OFF + head, &mut b)?;
            out.push(b[0]);
            head = (head + 1) % (PIPE_CAPACITY + 1);
        }
        Self::write_u32(hv, mfn, HEAD_OFF, head as u32)?;
        Ok(out)
    }
}

/// A raw shared-memory region spanning a parent and its clones: the
/// lowest-level IDC primitive (§5.2.2), on which higher mechanisms like
/// [`IdcPipe`] are built. All family members read and write the same
/// physical frames — no COW divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdcSharedRegion {
    /// The creating domain.
    pub owner: DomId,
    /// The region's pages in the owner's address space, with their grants.
    pub pages: Vec<(Pfn, GrantRef)>,
    /// Notification channel for the region (same port family-wide).
    pub port: Port,
}

impl IdcSharedRegion {
    /// Creates a region over `pfns` in `owner`, granting `DOMID_CHILD`
    /// access to every page. Must run before forking.
    pub fn create(hv: &mut Hypervisor, owner: DomId, pfns: &[Pfn]) -> Result<IdcSharedRegion> {
        let mut pages = Vec::with_capacity(pfns.len());
        for pfn in pfns {
            hv.register_idc_pfn(owner, *pfn)?;
            let gref = hv.grant_access(owner, DomId::CHILD, *pfn, false)?;
            pages.push((*pfn, gref));
        }
        let port = hv.evtchn_alloc_idc(owner)?;
        Ok(IdcSharedRegion { owner, pages, port })
    }

    /// Region size in bytes.
    pub fn len(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    fn page_for(&self, hv: &mut Hypervisor, accessor: DomId, index: usize) -> Result<Mfn> {
        let (pfn, gref) = self
            .pages
            .get(index)
            .copied()
            .ok_or(HvError::InvalidArg("offset beyond region"))?;
        if accessor == self.owner {
            return hv
                .domain(self.owner)?
                .lookup(pfn)
                .ok_or(HvError::NotMapped(self.owner, pfn));
        }
        let (mfn, _) = hv.map_grant(accessor, self.owner, gref)?;
        hv.unmap_grant(self.owner, gref)?;
        Ok(mfn)
    }

    /// Writes `data` at byte `offset`, visible to the whole family.
    pub fn write(
        &self,
        hv: &mut Hypervisor,
        writer: DomId,
        offset: usize,
        data: &[u8],
    ) -> Result<()> {
        let mut off = offset;
        let mut rest = data;
        while !rest.is_empty() {
            let idx = off / PAGE_SIZE;
            let in_page = off % PAGE_SIZE;
            let n = rest.len().min(PAGE_SIZE - in_page);
            let mfn = self.page_for(hv, writer, idx)?;
            hv.frames_mut().write(mfn, in_page, &rest[..n])?;
            off += n;
            rest = &rest[n..];
        }
        Ok(())
    }

    /// Reads `len` bytes at byte `offset`.
    pub fn read(
        &self,
        hv: &mut Hypervisor,
        reader: DomId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>> {
        let mut out = vec![0u8; len];
        let mut off = offset;
        let mut filled = 0;
        while filled < len {
            let idx = off / PAGE_SIZE;
            let in_page = off % PAGE_SIZE;
            let n = (len - filled).min(PAGE_SIZE - in_page);
            let mfn = self.page_for(hv, reader, idx)?;
            hv.frames().read(mfn, in_page, &mut out[filled..filled + n])?;
            off += n;
            filled += n;
        }
        Ok(out)
    }

    /// Notifies the rest of the family (parent fan-out / child-to-parent).
    pub fn notify(&self, hv: &mut Hypervisor, from: DomId) -> Result<()> {
        hv.send_event(from, self.port)
    }
}

/// A bidirectional socket pair built from two pipes: `a2b` carries parent→
/// child data, `b2a` the reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdcSocketPair {
    /// Parent-to-child pipe.
    pub a2b: IdcPipe,
    /// Child-to-parent pipe.
    pub b2a: IdcPipe,
}

impl IdcSocketPair {
    /// Creates a socket pair in `owner` using two pages.
    pub fn create(hv: &mut Hypervisor, owner: DomId, pfn_a: Pfn, pfn_b: Pfn) -> Result<Self> {
        Ok(IdcSocketPair {
            a2b: IdcPipe::create(hv, owner, pfn_a)?,
            b2a: IdcPipe::create(hv, owner, pfn_b)?,
        })
    }

    /// Sends from the parent side.
    pub fn parent_send(&self, hv: &mut Hypervisor, parent: DomId, data: &[u8]) -> Result<usize> {
        self.a2b.write(hv, parent, data)
    }

    /// Receives on the child side.
    pub fn child_recv(&self, hv: &mut Hypervisor, child: DomId, max: usize) -> Result<Vec<u8>> {
        self.a2b.read(hv, child, max)
    }

    /// Sends from the child side.
    pub fn child_send(&self, hv: &mut Hypervisor, child: DomId, data: &[u8]) -> Result<usize> {
        self.b2a.write(hv, child, data)
    }

    /// Receives on the parent side.
    pub fn parent_recv(&self, hv: &mut Hypervisor, parent: DomId, max: usize) -> Result<Vec<u8>> {
        self.b2a.read(hv, parent, max)
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use hypervisor::cloneop::{CloneOp, CloneOpResult};
    use hypervisor::domain::ClonePolicy;
    use hypervisor::MachineConfig;
    use sim_core::{Clock, CostModel};

    use super::*;

    fn setup() -> (Hypervisor, DomId) {
        let mut hv = Hypervisor::new(
            Clock::new(),
            Rc::new(CostModel::free()),
            &MachineConfig {
                guest_pool_mib: 128,
                cores: 1,
                notification_ring_capacity: 16,
            },
        );
        hv.set_cloning_enabled(true);
        let d = hv.create_domain("parent", 4, 1).unwrap();
        hv.set_clone_policy(
            d,
            ClonePolicy {
                enabled: true,
                max_clones: 8,
                resume_children: true,
            },
        )
        .unwrap();
        hv.unpause(d).unwrap();
        (hv, d)
    }

    fn clone_one(hv: &mut Hypervisor, parent: DomId) -> DomId {
        let r = hv
            .cloneop(
                parent,
                CloneOp::Clone {
                    target: None,
                    nr_clones: 1,
                },
            )
            .unwrap();
        let CloneOpResult::Cloned(kids) = r else {
            panic!()
        };
        let child = kids[0];
        hv.clone_ring_pop().unwrap();
        hv.cloneop(DomId::DOM0, CloneOp::Completion { child }).unwrap();
        child
    }

    #[test]
    fn pipe_roundtrip_same_domain() {
        let (mut hv, d) = setup();
        let pipe = IdcPipe::create(&mut hv, d, Pfn(50)).unwrap();
        assert_eq!(pipe.write(&mut hv, d, b"hello").unwrap(), 5);
        assert_eq!(pipe.available(&mut hv, d).unwrap(), 5);
        assert_eq!(pipe.read(&mut hv, d, 10).unwrap(), b"hello");
        assert_eq!(pipe.available(&mut hv, d).unwrap(), 0);
    }

    #[test]
    fn pipe_survives_fork_and_is_truly_shared() {
        let (mut hv, parent) = setup();
        let pipe = IdcPipe::create(&mut hv, parent, Pfn(50)).unwrap();
        // Parent writes *before* cloning.
        pipe.write(&mut hv, parent, b"pre-fork").unwrap();

        let child = clone_one(&mut hv, parent);

        // Child reads the pre-fork data through the CHILD grant.
        assert_eq!(pipe.read(&mut hv, child, 64).unwrap(), b"pre-fork");
        // And the consumption is visible to the parent (no COW divergence).
        assert_eq!(pipe.available(&mut hv, parent).unwrap(), 0);

        // Post-fork traffic in both directions.
        pipe.write(&mut hv, parent, b"p->c").unwrap();
        assert_eq!(pipe.read(&mut hv, child, 64).unwrap(), b"p->c");
        pipe.write(&mut hv, child, b"c->p").unwrap();
        assert_eq!(pipe.read(&mut hv, parent, 64).unwrap(), b"c->p");
    }

    #[test]
    fn pipe_notifications_fan_out() {
        let (mut hv, parent) = setup();
        let pipe = IdcPipe::create(&mut hv, parent, Pfn(50)).unwrap();
        let c1 = clone_one(&mut hv, parent);
        let c2 = clone_one(&mut hv, parent);
        hv.drain_events();

        // Parent write notifies every clone.
        pipe.write(&mut hv, parent, b"x").unwrap();
        let evts = hv.drain_events();
        let targets: Vec<DomId> = evts.iter().map(|e| e.dom).collect();
        assert!(targets.contains(&c1) && targets.contains(&c2), "{targets:?}");

        // Child write notifies the parent.
        pipe.read(&mut hv, c1, 1).unwrap();
        pipe.write(&mut hv, c1, b"y").unwrap();
        let evts = hv.drain_events();
        assert!(evts.iter().any(|e| e.dom == parent));
    }

    #[test]
    fn unrelated_domain_denied() {
        let (mut hv, parent) = setup();
        let pipe = IdcPipe::create(&mut hv, parent, Pfn(50)).unwrap();
        let stranger = hv.create_domain("other", 4, 1).unwrap();
        assert!(pipe.read(&mut hv, stranger, 1).is_err());
        assert!(pipe.write(&mut hv, stranger, b"x").is_err());
    }

    #[test]
    fn pipe_capacity_limits_write() {
        let (mut hv, d) = setup();
        let pipe = IdcPipe::create(&mut hv, d, Pfn(50)).unwrap();
        let big = vec![7u8; PIPE_CAPACITY + 100];
        let n = pipe.write(&mut hv, d, &big).unwrap();
        assert_eq!(n, PIPE_CAPACITY);
        // Drain and refill across the wrap point.
        assert_eq!(pipe.read(&mut hv, d, PIPE_CAPACITY).unwrap().len(), PIPE_CAPACITY);
        let n = pipe.write(&mut hv, d, b"wrapped").unwrap();
        assert_eq!(n, 7);
        assert_eq!(pipe.read(&mut hv, d, 10).unwrap(), b"wrapped");
    }

    #[test]
    fn shared_region_spans_pages_and_family() {
        let (mut hv, parent) = setup();
        let region =
            IdcSharedRegion::create(&mut hv, parent, &[Pfn(70), Pfn(71), Pfn(72)]).unwrap();
        assert_eq!(region.len(), 3 * PAGE_SIZE);

        // A write crossing a page boundary, before forking.
        let data: Vec<u8> = (0..600).map(|i| (i % 251) as u8).collect();
        region.write(&mut hv, parent, PAGE_SIZE - 100, &data).unwrap();

        let child = clone_one(&mut hv, parent);
        assert_eq!(
            region.read(&mut hv, child, PAGE_SIZE - 100, 600).unwrap(),
            data
        );

        // Child writes; parent observes immediately (no COW).
        region.write(&mut hv, child, 0, b"from-child").unwrap();
        assert_eq!(region.read(&mut hv, parent, 0, 10).unwrap(), b"from-child");

        // Notifications reach the other side.
        hv.drain_events();
        region.notify(&mut hv, child).unwrap();
        assert!(hv.drain_events().iter().any(|e| e.dom == parent));
    }

    #[test]
    fn shared_region_bounds_checked() {
        let (mut hv, parent) = setup();
        let region = IdcSharedRegion::create(&mut hv, parent, &[Pfn(70)]).unwrap();
        assert!(region.write(&mut hv, parent, PAGE_SIZE - 2, b"xxxx").is_err());
        assert!(region.read(&mut hv, parent, 0, PAGE_SIZE + 1).is_err());
        assert!(!region.is_empty());
    }

    #[test]
    fn socketpair_bidirectional_after_fork() {
        let (mut hv, parent) = setup();
        let sp = IdcSocketPair::create(&mut hv, parent, Pfn(60), Pfn(61)).unwrap();
        let child = clone_one(&mut hv, parent);

        sp.parent_send(&mut hv, parent, b"job").unwrap();
        assert_eq!(sp.child_recv(&mut hv, child, 16).unwrap(), b"job");
        sp.child_send(&mut hv, child, b"done").unwrap();
        assert_eq!(sp.parent_recv(&mut hv, parent, 16).unwrap(), b"done");
    }
}

//! The unikernel runtime: how a guest application experiences the platform.
//!
//! Guests are event-driven state machines implementing [`GuestApp`]. The
//! platform invokes the callbacks with a [`GuestEnv`] giving access to the
//! guest's heap, its network stack and its devices. Cloning is transparent
//! in the paper's sense: an app calls [`GuestEnv::fork`], and after the
//! platform completes both stages it delivers [`GuestApp::on_fork`] with
//! [`ForkOutcome::Parent`] in the parent and [`ForkOutcome::Child`] in the
//! (cloned) child — the direct analogue of `fork()` returning twice.

use devices::p9fs::{P9Request, P9Response};
use devices::DeviceManager;
use hypervisor::Hypervisor;
use netmux::stack::NetStack;
use netmux::{MacAddr, Packet};
use sim_core::{DomId, SimDuration, SimTime};

use crate::heap::GuestHeap;

/// The well-known MAC of the host-side endpoint (Dom0's bridge port).
pub const HOST_MAC: MacAddr = MacAddr([0x00, 0x16, 0x3e, 0xff, 0xff, 0xfe]);

/// How `fork()` returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForkOutcome {
    /// This is the parent; the hypercall filled in the children's ids.
    Parent {
        /// The new clones, in creation order.
        children: Vec<DomId>,
    },
    /// This is a freshly cloned child.
    Child {
        /// The domain it was cloned from.
        parent: DomId,
    },
}

/// Deferred requests a guest hands back to the platform (operations that
/// cannot complete within a single callback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuestAction {
    /// Invoke `CLONEOP` to clone this guest `nr` times.
    Fork {
        /// Number of clones.
        nr: u32,
    },
    /// Request a timer callback after `delay` with a caller-chosen tag.
    Timer {
        /// Delay from now.
        delay: SimDuration,
        /// Returned in [`GuestApp::on_timer`].
        tag: u64,
    },
    /// Shut the domain down.
    Shutdown,
}

/// The environment handed to each guest callback.
pub struct GuestEnv<'a> {
    /// The guest's domain id.
    pub dom: DomId,
    /// Current virtual time.
    pub now: SimTime,
    /// Hypervisor access (memory, hypercalls).
    pub hv: &'a mut Hypervisor,
    /// Device access (vifs, console, 9pfs).
    pub dm: &'a mut DeviceManager,
    /// The guest's heap.
    pub heap: &'a mut GuestHeap,
    /// The guest's network stack.
    pub stack: &'a mut NetStack,
    /// Deferred actions collected during the callback.
    pub actions: &'a mut Vec<GuestAction>,
}

impl GuestEnv<'_> {
    /// Requests a fork of this guest (`nr` clones). Completes after the
    /// callback returns; the outcome is delivered via
    /// [`GuestApp::on_fork`].
    pub fn fork(&mut self, nr: u32) {
        self.actions.push(GuestAction::Fork { nr });
    }

    /// Requests a timer callback.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(GuestAction::Timer { delay, tag });
    }

    /// Requests shutdown of this guest.
    pub fn shutdown(&mut self) {
        self.actions.push(GuestAction::Shutdown);
    }

    /// Transmits a packet on vif `devid`.
    pub fn transmit(&mut self, devid: u32, pkt: Packet) -> bool {
        self.dm.guest_tx(self.dom, devid, pkt).unwrap_or(false)
    }

    /// Convenience: send a UDP datagram to the host endpoint.
    pub fn udp_send_host(&mut self, devid: u32, src_port: u16, dst_port: u16, payload: Vec<u8>) {
        let host_ip = std::net::Ipv4Addr::new(10, 0, 0, 1);
        let pkt = self
            .stack
            .udp_send(HOST_MAC, host_ip, src_port, dst_port, payload);
        self.transmit(devid, pkt);
    }

    /// Writes to the guest console.
    pub fn console_log(&mut self, msg: &str) {
        self.dm.console_write(self.dom, msg.as_bytes());
    }

    /// Issues a 9p RPC on the guest's root filesystem.
    pub fn p9(&mut self, req: P9Request) -> Option<P9Response> {
        self.dm.p9_request(self.dom, req).ok()
    }

    /// Reads one sector from block device `devid`.
    pub fn vbd_read(&mut self, devid: u32, sector: u64) -> Option<devices::block::Sector> {
        self.dm.vbd_read(self.dom, devid, sector).ok()
    }

    /// Writes one sector to block device `devid` (into the guest's private
    /// COW overlay).
    pub fn vbd_write(&mut self, devid: u32, sector: u64, data: &devices::block::Sector) -> bool {
        self.dm.vbd_write(self.dom, devid, sector, data).unwrap_or(false)
    }

    /// Sends one message on the guest's vsock stream.
    pub fn vsock_send(&mut self, payload: Vec<u8>) -> bool {
        self.dm.vsock_send(self.dom, payload).unwrap_or(false)
    }

    /// Submits one URB to passed-through USB device `devid`; `false` when
    /// the guest does not hold the device (e.g. in a clone, which comes up
    /// detached).
    pub fn usb_submit(&mut self, devid: u32) -> bool {
        self.dm.usb_submit(self.dom, devid).unwrap_or(false)
    }
}

/// A guest application.
///
/// Implementations must be cloneable ([`GuestApp::boxed_clone`]) because
/// forking duplicates the application state into the child — the in-Rust
/// mirror of the page-level memory cloning the hypervisor performs.
pub trait GuestApp {
    /// Clones the application state (used when forking).
    fn boxed_clone(&self) -> Box<dyn GuestApp>;

    /// Downcasting hook so tests and experiment drivers can reach into a
    /// concrete application's state.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Called once when the unikernel finishes booting.
    fn on_boot(&mut self, env: &mut GuestEnv);

    /// Called for each network event (UDP datagram, TCP accept/data/close).
    fn on_net_event(&mut self, env: &mut GuestEnv, evt: netmux::SockEvent) {
        let _ = (env, evt);
    }

    /// Called when a previously requested fork completes, in both the
    /// parent and each child.
    fn on_fork(&mut self, env: &mut GuestEnv, outcome: ForkOutcome) {
        let _ = (env, outcome);
    }

    /// Called when a requested timer fires.
    fn on_timer(&mut self, env: &mut GuestEnv, tag: u64) {
        let _ = (env, tag);
    }

    /// Called when an IDC event-channel notification arrives on `port`.
    fn on_idc_event(&mut self, env: &mut GuestEnv, port: u32) {
        let _ = (env, port);
    }
}

impl Clone for Box<dyn GuestApp> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Counter {
        n: u32,
    }

    impl GuestApp for Counter {
        fn boxed_clone(&self) -> Box<dyn GuestApp> {
            Box::new(self.clone())
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn on_boot(&mut self, _env: &mut GuestEnv) {
            self.n += 1;
        }
    }

    #[test]
    fn boxed_clone_duplicates_state() {
        let a: Box<dyn GuestApp> = Box::new(Counter { n: 7 });
        let _b = a.clone();
        // Compiles and clones without panicking; state equality is checked
        // end-to-end in the platform integration tests.
    }

    #[test]
    fn actions_accumulate() {
        // GuestEnv is exercised end-to-end in the nephele platform tests;
        // here we only check the action plumbing types.
        let mut actions = Vec::new();
        actions.push(GuestAction::Fork { nr: 2 });
        actions.push(GuestAction::Shutdown);
        assert_eq!(actions.len(), 2);
        assert_eq!(actions[0], GuestAction::Fork { nr: 2 });
    }
}

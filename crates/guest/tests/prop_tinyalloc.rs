//! Property tests for the tinyalloc port: allocations never overlap, free
//! memory is conserved, and the allocator keeps working under arbitrary
//! alloc/free interleavings.

use testkit::prop::{check, ranges, usizes, vecs, weighted, Gen, Source};

use guest::TinyAlloc;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    FreeIdx(usize),
}

fn op_strategy() -> impl Gen<Value = Op> {
    weighted(vec![
        (2, ranges(1u64..5000).map(Op::Alloc).boxed()),
        (1, usizes().map(Op::FreeIdx).boxed()),
    ])
}

#[test]
fn no_overlap_and_conservation() {
    check(256, |g| {
        let ops = g.draw(&vecs(op_strategy(), 1..200));

        const BASE: u64 = 0x10_000;
        const SIZE: u64 = 1 << 20;
        let mut ta = TinyAlloc::new(BASE, SIZE, 512);
        let mut live: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(sz) => {
                    if let Some(p) = ta.alloc(sz) {
                        // Alignment and bounds.
                        assert_eq!(p % 16, 0);
                        let asz = ta.allocation_size(p).unwrap();
                        assert!(asz >= sz);
                        assert!(p >= BASE && p + asz <= BASE + SIZE);
                        // No overlap with any live allocation.
                        for q in &live {
                            let qsz = ta.allocation_size(*q).unwrap();
                            assert!(
                                p + asz <= *q || *q + qsz <= p,
                                "overlap {p:#x}+{asz} vs {q:#x}+{qsz}"
                            );
                        }
                        live.push(p);
                    }
                }
                Op::FreeIdx(i) => {
                    if !live.is_empty() {
                        let p = live.remove(i % live.len());
                        assert!(ta.free(p));
                        assert!(!ta.free(p), "double free must fail");
                    }
                }
            }
        }

        // Accounting: used bytes equals the sum of live allocation sizes.
        let used: u64 = live.iter().map(|p| ta.allocation_size(*p).unwrap()).sum();
        assert_eq!(ta.used_bytes(), used);
        assert_eq!(ta.num_used(), live.len());

        // Freeing everything brings used down to zero and compacts the
        // free list into contiguous runs.
        for p in live {
            ta.free(p);
        }
        assert_eq!(ta.used_bytes(), 0);
        // Everything freed and merged: free list + virgin covers the arena.
        assert_eq!(ta.free_list_bytes() + ta.virgin_bytes(), SIZE);
    });
}

/// The generator behind `full_reuse_after_teardown`, shared with the
/// corpus-conversion check below.
fn teardown_sizes() -> impl Gen<Value = Vec<u64>> {
    vecs(ranges(16u64..2048), 1..64)
}

/// After tearing everything down, the identical allocation sequence
/// succeeds again entirely from the (compacted) free list — the bump
/// pointer does not advance a second time.
#[test]
fn full_reuse_after_teardown() {
    check(256, |g| {
        let sizes = g.draw(&teardown_sizes());

        let mut ta = TinyAlloc::new(0, 1 << 20, 256);
        let ptrs: Vec<u64> = sizes.iter().filter_map(|s| ta.alloc(*s)).collect();
        assert_eq!(ptrs.len(), sizes.len(), "first round must fit");
        for p in &ptrs {
            ta.free(*p);
        }
        let virgin_before = ta.virgin_bytes();
        for s in &sizes {
            assert!(ta.alloc(*s).is_some(), "reuse failed for {s}");
        }
        assert_eq!(ta.virgin_bytes(), virgin_before, "no new virgin memory consumed");
    });
}

/// The corpus entry converted from the old proptest regression file
/// ("shrinks to sizes = [65]") must still decode to exactly that input,
/// so the recorded allocator regression keeps being replayed.
#[test]
fn corpus_tape_decodes_to_recorded_regression() {
    let corpus = std::fs::read_to_string(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/testkit-regressions"),
    )
    .expect("corpus file is checked in");
    let tape: Vec<u64> = corpus
        .lines()
        .find_map(|l| l.split('#').next().unwrap().trim().strip_prefix("full_reuse_after_teardown:"))
        .expect("entry for full_reuse_after_teardown")
        .split_whitespace()
        .map(|v| v.parse().unwrap())
        .collect();
    let mut src = Source::replay(tape);
    assert_eq!(src.draw(&teardown_sizes()), vec![65], "tape must decode to sizes = [65]");
}

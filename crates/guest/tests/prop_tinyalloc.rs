//! Property tests for the tinyalloc port: allocations never overlap, free
//! memory is conserved, and the allocator keeps working under arbitrary
//! alloc/free interleavings.

use proptest::prelude::*;

use guest::TinyAlloc;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    FreeIdx(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (1u64..5000).prop_map(Op::Alloc),
        1 => any::<usize>().prop_map(Op::FreeIdx),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn no_overlap_and_conservation(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        const BASE: u64 = 0x10_000;
        const SIZE: u64 = 1 << 20;
        let mut ta = TinyAlloc::new(BASE, SIZE, 512);
        let mut live: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(sz) => {
                    if let Some(p) = ta.alloc(sz) {
                        // Alignment and bounds.
                        prop_assert_eq!(p % 16, 0);
                        let asz = ta.allocation_size(p).unwrap();
                        prop_assert!(asz >= sz);
                        prop_assert!(p >= BASE && p + asz <= BASE + SIZE);
                        // No overlap with any live allocation.
                        for q in &live {
                            let qsz = ta.allocation_size(*q).unwrap();
                            prop_assert!(
                                p + asz <= *q || *q + qsz <= p,
                                "overlap {p:#x}+{asz} vs {q:#x}+{qsz}"
                            );
                        }
                        live.push(p);
                    }
                }
                Op::FreeIdx(i) => {
                    if !live.is_empty() {
                        let p = live.remove(i % live.len());
                        prop_assert!(ta.free(p));
                        prop_assert!(!ta.free(p), "double free must fail");
                    }
                }
            }
        }

        // Accounting: used bytes equals the sum of live allocation sizes.
        let used: u64 = live.iter().map(|p| ta.allocation_size(*p).unwrap()).sum();
        prop_assert_eq!(ta.used_bytes(), used);
        prop_assert_eq!(ta.num_used(), live.len());

        // Freeing everything brings used down to zero and compacts the
        // free list into contiguous runs.
        for p in live {
            ta.free(p);
        }
        prop_assert_eq!(ta.used_bytes(), 0);
        // Everything freed and merged: free list + virgin covers the arena.
        prop_assert_eq!(ta.free_list_bytes() + ta.virgin_bytes(), SIZE);
    }

    /// After tearing everything down, the identical allocation sequence
    /// succeeds again entirely from the (compacted) free list — the bump
    /// pointer does not advance a second time.
    #[test]
    fn full_reuse_after_teardown(sizes in proptest::collection::vec(16u64..2048, 1..64)) {
        let mut ta = TinyAlloc::new(0, 1 << 20, 256);
        let ptrs: Vec<u64> = sizes.iter().filter_map(|s| ta.alloc(*s)).collect();
        prop_assert_eq!(ptrs.len(), sizes.len(), "first round must fit");
        for p in &ptrs {
            ta.free(*p);
        }
        let virgin_before = ta.virgin_bytes();
        for s in &sizes {
            prop_assert!(ta.alloc(*s).is_some(), "reuse failed for {s}");
        }
        prop_assert_eq!(ta.virgin_bytes(), virgin_before, "no new virgin memory consumed");
    }
}

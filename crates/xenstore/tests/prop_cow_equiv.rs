//! Copy-on-write equivalence: the structurally-shared persistent store
//! must be observably identical to a naive always-deep-copy reference.
//!
//! A random operation tape (write / mkdir / rm / directory / xs_clone /
//! transaction commit+abort / watch / unwatch) drives the real
//! [`Xenstore`] and a reference model that deep-copies every subtree the
//! way the tree worked before the rewrite. After every operation the two
//! must agree on: the operation's result, the queued watch events, the
//! cached entry count, and — crucially — the virtual-time charge (both
//! run the calibrated [`CostModel`] on private clocks, so a divergence in
//! any count the charges derive from shows up as a clock mismatch).

use std::collections::BTreeMap;
use std::rc::Rc;

use testkit::prop::{check, usizes, u8s, vecs, weighted, Gen};

use sim_core::{Clock, CostModel, DomId};
use xenstore::log::AccessLog;
use xenstore::{WatchEvent, XsCloneOp, Xenstore};

// ---------------------------------------------------------------------
// Reference model: the pre-rewrite eager tree + daemon charging logic.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RefNode {
    value: Option<String>,
    children: BTreeMap<String, RefNode>,
}

fn components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty())
}

impl RefNode {
    fn dir() -> Self {
        RefNode { value: None, children: BTreeMap::new() }
    }

    fn get(&self, path: &str) -> Option<&RefNode> {
        let mut cur = self;
        for c in components(path) {
            cur = cur.children.get(c)?;
        }
        Some(cur)
    }

    fn insert(&mut self, path: &str, value: &str) -> u64 {
        let mut created = 0;
        let mut cur = self;
        for c in components(path) {
            if !cur.children.contains_key(c) {
                created += 1;
                cur.children.insert(c.to_string(), RefNode::dir());
            }
            cur = cur.children.get_mut(c).expect("just inserted");
        }
        cur.value = Some(value.to_string());
        created
    }

    fn mkdir(&mut self, path: &str) -> u64 {
        let mut created = 0;
        let mut cur = self;
        for c in components(path) {
            if !cur.children.contains_key(c) {
                created += 1;
                cur.children.insert(c.to_string(), RefNode::dir());
            }
            cur = cur.children.get_mut(c).expect("just inserted");
        }
        created
    }

    fn remove(&mut self, path: &str) -> Option<u64> {
        let comps: Vec<&str> = components(path).collect();
        let (last, dirs) = comps.split_last()?;
        let mut cur = self;
        for c in dirs {
            cur = cur.children.get_mut(*c)?;
        }
        let removed = cur.children.remove(*last)?;
        Some(removed.count_entries())
    }

    fn count_entries(&self) -> u64 {
        1 + self.children.values().map(RefNode::count_entries).sum::<u64>()
    }

    fn graft(&mut self, path: &str, subtree: RefNode) -> i64 {
        let added = subtree.count_entries();
        let removed = self.remove(path).unwrap_or(0);
        let comps: Vec<&str> = components(path).collect();
        let Some((last, dirs)) = comps.split_last() else {
            return 0;
        };
        let mut created = 0;
        let mut cur = self;
        for c in dirs {
            if !cur.children.contains_key(*c) {
                created += 1;
                cur.children.insert(c.to_string(), RefNode::dir());
            }
            cur = cur.children.get_mut(*c).expect("just inserted");
        }
        cur.children.insert(last.to_string(), subtree);
        created + added as i64 - removed as i64
    }

    /// The eager domid rewrite the device clone variants used to apply.
    fn rewrite_domid(&mut self, old: u32, new: u32) {
        let old_home = format!("/local/domain/{old}/");
        let new_home = format!("/local/domain/{new}/");
        let old_home_end = format!("/local/domain/{old}");
        let new_home_end = format!("/local/domain/{new}");
        let old_id = old.to_string();
        let new_id = new.to_string();
        self.visit_values(&mut |v| {
            if v == &old_id {
                *v = new_id.clone();
                return;
            }
            if v.contains(&old_home) {
                *v = v.replace(&old_home, &new_home);
            } else if v.ends_with(&old_home_end) {
                *v = format!("{}{}", &v[..v.len() - old_home_end.len()], new_home_end);
            }
            let seg_old = format!("/{old_id}/");
            let seg_new = format!("/{new_id}/");
            if v.starts_with("/local/domain/0/backend/") && v.contains(&seg_old) {
                *v = v.replacen(&seg_old, &seg_new, 1);
            }
        });
    }

    fn visit_values(&mut self, f: &mut impl FnMut(&mut String)) {
        if let Some(v) = self.value.as_mut() {
            f(v);
        }
        for child in self.children.values_mut() {
            child.visit_values(f);
        }
    }
}

#[derive(Debug, Clone)]
enum RefTxnOp {
    Write { path: String, value: String },
    Rm { path: String },
}

/// The reference daemon: naive tree, linear watch scan, identical charges.
struct RefStore {
    clock: Clock,
    costs: Rc<CostModel>,
    root: RefNode,
    watches: Vec<(DomId, String, String)>,
    fired: Vec<WatchEvent>,
    txns: BTreeMap<u32, Vec<RefTxnOp>>,
    next_txn: u32,
    access_log: AccessLog,
    entry_count: u64,
}

impl RefStore {
    fn new(clock: Clock, costs: Rc<CostModel>) -> Self {
        let mut s = RefStore {
            clock,
            costs,
            root: RefNode::dir(),
            watches: Vec::new(),
            fired: Vec::new(),
            txns: BTreeMap::new(),
            next_txn: 1,
            access_log: AccessLog::new(3000),
            entry_count: 0,
        };
        for dir in ["/tool", "/local", "/local/domain", "/vm", "/libxl"] {
            s.entry_count += s.root.mkdir(dir);
        }
        s
    }

    fn charge_request(&mut self, kind: &str, path: &str) {
        self.clock.advance(self.costs.xs_request_base);
        self.clock.advance(
            self.costs
                .xs_per_existing_entry
                .saturating_mul(self.entry_count),
        );
        let rotated = self.access_log.append(kind, path);
        self.clock.advance(self.costs.xs_access_log_append);
        if rotated {
            self.clock.advance(self.costs.xs_access_log_rotate);
        }
    }

    fn fire_watches(&mut self, path: &str) {
        self.clock.advance(
            self.costs
                .xs_watch_match
                .saturating_mul(self.watches.len() as u64),
        );
        let mut hits = Vec::new();
        for (_, token, prefix) in &self.watches {
            if path == prefix || path.starts_with(&format!("{prefix}/")) {
                hits.push(WatchEvent { token: token.clone(), path: path.to_string() });
            }
        }
        for h in hits {
            self.clock.advance(self.costs.xs_watch_fire);
            self.fired.push(h);
        }
    }

    fn write(&mut self, path: &str, value: &str) {
        self.charge_request("write", path);
        self.entry_count += self.root.insert(path, value);
        self.fire_watches(path);
    }

    fn mkdir(&mut self, path: &str) {
        self.charge_request("mkdir", path);
        self.entry_count += self.root.mkdir(path);
        self.fire_watches(path);
    }

    fn rm(&mut self, path: &str) -> bool {
        self.charge_request("rm", path);
        match self.root.remove(path) {
            Some(removed) => {
                self.entry_count -= removed;
                self.fire_watches(path);
                true
            }
            None => false,
        }
    }

    fn directory(&mut self, path: &str) -> Option<Vec<String>> {
        self.charge_request("directory", path);
        self.root
            .get(path)
            .map(|n| n.children.keys().cloned().collect())
    }

    fn read(&mut self, path: &str) -> Option<String> {
        self.charge_request("read", path);
        self.root
            .get(path)
            .map(|n| n.value.clone().unwrap_or_default())
    }

    fn watch(&mut self, who: DomId, token: &str, prefix: &str) {
        self.charge_request("watch", prefix);
        self.watches.push((
            who,
            token.to_string(),
            prefix.trim_end_matches('/').to_string(),
        ));
    }

    fn unwatch(&mut self, who: DomId, token: &str) {
        self.charge_request("unwatch", token);
        self.watches.retain(|(o, t, _)| !(*o == who && t == token));
    }

    fn txn_start(&mut self) -> u32 {
        self.clock.advance(self.costs.xs_transaction);
        let id = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(id, Vec::new());
        id
    }

    fn txn_write(&mut self, txn: u32, path: &str, value: &str) {
        self.txns.get_mut(&txn).expect("tape only uses live txns").push(
            RefTxnOp::Write { path: path.to_string(), value: value.to_string() },
        );
    }

    fn txn_rm(&mut self, txn: u32, path: &str) {
        self.txns
            .get_mut(&txn)
            .expect("tape only uses live txns")
            .push(RefTxnOp::Rm { path: path.to_string() });
    }

    fn txn_commit(&mut self, txn: u32) {
        let ops = self.txns.remove(&txn).expect("tape only uses live txns");
        self.clock.advance(self.costs.xs_transaction);
        let mut touched = Vec::new();
        for op in ops {
            match op {
                RefTxnOp::Write { path, value } => {
                    self.charge_request("write", &path);
                    self.entry_count += self.root.insert(&path, &value);
                    touched.push(path);
                }
                RefTxnOp::Rm { path } => {
                    self.charge_request("rm", &path);
                    if let Some(removed) = self.root.remove(&path) {
                        self.entry_count -= removed;
                    }
                    touched.push(path);
                }
            }
        }
        for path in touched {
            self.fire_watches(&path);
        }
    }

    fn txn_abort(&mut self, txn: u32) {
        self.txns.remove(&txn);
    }

    fn xs_clone(&mut self, op: XsCloneOp, parent: DomId, child: DomId, from: &str, to: &str) -> bool {
        self.charge_request("xs_clone", from);
        let Some(src) = self.root.get(from).cloned() else {
            return false;
        };
        let entries = src.count_entries();
        self.clock
            .advance(self.costs.xs_clone_per_entry.saturating_mul(entries));
        let rewritten = match op {
            XsCloneOp::Basic => src,
            XsCloneOp::DevConsole
            | XsCloneOp::DevVif
            | XsCloneOp::Dev9pfs
            | XsCloneOp::DevVbd
            | XsCloneOp::DevVsock => {
                let mut n = src;
                n.rewrite_domid(parent.0, child.0);
                n
            }
        };
        let delta = self.root.graft(to, rewritten);
        self.entry_count = (self.entry_count as i64 + delta).max(0) as u64;
        self.fire_watches(to);
        true
    }

    /// All (path, value) pairs, depth-first.
    fn dump(&self) -> Vec<(String, String)> {
        fn walk(node: &RefNode, prefix: &str, out: &mut Vec<(String, String)>) {
            for (name, child) in &node.children {
                let path = format!("{prefix}/{name}");
                out.push((path.clone(), child.value.clone().unwrap_or_default()));
                walk(child, &path, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, "", &mut out);
        out
    }
}

// ---------------------------------------------------------------------
// The operation tape.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Write { path_idx: usize, val: u8 },
    Mkdir { path_idx: usize },
    Rm { path_idx: usize },
    Dir { path_idx: usize },
    Read { path_idx: usize },
    Clone { op_idx: usize, from_dom: usize, to_dom: usize },
    Watch { path_idx: usize, tok: u8 },
    Unwatch { tok: u8 },
    TxnRun { writes: Vec<(usize, u8)>, rm: Option<usize>, commit: bool },
}

/// A closed path pool under a handful of domain homes, with some values
/// that look like domid references so the lazy rewrite overlays and the
/// eager reference rewrites must agree.
fn doms() -> [u32; 4] {
    [3, 5, 8, 12]
}

fn paths() -> Vec<String> {
    let mut v = Vec::new();
    for d in doms() {
        for leaf in ["state", "mac", "backend"] {
            v.push(format!("/local/domain/{d}/device/vif/0/{leaf}"));
        }
        v.push(format!("/local/domain/{d}/device/vif/0"));
        v.push(format!("/local/domain/{d}/device"));
        v.push(format!("/local/domain/{d}"));
    }
    v
}

/// Values cycle through plain strings and domid-reference shapes.
fn value_for(dom: u32, val: u8) -> String {
    match val % 5 {
        0 => format!("v{val}"),
        1 => dom.to_string(),
        2 => format!("/local/domain/{dom}/device/vif/0"),
        3 => format!("/local/domain/0/backend/vif/{dom}/0"),
        _ => format!("/local/domain/{dom}"),
    }
}

fn op_strategy() -> impl Gen<Value = Op> {
    weighted(vec![
        (6, (usizes(), u8s()).map(|(path_idx, val)| Op::Write { path_idx, val }).boxed()),
        (1, usizes().map(|path_idx| Op::Mkdir { path_idx }).boxed()),
        (2, usizes().map(|path_idx| Op::Rm { path_idx }).boxed()),
        (2, usizes().map(|path_idx| Op::Dir { path_idx }).boxed()),
        (3, usizes().map(|path_idx| Op::Read { path_idx }).boxed()),
        (4, (usizes(), usizes(), usizes())
            .map(|(op_idx, from_dom, to_dom)| Op::Clone { op_idx, from_dom, to_dom })
            .boxed()),
        (2, (usizes(), u8s()).map(|(path_idx, tok)| Op::Watch { path_idx, tok }).boxed()),
        (1, u8s().map(|tok| Op::Unwatch { tok }).boxed()),
        (2, (vecs((usizes(), u8s()), 0..4), usizes(), u8s())
            .map(|(writes, rm_idx, commit)| Op::TxnRun {
                writes,
                rm: if commit % 3 == 0 { Some(rm_idx) } else { None },
                commit: commit % 2 == 0,
            })
            .boxed()),
    ])
}

// ---------------------------------------------------------------------
// The equivalence property.
// ---------------------------------------------------------------------

#[test]
fn cow_store_matches_deep_copy_reference() {
    check(96, |g| {
        let ops = g.draw(&vecs(op_strategy(), 1..120));

        let costs = Rc::new(CostModel::calibrated());
        let clock_a = Clock::new();
        let clock_b = Clock::new();
        let mut xs = Xenstore::new(clock_a.clone(), costs.clone());
        let mut rf = RefStore::new(clock_b.clone(), costs);
        assert_eq!(xs.entry_count(), rf.entry_count);

        let all = paths();
        let dom_ids = doms();
        let clone_ops = [
            XsCloneOp::Basic,
            XsCloneOp::DevConsole,
            XsCloneOp::DevVif,
            XsCloneOp::Dev9pfs,
            XsCloneOp::DevVbd,
            XsCloneOp::DevVsock,
        ];

        for (step, op) in ops.into_iter().enumerate() {
            match op {
                Op::Write { path_idx, val } => {
                    let path = &all[path_idx % all.len()];
                    let dom = dom_ids[path_idx % dom_ids.len()];
                    let v = value_for(dom, val);
                    xs.write(DomId::DOM0, path, &v).unwrap();
                    rf.write(path, &v);
                }
                Op::Mkdir { path_idx } => {
                    let path = &all[path_idx % all.len()];
                    xs.mkdir(DomId::DOM0, path).unwrap();
                    rf.mkdir(path);
                }
                Op::Rm { path_idx } => {
                    let path = &all[path_idx % all.len()];
                    let a = xs.rm(DomId::DOM0, path).is_ok();
                    let b = rf.rm(path);
                    assert_eq!(a, b, "rm {path} at step {step}");
                }
                Op::Dir { path_idx } => {
                    let path = &all[path_idx % all.len()];
                    let a = xs.directory(DomId::DOM0, path).ok();
                    let b = rf.directory(path);
                    assert_eq!(a, b, "directory {path} at step {step}");
                }
                Op::Read { path_idx } => {
                    let path = &all[path_idx % all.len()];
                    let a = xs.read(DomId::DOM0, path).ok();
                    let b = rf.read(path);
                    assert_eq!(a, b, "read {path} at step {step}");
                }
                Op::Clone { op_idx, from_dom, to_dom } => {
                    let cop = clone_ops[op_idx % clone_ops.len()];
                    let p = dom_ids[from_dom % dom_ids.len()];
                    let c = dom_ids[to_dom % dom_ids.len()];
                    let from = format!("/local/domain/{p}/device/vif/0");
                    let to = format!("/local/domain/{c}/device/vif/0");
                    let a = xs
                        .xs_clone(DomId::DOM0, cop, DomId(p), DomId(c), &from, &to)
                        .is_ok();
                    let b = rf.xs_clone(cop, DomId(p), DomId(c), &from, &to);
                    assert_eq!(a, b, "xs_clone {from} -> {to} at step {step}");
                }
                Op::Watch { path_idx, tok } => {
                    let path = &all[path_idx % all.len()];
                    let token = format!("t{}", tok % 8);
                    xs.watch(DomId::DOM0, &token, path).unwrap();
                    rf.watch(DomId::DOM0, &token, path);
                }
                Op::Unwatch { tok } => {
                    let token = format!("t{}", tok % 8);
                    xs.unwatch(DomId::DOM0, &token);
                    rf.unwatch(DomId::DOM0, &token);
                }
                Op::TxnRun { writes, rm, commit } => {
                    let ta = xs.txn_start(DomId::DOM0);
                    let tb = rf.txn_start();
                    for (path_idx, val) in &writes {
                        let path = &all[path_idx % all.len()];
                        let dom = dom_ids[path_idx % dom_ids.len()];
                        let v = value_for(dom, *val);
                        xs.txn_write(DomId::DOM0, ta, path, &v).unwrap();
                        rf.txn_write(tb, path, &v);
                    }
                    if let Some(path_idx) = rm {
                        let path = &all[path_idx % all.len()];
                        xs.txn_rm(DomId::DOM0, ta, path).unwrap();
                        rf.txn_rm(tb, path);
                    }
                    if commit {
                        xs.txn_commit(DomId::DOM0, ta).unwrap();
                        rf.txn_commit(tb);
                    } else {
                        xs.txn_abort(ta).unwrap();
                        rf.txn_abort(tb);
                    }
                }
            }

            // After every op: identical watch events, counts and charges.
            assert_eq!(
                xs.drain_watch_events(),
                std::mem::take(&mut rf.fired),
                "watch events diverged at step {step}"
            );
            assert_eq!(
                xs.entry_count(),
                rf.entry_count,
                "entry counts diverged at step {step}"
            );
            assert_eq!(
                clock_a.now(),
                clock_b.now(),
                "virtual-time charges diverged at step {step}"
            );
        }

        // Final full-state comparison: every path and value agrees, the
        // persistent tree's cached accounting is consistent, and the
        // sharing split covers exactly the resident bytes.
        for (path, want) in rf.dump() {
            assert_eq!(
                xs.read(DomId::DOM0, &path).ok().as_ref(),
                Some(&want),
                "value at {path}"
            );
        }
        xs.audit_tree().unwrap();
        let sharing = xs.sharing();
        assert_eq!(
            sharing.shared_entry_bytes + sharing.unique_entry_bytes,
            xs.resident_bytes()
        );
    });
}

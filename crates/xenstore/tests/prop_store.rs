//! Property tests for the Xenstore tree: arbitrary operation sequences
//! must agree with a flat reference map, and the entry count must stay
//! consistent under writes, removals and `xs_clone` grafts.

use std::collections::BTreeMap;
use std::rc::Rc;

use testkit::prop::{btree_sets, check, lower_alpha_strings, u16s, u8s, usizes, vecs, weighted, Gen};

use sim_core::{Clock, CostModel, DomId};
use xenstore::{XsCloneOp, Xenstore};

#[derive(Debug, Clone)]
enum Op {
    Write { path_idx: usize, val: u8 },
    Rm { path_idx: usize },
    Dir { path_idx: usize },
}

/// A small closed set of paths keeps collisions (and thus interesting
/// overwrite/removal interactions) frequent.
fn paths() -> Vec<String> {
    let mut v = Vec::new();
    for a in ["x", "y"] {
        for b in ["1", "2", "3"] {
            for c in ["s", "t"] {
                v.push(format!("/tool/{a}/{b}/{c}"));
                v.push(format!("/tool/{a}/{b}"));
            }
        }
    }
    v
}

fn op_strategy() -> impl Gen<Value = Op> {
    weighted(vec![
        (3, (usizes(), u8s()).map(|(path_idx, val)| Op::Write { path_idx, val }).boxed()),
        (1, usizes().map(|path_idx| Op::Rm { path_idx }).boxed()),
        (1, usizes().map(|path_idx| Op::Dir { path_idx }).boxed()),
    ])
}

fn fresh() -> Xenstore {
    Xenstore::new(Clock::new(), Rc::new(CostModel::free()))
}

#[test]
fn store_matches_reference() {
    check(128, |g| {
        let ops = g.draw(&vecs(op_strategy(), 1..150));

        let mut xs = fresh();
        let all = paths();
        // Reference: path → value for explicitly written entries.
        let mut model: BTreeMap<String, String> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Write { path_idx, val } => {
                    let path = &all[path_idx % all.len()];
                    let v = format!("v{val}");
                    xs.write(DomId::DOM0, path, &v).unwrap();
                    model.insert(path.clone(), v);
                }
                Op::Rm { path_idx } => {
                    let path = &all[path_idx % all.len()];
                    let existed = xs.exists(path);
                    let r = xs.rm(DomId::DOM0, path);
                    assert_eq!(existed, r.is_ok());
                    // Removal takes the whole subtree with it.
                    let prefix = format!("{path}/");
                    model.retain(|p, _| p != path && !p.starts_with(&prefix));
                }
                Op::Dir { path_idx } => {
                    let path = &all[path_idx % all.len()];
                    if xs.exists(path) {
                        xs.directory(DomId::DOM0, path).unwrap();
                    }
                }
            }
        }

        for (path, val) in &model {
            assert_eq!(&xs.read(DomId::DOM0, path).unwrap(), val, "{}", path);
        }
    });
}

/// The cached entry count always matches a full recount implied by the
/// visible tree (checked via subtree removal returning to the base).
#[test]
fn entry_count_is_conserved() {
    check(128, |g| {
        let ops = g.draw(&vecs(op_strategy(), 1..100));

        let mut xs = fresh();
        let base = xs.entry_count();
        let all = paths();
        for op in ops {
            match op {
                Op::Write { path_idx, val } => {
                    let path = &all[path_idx % all.len()];
                    xs.write(DomId::DOM0, path, &format!("{val}")).unwrap();
                }
                Op::Rm { path_idx } => {
                    let _ = xs.rm(DomId::DOM0, &all[path_idx % all.len()]);
                }
                Op::Dir { .. } => {}
            }
        }
        // Removing the whole working subtree returns exactly to base+1
        // (the /tool directory itself remains).
        if xs.exists("/tool/x") {
            xs.rm(DomId::DOM0, "/tool/x").unwrap();
        }
        if xs.exists("/tool/y") {
            xs.rm(DomId::DOM0, "/tool/y").unwrap();
        }
        assert_eq!(xs.entry_count(), base);
    });
}

/// xs_clone grafts are exact copies modulo domid rewriting: cloning a
/// directory written with arbitrary entries yields the same child
/// structure, and re-cloning is idempotent in entry count.
#[test]
fn xs_clone_preserves_structure() {
    check(128, |g| {
        let keys = g.draw(&btree_sets(lower_alpha_strings(1..7), 1..10));
        let vals = g.draw(&vecs(u16s(), 10..11));

        let mut xs = fresh();
        let parent = DomId(3);
        let child = DomId(9);
        xs.introduce_domain(parent, None).unwrap();
        xs.introduce_domain(child, Some(parent)).unwrap();
        for (i, k) in keys.iter().enumerate() {
            xs.write(
                DomId::DOM0,
                &format!("/local/domain/3/device/vif/0/{k}"),
                &format!("{}", vals[i % vals.len()]),
            )
            .unwrap();
        }
        let before = xs.entry_count();
        xs.xs_clone(
            DomId::DOM0,
            XsCloneOp::DevVif,
            parent,
            child,
            "/local/domain/3/device/vif/0",
            "/local/domain/9/device/vif/0",
        )
        .unwrap();

        let mut src = xs.directory(DomId::DOM0, "/local/domain/3/device/vif/0").unwrap();
        let mut dst = xs.directory(DomId::DOM0, "/local/domain/9/device/vif/0").unwrap();
        src.sort();
        dst.sort();
        assert_eq!(&src, &dst);
        for k in &keys {
            let a = xs.read(DomId::DOM0, &format!("/local/domain/3/device/vif/0/{k}")).unwrap();
            let b = xs.read(DomId::DOM0, &format!("/local/domain/9/device/vif/0/{k}")).unwrap();
            // Values are numeric (never a domid path), so they are copied
            // verbatim by the rewrite heuristics... unless they collide
            // with the parent domid, which must be rewritten.
            if a == "3" {
                assert_eq!(&b, "9");
            } else {
                assert_eq!(&a, &b);
            }
        }

        // Re-cloning over the same destination does not change the count.
        let after_first = xs.entry_count();
        xs.xs_clone(
            DomId::DOM0,
            XsCloneOp::DevVif,
            parent,
            child,
            "/local/domain/3/device/vif/0",
            "/local/domain/9/device/vif/0",
        )
        .unwrap();
        assert_eq!(xs.entry_count(), after_first);
        assert!(after_first > before);
    });
}

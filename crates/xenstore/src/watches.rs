//! The watch registry: an indexed prefix map over interned path segments.
//!
//! Dispatching a write used to scan every registered watch
//! (`O(watches)` host work per request — the `write_with_1000_watches`
//! hot path). The registry instead interns watch-prefix segments and keys
//! a sorted map by the interned segment sequence, so a written path with
//! `d` segments needs only `d + 1` exact prefix lookups to find every
//! covering watch — independent of how many watches are registered.
//!
//! Determinism: watches carry monotonically increasing registration ids,
//! and [`Watches::matching`] returns hits in id (= registration) order —
//! exactly the order the old linear scan produced. The *virtual-time*
//! charge for watch matching is still computed from the total registered
//! count by the daemon, so the index changes host wall-clock only.

use std::collections::{BTreeMap, HashMap};

use sim_core::DomId;

/// Interned path-segment id.
type Seg = u32;

/// One registered watch.
#[derive(Debug, Clone)]
struct Watch {
    owner: DomId,
    token: String,
}

/// The indexed watch registry.
#[derive(Debug, Default)]
pub(crate) struct Watches {
    /// Segment interner: only watch prefixes allocate ids, so the table
    /// stays bounded by the registered-watch vocabulary.
    intern: HashMap<String, Seg>,
    /// Registration id -> watch, in registration order.
    entries: BTreeMap<u64, Watch>,
    /// Interned prefix -> registration ids (ascending by construction).
    index: BTreeMap<Box<[Seg]>, Vec<u64>>,
    next_id: u64,
}

fn components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty())
}

impl Watches {
    /// Registers a watch on `prefix` (trailing slashes already trimmed by
    /// the daemon). Duplicate registrations are kept, like the old list.
    pub fn register(&mut self, owner: DomId, token: &str, prefix: &str) {
        let next_seg = |intern: &mut HashMap<String, Seg>, c: &str| {
            if let Some(id) = intern.get(c) {
                *id
            } else {
                let id = intern.len() as Seg;
                intern.insert(c.to_string(), id);
                id
            }
        };
        let segs: Box<[Seg]> = components(prefix)
            .map(|c| next_seg(&mut self.intern, c))
            .collect();
        let id = self.next_id;
        self.next_id += 1;
        self.entries.insert(
            id,
            Watch {
                owner,
                token: token.to_string(),
            },
        );
        self.index.entry(segs).or_default().push(id);
    }

    /// Removes every watch registered by `owner` under `token`.
    pub fn unregister(&mut self, owner: DomId, token: &str) {
        self.retain(|w_owner, w_token| !(w_owner == owner && w_token == token));
    }

    /// Drops every watch owned by `owner` (domain destruction).
    pub fn forget_owner(&mut self, owner: DomId) {
        self.retain(|w_owner, _| w_owner != owner);
    }

    fn retain(&mut self, keep: impl Fn(DomId, &str) -> bool) {
        let dead: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, w)| !keep(w.owner, &w.token))
            .map(|(id, _)| *id)
            .collect();
        if dead.is_empty() {
            return;
        }
        for id in &dead {
            self.entries.remove(id);
        }
        self.index.retain(|_, ids| {
            ids.retain(|id| !dead.contains(id));
            !ids.is_empty()
        });
    }

    /// Number of registered watches.
    pub fn count(&self) -> usize {
        self.entries.len()
    }

    /// Tokens of every watch whose prefix covers `path`, in registration
    /// order. Touches only the `d + 1` prefixes of the written path.
    pub fn matching(&self, path: &str) -> Vec<String> {
        let mut segs: Vec<Seg> = Vec::new();
        let mut hits: Vec<u64> = Vec::new();
        // The empty prefix (a watch on "/") covers everything.
        if let Some(ids) = self.index.get(&segs[..] as &[Seg]) {
            hits.extend_from_slice(ids);
        }
        for c in components(path) {
            match self.intern.get(c) {
                // A segment no watch prefix ever used: no deeper prefix of
                // this path can be indexed either.
                None => break,
                Some(id) => segs.push(*id),
            }
            if let Some(ids) = self.index.get(&segs[..] as &[Seg]) {
                hits.extend_from_slice(ids);
            }
        }
        hits.sort_unstable();
        hits.iter().map(|id| self.entries[id].token.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_respects_prefix_semantics() {
        let mut w = Watches::default();
        w.register(DomId::DOM0, "a", "/local/domain/1");
        w.register(DomId::DOM0, "b", "/local/domain/1/device");
        w.register(DomId::DOM0, "c", "/local/domain/2");
        assert_eq!(w.matching("/local/domain/1/device/vif"), vec!["a", "b"]);
        assert_eq!(w.matching("/local/domain/1"), vec!["a"]);
        // "/local/domain/10" is NOT covered by a watch on "/local/domain/1".
        assert!(w.matching("/local/domain/10").is_empty());
        assert!(w.matching("/vm").is_empty());
    }

    #[test]
    fn root_watch_covers_everything() {
        let mut w = Watches::default();
        w.register(DomId::DOM0, "all", "/");
        assert_eq!(w.matching("/anything/at/all"), vec!["all"]);
    }

    #[test]
    fn hits_come_in_registration_order() {
        let mut w = Watches::default();
        w.register(DomId::DOM0, "deep", "/a/b");
        w.register(DomId::DOM0, "shallow", "/a");
        w.register(DomId::DOM0, "deep2", "/a/b");
        assert_eq!(w.matching("/a/b/c"), vec!["deep", "shallow", "deep2"]);
    }

    #[test]
    fn unregister_and_forget() {
        let mut w = Watches::default();
        w.register(DomId(1), "t", "/a");
        w.register(DomId(1), "t", "/b");
        w.register(DomId(1), "u", "/a");
        w.register(DomId(2), "t", "/a");
        assert_eq!(w.count(), 4);
        w.unregister(DomId(1), "t");
        assert_eq!(w.count(), 2);
        assert_eq!(w.matching("/a/x"), vec!["u", "t"]);
        w.forget_owner(DomId(1));
        assert_eq!(w.count(), 1);
        assert_eq!(w.matching("/a/x"), vec!["t"]);
    }
}

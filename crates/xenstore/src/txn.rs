//! Transactions: buffered operations plus an O(1) snapshot.
//!
//! A transaction buffers its writes/removals and applies them atomically
//! at commit against the *live* tree (so non-transactional writes that
//! interleave are preserved — the semantics the platform has always had).
//! Since the tree became persistent, `txn_start` additionally captures a
//! snapshot of the root: a single `Rc` clone, O(1) regardless of store
//! size, instead of the eager deep copy a mutable tree would force.
//! `txn_read` serves reads from that snapshot overlaid with the
//! transaction's own buffered operations, giving a consistent
//! repeatable-read view for free.

use crate::tree::Node;

/// A pending transaction.
#[derive(Debug)]
pub(crate) struct Txn {
    /// The root as of `txn_start` — an O(1) structurally-shared handle.
    pub snapshot: Node,
    /// Buffered operations, applied atomically at commit.
    pub ops: Vec<TxnOp>,
}

/// One buffered transaction operation.
#[derive(Debug, Clone)]
pub(crate) enum TxnOp {
    /// Write `value` at `path`.
    Write { path: String, value: String },
    /// Remove the subtree at `path`.
    Rm { path: String },
}

impl Txn {
    /// Opens a transaction over the given root snapshot.
    pub fn new(snapshot: Node) -> Self {
        Txn {
            snapshot,
            ops: Vec::new(),
        }
    }

    /// Resolves a read inside the transaction: the latest buffered write
    /// or removal affecting `path` wins; otherwise the snapshot answers.
    /// Returns `Some(Some(value))` for a hit, `Some(None)` for a buffered
    /// removal (path gone), `None` when the snapshot should be consulted.
    pub fn resolve(&self, path: &str) -> Option<Option<String>> {
        for op in self.ops.iter().rev() {
            match op {
                TxnOp::Write { path: p, value } => {
                    if p == path {
                        return Some(Some(value.clone()));
                    }
                    // A deeper buffered write implies `path` exists as a
                    // directory (intermediate nodes have no value).
                    if p.starts_with(path) && p.as_bytes().get(path.len()) == Some(&b'/') {
                        return Some(Some(String::new()));
                    }
                }
                TxnOp::Rm { path: p } => {
                    if path == p
                        || (path.starts_with(p.as_str())
                            && path.as_bytes().get(p.len()) == Some(&b'/'))
                    {
                        return Some(None);
                    }
                }
            }
        }
        None
    }
}

//! The Xenstore access log.
//!
//! `oxenstored` logs every incoming request to rotating access-log files.
//! Rotation stalls the daemon while files are shuffled, producing the
//! latency spikes visible in Fig. 4 of the paper (first reported by
//! LightVM). With `xs_clone`, far fewer requests are issued per clone, so
//! "access logging also drops significantly and the number of spikes drops
//! to only 2" over 1000 clones.

/// A rotating request log. Only bookkeeping is kept (line counts), not the
/// text itself — the simulation needs the *costs*, not the bytes.
#[derive(Debug)]
pub struct AccessLog {
    enabled: bool,
    rotate_every: u64,
    lines_in_current: u64,
    lines_total: u64,
    rotations: u64,
    /// Most recent few lines, kept for debugging/tests.
    tail: Vec<String>,
}

impl AccessLog {
    /// Maximum lines retained in the debug tail.
    const TAIL_KEEP: usize = 16;

    /// Creates a log that rotates every `rotate_every` lines.
    pub fn new(rotate_every: u64) -> Self {
        AccessLog {
            enabled: true,
            rotate_every: rotate_every.max(1),
            lines_in_current: 0,
            lines_total: 0,
            rotations: 0,
            tail: Vec::new(),
        }
    }

    /// Appends one request line; returns `true` if this append triggered a
    /// rotation (the caller charges the stall).
    pub fn append(&mut self, kind: &str, path: &str) -> bool {
        if !self.enabled {
            return false;
        }
        self.lines_total += 1;
        self.lines_in_current += 1;
        if self.tail.len() == Self::TAIL_KEEP {
            self.tail.remove(0);
        }
        self.tail.push(format!("{kind} {path}"));
        if self.lines_in_current >= self.rotate_every {
            self.lines_in_current = 0;
            self.rotations += 1;
            true
        } else {
            false
        }
    }

    /// Enables or disables logging.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Number of rotations performed.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Total lines ever appended.
    pub fn lines_total(&self) -> u64 {
        self.lines_total
    }

    /// The most recent lines (for debugging).
    pub fn tail(&self) -> &[String] {
        &self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_on_threshold() {
        let mut log = AccessLog::new(3);
        assert!(!log.append("write", "/a"));
        assert!(!log.append("write", "/b"));
        assert!(log.append("write", "/c"), "third line rotates");
        assert_eq!(log.rotations(), 1);
        assert!(!log.append("write", "/d"));
        assert_eq!(log.lines_total(), 4);
    }

    #[test]
    fn disabled_log_is_free() {
        let mut log = AccessLog::new(1);
        log.set_enabled(false);
        for _ in 0..10 {
            assert!(!log.append("write", "/x"));
        }
        assert_eq!(log.rotations(), 0);
        assert_eq!(log.lines_total(), 0);
    }

    #[test]
    fn tail_is_bounded() {
        let mut log = AccessLog::new(1000);
        for i in 0..100 {
            log.append("write", &format!("/k{i}"));
        }
        assert_eq!(log.tail().len(), AccessLog::TAIL_KEEP);
        assert_eq!(log.tail().last().unwrap(), "write /k99");
    }
}

//! A Xenstore-like hierarchical key-value registry.
//!
//! Xenstore is Xen's device registry: a small tree of string values with
//! per-node permissions, *watches* (prefix subscriptions with notification)
//! and transactions. The toolstack populates it during domain creation and
//! the split drivers negotiate through it.
//!
//! Nephele's additions (§5.2.1) are implemented faithfully:
//!
//! * [`Xenstore::introduce_domain`] accepts an optional parent id — clone
//!   introductions are initiated by `xencloned` and carry the parent;
//! * the new [`Xenstore::xs_clone`] request deep-copies a directory on the
//!   daemon side in a single request, rewriting domain-id references with
//!   per-device heuristics ([`XsCloneOp`], Figs. 2–3). This slashes the
//!   number of request round-trips, which is what makes cloning's
//!   instantiation growth so much flatter than boot's in Fig. 4;
//! * an access log with rotation; the rotation pauses the daemon and is the
//!   source of the latency spikes in Fig. 4 ("Xenstore logs every incoming
//!   request, just as reported by LightVM").

pub mod log;
pub mod tree;
mod txn;
mod watches;

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use sim_core::{Clock, CostModel, DomId, TraceSink};

use crate::log::AccessLog;
use crate::tree::{DomidRewrite, Node};
use crate::txn::{Txn, TxnOp};
use crate::watches::Watches;

/// Errors returned by Xenstore requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XsError {
    /// Path does not exist.
    NoEnt(String),
    /// Caller may not access the path.
    Denied(String),
    /// Malformed path.
    BadPath(String),
    /// Unknown transaction id.
    BadTxn(u32),
}

impl fmt::Display for XsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsError::NoEnt(p) => write!(f, "ENOENT: {p}"),
            XsError::Denied(p) => write!(f, "EACCES: {p}"),
            XsError::BadPath(p) => write!(f, "EINVAL: bad path {p}"),
            XsError::BadTxn(t) => write!(f, "EINVAL: bad transaction {t}"),
        }
    }
}

impl std::error::Error for XsError {}

/// Convenience alias for Xenstore results.
pub type Result<T> = std::result::Result<T, XsError>;

/// Heuristics applied by [`Xenstore::xs_clone`] (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XsCloneOp {
    /// Normal in-depth directory copy, no rewriting.
    Basic,
    /// Console device cloning.
    DevConsole,
    /// Network device cloning.
    DevVif,
    /// 9pfs device cloning.
    Dev9pfs,
    /// Block device cloning.
    DevVbd,
    /// Vsock device cloning.
    DevVsock,
}

/// A fired watch event awaiting dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// The token supplied at registration (identifies the subscriber).
    pub token: String,
    /// The path that changed.
    pub path: String,
}

/// The split of the modelled resident memory into structurally shared and
/// unique entry bytes (see [`Xenstore::sharing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct XsSharing {
    /// Bytes attributed to entries backed by a node the persistent tree
    /// shares between several paths (parent + clones).
    pub shared_entry_bytes: u64,
    /// Bytes attributed to entries with their own private node.
    pub unique_entry_bytes: u64,
    /// Distinct tree-node allocations actually resident.
    pub distinct_nodes: u64,
}

/// The Xenstore daemon.
#[derive(Debug)]
pub struct Xenstore {
    clock: Clock,
    costs: Rc<CostModel>,
    root: Node,
    watches: Watches,
    fired: Vec<WatchEvent>,
    txns: HashMap<u32, Txn>,
    next_txn: u32,
    access_log: AccessLog,
    /// Entries currently stored (cached; kept in sync with the tree).
    entry_count: u64,
    /// Approximate resident bytes per entry for the Dom0 memory accounting
    /// of Fig. 5 (the paper reports oxenstored growing to ~350 MB).
    resident_per_entry: u64,
    trace: TraceSink,
}

/// Static span-attribute name of an [`XsCloneOp`].
fn clone_op_name(op: XsCloneOp) -> &'static str {
    match op {
        XsCloneOp::Basic => "basic",
        XsCloneOp::DevConsole => "dev_console",
        XsCloneOp::DevVif => "dev_vif",
        XsCloneOp::Dev9pfs => "dev_9pfs",
        XsCloneOp::DevVbd => "dev_vbd",
        XsCloneOp::DevVsock => "dev_vsock",
    }
}

fn validate(path: &str) -> Result<()> {
    if !path.starts_with('/') || path.contains("//") || path.len() > 1024 {
        return Err(XsError::BadPath(path.to_string()));
    }
    // A trailing slash (except the root itself) would produce an empty
    // final segment that every tree lookup silently drops.
    if path.len() > 1 && path.ends_with('/') {
        return Err(XsError::BadPath(path.to_string()));
    }
    Ok(())
}

impl Xenstore {
    /// Creates an empty store with the standard top-level directories.
    pub fn new(clock: Clock, costs: Rc<CostModel>) -> Self {
        let mut xs = Xenstore {
            clock,
            costs,
            root: Node::dir(DomId::DOM0),
            watches: Watches::default(),
            fired: Vec::new(),
            txns: HashMap::new(),
            next_txn: 1,
            access_log: AccessLog::new(3000),
            entry_count: 0,
            resident_per_entry: 1024,
            trace: TraceSink::default(),
        };
        for dir in ["/tool", "/local", "/local/domain", "/vm", "/libxl"] {
            xs.mkdir_internal(DomId::DOM0, dir).expect("static dirs");
        }
        xs
    }

    /// Attaches a trace sink (disabled by default); request spans and
    /// rotation counters are recorded into it.
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The attached trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    // ------------------------------------------------------------------
    // Cost accounting
    // ------------------------------------------------------------------

    fn charge_request(&mut self, kind: &str, path: &str) {
        self.clock.advance(self.costs.xs_request_base);
        self.clock.advance(
            self.costs
                .xs_per_existing_entry
                .saturating_mul(self.entry_count),
        );
        let rotated = self.access_log.append(kind, path);
        self.clock.advance(self.costs.xs_access_log_append);
        if rotated {
            // Rotation stalls the daemon: the latency spikes of Fig. 4.
            let start = self.clock.now();
            let span = self.trace.span("xs.log_rotate");
            self.clock.advance(self.costs.xs_access_log_rotate);
            self.trace.count("xs.log_rotations", 1);
            drop(span);
            self.trace
                .record_ns("xs.log_rotate", self.clock.now().since(start).as_ns());
        }
    }

    /// Bumps the `xs.fail` counter for any error before returning it, so
    /// error outcomes show up in the trace next to the success counters.
    fn note_fail<T>(&self, r: Result<T>) -> Result<T> {
        if r.is_err() {
            self.trace.count("xs.fail", 1);
        }
        r
    }

    fn fire_watches(&mut self, path: &str) {
        // The modelled daemon matches every registered watch against the
        // written path, so the virtual-time charge scales with the total
        // watch count exactly as before. The *host-side* lookup uses the
        // prefix index and touches only the covering watches.
        self.clock.advance(
            self.costs
                .xs_watch_match
                .saturating_mul(self.watches.count() as u64),
        );
        for token in self.watches.matching(path) {
            self.clock.advance(self.costs.xs_watch_fire);
            self.fired.push(WatchEvent {
                token,
                path: path.to_string(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Permissions
    // ------------------------------------------------------------------

    fn may_write(&self, who: DomId, path: &str) -> bool {
        if who.is_dom0() {
            return true;
        }
        // Guests may only write below their own home directory.
        path.starts_with(&format!("/local/domain/{}/", who.0))
            || path == format!("/local/domain/{}", who.0)
    }

    // ------------------------------------------------------------------
    // Core requests
    // ------------------------------------------------------------------

    /// Reads the value at `path`.
    pub fn read(&mut self, who: DomId, path: &str) -> Result<String> {
        let r = self.read_impl(who, path);
        self.note_fail(r)
    }

    fn read_impl(&mut self, who: DomId, path: &str) -> Result<String> {
        validate(path)?;
        self.charge_request("read", path);
        let _ = who;
        match self.root.lookup(path) {
            Some(node) => Ok(node.value().unwrap_or_default()),
            None => Err(XsError::NoEnt(path.to_string())),
        }
    }

    /// Whether a path exists (no logging; used internally and by tests).
    pub fn exists(&self, path: &str) -> bool {
        self.root.lookup(path).is_some()
    }

    /// Introspection-only directory listing: child names without charging
    /// virtual time or logging an access. The auditor uses this to
    /// enumerate device nodes; the simulated machine must use
    /// [`Xenstore::directory`].
    pub fn peek_directory(&self, path: &str) -> Vec<String> {
        match self.root.lookup(path) {
            Some(node) => node.child_names().map(str::to_string).collect(),
            None => Vec::new(),
        }
    }

    /// Introspection-only value read: like [`Xenstore::read`] but without
    /// charging virtual time or logging an access. `None` for missing
    /// paths and value-less directories.
    pub fn peek(&self, path: &str) -> Option<String> {
        self.root.lookup(path).and_then(|node| node.value())
    }

    /// Introspection-only resident bytes of the entries under `path`
    /// (the node itself included), at the same logical per-entry cost as
    /// [`Xenstore::resident_bytes`]. No virtual time is charged; the
    /// family rollups use this to attribute `/local/domain/<id>` subtree
    /// bytes to clone families. 0 for missing paths.
    pub fn subtree_entry_bytes(&self, path: &str) -> u64 {
        match self.root.lookup(path) {
            Some(node) => node.entry_count() * self.resident_per_entry,
            None => 0,
        }
    }

    /// Writes `value` at `path`, creating intermediate directories, firing
    /// watches and charging the per-request costs.
    pub fn write(&mut self, who: DomId, path: &str, value: &str) -> Result<()> {
        let r = self.write_impl(who, path, value);
        self.note_fail(r)
    }

    fn write_impl(&mut self, who: DomId, path: &str, value: &str) -> Result<()> {
        validate(path)?;
        if !self.may_write(who, path) {
            return Err(XsError::Denied(path.to_string()));
        }
        self.charge_request("write", path);
        self.write_unlogged(who, path, value);
        self.fire_watches(path);
        Ok(())
    }

    fn write_unlogged(&mut self, who: DomId, path: &str, value: &str) {
        let created = self.root.insert(path, value, who);
        self.entry_count += created;
    }

    fn mkdir_internal(&mut self, who: DomId, path: &str) -> Result<()> {
        validate(path)?;
        let created = self.root.mkdir(path, who);
        self.entry_count += created;
        Ok(())
    }

    /// Creates a directory node.
    pub fn mkdir(&mut self, who: DomId, path: &str) -> Result<()> {
        let r = self.mkdir_impl(who, path);
        self.note_fail(r)
    }

    fn mkdir_impl(&mut self, who: DomId, path: &str) -> Result<()> {
        validate(path)?;
        if !self.may_write(who, path) {
            return Err(XsError::Denied(path.to_string()));
        }
        self.charge_request("mkdir", path);
        self.mkdir_internal(who, path)?;
        self.fire_watches(path);
        Ok(())
    }

    /// Removes `path` and everything beneath it.
    pub fn rm(&mut self, who: DomId, path: &str) -> Result<()> {
        let r = self.rm_impl(who, path);
        self.note_fail(r)
    }

    fn rm_impl(&mut self, who: DomId, path: &str) -> Result<()> {
        validate(path)?;
        if !self.may_write(who, path) {
            return Err(XsError::Denied(path.to_string()));
        }
        self.charge_request("rm", path);
        let removed = self
            .root
            .remove(path)
            .ok_or_else(|| XsError::NoEnt(path.to_string()))?;
        self.entry_count = self.entry_count.saturating_sub(removed);
        self.fire_watches(path);
        Ok(())
    }

    /// Lists the child names of a directory.
    pub fn directory(&mut self, who: DomId, path: &str) -> Result<Vec<String>> {
        let r = self.directory_impl(who, path);
        self.note_fail(r)
    }

    fn directory_impl(&mut self, who: DomId, path: &str) -> Result<Vec<String>> {
        validate(path)?;
        let _ = who;
        self.charge_request("directory", path);
        match self.root.lookup(path) {
            Some(node) => Ok(node.child_names().map(str::to_string).collect()),
            None => Err(XsError::NoEnt(path.to_string())),
        }
    }

    // ------------------------------------------------------------------
    // Watches
    // ------------------------------------------------------------------

    /// Registers a watch on `prefix`; changes at or below it queue a
    /// [`WatchEvent`] carrying `token`.
    pub fn watch(&mut self, who: DomId, token: &str, prefix: &str) -> Result<()> {
        validate(prefix)?;
        self.charge_request("watch", prefix);
        self.watches
            .register(who, token, prefix.trim_end_matches('/'));
        Ok(())
    }

    /// Removes a watch by owner and token.
    pub fn unwatch(&mut self, who: DomId, token: &str) {
        self.charge_request("unwatch", token);
        self.watches.unregister(who, token);
    }

    /// Drains queued watch events for platform dispatch.
    pub fn drain_watch_events(&mut self) -> Vec<WatchEvent> {
        std::mem::take(&mut self.fired)
    }

    /// Number of registered watches.
    pub fn watch_count(&self) -> usize {
        self.watches.count()
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Starts a transaction, returning its id. The transaction captures a
    /// snapshot of the store — an O(1) `Rc` clone of the persistent root,
    /// however many entries the store holds — which serves
    /// [`Xenstore::txn_read`] for the transaction's lifetime.
    pub fn txn_start(&mut self, who: DomId) -> u32 {
        let _ = who;
        self.clock.advance(self.costs.xs_transaction);
        let id = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(id, Txn::new(self.root.clone()));
        id
    }

    /// Reads `path` inside a transaction: buffered writes and removals of
    /// this transaction win, otherwise the `txn_start` snapshot answers —
    /// a repeatable-read view isolated from later non-transactional
    /// writes. Charged like a plain read.
    pub fn txn_read(&mut self, who: DomId, txn: u32, path: &str) -> Result<String> {
        let r = self.txn_read_impl(who, txn, path);
        self.note_fail(r)
    }

    fn txn_read_impl(&mut self, who: DomId, txn: u32, path: &str) -> Result<String> {
        validate(path)?;
        let _ = who;
        if !self.txns.contains_key(&txn) {
            return Err(XsError::BadTxn(txn));
        }
        self.charge_request("txn_read", path);
        let t = &self.txns[&txn];
        match t.resolve(path) {
            Some(Some(value)) => Ok(value),
            Some(None) => Err(XsError::NoEnt(path.to_string())),
            None => match t.snapshot.lookup(path) {
                Some(node) => Ok(node.value().unwrap_or_default()),
                None => Err(XsError::NoEnt(path.to_string())),
            },
        }
    }

    /// Buffers a write inside a transaction.
    pub fn txn_write(&mut self, who: DomId, txn: u32, path: &str, value: &str) -> Result<()> {
        let r = self.txn_write_impl(who, txn, path, value);
        self.note_fail(r)
    }

    fn txn_write_impl(&mut self, who: DomId, txn: u32, path: &str, value: &str) -> Result<()> {
        validate(path)?;
        if !self.may_write(who, path) {
            return Err(XsError::Denied(path.to_string()));
        }
        let t = self.txns.get_mut(&txn).ok_or(XsError::BadTxn(txn))?;
        t.ops.push(TxnOp::Write {
            path: path.to_string(),
            value: value.to_string(),
        });
        Ok(())
    }

    /// Buffers a removal inside a transaction.
    pub fn txn_rm(&mut self, who: DomId, txn: u32, path: &str) -> Result<()> {
        let r = self.txn_rm_impl(who, txn, path);
        self.note_fail(r)
    }

    fn txn_rm_impl(&mut self, who: DomId, txn: u32, path: &str) -> Result<()> {
        validate(path)?;
        if !self.may_write(who, path) {
            return Err(XsError::Denied(path.to_string()));
        }
        let t = self.txns.get_mut(&txn).ok_or(XsError::BadTxn(txn))?;
        t.ops.push(TxnOp::Rm {
            path: path.to_string(),
        });
        Ok(())
    }

    /// Commits a transaction: all buffered operations apply atomically,
    /// each charged as a request, with watches fired afterwards. Commit
    /// latency feeds the `xs.txn_commit` histogram.
    pub fn txn_commit(&mut self, who: DomId, txn: u32) -> Result<()> {
        let start = self.clock.now();
        let r = self.txn_commit_impl(who, txn);
        if r.is_ok() {
            self.trace
                .record_ns("xs.txn_commit", self.clock.now().since(start).as_ns());
        }
        self.note_fail(r)
    }

    fn txn_commit_impl(&mut self, who: DomId, txn: u32) -> Result<()> {
        let t = self.txns.remove(&txn).ok_or(XsError::BadTxn(txn))?;
        let span = self.trace.span("xs.txn_commit");
        span.attr("ops", t.ops.len());
        self.clock.advance(self.costs.xs_transaction);
        let mut touched = Vec::new();
        for op in t.ops {
            match op {
                TxnOp::Write { path, value } => {
                    self.charge_request("write", &path);
                    self.write_unlogged(who, &path, &value);
                    touched.push(path);
                }
                TxnOp::Rm { path } => {
                    self.charge_request("rm", &path);
                    if let Some(removed) = self.root.remove(&path) {
                        self.entry_count = self.entry_count.saturating_sub(removed);
                    }
                    touched.push(path);
                }
            }
        }
        for path in touched {
            self.fire_watches(&path);
        }
        Ok(())
    }

    /// Aborts a transaction, discarding buffered operations.
    pub fn txn_abort(&mut self, txn: u32) -> Result<()> {
        let r = self.txns.remove(&txn).map(|_| ()).ok_or(XsError::BadTxn(txn));
        self.note_fail(r)
    }

    // ------------------------------------------------------------------
    // Domain management
    // ------------------------------------------------------------------

    /// Introduces a domain to the store, creating its home directory. For
    /// clones, `parent` carries the parent domain id (the augmented
    /// introduction request of §5.2.1).
    pub fn introduce_domain(&mut self, domid: DomId, parent: Option<DomId>) -> Result<()> {
        let r = self.introduce_domain_impl(domid, parent);
        self.note_fail(r)
    }

    fn introduce_domain_impl(&mut self, domid: DomId, parent: Option<DomId>) -> Result<()> {
        self.clock.advance(self.costs.xs_introduce);
        self.charge_request("introduce", &format!("/local/domain/{}", domid.0));
        self.scrub_stale_backends(domid);
        let home = format!("/local/domain/{}", domid.0);
        self.mkdir_internal(DomId::DOM0, &home)?;
        if let Some(p) = parent {
            self.write_unlogged(DomId::DOM0, &format!("{home}/parent"), &p.0.to_string());
        }
        self.fire_watches(&home);
        Ok(())
    }

    /// Garbage-collects Dom0-side backend subtrees left behind by a
    /// *previous* owner of `domid`. Destruction deliberately leaves them
    /// in place (see [`Xenstore::forget_domain`]); now that the domid
    /// allocator reuses freed ids, a domain taking over an id must not
    /// inherit its predecessor's stale device nodes — the auditor's
    /// orphan sweep is scoped to live domains and would (rightly) flag
    /// them. Pure bookkeeping folded into the introduce request: no
    /// extra virtual time, no watch events, and a no-op for fresh ids,
    /// so figures that never destroy a domain are byte-identical.
    fn scrub_stale_backends(&mut self, domid: DomId) {
        for class in self.peek_directory("/local/domain/0/backend") {
            let path = format!("/local/domain/0/backend/{class}/{}", domid.0);
            if let Some(removed) = self.root.remove(&path) {
                self.entry_count = self.entry_count.saturating_sub(removed);
            }
        }
    }

    /// Removes a domain's subtree on destruction.
    pub fn forget_domain(&mut self, domid: DomId) {
        let home = format!("/local/domain/{}", domid.0);
        if self.exists(&home) {
            let _ = self.rm(DomId::DOM0, &home);
        }
        // NOTE: the Dom0-side backend entries
        // (`/local/domain/0/backend/<class>/<domid>`) are deliberately
        // left in place, mirroring the legacy toolstack teardown. Every
        // committed figure's virtual time depends on the store's entry
        // count (`xs_per_existing_entry`), so removing them here would
        // drift the determinism-gated CSVs; the device-bus auditor
        // scopes its orphan sweep to live domains accordingly.
        self.watches.forget_owner(domid);
    }

    // ------------------------------------------------------------------
    // xs_clone (Nephele)
    // ------------------------------------------------------------------

    /// Clones the directory at `parent_path` to `child_path` in a single
    /// request (§5.2.1, Fig. 2). Depending on `op`, values referencing the
    /// parent domain are rewritten to reference the child. Watches fire
    /// once for the cloned directory root rather than per entry.
    pub fn xs_clone(
        &mut self,
        who: DomId,
        op: XsCloneOp,
        parent_domid: DomId,
        child_domid: DomId,
        parent_path: &str,
        child_path: &str,
    ) -> Result<()> {
        let start = self.clock.now();
        let r = self.xs_clone_impl(who, op, parent_domid, child_domid, parent_path, child_path);
        if r.is_ok() {
            self.trace
                .record_ns("xs.xs_clone", self.clock.now().since(start).as_ns());
        }
        self.note_fail(r)
    }

    fn xs_clone_impl(
        &mut self,
        who: DomId,
        op: XsCloneOp,
        parent_domid: DomId,
        child_domid: DomId,
        parent_path: &str,
        child_path: &str,
    ) -> Result<()> {
        validate(parent_path)?;
        validate(child_path)?;
        if !who.is_dom0() {
            return Err(XsError::Denied(parent_path.to_string()));
        }
        let span = self.trace.span("xs.xs_clone");
        span.attr("op", clone_op_name(op));
        // One request round-trip for the entire directory.
        self.charge_request("xs_clone", parent_path);

        // O(path-depth) on the host: detach a structurally-shared handle to
        // the source subtree instead of deep-copying it. The *modelled*
        // daemon still walks every entry, so the virtual-time charge keeps
        // its per-entry term and the figure CSVs stay byte-identical.
        let src = self
            .root
            .lookup(parent_path)
            .ok_or_else(|| XsError::NoEnt(parent_path.to_string()))?
            .detach();
        let entries = src.count_entries();
        span.attr("entries", entries);
        self.clock
            .advance(self.costs.xs_clone_per_entry.saturating_mul(entries));

        // The domid rewrite is a lazy overlay: values are rewritten when
        // read through the clone, and a shared node is materialized only
        // when first written through.
        let rewritten = match op {
            XsCloneOp::Basic => src,
            XsCloneOp::DevConsole
            | XsCloneOp::DevVif
            | XsCloneOp::Dev9pfs
            | XsCloneOp::DevVbd
            | XsCloneOp::DevVsock => {
                src.with_rewrite(DomidRewrite {
                    old: parent_domid.0,
                    new: child_domid.0,
                })
            }
        };
        let delta = self.root.graft(child_path, rewritten, DomId::DOM0);
        self.entry_count = (self.entry_count as i64 + delta).max(0) as u64;
        self.fire_watches(child_path);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Introspection / accounting
    // ------------------------------------------------------------------

    /// Total entries in the store.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Modelled resident memory of the daemon in bytes (Fig. 5 Dom0 side).
    /// This is the *logical* accounting — one slot per entry — and is
    /// deliberately unchanged by structural sharing, so the Fig. 5 curves
    /// keep reproducing oxenstored's growth. See [`Xenstore::sharing`] for
    /// the shared/unique split.
    pub fn resident_bytes(&self) -> u64 {
        self.entry_count * self.resident_per_entry
    }

    /// Splits [`Xenstore::resident_bytes`] into structurally-shared and
    /// unique entry bytes. An entry is *shared* when the persistent tree
    /// backs it with a node reachable through more than one path — e.g.
    /// the subtree a clone still has in common with its parent; it moves
    /// to *unique* once either side diverges (writes through it). The two
    /// always sum to `resident_bytes()`. O(distinct nodes) on the host.
    pub fn sharing(&self) -> XsSharing {
        let stats = self.root.sharing();
        // The root node itself is not an "entry" (entry_count excludes
        // it), and it is always unique.
        let unique = stats.unique_logical.saturating_sub(1);
        XsSharing {
            shared_entry_bytes: stats.shared_logical * self.resident_per_entry,
            unique_entry_bytes: unique * self.resident_per_entry,
            distinct_nodes: stats.distinct_nodes,
        }
    }

    /// Cross-checks the persistent tree against its cached accounting:
    /// every per-node cached entry count, the daemon's cached
    /// `entry_count`, and the sharing walk's logical total must all
    /// agree. Used by the platform auditor.
    pub fn audit_tree(&self) -> std::result::Result<(), String> {
        self.root.verify_counts()?;
        let total = self.root.count_entries();
        if total != self.entry_count + 1 {
            return Err(format!(
                "cached entry_count {} != tree total {} - root",
                self.entry_count, total
            ));
        }
        let stats = self.root.sharing();
        if stats.logical_entries != total {
            return Err(format!(
                "sharing walk saw {} logical entries, tree counts {}",
                stats.logical_entries, total
            ));
        }
        Ok(())
    }

    /// Enables or disables access logging (the paper notes disabling it
    /// removes the spikes but not the baseline trend).
    pub fn set_access_logging(&mut self, on: bool) {
        self.access_log.set_enabled(on);
    }

    /// Number of log rotations so far (spike count in Fig. 4).
    pub fn log_rotations(&self) -> u64 {
        self.access_log.rotations()
    }

    /// Lines appended to the access log so far.
    pub fn log_lines(&self) -> u64 {
        self.access_log.lines_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xs() -> Xenstore {
        Xenstore::new(Clock::new(), Rc::new(CostModel::free()))
    }

    #[test]
    fn write_read_roundtrip() {
        let mut xs = xs();
        xs.write(DomId::DOM0, "/local/domain/1/name", "guest").unwrap();
        assert_eq!(xs.read(DomId::DOM0, "/local/domain/1/name").unwrap(), "guest");
    }

    #[test]
    fn read_missing_is_enoent() {
        let mut xs = xs();
        assert!(matches!(
            xs.read(DomId::DOM0, "/nope"),
            Err(XsError::NoEnt(_))
        ));
    }

    #[test]
    fn bad_paths_rejected() {
        let mut xs = xs();
        assert!(matches!(
            xs.write(DomId::DOM0, "relative", "x"),
            Err(XsError::BadPath(_))
        ));
        assert!(matches!(
            xs.write(DomId::DOM0, "/a//b", "x"),
            Err(XsError::BadPath(_))
        ));
        // Trailing slashes would leave an empty final segment that tree
        // lookups silently drop: reject them (except the root itself).
        assert!(matches!(
            xs.write(DomId::DOM0, "/local/domain/1/", "x"),
            Err(XsError::BadPath(_))
        ));
        assert!(matches!(
            xs.rm(DomId::DOM0, "/tool/"),
            Err(XsError::BadPath(_))
        ));
        assert!(matches!(
            xs.watch(DomId::DOM0, "t", "/tool/"),
            Err(XsError::BadPath(_))
        ));
        // The root path "/" is still fine (e.g. a watch on everything).
        xs.watch(DomId::DOM0, "all", "/").unwrap();
        xs.write(DomId::DOM0, "/tool/x", "1").unwrap();
        assert_eq!(xs.drain_watch_events().len(), 1);
    }

    #[test]
    fn guest_confined_to_home_directory() {
        let mut xs = xs();
        let guest = DomId(7);
        assert!(matches!(
            xs.write(guest, "/local/domain/8/attack", "x"),
            Err(XsError::Denied(_))
        ));
        xs.write(guest, "/local/domain/7/data", "ok").unwrap();
    }

    #[test]
    fn directory_lists_children() {
        let mut xs = xs();
        xs.write(DomId::DOM0, "/local/domain/1/device/vif/0/mac", "aa").unwrap();
        xs.write(DomId::DOM0, "/local/domain/1/device/vif/0/state", "4").unwrap();
        let mut kids = xs.directory(DomId::DOM0, "/local/domain/1/device/vif/0").unwrap();
        kids.sort();
        assert_eq!(kids, vec!["mac", "state"]);
    }

    #[test]
    fn rm_removes_subtree_and_updates_count() {
        let mut xs = xs();
        let base = xs.entry_count();
        xs.write(DomId::DOM0, "/local/domain/1/a/b", "x").unwrap();
        xs.write(DomId::DOM0, "/local/domain/1/a/c", "y").unwrap();
        assert!(xs.entry_count() > base);
        xs.rm(DomId::DOM0, "/local/domain/1").unwrap();
        assert_eq!(xs.entry_count(), base);
        assert!(!xs.exists("/local/domain/1"));
    }

    #[test]
    fn watches_fire_on_prefix() {
        let mut xs = xs();
        xs.watch(DomId::DOM0, "netback", "/local/domain/0/backend/vif").unwrap();
        xs.write(DomId::DOM0, "/local/domain/0/backend/vif/3/0/state", "1").unwrap();
        xs.write(DomId::DOM0, "/local/domain/3/device/vif/0/state", "1").unwrap();
        let evts = xs.drain_watch_events();
        assert_eq!(evts.len(), 1);
        assert_eq!(evts[0].token, "netback");
        assert!(xs.drain_watch_events().is_empty());
    }

    #[test]
    fn unwatch_silences() {
        let mut xs = xs();
        xs.watch(DomId::DOM0, "t", "/tool").unwrap();
        xs.unwatch(DomId::DOM0, "t");
        xs.write(DomId::DOM0, "/tool/x", "1").unwrap();
        assert!(xs.drain_watch_events().is_empty());
    }

    #[test]
    fn transactions_apply_atomically() {
        let mut xs = xs();
        let t = xs.txn_start(DomId::DOM0);
        xs.txn_write(DomId::DOM0, t, "/local/domain/2/a", "1").unwrap();
        xs.txn_write(DomId::DOM0, t, "/local/domain/2/b", "2").unwrap();
        assert!(!xs.exists("/local/domain/2/a"), "not visible before commit");
        xs.txn_commit(DomId::DOM0, t).unwrap();
        assert_eq!(xs.read(DomId::DOM0, "/local/domain/2/a").unwrap(), "1");
        assert_eq!(xs.read(DomId::DOM0, "/local/domain/2/b").unwrap(), "2");
        assert!(matches!(xs.txn_commit(DomId::DOM0, t), Err(XsError::BadTxn(_))));
    }

    #[test]
    fn txn_abort_discards() {
        let mut xs = xs();
        let t = xs.txn_start(DomId::DOM0);
        xs.txn_write(DomId::DOM0, t, "/local/domain/2/a", "1").unwrap();
        xs.txn_abort(t).unwrap();
        assert!(!xs.exists("/local/domain/2/a"));
    }

    #[test]
    fn introduce_records_parent() {
        let mut xs = xs();
        xs.introduce_domain(DomId(9), Some(DomId(4))).unwrap();
        assert_eq!(xs.read(DomId::DOM0, "/local/domain/9/parent").unwrap(), "4");
    }

    #[test]
    fn forget_domain_clears_state() {
        let mut xs = xs();
        xs.introduce_domain(DomId(9), None).unwrap();
        xs.watch(DomId(9), "w", "/local/domain/9").unwrap();
        xs.forget_domain(DomId(9));
        assert!(!xs.exists("/local/domain/9"));
        assert_eq!(xs.watch_count(), 0);
    }

    #[test]
    fn xs_clone_copies_and_rewrites() {
        let mut xs = xs();
        let p = DomId(3);
        let c = DomId(8);
        xs.write(DomId::DOM0, "/local/domain/3/device/vif/0/backend",
                 "/local/domain/0/backend/vif/3/0").unwrap();
        xs.write(DomId::DOM0, "/local/domain/3/device/vif/0/backend-id", "0").unwrap();
        xs.write(DomId::DOM0, "/local/domain/3/device/vif/0/mac", "00:16:3e:01:02:03").unwrap();
        xs.write(DomId::DOM0, "/local/domain/3/device/vif/0/state", "4").unwrap();

        xs.xs_clone(
            DomId::DOM0,
            XsCloneOp::DevVif,
            p,
            c,
            "/local/domain/3/device/vif/0",
            "/local/domain/8/device/vif/0",
        )
        .unwrap();

        assert_eq!(
            xs.read(DomId::DOM0, "/local/domain/8/device/vif/0/backend").unwrap(),
            "/local/domain/0/backend/vif/8/0",
            "domid reference rewritten"
        );
        // MAC is identical by design (transparent cloning, §5.2.1).
        assert_eq!(
            xs.read(DomId::DOM0, "/local/domain/8/device/vif/0/mac").unwrap(),
            "00:16:3e:01:02:03"
        );
        assert_eq!(
            xs.read(DomId::DOM0, "/local/domain/8/device/vif/0/state").unwrap(),
            "4"
        );
        // The parent's entries are untouched.
        assert_eq!(
            xs.read(DomId::DOM0, "/local/domain/3/device/vif/0/backend").unwrap(),
            "/local/domain/0/backend/vif/3/0"
        );
    }

    #[test]
    fn xs_clone_basic_does_not_rewrite() {
        let mut xs = xs();
        xs.write(DomId::DOM0, "/local/domain/3/data/ref", "/local/domain/3/x").unwrap();
        xs.xs_clone(
            DomId::DOM0,
            XsCloneOp::Basic,
            DomId(3),
            DomId(8),
            "/local/domain/3/data",
            "/local/domain/8/data",
        )
        .unwrap();
        assert_eq!(
            xs.read(DomId::DOM0, "/local/domain/8/data/ref").unwrap(),
            "/local/domain/3/x"
        );
    }

    #[test]
    fn xs_clone_requires_dom0() {
        let mut xs = xs();
        xs.write(DomId::DOM0, "/local/domain/3/data/x", "1").unwrap();
        assert!(matches!(
            xs.xs_clone(
                DomId(3),
                XsCloneOp::Basic,
                DomId(3),
                DomId(8),
                "/local/domain/3/data",
                "/local/domain/8/data",
            ),
            Err(XsError::Denied(_))
        ));
    }

    #[test]
    fn xs_clone_fires_single_watch() {
        let mut xs = xs();
        xs.write(DomId::DOM0, "/local/domain/3/device/vif/0/state", "4").unwrap();
        xs.write(DomId::DOM0, "/local/domain/3/device/vif/0/mac", "aa").unwrap();
        xs.watch(DomId::DOM0, "front", "/local/domain/8").unwrap();
        xs.xs_clone(
            DomId::DOM0,
            XsCloneOp::DevVif,
            DomId(3),
            DomId(8),
            "/local/domain/3/device/vif/0",
            "/local/domain/8/device/vif/0",
        )
        .unwrap();
        assert_eq!(xs.drain_watch_events().len(), 1, "one event for the whole dir");
    }

    #[test]
    fn request_cost_scales_with_store_size() {
        let clock = Clock::new();
        let mut xs = Xenstore::new(clock.clone(), Rc::new(CostModel::calibrated()));
        // Populate the store.
        for i in 0..500 {
            xs.write(DomId::DOM0, &format!("/tool/pad/{i}"), "x").unwrap();
        }
        let t0 = clock.now();
        xs.write(DomId::DOM0, "/tool/probe1", "x").unwrap();
        let small = clock.now().since(t0);
        for i in 500..5000 {
            xs.write(DomId::DOM0, &format!("/tool/pad/{i}"), "x").unwrap();
        }
        let t1 = clock.now();
        xs.write(DomId::DOM0, "/tool/probe2", "x").unwrap();
        let big = clock.now().since(t1);
        assert!(big > small, "cost must grow with entry count");
    }

    #[test]
    fn access_log_rotation_spikes() {
        let clock = Clock::new();
        let mut xs = Xenstore::new(clock.clone(), Rc::new(CostModel::calibrated()));
        let rotate_cost = CostModel::calibrated().xs_access_log_rotate;
        let mut spikes = 0;
        for i in 0..7000u32 {
            let t0 = clock.now();
            xs.write(DomId::DOM0, &format!("/tool/k{}", i % 64), "v").unwrap();
            if clock.now().since(t0) >= rotate_cost {
                spikes += 1;
            }
        }
        assert_eq!(spikes as u64, xs.log_rotations());
        assert!(spikes >= 2, "rotation threshold crossed at least twice");
    }

    #[test]
    fn disabling_logging_stops_rotation() {
        let mut xs = xs();
        xs.set_access_logging(false);
        for i in 0..10_000u32 {
            xs.write(DomId::DOM0, &format!("/tool/k{}", i % 64), "v").unwrap();
        }
        assert_eq!(xs.log_rotations(), 0);
    }

    #[test]
    fn resident_bytes_track_entries() {
        let mut xs = xs();
        let before = xs.resident_bytes();
        xs.write(DomId::DOM0, "/tool/a", "1").unwrap();
        assert!(xs.resident_bytes() > before);
    }

    #[test]
    fn txn_read_sees_snapshot_plus_own_writes() {
        let mut xs = xs();
        xs.write(DomId::DOM0, "/local/domain/2/a", "old").unwrap();
        xs.write(DomId::DOM0, "/local/domain/2/b", "keep").unwrap();
        let t = xs.txn_start(DomId::DOM0);
        // A non-transactional write after txn_start is invisible inside.
        xs.write(DomId::DOM0, "/local/domain/2/a", "racing").unwrap();
        assert_eq!(xs.txn_read(DomId::DOM0, t, "/local/domain/2/a").unwrap(), "old");
        // The transaction's own buffered ops win over the snapshot.
        xs.txn_write(DomId::DOM0, t, "/local/domain/2/a", "mine").unwrap();
        assert_eq!(xs.txn_read(DomId::DOM0, t, "/local/domain/2/a").unwrap(), "mine");
        xs.txn_rm(DomId::DOM0, t, "/local/domain/2/b").unwrap();
        assert!(matches!(
            xs.txn_read(DomId::DOM0, t, "/local/domain/2/b"),
            Err(XsError::NoEnt(_))
        ));
        xs.txn_abort(t).unwrap();
        assert!(matches!(
            xs.txn_read(DomId::DOM0, t, "/local/domain/2/a"),
            Err(XsError::BadTxn(_))
        ));
        // Outside the transaction the racing write was preserved.
        assert_eq!(xs.read(DomId::DOM0, "/local/domain/2/a").unwrap(), "racing");
    }

    #[test]
    fn sharing_splits_resident_bytes() {
        let mut xs = xs();
        for i in 0..16 {
            xs.write(DomId::DOM0, &format!("/local/domain/3/data/k{i}"), "v")
                .unwrap();
        }
        let before = xs.sharing();
        assert_eq!(before.shared_entry_bytes, 0, "nothing cloned yet");
        assert_eq!(
            before.shared_entry_bytes + before.unique_entry_bytes,
            xs.resident_bytes()
        );

        xs.xs_clone(
            DomId::DOM0,
            XsCloneOp::Basic,
            DomId(3),
            DomId(9),
            "/local/domain/3/data",
            "/local/domain/9/data",
        )
        .unwrap();
        let cloned = xs.sharing();
        assert!(cloned.shared_entry_bytes > 0, "clone shares its subtree");
        assert_eq!(
            cloned.shared_entry_bytes + cloned.unique_entry_bytes,
            xs.resident_bytes()
        );

        // Diverging the clone moves bytes from shared to unique.
        xs.write(DomId::DOM0, "/local/domain/9/data/k0", "w").unwrap();
        let diverged = xs.sharing();
        assert!(diverged.shared_entry_bytes < cloned.shared_entry_bytes);
        assert!(diverged.unique_entry_bytes > cloned.unique_entry_bytes);
        assert_eq!(
            diverged.shared_entry_bytes + diverged.unique_entry_bytes,
            xs.resident_bytes()
        );
        xs.audit_tree().unwrap();
    }

    #[test]
    fn clone_of_clone_stacks_lazy_rewrites() {
        let mut xs = xs();
        xs.write(
            DomId::DOM0,
            "/local/domain/3/device/vif/0/frontend",
            "/local/domain/3/device/vif/0",
        )
        .unwrap();
        xs.xs_clone(
            DomId::DOM0,
            XsCloneOp::DevVif,
            DomId(3),
            DomId(8),
            "/local/domain/3/device/vif/0",
            "/local/domain/8/device/vif/0",
        )
        .unwrap();
        // Clone the (still lazily-rewritten) clone.
        xs.xs_clone(
            DomId::DOM0,
            XsCloneOp::DevVif,
            DomId(8),
            DomId(12),
            "/local/domain/8/device/vif/0",
            "/local/domain/12/device/vif/0",
        )
        .unwrap();
        assert_eq!(
            xs.read(DomId::DOM0, "/local/domain/12/device/vif/0/frontend").unwrap(),
            "/local/domain/12/device/vif/0"
        );
        assert_eq!(
            xs.read(DomId::DOM0, "/local/domain/8/device/vif/0/frontend").unwrap(),
            "/local/domain/8/device/vif/0"
        );
        xs.audit_tree().unwrap();
    }
}

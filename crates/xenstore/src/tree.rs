//! The Xenstore node tree.

use std::collections::BTreeMap;

use sim_core::DomId;

/// A tree node: an optional value plus named children.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's value (directories typically have none).
    pub value: Option<String>,
    /// Child nodes by name (ordered for deterministic iteration).
    pub children: BTreeMap<String, Node>,
    /// Owning domain (permission bookkeeping).
    pub owner: DomId,
}

fn components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty())
}

impl Node {
    /// Creates an empty directory node owned by `owner`.
    pub fn dir(owner: DomId) -> Self {
        Node {
            value: None,
            children: BTreeMap::new(),
            owner,
        }
    }

    /// Looks up the node at `path` relative to this node.
    pub fn get(&self, path: &str) -> Option<&Node> {
        let mut cur = self;
        for c in components(path) {
            cur = cur.children.get(c)?;
        }
        Some(cur)
    }

    /// Inserts `value` at `path`, creating intermediate directories.
    /// Returns the number of *new* entries created (0 for an overwrite).
    pub fn insert(&mut self, path: &str, value: &str, owner: DomId) -> u64 {
        let mut created = 0;
        let mut cur = self;
        for c in components(path) {
            if !cur.children.contains_key(c) {
                created += 1;
                cur.children.insert(c.to_string(), Node::dir(owner));
            }
            cur = cur.children.get_mut(c).expect("just inserted");
        }
        cur.value = Some(value.to_string());
        created
    }

    /// Creates a directory at `path`; returns new entries created.
    pub fn mkdir(&mut self, path: &str, owner: DomId) -> u64 {
        let mut created = 0;
        let mut cur = self;
        for c in components(path) {
            if !cur.children.contains_key(c) {
                created += 1;
                cur.children.insert(c.to_string(), Node::dir(owner));
            }
            cur = cur.children.get_mut(c).expect("just inserted");
        }
        created
    }

    /// Removes the subtree at `path`; returns the number of entries removed
    /// or `None` if the path does not exist.
    pub fn remove(&mut self, path: &str) -> Option<u64> {
        let comps: Vec<&str> = components(path).collect();
        let (last, dirs) = comps.split_last()?;
        let mut cur = self;
        for c in dirs {
            cur = cur.children.get_mut(*c)?;
        }
        let removed = cur.children.remove(*last)?;
        Some(removed.count_entries())
    }

    /// Counts entries in this subtree (each node counts as one entry).
    pub fn count_entries(&self) -> u64 {
        1 + self.children.values().map(Node::count_entries).sum::<u64>()
    }

    /// Grafts `subtree` at `path` (replacing anything there); returns the
    /// net number of entries added.
    pub fn graft(&mut self, path: &str, subtree: Node, owner: DomId) -> u64 {
        let added = subtree.count_entries();
        let removed = self.remove(path).unwrap_or(0);
        let comps: Vec<&str> = components(path).collect();
        let Some((last, dirs)) = comps.split_last() else {
            return 0;
        };
        let mut created = 0;
        let mut cur = self;
        for c in dirs {
            if !cur.children.contains_key(*c) {
                created += 1;
                cur.children.insert(c.to_string(), Node::dir(owner));
            }
            cur = cur.children.get_mut(*c).expect("just inserted");
        }
        cur.children.insert(last.to_string(), subtree);
        created + added - removed
    }

    /// Rewrites domain-id references from `old` to `new` in every value of
    /// this subtree: path components `/local/domain/<old>/` (and the
    /// trailing-id form used by backend paths, e.g.
    /// `/backend/vif/<old>/0`), plus values that are exactly `<old>`.
    /// These are the heuristics behind the device variants of `xs_clone`.
    pub fn rewrite_domid(&mut self, old: u32, new: u32) {
        let old_home = format!("/local/domain/{old}/");
        let new_home = format!("/local/domain/{new}/");
        let old_home_end = format!("/local/domain/{old}");
        let new_home_end = format!("/local/domain/{new}");
        let old_id = old.to_string();
        let new_id = new.to_string();
        self.visit_values(&mut |v| {
            if v == &old_id {
                *v = new_id.clone();
                return;
            }
            if v.contains(&old_home) {
                *v = v.replace(&old_home, &new_home);
            } else if v.ends_with(&old_home_end) {
                *v = format!("{}{}", &v[..v.len() - old_home_end.len()], new_home_end);
            }
            // Backend-style paths embed the frontend domid as a component:
            // /local/domain/0/backend/vif/<old>/0.
            let seg_old = format!("/{old_id}/");
            let seg_new = format!("/{new_id}/");
            if v.starts_with("/local/domain/0/backend/") && v.contains(&seg_old) {
                *v = v.replacen(&seg_old, &seg_new, 1);
            }
        });
    }

    fn visit_values(&mut self, f: &mut impl FnMut(&mut String)) {
        if let Some(v) = self.value.as_mut() {
            f(v);
        }
        for child in self.children.values_mut() {
            child.visit_values(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> Node {
        Node::dir(DomId::DOM0)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut r = root();
        assert_eq!(r.insert("/a/b/c", "v", DomId::DOM0), 3);
        assert_eq!(r.get("/a/b/c").unwrap().value.as_deref(), Some("v"));
        assert_eq!(r.insert("/a/b/c", "w", DomId::DOM0), 0, "overwrite creates nothing");
        assert_eq!(r.get("/a/b/c").unwrap().value.as_deref(), Some("w"));
    }

    #[test]
    fn count_and_remove() {
        let mut r = root();
        r.insert("/a/b", "1", DomId::DOM0);
        r.insert("/a/c", "2", DomId::DOM0);
        assert_eq!(r.get("/a").unwrap().count_entries(), 3);
        assert_eq!(r.remove("/a"), Some(3));
        assert_eq!(r.remove("/a"), None);
    }

    #[test]
    fn graft_accounts_net_entries() {
        let mut r = root();
        r.insert("/src/x", "1", DomId::DOM0);
        let sub = r.get("/src").unwrap().clone();
        let added = r.graft("/dst/here", sub, DomId::DOM0);
        // subtree has 2 entries, plus 1 intermediate dir "dst".
        assert_eq!(added, 3);
        assert_eq!(r.get("/dst/here/x").unwrap().value.as_deref(), Some("1"));
    }

    #[test]
    fn rewrite_domid_forms() {
        let mut r = root();
        r.insert("/d/backend", "/local/domain/0/backend/vif/3/0", DomId::DOM0);
        r.insert("/d/frontend", "/local/domain/3/device/vif/0", DomId::DOM0);
        r.insert("/d/frontend-id", "3", DomId::DOM0);
        r.insert("/d/home", "/local/domain/3", DomId::DOM0);
        r.insert("/d/mac", "00:16:3e:00:00:03", DomId::DOM0);
        let mut d = r.get("/d").unwrap().clone();
        d.rewrite_domid(3, 9);
        assert_eq!(
            d.get("/backend").unwrap().value.as_deref(),
            Some("/local/domain/0/backend/vif/9/0")
        );
        assert_eq!(
            d.get("/frontend").unwrap().value.as_deref(),
            Some("/local/domain/9/device/vif/0")
        );
        assert_eq!(d.get("/frontend-id").unwrap().value.as_deref(), Some("9"));
        assert_eq!(d.get("/home").unwrap().value.as_deref(), Some("/local/domain/9"));
        // MAC addresses stay untouched even though they contain "3".
        assert_eq!(d.get("/mac").unwrap().value.as_deref(), Some("00:16:3e:00:00:03"));
    }
}

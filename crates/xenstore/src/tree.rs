//! The Xenstore node tree — persistent and structurally shared.
//!
//! Nodes are immutable [`Rc<NodeData>`] cells; every mutation path-copies
//! only the ancestors of the touched node (`Rc::make_mut`), so untouched
//! subtrees stay shared between the live tree, `xs_clone` grafts and
//! transaction snapshots. Consequences:
//!
//! * [`Node::clone`] (and thus a transaction snapshot) is O(1);
//! * grafting a subtree ([`Node::graft`]) is O(path-depth), not O(subtree);
//! * per-node cached entry counts make [`Node::count_entries`] and the
//!   add/remove accounting of `graft`/`remove` O(1) per level.
//!
//! The domain-id rewriting performed by the device variants of `xs_clone`
//! is *lazy*: a grafted handle carries a [`DomidRewrite`] overlay that
//! applies to every value in its subtree. Reads apply the overlay on the
//! fly; the overlay is pushed one level down (and the node privatized)
//! only when a shared node is first written through
//! (`Node::materialize_level`). Overlays stack, so cloning a clone
//! before either diverges stays O(path-depth) too.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use sim_core::DomId;

/// A pending domain-id rewrite over a whole subtree.
///
/// Encodes the per-device heuristics of `xs_clone` (Fig. 3 of the paper):
/// path components `/local/domain/<old>/` (and the trailing-id form), the
/// frontend-domid component of backend paths, and values that are exactly
/// `<old>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomidRewrite {
    /// Domain id to rewrite away (the clone's parent).
    pub old: u32,
    /// Replacement domain id (the clone).
    pub new: u32,
}

impl DomidRewrite {
    /// Applies the rewrite to one value, returning the (possibly
    /// unchanged) result. Must match the eager `rewrite_domid` heuristics
    /// bit for bit: values equal to the bare id are replaced outright and
    /// skip the path heuristics.
    pub fn apply(&self, v: &str) -> String {
        let old_id = self.old.to_string();
        let new_id = self.new.to_string();
        if v == old_id {
            return new_id;
        }
        let old_home = format!("/local/domain/{}/", self.old);
        let new_home = format!("/local/domain/{}/", self.new);
        let old_home_end = format!("/local/domain/{}", self.old);
        let new_home_end = format!("/local/domain/{}", self.new);
        let mut out = v.to_string();
        if out.contains(&old_home) {
            out = out.replace(&old_home, &new_home);
        } else if out.ends_with(&old_home_end) {
            out = format!("{}{}", &out[..out.len() - old_home_end.len()], new_home_end);
        }
        // Backend-style paths embed the frontend domid as a component:
        // /local/domain/0/backend/vif/<old>/0.
        let seg_old = format!("/{old_id}/");
        let seg_new = format!("/{new_id}/");
        if out.starts_with("/local/domain/0/backend/") && out.contains(&seg_old) {
            out = out.replacen(&seg_old, &seg_new, 1);
        }
        out
    }
}

/// The shared payload of a tree node.
#[derive(Debug, Clone)]
struct NodeData {
    /// The node's value (directories typically have none).
    value: Option<String>,
    /// Child handles by name (ordered for deterministic iteration).
    children: BTreeMap<String, Node>,
    /// Owning domain (permission bookkeeping).
    owner: DomId,
    /// Cached number of entries in this subtree, this node included.
    entries: u64,
}

/// A handle to a (possibly shared) subtree, plus the rewrite overlay
/// pending over it. `Clone` is O(1): it bumps the refcount and copies the
/// (almost always empty) overlay vector.
#[derive(Debug, Clone)]
pub struct Node {
    data: Rc<NodeData>,
    /// Rewrites pending over this subtree, in application order
    /// (innermost graft first).
    rewrites: Vec<DomidRewrite>,
}

fn components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty())
}

/// An immutable view of the node at some path, with the rewrite overlays
/// accumulated along the way already resolved.
pub struct NodeRef<'a> {
    node: &'a Node,
    rewrites: Vec<DomidRewrite>,
}

impl NodeRef<'_> {
    /// The node's value with all pending rewrites applied.
    pub fn value(&self) -> Option<String> {
        self.node.data.value.as_ref().map(|v| {
            let mut s = v.clone();
            for r in &self.rewrites {
                s = r.apply(&s);
            }
            s
        })
    }

    /// Child names, in deterministic (sorted) order. Rewrites only ever
    /// touch values, never names.
    pub fn child_names(&self) -> impl Iterator<Item = &str> {
        self.node.data.children.keys().map(String::as_str)
    }

    /// Entries in this subtree (cached, O(1)).
    pub fn entry_count(&self) -> u64 {
        self.node.data.entries
    }

    /// Owning domain.
    pub fn owner(&self) -> DomId {
        self.node.data.owner
    }

    /// Detaches an owning handle to this subtree: an O(1) `Rc` clone
    /// carrying the effective overlay, suitable for grafting elsewhere.
    pub fn detach(&self) -> Node {
        Node {
            data: Rc::clone(&self.node.data),
            rewrites: self.rewrites.clone(),
        }
    }
}

/// Structural-sharing statistics for a tree (see [`Node::sharing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharingStats {
    /// Logical entries: every node counted once per path it is reachable
    /// through. Always equals [`Node::count_entries`].
    pub logical_entries: u64,
    /// Distinct `NodeData` allocations actually resident.
    pub distinct_nodes: u64,
    /// Logical entries backed by a node reachable through more than one
    /// path (i.e. deduplicated by structural sharing).
    pub shared_logical: u64,
    /// Logical entries backed by a singly-referenced node.
    pub unique_logical: u64,
}

impl Node {
    /// Creates an empty directory node owned by `owner`.
    pub fn dir(owner: DomId) -> Self {
        Node {
            data: Rc::new(NodeData {
                value: None,
                children: BTreeMap::new(),
                owner,
                entries: 1,
            }),
            rewrites: Vec::new(),
        }
    }

    /// Pushes a rewrite onto this handle's overlay (applied after any
    /// already pending). O(1); nothing is copied.
    pub fn with_rewrite(mut self, r: DomidRewrite) -> Self {
        self.rewrites.push(r);
        self
    }

    /// Looks up the node at `path`, accumulating rewrite overlays along
    /// the walk. O(depth) plus overlay bookkeeping (almost always empty).
    pub fn lookup(&self, path: &str) -> Option<NodeRef<'_>> {
        let mut rewrites = self.rewrites.clone();
        let mut cur = self;
        for c in components(path) {
            cur = cur.data.children.get(c)?;
            if !cur.rewrites.is_empty() {
                // The child's own overlay applies before the accumulated
                // outer ones.
                let mut eff = cur.rewrites.clone();
                eff.extend(rewrites);
                rewrites = eff;
            }
        }
        Some(NodeRef { node: cur, rewrites })
    }

    /// Counts entries in this subtree (cached, O(1); each node counts as
    /// one entry).
    pub fn count_entries(&self) -> u64 {
        self.data.entries
    }

    /// Pushes this handle's pending rewrites one level down: applies them
    /// to the node's own value and appends them to every child handle's
    /// overlay. The node is privatized (`Rc::make_mut`) only if it has a
    /// pending overlay — this is the lazy materialization point for
    /// written-through shared nodes.
    fn materialize_level(&mut self) {
        if self.rewrites.is_empty() {
            return;
        }
        let rules = std::mem::take(&mut self.rewrites);
        let data = Rc::make_mut(&mut self.data);
        if let Some(v) = data.value.as_mut() {
            let mut s = std::mem::take(v);
            for r in &rules {
                s = r.apply(&s);
            }
            *v = s;
        }
        for child in data.children.values_mut() {
            child.rewrites.extend(rules.iter().copied());
        }
    }

    /// Inserts `value` at `path`, creating intermediate directories.
    /// Returns the number of *new* entries created (0 for an overwrite).
    /// Path-copies (and materializes overlays on) only the walked spine.
    pub fn insert(&mut self, path: &str, value: &str, owner: DomId) -> u64 {
        let comps: Vec<&str> = components(path).collect();
        self.insert_at(&comps, value, owner)
    }

    fn insert_at(&mut self, comps: &[&str], value: &str, owner: DomId) -> u64 {
        self.materialize_level();
        let data = Rc::make_mut(&mut self.data);
        match comps.split_first() {
            None => {
                data.value = Some(value.to_string());
                0
            }
            Some((name, rest)) => {
                let mut created = 0;
                if !data.children.contains_key(*name) {
                    data.children.insert((*name).to_string(), Node::dir(owner));
                    created += 1;
                }
                let child = data.children.get_mut(*name).expect("just ensured");
                created += child.insert_at(rest, value, owner);
                data.entries += created;
                created
            }
        }
    }

    /// Creates a directory at `path`; returns new entries created.
    pub fn mkdir(&mut self, path: &str, owner: DomId) -> u64 {
        let comps: Vec<&str> = components(path).collect();
        self.mkdir_at(&comps, owner)
    }

    fn mkdir_at(&mut self, comps: &[&str], owner: DomId) -> u64 {
        let Some((name, rest)) = comps.split_first() else {
            return 0;
        };
        self.materialize_level();
        let data = Rc::make_mut(&mut self.data);
        let mut created = 0;
        if !data.children.contains_key(*name) {
            data.children.insert((*name).to_string(), Node::dir(owner));
            created += 1;
        }
        let child = data.children.get_mut(*name).expect("just ensured");
        created += child.mkdir_at(rest, owner);
        data.entries += created;
        created
    }

    /// Removes the subtree at `path`; returns the number of entries
    /// removed (O(1) via the cached count) or `None` if the path does not
    /// exist. A failed removal leaves the tree — including its sharing
    /// structure — untouched.
    pub fn remove(&mut self, path: &str) -> Option<u64> {
        self.lookup(path)?;
        let comps: Vec<&str> = components(path).collect();
        let (last, dirs) = comps.split_last()?;
        Some(self.remove_at(dirs, last))
    }

    fn remove_at(&mut self, dirs: &[&str], last: &str) -> u64 {
        self.materialize_level();
        let data = Rc::make_mut(&mut self.data);
        let removed = match dirs.split_first() {
            None => {
                let victim = data.children.remove(last).expect("existence checked");
                victim.data.entries
            }
            Some((name, rest)) => {
                let child = data.children.get_mut(*name).expect("existence checked");
                child.remove_at(rest, last)
            }
        };
        data.entries -= removed;
        removed
    }

    /// Grafts `subtree` at `path` (replacing anything there); returns the
    /// net change in entry count, negative when the replaced subtree was
    /// larger than the grafted one. O(path-depth): the subtree itself is
    /// attached by handle, never copied.
    pub fn graft(&mut self, path: &str, subtree: Node, owner: DomId) -> i64 {
        let removed = self.remove(path).unwrap_or(0);
        let comps: Vec<&str> = components(path).collect();
        let Some((last, dirs)) = comps.split_last() else {
            return 0;
        };
        let inserted = self.graft_at(dirs, last, subtree, owner);
        inserted as i64 - removed as i64
    }

    /// Walks to the graft parent (creating intermediate directories owned
    /// by the grafting domain), attaches the subtree handle, and bubbles
    /// the entry-count delta up the spine. Returns entries added to this
    /// subtree (created dirs + grafted entries).
    fn graft_at(&mut self, dirs: &[&str], last: &str, subtree: Node, owner: DomId) -> u64 {
        self.materialize_level();
        let data = Rc::make_mut(&mut self.data);
        let delta = match dirs.split_first() {
            None => {
                let added = subtree.data.entries;
                data.children.insert(last.to_string(), subtree);
                added
            }
            Some((name, rest)) => {
                let mut d = 0;
                if !data.children.contains_key(*name) {
                    data.children.insert((*name).to_string(), Node::dir(owner));
                    d += 1;
                }
                let child = data.children.get_mut(*name).expect("just ensured");
                d + child.graft_at(rest, last, subtree, owner)
            }
        };
        data.entries += delta;
        delta
    }

    /// Verifies every cached entry count against the structure, visiting
    /// each distinct `NodeData` once. Returns a description of the first
    /// inconsistency found.
    pub fn verify_counts(&self) -> Result<(), String> {
        fn check(node: &Node, seen: &mut HashMap<*const NodeData, ()>) -> Result<(), String> {
            let ptr = Rc::as_ptr(&node.data);
            if seen.contains_key(&ptr) {
                return Ok(());
            }
            seen.insert(ptr, ());
            let sum: u64 = node.data.children.values().map(|c| c.data.entries).sum();
            if node.data.entries != 1 + sum {
                return Err(format!(
                    "cached entries {} != 1 + children {}",
                    node.data.entries, sum
                ));
            }
            for c in node.data.children.values() {
                check(c, seen)?;
            }
            Ok(())
        }
        check(self, &mut HashMap::new())
    }

    /// Computes structural-sharing statistics by walking the DAG of
    /// distinct `NodeData` allocations once (O(distinct nodes), not
    /// O(logical entries)), then propagating per-node logical occurrence
    /// counts along graft edges.
    pub fn sharing(&self) -> SharingStats {
        type Ptr = *const NodeData;
        // Pass 1: discover distinct nodes, their child edges and in-degrees.
        let mut children_of: HashMap<Ptr, Vec<Ptr>> = HashMap::new();
        let mut indegree: HashMap<Ptr, u64> = HashMap::new();
        let root = Rc::as_ptr(&self.data);
        indegree.insert(root, 0);
        let mut stack: Vec<&Node> = vec![self];
        while let Some(n) = stack.pop() {
            let ptr = Rc::as_ptr(&n.data);
            if children_of.contains_key(&ptr) {
                continue;
            }
            let mut kids = Vec::with_capacity(n.data.children.len());
            for c in n.data.children.values() {
                let cp = Rc::as_ptr(&c.data);
                kids.push(cp);
                *indegree.entry(cp).or_insert(0) += 1;
                stack.push(c);
            }
            children_of.insert(ptr, kids);
        }
        // Pass 2: logical occurrence counts, parents before children
        // (Kahn's algorithm over the acyclic graft DAG).
        let mut occ: HashMap<Ptr, u64> = HashMap::new();
        occ.insert(root, 1);
        let mut remaining = indegree;
        let mut queue: VecDeque<Ptr> = VecDeque::new();
        queue.push_back(root);
        let mut stats = SharingStats::default();
        while let Some(ptr) = queue.pop_front() {
            let n = occ[&ptr];
            stats.distinct_nodes += 1;
            stats.logical_entries += n;
            if n > 1 {
                stats.shared_logical += n;
            } else {
                stats.unique_logical += n;
            }
            for cp in &children_of[&ptr] {
                *occ.entry(*cp).or_insert(0) += n;
                let d = remaining.get_mut(cp).expect("edge counted in pass 1");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(*cp);
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> Node {
        Node::dir(DomId::DOM0)
    }

    fn value_at(r: &Node, path: &str) -> Option<String> {
        r.lookup(path).and_then(|n| n.value())
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut r = root();
        assert_eq!(r.insert("/a/b/c", "v", DomId::DOM0), 3);
        assert_eq!(value_at(&r, "/a/b/c").as_deref(), Some("v"));
        assert_eq!(r.insert("/a/b/c", "w", DomId::DOM0), 0, "overwrite creates nothing");
        assert_eq!(value_at(&r, "/a/b/c").as_deref(), Some("w"));
    }

    #[test]
    fn count_and_remove() {
        let mut r = root();
        r.insert("/a/b", "1", DomId::DOM0);
        r.insert("/a/c", "2", DomId::DOM0);
        assert_eq!(r.lookup("/a").unwrap().entry_count(), 3);
        assert_eq!(r.remove("/a"), Some(3));
        assert_eq!(r.remove("/a"), None);
    }

    #[test]
    fn graft_accounts_net_entries() {
        let mut r = root();
        r.insert("/src/x", "1", DomId::DOM0);
        let sub = r.lookup("/src").unwrap().detach();
        let added = r.graft("/dst/here", sub, DomId::DOM0);
        // subtree has 2 entries, plus 1 intermediate dir "dst".
        assert_eq!(added, 3);
        assert_eq!(value_at(&r, "/dst/here/x").as_deref(), Some("1"));
        // Grafting a smaller subtree over a larger one yields a negative
        // delta instead of underflowing.
        r.insert("/big/a", "1", DomId::DOM0);
        r.insert("/big/b", "1", DomId::DOM0);
        r.insert("/big/c", "1", DomId::DOM0);
        let leaf = r.lookup("/src/x").unwrap().detach();
        let delta = r.graft("/big", leaf, DomId::DOM0);
        assert_eq!(delta, -3); // 1 grafted entry replaces 4.
    }

    #[test]
    fn rewrite_overlay_forms() {
        let mut r = root();
        r.insert("/d/backend", "/local/domain/0/backend/vif/3/0", DomId::DOM0);
        r.insert("/d/frontend", "/local/domain/3/device/vif/0", DomId::DOM0);
        r.insert("/d/frontend-id", "3", DomId::DOM0);
        r.insert("/d/home", "/local/domain/3", DomId::DOM0);
        r.insert("/d/mac", "00:16:3e:00:00:03", DomId::DOM0);
        let d = r
            .lookup("/d")
            .unwrap()
            .detach()
            .with_rewrite(DomidRewrite { old: 3, new: 9 });
        r.graft("/e", d, DomId::DOM0);
        assert_eq!(
            value_at(&r, "/e/backend").as_deref(),
            Some("/local/domain/0/backend/vif/9/0")
        );
        assert_eq!(
            value_at(&r, "/e/frontend").as_deref(),
            Some("/local/domain/9/device/vif/0")
        );
        assert_eq!(value_at(&r, "/e/frontend-id").as_deref(), Some("9"));
        assert_eq!(value_at(&r, "/e/home").as_deref(), Some("/local/domain/9"));
        // MAC addresses stay untouched even though they contain "3".
        assert_eq!(value_at(&r, "/e/mac").as_deref(), Some("00:16:3e:00:00:03"));
        // The source is untouched.
        assert_eq!(value_at(&r, "/d/frontend-id").as_deref(), Some("3"));
    }

    #[test]
    fn overlays_stack_for_clone_of_clone() {
        let mut r = root();
        r.insert("/d/frontend", "/local/domain/3/device/vif/0", DomId::DOM0);
        let d = r
            .lookup("/d")
            .unwrap()
            .detach()
            .with_rewrite(DomidRewrite { old: 3, new: 9 });
        r.graft("/e", d, DomId::DOM0);
        // Clone the (unmaterialized) clone: 9 -> 12 applies on top of 3 -> 9.
        let e = r
            .lookup("/e")
            .unwrap()
            .detach()
            .with_rewrite(DomidRewrite { old: 9, new: 12 });
        r.graft("/f", e, DomId::DOM0);
        assert_eq!(
            value_at(&r, "/f/frontend").as_deref(),
            Some("/local/domain/12/device/vif/0")
        );
        assert_eq!(
            value_at(&r, "/e/frontend").as_deref(),
            Some("/local/domain/9/device/vif/0")
        );
    }

    #[test]
    fn write_through_materializes_only_the_spine() {
        let mut r = root();
        for k in ["a", "b", "c"] {
            r.insert(&format!("/src/{k}"), "3", DomId::DOM0);
        }
        let sub = r
            .lookup("/src")
            .unwrap()
            .detach()
            .with_rewrite(DomidRewrite { old: 3, new: 9 });
        r.graft("/dst", sub, DomId::DOM0);
        // Writing through the clone rewrites the spine but leaves the
        // siblings shared and their lazily-rewritten reads intact.
        r.insert("/dst/a", "fresh", DomId::DOM0);
        assert_eq!(value_at(&r, "/dst/a").as_deref(), Some("fresh"));
        assert_eq!(value_at(&r, "/dst/b").as_deref(), Some("9"));
        assert_eq!(value_at(&r, "/src/a").as_deref(), Some("3"));
        assert_eq!(value_at(&r, "/src/b").as_deref(), Some("3"));
        r.verify_counts().unwrap();
    }

    #[test]
    fn sharing_stats_track_clone_and_divergence() {
        let mut r = root();
        for k in 0..8 {
            r.insert(&format!("/src/k{k}"), "v", DomId::DOM0);
        }
        let before = r.sharing();
        assert_eq!(before.shared_logical, 0);
        assert_eq!(before.logical_entries, r.count_entries());

        let sub = r.lookup("/src").unwrap().detach();
        r.graft("/dst", sub, DomId::DOM0);
        let cloned = r.sharing();
        assert_eq!(cloned.logical_entries, r.count_entries());
        // /src's 9 nodes are each reachable twice now.
        assert_eq!(cloned.shared_logical, 18);
        assert_eq!(cloned.distinct_nodes, before.distinct_nodes);

        // Diverging one entry privatizes the spine on both sides.
        r.insert("/dst/k0", "w", DomId::DOM0);
        let diverged = r.sharing();
        assert_eq!(diverged.logical_entries, r.count_entries());
        assert!(diverged.shared_logical < cloned.shared_logical);
        assert!(diverged.unique_logical > cloned.unique_logical);
        r.verify_counts().unwrap();
    }

    #[test]
    fn failed_remove_leaves_sharing_untouched() {
        let mut r = root();
        r.insert("/src/x", "1", DomId::DOM0);
        let sub = r.lookup("/src").unwrap().detach();
        r.graft("/dst", sub, DomId::DOM0);
        let before = r.sharing();
        assert_eq!(r.remove("/dst/x/nope/deeper"), None);
        assert_eq!(r.sharing(), before);
    }
}

//! The FaaS gateway/autoscaler simulation.

use std::net::Ipv4Addr;

use apps::FaasFnApp;
use linux_procs::ContainerRuntime;
use nephele::sim_core::{DomId, SimDuration, SimTime};
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{MuxKind, Platform, PlatformConfig};

/// Instance backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Kubernetes-orchestrated containers (the vanilla OpenFaaS setup).
    Containers,
    /// Unikernel clones via Nephele (the KubeKraft setup).
    Unikernels,
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct FaasConfig {
    /// Which backend serves the function.
    pub backend: Backend,
    /// Offered load steps: `(time, requests-per-second)`; demand holds its
    /// last value until the next step.
    pub demand_steps: Vec<(SimDuration, f64)>,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// RPS-per-ready-instance threshold above which the autoscaler adds
    /// one instance (OpenFaaS default: 10 RPS; the paper keeps it).
    pub threshold_rps: f64,
    /// Delay between demand crossing the threshold and the scale-up
    /// decision (alert evaluation latency).
    pub detect_latency: SimDuration,
    /// Native-stack per-instance capacity in req/s (the paper measures
    /// ~600 req/s for the Linux stack).
    pub container_capacity: f64,
    /// lwip per-instance capacity in req/s (~300 req/s).
    pub unikernel_capacity: f64,
    /// Per-instance orchestration overhead in Dom0/host (kubelet, pod
    /// wrapper, KubeKraft state), bytes.
    pub orchestrator_per_instance: u64,
    /// Heap the Python interpreter dirties once an instance starts serving
    /// (bytes; COW-unshared in clones).
    pub warmup_dirty_bytes: u64,
}

impl Default for FaasConfig {
    fn default() -> Self {
        FaasConfig {
            backend: Backend::Unikernels,
            demand_steps: vec![
                (SimDuration::from_secs(0), 250.0),
                (SimDuration::from_secs(10), 550.0),
                (SimDuration::from_secs(21), 900.0),
            ],
            duration: SimDuration::from_secs(150),
            threshold_rps: 10.0,
            detect_latency: SimDuration::from_secs(2),
            container_capacity: 600.0,
            unikernel_capacity: 300.0,
            orchestrator_per_instance: 21 * 1024 * 1024,
            warmup_dirty_bytes: 9 * 1024 * 1024,
        }
    }
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct FaasReport {
    /// `(second, served req/s)` — the Fig. 11 curves.
    pub throughput_series: Vec<(f64, f64)>,
    /// `(second, memory MB)` — the Fig. 10 curves.
    pub memory_series: Vec<(f64, f64)>,
    /// Seconds at which instances became Ready (the dashed lines).
    pub ready_times: Vec<f64>,
    /// Total requests served.
    pub served_total: f64,
    /// Instances running at the end.
    pub instances: usize,
}

trait InstanceBackend {
    /// Launches one instance at `now`; returns its ready time.
    fn launch(&mut self, now: SimTime) -> SimTime;
    /// Memory attributable to the function deployment, bytes.
    fn memory_bytes(&mut self) -> u64;
    /// Per-instance serving capacity, req/s.
    fn capacity(&self) -> f64;
}

struct ContainerBackend {
    rt: ContainerRuntime,
    capacity: f64,
}

impl InstanceBackend for ContainerBackend {
    fn launch(&mut self, now: SimTime) -> SimTime {
        // The runtime tracks footprint on its own clock; readiness is
        // relative to the experiment's timeline.
        let c = self.rt.launch();
        now + c.ready_at.since(c.launched_at)
    }
    fn memory_bytes(&mut self) -> u64 {
        self.rt.total_mem_bytes()
    }
    fn capacity(&self) -> f64 {
        self.capacity
    }
}

struct UnikernelBackend {
    platform: Platform,
    template: DomId,
    baseline_hyp_free: u64,
    baseline_dom0_free: u64,
    instances: u32,
    capacity: f64,
    orchestrator_per_instance: u64,
    warmup_dirty_bytes: u64,
    ready_latency: SimDuration,
}

impl UnikernelBackend {
    fn new(cfg: &FaasConfig) -> Self {
        let mut platform = Platform::new(
            PlatformConfig::builder()
                .guest_pool_mib(2048)
                .ring_capacity(128)
                .mux(MuxKind::Bond)
                .build(),
        );
        // The shared rootfs carries the handler (and stands in for the
        // shared Python runtime).
        platform.dm.fs.mkdir_p("/srv/faas").unwrap();
        platform.dm.fs.create("/srv/faas/handler.py").unwrap();
        platform
            .dm
            .fs
            .write("/srv/faas/handler.py", 0, b"def handle(req):\n    return 'Hello World'\n")
            .unwrap();

        // Template VM: Unikraft + Python, 64 MiB, cloned per scale-up.
        let dom_cfg = DomainConfig::builder("faas-py")
            .memory_mib(64)
            .vif(Ipv4Addr::new(10, 0, 0, 50))
            .p9fs("/srv/faas")
            .max_clones(1024)
            .build();
        let ready_latency = platform.costs.unikernel_ready_latency;
        let baseline = platform.snapshot();
        let baseline_hyp_free = baseline.hyp_free_bytes;
        let baseline_dom0_free = baseline.dom0_free_bytes;
        let template = platform
            .launch(
                &dom_cfg,
                &KernelImage::unikraft_python("faas-py"),
                Box::new(FaasFnApp::new()),
            )
            .expect("template boot");
        platform.enlist_in_mux(template);
        UnikernelBackend {
            platform,
            template,
            baseline_hyp_free,
            baseline_dom0_free,
            instances: 1,
            capacity: cfg.unikernel_capacity,
            orchestrator_per_instance: cfg.orchestrator_per_instance,
            warmup_dirty_bytes: cfg.warmup_dirty_bytes,
            ready_latency,
        }
    }

    fn warm_up(&mut self, dom: DomId) {
        let bytes = self.warmup_dirty_bytes;
        self.platform.with_app::<FaasFnApp, ()>(dom, |_app, env| {
            // The interpreter dirties its heap as it starts serving.
            let _ = env.heap.alloc_resident(env.hv, bytes);
        });
    }
}

impl InstanceBackend for UnikernelBackend {
    fn launch(&mut self, now: SimTime) -> SimTime {
        // The first "launch" is the pre-deployed template itself.
        if self.instances == 1 && now == SimTime::ZERO {
            self.warm_up(self.template);
            return now + self.ready_latency;
        }
        let child = self
            .platform
            .clone_domain(self.template, 1)
            .expect("clone instance")[0];
        self.instances += 1;
        self.warm_up(child);
        now + self.ready_latency
    }

    fn memory_bytes(&mut self) -> u64 {
        let snap = self.platform.snapshot();
        let vm = self.baseline_hyp_free.saturating_sub(snap.hyp_free_bytes);
        let dom0 = self.baseline_dom0_free.saturating_sub(snap.dom0_free_bytes);
        vm + dom0 + self.instances as u64 * self.orchestrator_per_instance
    }

    fn capacity(&self) -> f64 {
        self.capacity
    }
}

fn demand_at(steps: &[(SimDuration, f64)], t: SimDuration) -> f64 {
    let mut current = 0.0;
    for (at, rps) in steps {
        if t >= *at {
            current = *rps;
        }
    }
    current
}

/// Runs the FaaS experiment.
pub fn run_faas(cfg: &FaasConfig) -> FaasReport {
    let mut backend: Box<dyn InstanceBackend> = match cfg.backend {
        Backend::Containers => Box::new(ContainerBackend {
            rt: ContainerRuntime::new(
                nephele::sim_core::Clock::new(),
                std::rc::Rc::new(nephele::sim_core::CostModel::calibrated()),
            ),
            capacity: cfg.container_capacity,
        }),
        Backend::Unikernels => Box::new(UnikernelBackend::new(cfg)),
    };

    let mut ready_at: Vec<SimTime> = Vec::new();
    let mut ready_times = Vec::new();
    let mut throughput_series = Vec::new();
    let mut memory_series = Vec::new();
    let mut served_total = 0.0;

    // One instance is deployed at t = 0.
    let first_ready = backend.launch(SimTime::ZERO);
    ready_at.push(first_ready);
    ready_times.push(first_ready.as_ns() as f64 / 1e9);

    // A pending scale-up: (decision time, demand level that triggered it).
    let mut pending_decision: Option<SimTime> = None;
    let mut last_demand = 0.0;

    let secs = cfg.duration.as_secs_f64() as u64;
    for s in 0..secs {
        let now = SimTime::from_ns(s * 1_000_000_000);
        let t = SimDuration::from_secs(s);
        let demand = demand_at(&cfg.demand_steps, t);

        // Demand increase above threshold arms a scale-up decision.
        let ready = ready_at.iter().filter(|r| **r <= now).count().max(1);
        if demand > last_demand && demand / ready as f64 > cfg.threshold_rps {
            pending_decision = Some(now + cfg.detect_latency);
        }
        last_demand = demand;

        if let Some(at) = pending_decision {
            if now >= at {
                pending_decision = None;
                let r = backend.launch(now);
                ready_at.push(r);
                ready_times.push(r.as_ns() as f64 / 1e9);
            }
        }

        let ready = ready_at.iter().filter(|r| **r <= now).count();
        let capacity = ready as f64 * backend.capacity();
        let served = demand.min(capacity);
        served_total += served;
        throughput_series.push((s as f64, served));
        memory_series.push((s as f64, backend.memory_bytes() as f64 / (1024.0 * 1024.0)));
    }

    FaasReport {
        throughput_series,
        memory_series,
        ready_times,
        served_total,
        instances: ready_at.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(backend: Backend) -> FaasReport {
        run_faas(&FaasConfig {
            backend,
            duration: SimDuration::from_secs(80),
            ..Default::default()
        })
    }

    #[test]
    fn unikernels_become_ready_much_sooner() {
        let u = short(Backend::Unikernels);
        let c = short(Backend::Containers);
        assert_eq!(u.instances, c.instances, "same scale-up decisions");
        assert!(u.instances >= 3);
        for (ur, cr) in u.ready_times.iter().zip(&c.ready_times) {
            assert!(
                ur + 3.0 < *cr,
                "unikernel ready {ur}s should beat container {cr}s by seconds"
            );
        }
    }

    #[test]
    fn container_memory_dwarfs_unikernel_memory() {
        let u = short(Backend::Unikernels);
        let c = short(Backend::Containers);
        let u_final = u.memory_series.last().unwrap().1;
        let c_final = c.memory_series.last().unwrap().1;
        assert!(
            c_final > 2.0 * u_final,
            "containers {c_final:.0} MB vs unikernels {u_final:.0} MB"
        );
        // Both setups start in the same ballpark (paper: 90 vs 85 MB).
        let u_first = u.memory_series[0].1;
        let c_first = c.memory_series[0].1;
        assert!((u_first - c_first).abs() < 60.0, "{u_first} vs {c_first}");
    }

    #[test]
    fn unikernels_track_demand_closely() {
        let u = short(Backend::Unikernels);
        let c = short(Backend::Containers);
        // In the ramp window (first 40 s) the unikernel setup should serve
        // at least as much as containers despite lower per-instance
        // capacity, because instances come up in seconds.
        let ramp_u: f64 = u.throughput_series.iter().take(40).map(|(_, s)| s).sum();
        let ramp_c: f64 = c.throughput_series.iter().take(40).map(|(_, s)| s).sum();
        assert!(
            ramp_u > ramp_c,
            "ramp served: unikernels {ramp_u:.0} vs containers {ramp_c:.0}"
        );
    }

    #[test]
    fn containers_win_at_steady_state_per_instance() {
        let c = short(Backend::Containers);
        // Once everything is ready the native stack's capacity shows.
        let final_served = c.throughput_series.last().unwrap().1;
        assert!(final_served >= 900.0, "served {final_served}");
    }

    #[test]
    fn demand_step_function() {
        let steps = vec![
            (SimDuration::from_secs(0), 100.0),
            (SimDuration::from_secs(10), 200.0),
        ];
        assert_eq!(demand_at(&steps, SimDuration::from_secs(0)), 100.0);
        assert_eq!(demand_at(&steps, SimDuration::from_secs(9)), 100.0);
        assert_eq!(demand_at(&steps, SimDuration::from_secs(10)), 200.0);
        assert_eq!(demand_at(&steps, SimDuration::from_secs(99)), 200.0);
    }
}

//! Scale driver: packing one platform with thousands of cloned domains.
//!
//! The FaaS experiment of §7.3 scales to a handful of instances; this
//! driver exists to exercise the *observability* pipeline at the scale the
//! paper's density numbers imply (Fig. 5 reaches ~8900 clones). Domains
//! are cloned from one vif-less template in batches, so each clone costs
//! only its private frames and Xenstore subtree — no 1 MiB RX ring — and a
//! 10^4-domain run fits a small guest pool.
//!
//! With the sink in [`TraceMode::Aggregate`](nephele::TraceMode), the run
//! demonstrates the bounded-memory property: spans, counters and gauges
//! are folded into histograms, timeline slices and family rollups as they
//! are recorded, so peak retained raw records stay O(open spans), not
//! O(events) — see [`ScaleReport::overhead`].

use nephele::sim_core::SimDuration;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{AuditMode, MuxKind, Platform, PlatformConfig, SinkOverhead, TraceConfig};

/// Scale-run parameters.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Clones to create (the template is extra).
    pub domains: u32,
    /// Clones per `clone_domain` batch.
    pub batch: u32,
    /// Guest pool, MiB. Vif-less clones cost ~10 frames each, so 1 GiB
    /// comfortably holds 10^4 domains.
    pub pool_mib: u64,
    /// Master PRNG seed.
    pub seed: u64,
    /// Worker threads for the deterministic fork/join pool (results are
    /// identical at any width).
    pub threads: usize,
    /// Observability knobs; Aggregate mode is the point of this driver.
    pub tracing: TraceConfig,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            domains: 10_000,
            batch: 250,
            pool_mib: 1024,
            seed: 0x5ca1e,
            threads: 1,
            tracing: TraceConfig::aggregate(),
        }
    }
}

/// Scale-run results: counts plus the streaming exports.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Clones actually created (less than asked if memory ran out).
    pub domains_created: u64,
    /// Clones destroyed again by the driver (every 16th, to exercise
    /// family-membership retirement).
    pub domains_destroyed: u64,
    /// The sink's self-accounting: host-side work done and peak raw
    /// records retained.
    pub overhead: SinkOverhead,
    /// [`Platform::timeline_csv`] at the end of the run.
    pub timeline_csv: String,
    /// [`Platform::metrics_text`] at the end of the run.
    pub metrics_text: String,
    /// [`Platform::family_rollup_csv`] at the end of the run (resident
    /// rows included).
    pub family_rollup_csv: String,
}

/// Runs the scale experiment: boot one template, clone it to
/// `cfg.domains` in batches of `cfg.batch`, destroy every 16th clone,
/// then collect the streaming exports.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleReport {
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(cfg.pool_mib)
            .ring_capacity((cfg.batch as usize).max(128))
            .mux(MuxKind::None)
            .seed(cfg.seed)
            .threads(cfg.threads)
            .tracing(cfg.tracing.clone())
            .audit(AuditMode::Off)
            .build(),
    );

    // Vif-less minimal template: private frames + Xenstore subtree only.
    let dom_cfg = DomainConfig::builder("scale-tmpl")
        .memory_mib(4)
        .max_clones(cfg.domains.saturating_add(1))
        .resume_clones(false)
        .build();
    let template = p
        .launch_plain(&dom_cfg, &KernelImage::unikraft("scale-fn"))
        .expect("template boot");

    let mut created = 0u64;
    let mut children = Vec::new();
    while created < cfg.domains as u64 {
        let want = (cfg.domains as u64 - created).min(cfg.batch as u64) as u32;
        let Ok(kids) = p.clone_domain(template, want) else { break };
        created += kids.len() as u64;
        let short = kids.len() < want as usize;
        children.extend(kids);
        if short {
            break;
        }
        // A little virtual time between batches spreads the clones over
        // timeline slices instead of piling them into one.
        p.run_for(SimDuration::from_ms(50));
    }

    let mut destroyed = 0u64;
    for dom in children.iter().skip(15).step_by(16) {
        if p.destroy(*dom).is_ok() {
            destroyed += 1;
        }
    }

    ScaleReport {
        domains_created: created,
        domains_destroyed: destroyed,
        overhead: p.trace().overhead(),
        timeline_csv: p.timeline_csv(),
        metrics_text: p.metrics_text(),
        family_rollup_csv: p.family_rollup_csv(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline scale property: 10^4 domains in Aggregate mode with
    /// raw-record retention bounded by concurrently-open spans (a handful)
    /// — not by the millions of span/counter/gauge events the run emits —
    /// and streaming exports byte-identical across fork/join widths.
    #[test]
    fn ten_thousand_domains_bounded_sink_and_thread_invariant_exports() {
        let run = |threads: usize| {
            run_scale(&ScaleConfig {
                threads,
                ..Default::default()
            })
        };
        let single = run(1);
        assert_eq!(single.domains_created, 10_000, "pool must fit 10^4 clones");
        assert_eq!(single.domains_destroyed, 625);

        // Bounded memory: the run recorded work for >10^4 lifecycle spans
        // and counters, but retained almost nothing.
        let o = &single.overhead;
        assert!(o.span_closes > 10_000, "span closes {}", o.span_closes);
        assert!(o.counter_bumps > 10_000, "counter bumps {}", o.counter_bumps);
        assert!(
            o.peak_retained_spans <= 16,
            "peak open spans should be nesting depth, got {}",
            o.peak_retained_spans
        );
        assert_eq!(o.retained_spans, 0, "all spans folded and freed");
        assert_eq!(o.peak_retained_counter_samples, 0, "no raw counter samples in Aggregate");
        assert_eq!(o.peak_retained_gauge_samples, 0, "no raw gauge samples in Aggregate");

        // Exports exist and carry the family.
        assert!(single.timeline_csv.lines().count() > 1);
        assert!(single.metrics_text.contains("nephele_"));
        assert!(
            single.family_rollup_csv.contains("members_total,10001"),
            "rollup:\n{}",
            single.family_rollup_csv.lines().take(5).collect::<Vec<_>>().join("\n")
        );

        // Determinism: a wider fork/join pool (and a same-seed rerun) must
        // reproduce every export byte.
        let wide = run(4);
        assert_eq!(single.timeline_csv, wide.timeline_csv);
        assert_eq!(single.metrics_text, wide.metrics_text);
        assert_eq!(single.family_rollup_csv, wide.family_rollup_csv);
    }

    /// Full mode on a smaller run retains O(events) records — the contrast
    /// that makes Aggregate's bound meaningful — while producing the same
    /// aggregate exports.
    #[test]
    fn full_mode_retains_raw_records_but_matches_aggregate_exports() {
        let base = ScaleConfig {
            domains: 200,
            batch: 50,
            pool_mib: 256,
            ..Default::default()
        };
        let agg = run_scale(&base);
        let full = run_scale(&ScaleConfig {
            tracing: TraceConfig::enabled(),
            ..base
        });
        assert!(
            full.overhead.retained_spans > 200,
            "Full keeps raw spans, got {}",
            full.overhead.retained_spans
        );
        assert_eq!(agg.overhead.retained_spans, 0);
        assert_eq!(agg.timeline_csv, full.timeline_csv);
        assert_eq!(agg.metrics_text, full.metrics_text);
        assert_eq!(agg.family_rollup_csv, full.family_rollup_csv);
    }
}

//! An OpenFaaS-like Function-as-a-Service autoscaling simulation
//! (§7.3, Figs. 10–11).
//!
//! The gateway watches the request rate; whenever demand rises above the
//! per-instance RPS threshold a scale-up launches **one** new instance
//! (the paper's configuration). Two backends are compared:
//!
//! * **containers** — the vanilla setup: Kubernetes pods whose readiness
//!   takes tens of seconds and whose runtime weighs hundreds of MB each;
//! * **unikernels** — Nephele clones of a template Unikraft+Python VM on
//!   the real simulated platform: ready in seconds, with only the private
//!   (COW-unshared) pages plus per-instance orchestration state as
//!   footprint, and the Python runtime shared via the 9pfs root.

pub mod scale;
pub mod sim;
pub mod traffic;

pub use scale::{run_scale, ScaleConfig, ScaleReport};
pub use sim::{run_faas, Backend, FaasConfig, FaasReport};
pub use traffic::{
    generate, run_macro, Arrival, MacroConfig, MacroReport, Policy, PolicyOutcome, TrafficConfig,
};

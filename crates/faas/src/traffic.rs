//! Deterministic open-loop traffic replay against a scaled clone pool.
//!
//! This is the payoff scenario for the index work: a seeded, bursty
//! arrival process (Poisson-like inter-arrivals with diurnal and burst
//! modulation, all drawn from [`sim_core::rng::SplitMix64`] in virtual
//! time) replayed against a platform holding up to 10^5 concurrently
//! live vif-less clones. Two serving policies are compared with the
//! integer latency histograms of [`sim_core::hist::Histogram`], so
//! same-seed runs are byte-reproducible at any fork/join width:
//!
//! * [`Policy::CloneRequest`] — *clone the request*: fan each request
//!   to `k` warm instances, first response wins, losers are cancelled
//!   when the winner answers (the request-cloning policy axis of the
//!   Pellegrini reproducibility report);
//! * [`Policy::CloneVm`] — *clone the VM*: serve from an idle warm
//!   instance when one exists, otherwise Nephele-clone a fresh instance
//!   on demand and pay its (virtual-time) readiness latency up front.
//!
//! Every per-request step is O(log pool): instances are scheduled from
//! a min-heap on their busy-until times, and the platform's own
//! create/clone/destroy paths are index-driven — nothing here scales
//! with the number of live domains, which is the property the
//! `clone_density` bench gate pins.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nephele::sim_core::hist::Histogram;
use nephele::sim_core::rng::SplitMix64;
use nephele::sim_core::SimDuration;
use nephele::toolstack::{DomainConfig, KernelImage};
use nephele::{AuditMode, MuxKind, Platform, PlatformConfig, TraceConfig};

/// Parameters of the open-loop arrival process.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Requests to generate.
    pub requests: u32,
    /// Mean arrival rate, requests per virtual second, before
    /// modulation.
    pub base_rps: f64,
    /// Diurnal swing as a fraction of the base rate (0 disables; 0.5
    /// swings between 0.5x and 1.5x).
    pub diurnal_amplitude: f64,
    /// Virtual period of one diurnal cycle.
    pub diurnal_period: SimDuration,
    /// Rate multiplier while a burst episode is active.
    pub burst_multiplier: f64,
    /// Per-arrival chance of starting a burst episode.
    pub burst_probability: f64,
    /// Arrivals per burst episode.
    pub burst_len: u32,
    /// Mean per-request service demand, ns of instance time.
    pub service_ns_mean: u64,
    /// Relative jitter of per-request (and per-replica) demand.
    pub service_jitter: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            requests: 20_000,
            base_rps: 2_000.0,
            diurnal_amplitude: 0.6,
            diurnal_period: SimDuration::from_secs(4),
            burst_multiplier: 8.0,
            burst_probability: 0.002,
            burst_len: 200,
            service_ns_mean: 2_000_000,
            service_jitter: 0.35,
        }
    }
}

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time on the replay timeline, ns.
    pub at_ns: u64,
    /// Service demand of the request, ns of instance time.
    pub demand_ns: u64,
}

/// Generates the seeded arrival tape: exponential inter-arrivals whose
/// rate is modulated by a diurnal sinusoid and by burst episodes. Pure
/// virtual time — the same seed yields the same tape on every host.
pub fn generate(cfg: &TrafficConfig, seed: u64) -> Vec<Arrival> {
    let mut master = SplitMix64::new(seed);
    let mut arrivals_rng = master.fork_stream();
    let mut demand_rng = master.fork_stream();

    let period_ns = cfg.diurnal_period.as_ns().max(1) as f64;
    let mut t_ns = 0u64;
    let mut burst_remaining = 0u32;
    let mut out = Vec::with_capacity(cfg.requests as usize);
    for _ in 0..cfg.requests {
        let diurnal = 1.0
            + cfg.diurnal_amplitude
                * (2.0 * std::f64::consts::PI * (t_ns as f64) / period_ns).sin();
        let mut rate = cfg.base_rps * diurnal.max(0.05);
        if burst_remaining > 0 {
            burst_remaining -= 1;
            rate *= cfg.burst_multiplier;
        } else if arrivals_rng.chance(cfg.burst_probability) {
            burst_remaining = cfg.burst_len;
        }
        // Inverse-transform exponential inter-arrival at the modulated
        // rate, rounded to whole ns.
        let u = arrivals_rng.next_f64();
        let gap_s = -(1.0 - u).ln() / rate.max(1e-9);
        t_ns = t_ns.saturating_add((gap_s * 1e9).round() as u64);

        let demand = demand_rng
            .normal(cfg.service_ns_mean as f64, cfg.service_jitter * cfg.service_ns_mean as f64)
            .max(cfg.service_ns_mean as f64 * 0.1);
        out.push(Arrival {
            at_ns: t_ns,
            demand_ns: demand.round() as u64,
        });
    }
    out
}

/// How requests are served from the clone pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Fan each request to `k` warm instances; first response wins and
    /// the losers are cancelled at the winner's completion time.
    CloneRequest {
        /// Replication factor per request.
        k: u32,
    },
    /// Serve from an idle warm instance, or Nephele-clone a fresh one
    /// on demand, paying its readiness latency up front.
    CloneVm,
}

impl Policy {
    /// Stable label used in CSV columns and reports.
    pub fn label(&self) -> String {
        match self {
            Policy::CloneRequest { k } => format!("clone_request_k{k}"),
            Policy::CloneVm => "clone_vm".to_string(),
        }
    }
}

/// Outcome of replaying one policy over one arrival tape.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The policy that was replayed.
    pub policy: Policy,
    /// End-to-end request latency, ns (log-bucketed integer histogram —
    /// byte-identical for the same seed).
    pub latency: Histogram,
    /// Requests served.
    pub served: u64,
    /// Loser replicas cancelled ([`Policy::CloneRequest`] only).
    pub cancelled: u64,
    /// Instances cloned on demand ([`Policy::CloneVm`] only).
    pub cloned_on_demand: u64,
    /// Requests that found no idle instance and could not clone
    /// (served after queueing on the earliest-free instance).
    pub queued: u64,
}

/// One warm instance: identified by its heap slot; the heap orders
/// slots by the time they next become free.
type InstanceHeap = BinaryHeap<Reverse<(u64, u32)>>;

/// Replays `arrivals` under `policy` against `template`'s warm pool of
/// `warm` instances on `platform`. [`Policy::CloneVm`] grows the pool
/// by really cloning the template; the readiness latency charged to the
/// request is the virtual time the clone operation itself took.
pub fn replay(
    platform: &mut Platform,
    template: nephele::sim_core::DomId,
    warm: u32,
    arrivals: &[Arrival],
    policy: Policy,
    seed: u64,
) -> PolicyOutcome {
    let mut rng = SplitMix64::new(seed ^ 0x7ea7_5eed);
    let mut heap: InstanceHeap = (0..warm.max(1)).map(|slot| Reverse((0u64, slot))).collect();
    let mut next_slot = warm.max(1);

    let mut out = PolicyOutcome {
        policy,
        latency: Histogram::new(),
        served: 0,
        cancelled: 0,
        cloned_on_demand: 0,
        queued: 0,
    };

    for a in arrivals {
        match policy {
            Policy::CloneRequest { k } => {
                let k = k.max(1).min(heap.len() as u32);
                // Pop the k instances that free up earliest; each
                // replica draws its own demand around the request's.
                let mut replicas = Vec::with_capacity(k as usize);
                let mut winner = u64::MAX;
                for _ in 0..k {
                    let Reverse((free_at, slot)) = heap.pop().expect("k <= heap len");
                    let start = free_at.max(a.at_ns);
                    let factor = rng.normal(1.0, 0.25).clamp(0.3, 3.0);
                    let completion =
                        start.saturating_add((a.demand_ns as f64 * factor).round() as u64);
                    winner = winner.min(completion);
                    replicas.push((slot, completion));
                }
                // First response wins; every other replica is cancelled
                // when the winner answers, so all k slots free then.
                for (slot, completion) in replicas {
                    if completion > winner {
                        out.cancelled += 1;
                    }
                    heap.push(Reverse((winner, slot)));
                }
                out.latency.record(winner.saturating_sub(a.at_ns));
                out.served += 1;
            }
            Policy::CloneVm => {
                let Reverse((free_at, slot)) = *heap.peek().expect("pool is never empty");
                if free_at <= a.at_ns {
                    heap.pop();
                    let completion = a.at_ns + a.demand_ns;
                    heap.push(Reverse((completion, slot)));
                    out.latency.record(a.demand_ns);
                } else {
                    // No idle instance: clone one on demand and charge
                    // the request the clone's own virtual-time latency.
                    let before = platform.clock.now().as_ns();
                    match platform.clone_domain(template, 1) {
                        Ok(kids) if !kids.is_empty() => {
                            let ready_ns = platform.clock.now().as_ns() - before;
                            let latency = ready_ns + a.demand_ns;
                            heap.push(Reverse((a.at_ns + latency, next_slot)));
                            next_slot += 1;
                            out.cloned_on_demand += 1;
                            out.latency.record(latency);
                        }
                        _ => {
                            // Pool exhausted: queue on the earliest-free
                            // instance instead.
                            heap.pop();
                            let start = free_at;
                            let completion = start + a.demand_ns;
                            heap.push(Reverse((completion, slot)));
                            out.queued += 1;
                            out.latency.record(completion - a.at_ns);
                        }
                    }
                }
                out.served += 1;
            }
        }
    }
    out
}

/// Macro-scenario parameters: ramp a platform to `live_domains`
/// concurrently live vif-less clones (with destroy churn along the
/// way), then replay the same arrival tape under both policies.
#[derive(Debug, Clone)]
pub struct MacroConfig {
    /// Concurrently live clones to ramp to before the replay.
    pub live_domains: u32,
    /// Clones per ramp batch.
    pub batch: u32,
    /// Guest pool, MiB (vif-less clones cost ~26 pages each).
    pub pool_mib: u64,
    /// Master seed for the platform and the traffic tape.
    pub seed: u64,
    /// Fork/join width (results are identical at any width).
    pub threads: usize,
    /// Warm instances serving the replay.
    pub warm_pool: u32,
    /// Replication factor of the [`Policy::CloneRequest`] replay.
    pub fanout_k: u32,
    /// Destroy every Nth ramp clone, then top the pool back up — this
    /// keeps the destroy path honest at full scale (0 disables).
    pub churn_every: u32,
    /// The arrival process.
    pub traffic: TrafficConfig,
}

impl Default for MacroConfig {
    fn default() -> Self {
        MacroConfig {
            live_domains: 10_000,
            batch: 500,
            pool_mib: 2048,
            seed: 0xfaa5_10ad,
            threads: 1,
            warm_pool: 256,
            fanout_k: 3,
            churn_every: 64,
            traffic: TrafficConfig::default(),
        }
    }
}

/// Macro-scenario results.
#[derive(Debug, Clone)]
pub struct MacroReport {
    /// Live domains (clones + template + warm pool) when the replay
    /// started.
    pub live_at_replay: u64,
    /// Clones destroyed by the churn phase.
    pub destroyed: u64,
    /// The request-cloning replay.
    pub clone_request: PolicyOutcome,
    /// The VM-cloning replay.
    pub clone_vm: PolicyOutcome,
}

/// Runs the macro scenario: boot one vif-less template, clone it to
/// `live_domains` in batches, churn a slice of the pool through
/// destroy + re-clone, then replay the seeded tape under
/// [`Policy::CloneRequest`] and [`Policy::CloneVm`].
pub fn run_macro(cfg: &MacroConfig) -> MacroReport {
    let mut p = Platform::new(
        PlatformConfig::builder()
            .guest_pool_mib(cfg.pool_mib)
            .ring_capacity((cfg.batch as usize).max(128))
            .mux(MuxKind::None)
            .seed(cfg.seed)
            .threads(cfg.threads)
            .tracing(TraceConfig::default())
            .audit(AuditMode::Off)
            .build(),
    );

    let dom_cfg = DomainConfig::builder("traffic-tmpl")
        .memory_mib(4)
        .max_clones(u32::MAX)
        .resume_clones(false)
        .build();
    let template = p
        .launch_plain(&dom_cfg, &KernelImage::unikraft("traffic-fn"))
        .expect("template boot");

    // Ramp to the target live-domain count in batches.
    let mut children = Vec::with_capacity(cfg.live_domains as usize);
    while (children.len() as u32) < cfg.live_domains {
        let want = (cfg.live_domains - children.len() as u32).min(cfg.batch);
        let kids = p.clone_domain(template, want).expect("ramp clone batch");
        let short = (kids.len() as u32) < want;
        children.extend(kids);
        if short {
            panic!(
                "guest pool exhausted at {} of {} clones",
                children.len(),
                cfg.live_domains
            );
        }
        p.run_for(SimDuration::from_ms(10));
    }

    // Churn: destroy a deterministic slice, then top the pool back up
    // so the replay still sees the full target count live.
    let mut destroyed = 0u64;
    if cfg.churn_every > 1 {
        let victims: Vec<_> = children
            .iter()
            .copied()
            .skip(cfg.churn_every as usize - 1)
            .step_by(cfg.churn_every as usize)
            .collect();
        children.retain(|d| !victims.contains(d));
        for dom in victims {
            p.destroy(dom).expect("churn destroy");
            destroyed += 1;
        }
        // Top back up in ramp-sized batches: a single burst larger than
        // the notification ring would overflow it before Dom0 drains.
        let mut refilled = 0u32;
        while (refilled as u64) < destroyed {
            let want = (destroyed as u32 - refilled).min(cfg.batch);
            let kids = p.clone_domain(template, want).expect("churn refill");
            assert_eq!(kids.len() as u32, want, "refill must restore the pool");
            refilled += want;
            children.extend(kids);
            p.run_for(SimDuration::from_ms(10));
        }
    }

    let live_at_replay = (children.len() + 1 + cfg.warm_pool as usize) as u64;
    p.clone_domain(template, cfg.warm_pool)
        .expect("warm pool clone");

    let arrivals = generate(&cfg.traffic, cfg.seed);
    let clone_request = replay(
        &mut p,
        template,
        cfg.warm_pool,
        &arrivals,
        Policy::CloneRequest { k: cfg.fanout_k },
        cfg.seed,
    );
    let clone_vm = replay(
        &mut p,
        template,
        cfg.warm_pool,
        &arrivals,
        Policy::CloneVm,
        cfg.seed,
    );

    MacroReport {
        live_at_replay,
        destroyed,
        clone_request,
        clone_vm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_is_deterministic_and_bursty() {
        let cfg = TrafficConfig::default();
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(a, b, "same seed, same tape");
        let c = generate(&cfg, 43);
        assert_ne!(a, c, "different seed, different tape");
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns), "monotone arrivals");
        // Burstiness: the smallest inter-arrival gaps must be far below
        // the mean gap (bursts multiply the rate).
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1].at_ns - w[0].at_ns).collect();
        let mean = gaps.iter().sum::<u64>() / gaps.len() as u64;
        let min = *gaps.iter().min().unwrap();
        assert!(min * 10 < mean, "min gap {min} vs mean {mean}");
    }

    #[test]
    fn fanout_beats_single_replica_latency_and_cancels_losers() {
        // Uncongested pool: with idle capacity to spare, fanning to k
        // replicas wins on the min-of-k draw; under congestion the k-way
        // slot occupancy would instead triple queueing delay.
        let cfg = MacroConfig {
            live_domains: 200,
            batch: 100,
            pool_mib: 256,
            warm_pool: 128,
            churn_every: 16,
            traffic: TrafficConfig {
                requests: 2_000,
                base_rps: 1_000.0,
                ..TrafficConfig::default()
            },
            ..MacroConfig::default()
        };
        let r = run_macro(&cfg);
        assert_eq!(r.clone_request.served, 2_000);
        assert_eq!(r.clone_vm.served, 2_000);
        assert!(r.destroyed > 0);
        assert_eq!(
            r.clone_request.cancelled,
            (cfg.fanout_k as u64 - 1) * r.clone_request.served,
            "every request cancels k-1 losers"
        );
        // min-of-k beats one draw at the median.
        assert!(
            r.clone_request.latency.percentile(50.0) <= r.clone_vm.latency.percentile(50.0),
            "fanout p50 {} vs clone_vm p50 {}",
            r.clone_request.latency.percentile(50.0),
            r.clone_vm.latency.percentile(50.0)
        );
    }

    #[test]
    fn macro_report_is_thread_invariant() {
        let run = |threads| {
            run_macro(&MacroConfig {
                live_domains: 300,
                batch: 150,
                pool_mib: 256,
                warm_pool: 16,
                threads,
                traffic: TrafficConfig {
                    requests: 1_000,
                    ..TrafficConfig::default()
                },
                ..MacroConfig::default()
            })
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.live_at_replay, b.live_at_replay);
        assert_eq!(a.destroyed, b.destroyed);
        for (x, y) in [
            (&a.clone_request, &b.clone_request),
            (&a.clone_vm, &b.clone_vm),
        ] {
            assert_eq!(x.served, y.served);
            assert_eq!(x.cancelled, y.cancelled);
            assert_eq!(x.cloned_on_demand, y.cloned_on_demand);
            assert_eq!(x.queued, y.queued);
            for p in [50.0, 90.0, 99.0, 100.0] {
                assert_eq!(x.latency.percentile(p), y.latency.percentile(p));
            }
        }
    }

    #[test]
    fn clone_vm_clones_under_load() {
        // A tiny warm pool under a hot tape must force on-demand clones.
        let r = run_macro(&MacroConfig {
            live_domains: 100,
            batch: 100,
            pool_mib: 256,
            warm_pool: 2,
            churn_every: 0,
            traffic: TrafficConfig {
                requests: 500,
                base_rps: 5_000.0,
                ..TrafficConfig::default()
            },
            ..MacroConfig::default()
        });
        assert!(r.clone_vm.cloned_on_demand > 0, "no on-demand clones happened");
        assert_eq!(r.clone_request.cloned_on_demand, 0);
    }
}

//! An NGINX-like HTTP server scaling via clone workers (§7.1, Fig. 7).
//!
//! NGINX "uses fork() to launch worker processes for scaling up request
//! throughput", one worker pinned per CPU core. With unikernel clones the
//! kernel-side socket sharding (`SO_REUSEPORT`) is unnecessary: the
//! parent's and clones' vifs share one MAC/IP and the Linux bond in Dom0
//! load-balances incoming connections across them.

use guest::{ForkOutcome, GuestApp, GuestEnv};
use netmux::SockEvent;

/// HTTP listening port.
pub const HTTP_PORT: u16 = 80;

/// Role of an instance in the worker family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NginxRole {
    /// The original instance; forks the workers.
    Master,
    /// A cloned worker.
    Worker,
}

/// The web server.
#[derive(Debug, Clone)]
pub struct NginxApp {
    /// Worker clones to fork at boot (0 = serve from the master alone).
    pub workers: u32,
    /// This instance's role.
    pub role: NginxRole,
    /// Requests served by this instance.
    pub served: u64,
    /// Static response body.
    pub body: String,
}

impl NginxApp {
    /// Creates a server that forks `workers` clones at boot.
    pub fn new(workers: u32) -> Self {
        NginxApp {
            workers,
            role: NginxRole::Master,
            served: 0,
            body: "<html>nephele-nginx</html>".to_string(),
        }
    }

    fn respond(&mut self, env: &mut GuestEnv, conn: netmux::ConnId) {
        self.served += 1;
        let resp = format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
            self.body.len(),
            self.body
        );
        if let Some(p) = env.stack.tcp_send(conn, resp.into_bytes()) {
            env.transmit(0, p);
        }
    }
}

impl GuestApp for NginxApp {
    fn boxed_clone(&self) -> Box<dyn GuestApp> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_boot(&mut self, env: &mut GuestEnv) {
        env.stack.tcp_listen(HTTP_PORT);
        env.console_log("nginx: listening on :80\n");
        if self.workers > 0 {
            env.fork(self.workers);
        }
    }

    fn on_fork(&mut self, env: &mut GuestEnv, outcome: ForkOutcome) {
        match outcome {
            ForkOutcome::Parent { children } => {
                env.console_log(&format!("nginx: spawned {} workers\n", children.len()));
            }
            ForkOutcome::Child { .. } => {
                self.role = NginxRole::Worker;
                self.served = 0;
                // One worker per core, pinned ("each CPU core is used
                // exclusively by its pinned worker clone").
                let dom = env.dom;
                if let Ok(d) = env.hv.domain_mut(dom) {
                    let core = (dom.0 as usize).wrapping_sub(1) % 4;
                    for v in &mut d.vcpus {
                        v.affinity = Some(core);
                    }
                }
                env.console_log("nginx: worker online\n");
            }
        }
    }

    fn on_net_event(&mut self, env: &mut GuestEnv, evt: SockEvent) {
        match evt {
            SockEvent::TcpData { conn, data } => {
                if data.starts_with(b"GET ") {
                    self.respond(env, conn);
                }
            }
            SockEvent::TcpAccepted { .. } | SockEvent::TcpClosed { .. } => {}
            _ => {}
        }
    }
}

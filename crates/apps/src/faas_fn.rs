//! The FaaS function of §7.3: a Python "Hello World" behind HTTP.
//!
//! The paper deploys "a simple Python function returning a 'Hello World'
//! string" on Unikraft + Python 3.7 with "the Python runtime shared between
//! all unikernel instances via a 9pfs root file system". At boot the app
//! loads its function source through 9pfs; requests are answered over HTTP.

use devices::p9fs::{P9Request, P9Response};
use guest::{ForkOutcome, GuestApp, GuestEnv};
use netmux::SockEvent;

/// Function gateway port inside the instance.
pub const FN_PORT: u16 = 8080;

/// The function handler source file inside the 9pfs export.
pub const HANDLER_FILE: &str = "handler.py";

/// The FaaS function instance.
#[derive(Debug, Clone)]
pub struct FaasFnApp {
    /// Loaded function source (from the shared rootfs).
    pub handler_source: Option<String>,
    /// Invocations served by this instance.
    pub invocations: u64,
}

impl FaasFnApp {
    /// Creates a cold function instance.
    pub fn new() -> Self {
        FaasFnApp {
            handler_source: None,
            invocations: 0,
        }
    }

    fn load_handler(&mut self, env: &mut GuestEnv) {
        // Walk to and read handler.py from the shared 9pfs root.
        if env.p9(P9Request::Attach { fid: 0 }).is_none() {
            return;
        }
        let walked = env.p9(P9Request::Walk {
            fid: 0,
            newfid: 1,
            names: vec![HANDLER_FILE.to_string()],
        });
        if !matches!(walked, Some(P9Response::Ok)) {
            env.console_log("faas: no handler.py in rootfs\n");
            return;
        }
        env.p9(P9Request::Open { fid: 1 });
        if let Some(P9Response::Data(src)) =
            env.p9(P9Request::Read { fid: 1, offset: 0, count: 65536 })
        {
            self.handler_source = Some(String::from_utf8_lossy(&src).to_string());
        }
        env.p9(P9Request::Clunk { fid: 1 });
        env.p9(P9Request::Clunk { fid: 0 });
    }
}

impl Default for FaasFnApp {
    fn default() -> Self {
        Self::new()
    }
}

impl GuestApp for FaasFnApp {
    fn boxed_clone(&self) -> Box<dyn GuestApp> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_boot(&mut self, env: &mut GuestEnv) {
        self.load_handler(env);
        env.stack.tcp_listen(FN_PORT);
        env.console_log("faas: function ready\n");
    }

    fn on_fork(&mut self, env: &mut GuestEnv, outcome: ForkOutcome) {
        if let ForkOutcome::Child { .. } = outcome {
            // A cloned instance is immediately warm: the interpreter and
            // handler are already in (shared) memory.
            self.invocations = 0;
            env.console_log("faas: warm clone ready\n");
        }
    }

    fn on_net_event(&mut self, env: &mut GuestEnv, evt: SockEvent) {
        if let SockEvent::TcpData { conn, data } = evt {
            if data.starts_with(b"GET ") || data.starts_with(b"POST ") {
                self.invocations += 1;
                let body = "Hello World";
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                );
                if let Some(p) = env.stack.tcp_send(conn, resp.into_bytes()) {
                    env.transmit(0, p);
                }
            }
        }
    }
}

//! The Mini-OS UDP server used by the instantiation and memory-density
//! experiments (§6.1, Figs. 4–5).
//!
//! "Once the UDP server is ready it sends a UDP packet to notify the host.
//! After that, the VM waits for interrupts." Cloned instances keep the
//! parent's IP but bind a **unique port** derived from their domain id —
//! the collision-avoidance measure the paper applies so that no two
//! `<address, port>` tuples hash to the same bond slave.

use guest::{ForkOutcome, GuestApp, GuestEnv};
use netmux::SockEvent;

/// Destination port of the readiness notification on the host.
pub const NOTIFY_PORT: u16 = 9999;

/// The UDP echo/notify server.
#[derive(Debug, Clone)]
pub struct UdpEchoApp {
    /// The port this instance serves (rebased per clone).
    pub port: u16,
    /// Base port clones derive theirs from.
    pub base_port: u16,
    /// Datagrams echoed so far.
    pub echoed: u64,
    /// Whether the readiness notification has been sent.
    pub notified: bool,
    /// Whether clones rebind to a unique per-domain port (the collision
    /// avoidance of §6.1). Disable for shared-port load-balanced serving.
    pub unique_clone_ports: bool,
}

impl UdpEchoApp {
    /// Creates a server answering on `base_port`, with unique per-clone
    /// ports (the paper's Fig. 4/5 methodology).
    pub fn new(base_port: u16) -> Self {
        UdpEchoApp {
            port: base_port,
            base_port,
            echoed: 0,
            notified: false,
            unique_clone_ports: true,
        }
    }

    /// Creates a server whose clones keep the shared port (load-balanced
    /// serving through the bond, like the NGINX use case).
    pub fn shared_port(base_port: u16) -> Self {
        UdpEchoApp {
            unique_clone_ports: false,
            ..Self::new(base_port)
        }
    }

    fn announce(&mut self, env: &mut GuestEnv) {
        // The runtime's working set: stacks, timer wheels, socket state —
        // touched (and therefore COW-unshared in clones) as the server
        // comes up. Part of the ~0.6 MiB of non-ring private memory each
        // clone consumes in §6.2.
        let _ = env.heap.alloc_resident(env.hv, 256 * 1024);
        env.stack.udp_bind(self.port);
        env.udp_send_host(0, self.port, NOTIFY_PORT, b"ready".to_vec());
        self.notified = true;
    }
}

impl GuestApp for UdpEchoApp {
    fn boxed_clone(&self) -> Box<dyn GuestApp> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_boot(&mut self, env: &mut GuestEnv) {
        env.console_log("udp server ready\n");
        self.announce(env);
    }

    fn on_fork(&mut self, env: &mut GuestEnv, outcome: ForkOutcome) {
        if let ForkOutcome::Child { .. } = outcome {
            if self.unique_clone_ports {
                // Unique port per clone; same IP (bond collision
                // avoidance, §6.1).
                self.port = self.base_port.wrapping_add(env.dom.0 as u16);
            }
            self.echoed = 0;
            self.notified = false;
            self.announce(env);
        }
    }

    fn on_net_event(&mut self, env: &mut GuestEnv, evt: SockEvent) {
        if let SockEvent::UdpData {
            port,
            src_ip,
            src_port,
            payload,
        } = evt
        {
            if port == self.port {
                self.echoed += 1;
                let reply = env
                    .stack
                    .udp_send(guest::HOST_MAC, src_ip, self.port, src_port, payload);
                env.transmit(0, reply);
            }
        }
    }
}

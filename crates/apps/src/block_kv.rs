//! A tiny sector-granular key-value store over the COW block device.
//!
//! The workload for the block device's clone semantics: the parent writes
//! a working set into its disk, forks, and every clone diverges by
//! rewriting its own slots — while the family keeps sharing one base
//! image. Values are a pure function of `(slot, generation)` so runs are
//! deterministic and each instance can verify its own reads.

use devices::block::{Sector, SECTOR_SIZE};
use guest::{ForkOutcome, GuestApp, GuestEnv};

/// Builds the deterministic payload sector for `(slot, generation)`.
pub fn kv_sector(slot: u64, generation: u8) -> Sector {
    let mut s = [0u8; SECTOR_SIZE];
    for (i, b) in s.iter_mut().enumerate() {
        *b = (slot as u8) ^ generation ^ (i as u8);
    }
    s
}

/// The block key-value workload.
#[derive(Debug, Clone)]
pub struct BlockKvApp {
    /// Slots (sectors) in the working set.
    pub slots: u64,
    /// Generation written by this instance (children bump it).
    pub generation: u8,
    /// Slots verified to read back the expected value.
    pub verified: u64,
    /// Whether this instance is a clone.
    pub is_clone: bool,
}

impl BlockKvApp {
    /// Creates the workload with a working set of `slots` sectors.
    pub fn new(slots: u64) -> Self {
        BlockKvApp {
            slots,
            generation: 0,
            verified: 0,
            is_clone: false,
        }
    }

    fn write_and_verify(&mut self, env: &mut GuestEnv) {
        self.verified = 0;
        for slot in 0..self.slots {
            let val = kv_sector(slot, self.generation);
            if !env.vbd_write(0, slot, &val) {
                continue;
            }
            if env.vbd_read(0, slot) == Some(val) {
                self.verified += 1;
            }
        }
    }
}

impl GuestApp for BlockKvApp {
    fn boxed_clone(&self) -> Box<dyn GuestApp> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_boot(&mut self, env: &mut GuestEnv) {
        self.write_and_verify(env);
        env.console_log("block-kv ready\n");
    }

    fn on_fork(&mut self, env: &mut GuestEnv, outcome: ForkOutcome) {
        match outcome {
            ForkOutcome::Parent { .. } => {}
            ForkOutcome::Child { .. } => {
                self.is_clone = true;
                // Diverge: overwrite the inherited working set with the
                // child's own generation, exercising overlay COW.
                self.generation = self.generation.wrapping_add(1);
                self.write_and_verify(env);
                env.console_log("block-kv clone diverged\n");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sectors_are_deterministic_and_distinct() {
        assert_eq!(kv_sector(3, 0), kv_sector(3, 0));
        assert_ne!(kv_sector(3, 0), kv_sector(3, 1), "generations differ");
        assert_ne!(kv_sector(3, 0), kv_sector(4, 0), "slots differ");
    }
}

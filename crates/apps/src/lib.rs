//! Guest applications used throughout the paper's evaluation.
//!
//! * [`UdpEchoApp`] — the Mini-OS UDP server of the instantiation and
//!   memory-density experiments (Figs. 4–5);
//! * [`MemhogApp`] — the resident-memory + fork-server workload of the
//!   memory-scaling experiment (Fig. 6);
//! * [`NginxApp`] — the clone-scaling HTTP server (Fig. 7);
//! * [`RedisApp`] — the fork-snapshotting key-value store (Fig. 8);
//! * [`FuzzAdapterApp`] — the AFL syscall adapter (Fig. 9);
//! * [`FaasFnApp`] — the Python "Hello World" FaaS function (Figs. 10–11);
//! * [`BlockKvApp`] — sector-granular KV store over the COW block device;
//! * [`VsockRpcApp`] — vsock client exercising reconnect-on-clone;
//! * [`UsbProbeApp`] — URB submitter exercising detach-on-clone.

pub mod block_kv;
pub mod faas_fn;
pub mod fuzz_adapter;
pub mod memhog;
pub mod nginx;
pub mod redis;
pub mod udp_echo;
pub mod usb_probe;
pub mod vsock_rpc;

pub use block_kv::{kv_sector, BlockKvApp};
pub use faas_fn::{FaasFnApp, FN_PORT, HANDLER_FILE};
pub use fuzz_adapter::{default_syscall_table, interpret_input, ExecResult, FuzzAdapterApp, SYSCALL_TABLE_SIZE, SYS_GETPPID};
pub use memhog::{MemhogApp, MEMHOG_PORT};
pub use nginx::{NginxApp, NginxRole, HTTP_PORT};
pub use redis::{RedisApp, RedisRole, DUMP_FILE, REDIS_PORT};
pub use udp_echo::{UdpEchoApp, NOTIFY_PORT};
pub use usb_probe::UsbProbeApp;
pub use vsock_rpc::{hello_payload, VsockRpcApp};

//! A Redis-like in-memory key-value store with fork-based snapshots
//! (§7.1, Fig. 8).
//!
//! Redis "relies on fork() to create processes for saving the in-memory
//! database to storage" — the snapshot is the COW image of the parent's
//! memory at the fork point. Here the database values live in real guest
//! heap pages, so a mass insert dirties memory (raising the next clone's
//! cost) and the forked saver serializes the *fork-point* state through
//! 9pfs even while the parent keeps mutating.

use std::collections::BTreeMap;

use devices::p9fs::{P9Request, P9Response};
use guest::{ForkOutcome, GuestApp, GuestEnv, GuestPtr};
use netmux::SockEvent;

/// Redis listening port.
pub const REDIS_PORT: u16 = 6379;

/// Dump file name inside the 9pfs export.
pub const DUMP_FILE: &str = "dump.rdb";

/// Role of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedisRole {
    /// The serving instance.
    Server,
    /// A forked snapshot saver (writes the RDB then shuts down).
    Saver,
}

/// The key-value store.
#[derive(Debug, Clone)]
pub struct RedisApp {
    /// Role (flips to `Saver` in the forked child).
    pub role: RedisRole,
    /// Index: key → (heap location, length). Values live in guest memory.
    index: BTreeMap<String, (GuestPtr, u32)>,
    /// Database updates since the last save.
    pub dirty_keys: u64,
    /// Completed background saves observed by the parent.
    pub saves_completed: u64,
    /// Bytes written by this instance's last save (saver side).
    pub last_save_bytes: u64,
}

impl RedisApp {
    /// Creates an empty store.
    pub fn new() -> Self {
        RedisApp {
            role: RedisRole::Server,
            index: BTreeMap::new(),
            dirty_keys: 0,
            saves_completed: 0,
            last_save_bytes: 0,
        }
    }

    /// Number of keys stored.
    pub fn key_count(&self) -> usize {
        self.index.len()
    }

    /// Inserts or updates a key; the value bytes are written into guest
    /// heap memory (dirtying pages).
    pub fn set(&mut self, env: &mut GuestEnv, key: &str, value: &[u8]) {
        if let Some((ptr, len)) = self.index.get(key).copied() {
            if len as usize >= value.len() {
                let _ = env.heap.write(env.hv, ptr, value);
                self.index.insert(key.to_string(), (ptr, value.len() as u32));
                self.dirty_keys += 1;
                return;
            }
            env.heap.free(ptr);
        }
        let Some(ptr) = env.heap.alloc(value.len().max(1) as u64) else {
            return;
        };
        if env.heap.write(env.hv, ptr, value).is_ok() {
            self.index.insert(key.to_string(), (ptr, value.len() as u32));
            self.dirty_keys += 1;
        }
    }

    /// Reads a key's value back from guest memory.
    pub fn get(&self, env: &mut GuestEnv, key: &str) -> Option<Vec<u8>> {
        let (ptr, len) = self.index.get(key).copied()?;
        env.heap.read(env.hv, ptr, len as usize).ok()
    }

    /// Mass insertion (the paper populates the database with mass insert
    /// between the two saves).
    pub fn mass_insert(&mut self, env: &mut GuestEnv, count: u64, value_len: usize) {
        for i in 0..count {
            let key = format!("key:{i:08}");
            let value = vec![b'a' + (i % 23) as u8; value_len];
            self.set(env, &key, &value);
        }
    }

    /// Triggers a background save: forks a saver child.
    pub fn bgsave(&mut self, env: &mut GuestEnv) {
        env.fork(1);
    }

    /// Serializes the database to the 9pfs share (runs in the saver).
    pub fn dump_to_fs(&mut self, env: &mut GuestEnv) -> Option<u64> {
        self.write_dump(env)
    }

    fn write_dump(&mut self, env: &mut GuestEnv) -> Option<u64> {
        env.p9(P9Request::Attach { fid: 0 })?;
        match env.p9(P9Request::Create { fid: 0, name: DUMP_FILE.to_string() })? {
            P9Response::Ok => {}
            other => {
                env.console_log(&format!("redis: create failed: {other:?}\n"));
                return None;
            }
        }
        // Serialize into buffered chunks; one 9p write per 64 KiB, as the
        // real RDB writer streams through a buffered file.
        const CHUNK: usize = 64 * 1024;
        let mut offset = 0usize;
        let mut buf: Vec<u8> = Vec::with_capacity(CHUNK);
        let keys: Vec<(String, (GuestPtr, u32))> =
            self.index.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let serialize_cost = env.hv.costs().redis_serialize_per_key;
        for (key, (ptr, len)) in keys {
            env.hv.clock().advance(serialize_cost);
            let value = env.heap.read(env.hv, ptr, len as usize).ok()?;
            buf.extend_from_slice(key.as_bytes());
            buf.push(b'=');
            buf.extend_from_slice(&value);
            buf.push(b'\n');
            if buf.len() >= CHUNK {
                let data = std::mem::take(&mut buf);
                let n = data.len();
                match env.p9(P9Request::Write { fid: 0, offset, data })? {
                    P9Response::Count(w) if w == n => offset += n,
                    other => {
                        env.console_log(&format!("redis: write failed: {other:?}\n"));
                        return None;
                    }
                }
            }
        }
        if !buf.is_empty() {
            let n = buf.len();
            match env.p9(P9Request::Write { fid: 0, offset, data: buf })? {
                P9Response::Count(w) if w == n => offset += n,
                other => {
                    env.console_log(&format!("redis: write failed: {other:?}\n"));
                    return None;
                }
            }
        }
        env.p9(P9Request::Clunk { fid: 0 })?;
        Some(offset as u64)
    }
}

impl Default for RedisApp {
    fn default() -> Self {
        Self::new()
    }
}

impl GuestApp for RedisApp {
    fn boxed_clone(&self) -> Box<dyn GuestApp> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_boot(&mut self, env: &mut GuestEnv) {
        env.stack.tcp_listen(REDIS_PORT);
        env.console_log("redis: ready\n");
    }

    fn on_fork(&mut self, env: &mut GuestEnv, outcome: ForkOutcome) {
        match outcome {
            ForkOutcome::Parent { .. } => {
                // The snapshot is now safely COW-isolated in the child.
                self.saves_completed += 1;
                self.dirty_keys = 0;
            }
            ForkOutcome::Child { .. } => {
                self.role = RedisRole::Saver;
                if let Some(bytes) = self.write_dump(env) {
                    self.last_save_bytes = bytes;
                    env.console_log(&format!("redis: saved {bytes} bytes\n"));
                }
                env.shutdown();
            }
        }
    }

    fn on_net_event(&mut self, env: &mut GuestEnv, evt: SockEvent) {
        let SockEvent::TcpData { conn, data } = evt else {
            return;
        };
        let text = String::from_utf8_lossy(&data);
        let mut parts = text.trim_end().splitn(3, ' ');
        let reply: Vec<u8> = match (parts.next(), parts.next(), parts.next()) {
            (Some("PING"), _, _) => b"+PONG\r\n".to_vec(),
            (Some("SET"), Some(k), Some(v)) => {
                self.set(env, k, v.as_bytes());
                b"+OK\r\n".to_vec()
            }
            (Some("GET"), Some(k), _) => match self.get(env, k) {
                Some(v) => {
                    let mut r = format!("${}\r\n", v.len()).into_bytes();
                    r.extend_from_slice(&v);
                    r.extend_from_slice(b"\r\n");
                    r
                }
                None => b"$-1\r\n".to_vec(),
            },
            (Some("BGSAVE"), _, _) => {
                self.bgsave(env);
                b"+Background saving started\r\n".to_vec()
            }
            (Some("DBSIZE"), _, _) => format!(":{}\r\n", self.key_count()).into_bytes(),
            _ => b"-ERR unknown command\r\n".to_vec(),
        };
        if let Some(p) = env.stack.tcp_send(conn, reply) {
            env.transmit(0, p);
        }
    }
}

//! A vsock RPC client: each instance announces itself to a Dom0 service.
//!
//! The workload for the vsock device's reconnect-on-clone semantics: the
//! parent sends a hello on its stream, forks, and every clone sends its
//! own hello on its *own* reconnected stream — none of the parent's
//! buffered messages leak into the child's connection.

use guest::{ForkOutcome, GuestApp, GuestEnv};

/// The hello payload an instance sends on (re)connect.
pub fn hello_payload(domid: u32, is_clone: bool) -> Vec<u8> {
    format!("hello from dom{domid} clone={is_clone}").into_bytes()
}

/// The vsock RPC workload.
#[derive(Debug, Clone)]
pub struct VsockRpcApp {
    /// Messages this instance successfully sent.
    pub sent: u64,
    /// Whether this instance is a clone.
    pub is_clone: bool,
}

impl VsockRpcApp {
    /// Creates the workload.
    pub fn new() -> Self {
        VsockRpcApp {
            sent: 0,
            is_clone: false,
        }
    }
}

impl Default for VsockRpcApp {
    fn default() -> Self {
        VsockRpcApp::new()
    }
}

impl GuestApp for VsockRpcApp {
    fn boxed_clone(&self) -> Box<dyn GuestApp> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_boot(&mut self, env: &mut GuestEnv) {
        if env.vsock_send(hello_payload(env.dom.0, false)) {
            self.sent += 1;
        }
        env.console_log("vsock-rpc up\n");
    }

    fn on_fork(&mut self, env: &mut GuestEnv, outcome: ForkOutcome) {
        match outcome {
            ForkOutcome::Parent { .. } => {}
            ForkOutcome::Child { .. } => {
                self.is_clone = true;
                // The clone's stream is fresh: its hello is the first and
                // only message on it.
                self.sent = 0;
                if env.vsock_send(hello_payload(env.dom.0, true)) {
                    self.sent += 1;
                }
                env.console_log("vsock-rpc clone reconnected\n");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_payload_identifies_the_instance() {
        assert_eq!(hello_payload(7, false), b"hello from dom7 clone=false");
        assert_ne!(hello_payload(7, false), hello_payload(7, true));
    }
}

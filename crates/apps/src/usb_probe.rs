//! A USB probe: exercises an exclusively passed-through device.
//!
//! The workload for detach-on-clone semantics: the parent submits URBs to
//! its device, forks, and the clone — which deliberately comes up without
//! the exclusive device — observes its submissions fail and records that
//! it is running detached.

use guest::{ForkOutcome, GuestApp, GuestEnv};

/// The USB probe workload.
#[derive(Debug, Clone)]
pub struct UsbProbeApp {
    /// URBs to submit at boot and after each fork.
    pub burst: u32,
    /// URBs that completed in this instance.
    pub completed: u64,
    /// URBs that failed (device absent — expected in clones).
    pub failed: u64,
    /// Whether this instance is a clone.
    pub is_clone: bool,
}

impl UsbProbeApp {
    /// Creates the workload submitting `burst` URBs per round.
    pub fn new(burst: u32) -> Self {
        UsbProbeApp {
            burst,
            completed: 0,
            failed: 0,
            is_clone: false,
        }
    }

    fn probe(&mut self, env: &mut GuestEnv) {
        for _ in 0..self.burst {
            if env.usb_submit(0) {
                self.completed += 1;
            } else {
                self.failed += 1;
            }
        }
    }
}

impl GuestApp for UsbProbeApp {
    fn boxed_clone(&self) -> Box<dyn GuestApp> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_boot(&mut self, env: &mut GuestEnv) {
        self.probe(env);
        env.console_log("usb-probe up\n");
    }

    fn on_fork(&mut self, env: &mut GuestEnv, outcome: ForkOutcome) {
        match outcome {
            ForkOutcome::Parent { .. } => self.probe(env),
            ForkOutcome::Child { .. } => {
                self.is_clone = true;
                self.completed = 0;
                self.failed = 0;
                self.probe(env);
                env.console_log("usb-probe clone detached\n");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_clean() {
        let a = UsbProbeApp::new(4);
        assert_eq!(a.burst, 4);
        assert_eq!(a.completed + a.failed, 0);
        assert!(!a.is_clone);
    }
}

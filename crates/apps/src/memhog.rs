//! The memory-scaling workload of §6.2 (Fig. 6).
//!
//! "The application allocates a chunk of memory that must be resident.
//! [...] Once the required memory is allocated, the application starts a
//! simple TCP server that receives requests for forking/cloning." Built
//! with the tinyalloc allocator, as in the paper.

use guest::{ForkOutcome, GuestApp, GuestEnv, GuestPtr};
use netmux::SockEvent;

/// TCP port the fork-request server listens on.
pub const MEMHOG_PORT: u16 = 4242;

/// The resident-memory + fork-server workload.
#[derive(Debug, Clone)]
pub struct MemhogApp {
    /// Bytes to allocate and touch at boot.
    pub resident_bytes: u64,
    /// The resident allocation, once made.
    pub region: Option<GuestPtr>,
    /// Forks performed in this instance.
    pub forks: u64,
    /// Whether this instance is a clone.
    pub is_clone: bool,
}

impl MemhogApp {
    /// Creates the workload with `mib` MiB of resident memory.
    pub fn new(mib: u64) -> Self {
        MemhogApp {
            resident_bytes: mib * 1024 * 1024,
            region: None,
            forks: 0,
            is_clone: false,
        }
    }
}

impl GuestApp for MemhogApp {
    fn boxed_clone(&self) -> Box<dyn GuestApp> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_boot(&mut self, env: &mut GuestEnv) {
        self.region = env.heap.alloc_resident(env.hv, self.resident_bytes);
        debug_assert!(self.region.is_some(), "resident allocation failed");
        env.stack.tcp_listen(MEMHOG_PORT);
        env.console_log("memhog resident, fork server up\n");
    }

    fn on_net_event(&mut self, env: &mut GuestEnv, evt: SockEvent) {
        match evt {
            SockEvent::TcpData { conn, data } if data.starts_with(b"fork") => {
                env.fork(1);
                if let Some(p) = env.stack.tcp_send(conn, b"forking\n".to_vec()) {
                    env.transmit(0, p);
                }
            }
            _ => {}
        }
    }

    fn on_fork(&mut self, env: &mut GuestEnv, outcome: ForkOutcome) {
        match outcome {
            ForkOutcome::Parent { .. } => self.forks += 1,
            ForkOutcome::Child { .. } => {
                self.is_clone = true;
                env.console_log("memhog clone alive\n");
            }
        }
    }
}

//! Hermetic in-repo test kit.
//!
//! The workspace must build and test with **zero external registry
//! dependencies**, so the usual third-party harnesses (proptest, criterion)
//! are replaced by this crate:
//!
//! * [`prop`] — deterministic property testing. Generators are combinator
//!   values ([`prop::u32s`], [`prop::ranges`], [`prop::vecs`],
//!   [`prop::one_of`], [`prop::weighted`], `map`/`filter`) drawn from a
//!   [`prop::Source`] whose randomness flows from [`sim_core::SplitMix64`] —
//!   the same generator that drives the simulator's virtual time — so every
//!   run is reproducible from a single printed seed. Failing inputs are
//!   greedily shrunk to a minimal *choice tape* and persisted to a
//!   `testkit-regressions` corpus file that is replayed before any new
//!   random cases (replacing proptest's `.proptest-regressions`).
//! * [`mod@bench`] — a micro-benchmark harness (warmup, calibrated batching,
//!   median/p90/p99 reporting, JSON output under `results/`) replacing
//!   criterion for the `crates/bench/benches/*.rs` targets, which keep
//!   `harness = false` so `cargo bench` still works.
//!
//! See `DESIGN.md` ("Deterministic randomness") and the README's
//! "Testing & benchmarks" section for usage and replay instructions.

pub mod bench;
pub mod prop;

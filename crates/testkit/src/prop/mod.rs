//! Deterministic property testing on top of [`sim_core::SplitMix64`].
//!
//! # Model
//!
//! A property is a closure `|g: &mut Source| { ... }` that *draws* inputs
//! from generator combinators and asserts with the standard `assert!`
//! family. All randomness flows from a seeded `SplitMix64`, and every draw
//! is recorded as a bounded integer on a **choice tape**, so any input is
//! reproducible from either its seed or its tape.
//!
//! On failure the runner greedily shrinks the tape ([`minimize`]) to a
//! minimal counterexample, prints it together with the seed, and appends
//! it to the crate's `tests/testkit-regressions` corpus file. Corpus
//! entries matching the test name are replayed *before* any random cases,
//! replacing proptest's `.proptest-regressions` mechanism.
//!
//! # Example
//!
//! ```
//! use testkit::prop::{check, ranges, vecs, Gen};
//!
//! check(64, |g| {
//!     let xs = g.draw(&vecs(ranges(0u32..100), 0..20));
//!     let mut sorted = xs.clone();
//!     sorted.sort();
//!     assert_eq!(sorted.len(), xs.len());
//! });
//! ```
//!
//! To replay a failure by hand: `TESTKIT_SEED=0x1234 cargo test -q name`,
//! or keep the printed `name: 1 49` line in `tests/testkit-regressions`.

mod gen;

pub use gen::{
    bools,
    btree_sets,
    just,
    lower_alpha_strings,
    one_of,
    ranges,
    u16s,
    u32s,
    u64s,
    u8s,
    usizes,
    vecs,
    weighted,
    BoxGen,
    Gen,
    Int, //
};

use std::fmt::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use sim_core::SplitMix64;

/// The draw context handed to properties: either a recording random
/// stream or a replayed choice tape.
pub struct Source {
    rng: Option<SplitMix64>,
    replay: Vec<u64>,
    tape: Vec<u64>,
}

impl Source {
    /// A random source seeded with `seed`; draws are recorded on the tape.
    pub fn random(seed: u64) -> Self {
        Source::from_rng(SplitMix64::new(seed))
    }

    fn from_rng(rng: SplitMix64) -> Self {
        Source { rng: Some(rng), replay: Vec::new(), tape: Vec::new() }
    }

    /// A source replaying `tape`; draws past its end return 0 (the
    /// minimal choice), so truncated tapes stay meaningful.
    pub fn replay(tape: Vec<u64>) -> Self {
        Source { rng: None, replay: tape, tape: Vec::new() }
    }

    /// Draws one value from a generator.
    pub fn draw<G: Gen + ?Sized>(&mut self, g: &G) -> G::Value {
        g.generate(self)
    }

    /// Draws a raw choice in `[0, bound)` (`bound == 0` means the full
    /// `u64` range). Generators are built from this primitive.
    pub fn choice(&mut self, bound: u64) -> u64 {
        let v = match &mut self.rng {
            Some(rng) => {
                if bound == 0 {
                    rng.next_u64()
                } else {
                    rng.next_below(bound)
                }
            }
            None => {
                let raw = self.replay.get(self.tape.len()).copied().unwrap_or(0);
                if bound == 0 || raw < bound {
                    raw
                } else {
                    raw % bound
                }
            }
        };
        self.tape.push(v);
        v
    }

    /// The choices drawn so far, normalised (bounded, in draw order).
    pub fn tape(&self) -> &[u64] {
        &self.tape
    }
}

/// Runs `property` against `cases` random inputs (plus any recorded
/// regression tapes) with the default configuration.
///
/// Failures are shrunk, reported with their seed and minimal tape, and
/// persisted to the corpus file. Panics (with context) on the first
/// failing input.
pub fn check<F: Fn(&mut Source)>(cases: u32, property: F) {
    Config::new(cases).run(property)
}

/// Configuration for a [`check`] run.
pub struct Config {
    cases: u32,
    seed: Option<u64>,
    name: Option<String>,
    persist: bool,
    corpus_dir: Option<PathBuf>,
}

impl Config {
    /// A default configuration running `cases` random cases.
    pub fn new(cases: u32) -> Self {
        Config { cases, seed: None, name: None, persist: true, corpus_dir: None }
    }

    /// Fixes the base seed (otherwise derived from the test name, or the
    /// `TESTKIT_SEED` environment variable when set).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Overrides the test name used for corpus lookup and reporting
    /// (otherwise inferred from the property closure's type name).
    pub fn name(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    /// Disables writing failures to the regression corpus.
    pub fn persist(mut self, persist: bool) -> Self {
        self.persist = persist;
        self
    }

    /// Overrides the directory holding `testkit-regressions` (defaults to
    /// `$CARGO_MANIFEST_DIR/tests`).
    pub fn corpus_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.corpus_dir = Some(dir.into());
        self
    }

    /// Runs the property. See [`check`].
    pub fn run<F: Fn(&mut Source)>(self, property: F) {
        let name = self
            .name
            .clone()
            .or_else(closure_name::<F>)
            .or_else(|| std::thread::current().name().map(str::to_string))
            .unwrap_or_else(|| "property".to_string());
        let corpus = self
            .corpus_dir
            .clone()
            .unwrap_or_else(|| {
                Path::new(&std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into()))
                    .join("tests")
            })
            .join("testkit-regressions");

        // Phase 1: replay recorded regressions for this test first.
        for tape in load_corpus(&corpus, &name) {
            if let Outcome::Fail(_, norm) = eval(&property, Source::replay(tape)) {
                self.report(&name, &corpus, None, minimize(&property, norm), &property);
            }
        }

        // Phase 2: fresh random cases, one forked stream per case.
        let base = self.seed.or_else(env_seed).unwrap_or_else(|| default_seed(&name));
        let mut master = SplitMix64::new(base);
        let mut passed = 0u32;
        let mut case = 0u32;
        let mut discards = 0u32;
        while passed < self.cases {
            let src = Source::from_rng(master.fork_stream());
            match eval(&property, src) {
                Outcome::Pass => passed += 1,
                Outcome::Skip(why) => {
                    // Discarded cases are regenerated, within a budget that
                    // catches unsatisfiable filters.
                    discards += 1;
                    assert!(
                        discards <= 4 * self.cases.max(25),
                        "[testkit] property '{name}' discarded {discards} cases \
                         (last reason: {why})"
                    );
                }
                Outcome::Fail(_, norm) => {
                    let minimal = minimize(&property, norm);
                    self.report(&name, &corpus, Some((base, case)), minimal, &property);
                }
            }
            case += 1;
        }
    }

    fn report<F: Fn(&mut Source)>(
        &self,
        name: &str,
        corpus: &Path,
        seed: Option<(u64, u32)>,
        minimal: Vec<u64>,
        property: &F,
    ) -> ! {
        let assertion = match eval(property, Source::replay(minimal.clone())) {
            Outcome::Fail(msg, _) => msg,
            _ => "(assertion no longer reproduces on the minimal tape)".to_string(),
        };
        let line = corpus_line(name, &minimal);
        let mut msg = format!("\n[testkit] property '{name}' failed: {assertion}\n");
        let _ = writeln!(msg, "[testkit] minimal tape ({} choices): {line}", minimal.len());
        match seed {
            Some((base, case)) => {
                let _ = writeln!(
                    msg,
                    "[testkit] found with seed {base:#x} at case {case}; \
                     rerun with TESTKIT_SEED={base:#x}"
                );
            }
            None => {
                let _ = writeln!(msg, "[testkit] reproduced from the regression corpus");
            }
        }
        if self.persist {
            match append_corpus(corpus, &line) {
                Ok(true) => {
                    let _ = writeln!(msg, "[testkit] tape recorded in {}", corpus.display());
                }
                Ok(false) => {
                    let _ = writeln!(msg, "[testkit] tape already in {}", corpus.display());
                }
                Err(e) => {
                    let _ = writeln!(msg, "[testkit] could not write {}: {e}", corpus.display());
                }
            }
        }
        panic!("{msg}");
    }
}

/// Greedily shrinks a failing choice tape to a minimal one that still
/// fails `property`: alternating passes of block deletion (shorter tapes)
/// and per-choice binary minimisation (smaller choices), until a fixpoint
/// or an evaluation budget is reached.
pub fn minimize<F: Fn(&mut Source)>(property: &F, tape: Vec<u64>) -> Vec<u64> {
    let mut best = match eval(property, Source::replay(tape.clone())) {
        Outcome::Fail(_, norm) => norm,
        _ => return tape, // flaky input; report what we were given
    };
    let mut budget = 3000usize;
    let try_tape = |cand: &[u64], budget: &mut usize| -> Option<Vec<u64>> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        match eval(property, Source::replay(cand.to_vec())) {
            Outcome::Fail(_, norm) => Some(norm),
            _ => None,
        }
    };
    let better = |a: &[u64], b: &[u64]| a.len() < b.len() || (a.len() == b.len() && a < b);

    loop {
        let mut improved = false;

        // Pass 1: delete blocks of choices, largest first.
        let mut block = best.len().max(1).next_power_of_two();
        while block >= 1 && budget > 0 {
            let mut start = 0;
            while start < best.len() && budget > 0 {
                let end = (start + block).min(best.len());
                let cand: Vec<u64> =
                    best[..start].iter().chain(&best[end..]).copied().collect();
                match try_tape(&cand, &mut budget) {
                    Some(norm) if better(&norm, &best) => {
                        best = norm;
                        improved = true;
                    }
                    _ => start += block,
                }
            }
            if block == 1 {
                break;
            }
            block /= 2;
        }

        // Pass 2: per position, binary-search the smallest failing choice.
        let mut i = 0;
        while i < best.len() && budget > 0 {
            let (mut lo, mut hi) = (0u64, best[i]);
            while lo < hi && budget > 0 {
                let mid = lo + (hi - lo) / 2;
                let mut cand = best.clone();
                cand[i] = mid;
                match try_tape(&cand, &mut budget) {
                    Some(norm) if better(&norm, &best) => {
                        let len_changed = norm.len() != best.len();
                        best = norm;
                        improved = true;
                        if len_changed {
                            break; // indices shifted; restart outer loop
                        }
                        hi = mid;
                    }
                    _ => lo = mid + 1,
                }
            }
            i += 1;
        }

        if !improved || budget == 0 {
            return best;
        }
    }
}

enum Outcome {
    Pass,
    /// The case was discarded (e.g. a filter gave up) — not a failure.
    Skip(&'static str),
    /// The property panicked; carries the panic message and the
    /// normalised tape of the choices actually drawn.
    Fail(String, Vec<u64>),
}

/// Marker payload for discarded cases; see [`discard_case`].
struct Discard(&'static str);

/// Aborts the current test case without failing it. Used by generators
/// ([`Gen::filter`], [`btree_sets`]) that cannot produce a value.
pub(crate) fn discard_case(why: &'static str) -> ! {
    panic::panic_any(Discard(why))
}

fn eval<F: Fn(&mut Source)>(property: &F, mut src: Source) -> Outcome {
    let _quiet = SilencePanics::new();
    let result = panic::catch_unwind(AssertUnwindSafe(|| property(&mut src)));
    match result {
        Ok(()) => Outcome::Pass,
        Err(payload) => {
            if let Some(d) = payload.downcast_ref::<Discard>() {
                Outcome::Skip(d.0)
            } else {
                // `&*payload`: deref the box so the inner value is the
                // `dyn Any` (a bare `&payload` would unsize the Box itself
                // into the trait object and every downcast would miss).
                Outcome::Fail(payload_message(&*payload), src.tape().to_vec())
            }
        }
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}

/// While any property evaluation is in flight, the global panic hook is
/// swapped for a silent one so expected panics (hundreds during
/// shrinking) do not flood the output. Depth-counted so concurrent test
/// threads compose; the original hook is restored by the last one out.
struct SilencePanics;

static HOOK: Mutex<HookState> = Mutex::new(HookState { depth: 0, saved: None });

struct HookState {
    depth: usize,
    saved: Option<Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send>>,
}

impl SilencePanics {
    fn new() -> Self {
        let mut st = HOOK.lock().unwrap();
        if st.depth == 0 {
            st.saved = Some(panic::take_hook());
            panic::set_hook(Box::new(|_| {}));
        }
        st.depth += 1;
        SilencePanics
    }
}

impl Drop for SilencePanics {
    fn drop(&mut self) {
        let mut st = HOOK.lock().unwrap();
        st.depth -= 1;
        if st.depth == 0 {
            if let Some(hook) = st.saved.take() {
                panic::set_hook(hook);
            }
        }
    }
}

/// Infers the enclosing test function's name from the property closure's
/// type name (e.g. `prop_ring::ring_is_a_bounded_fifo::{{closure}}`).
/// Robust against `--test-threads=1`, unlike the thread name.
fn closure_name<F>() -> Option<String> {
    let mut name = std::any::type_name::<F>();
    while let Some(stripped) = name.strip_suffix("::{{closure}}") {
        name = stripped;
    }
    let last = name.rsplit("::").next()?;
    (!last.is_empty() && !last.contains('{')).then(|| last.to_string())
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var("TESTKIT_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("[testkit] unparseable TESTKIT_SEED {raw:?}"),
    }
}

/// FNV-1a over the test name: a stable per-test default seed.
fn default_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---- regression corpus ----------------------------------------------------
//
// Format, one entry per line (decimal choices; `#` starts a comment):
//
//     <test-name>: <choice> <choice> ...
//
// Entries are replayed in file order before random generation.

fn corpus_line(name: &str, tape: &[u64]) -> String {
    let mut line = format!("{name}:");
    for c in tape {
        let _ = write!(line, " {c}");
    }
    line
}

fn load_corpus(path: &Path, name: &str) -> Vec<Vec<u64>> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut tapes = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        let Some((key, rest)) = line.split_once(':') else {
            continue;
        };
        if key.trim() != name {
            continue;
        }
        let tape: Result<Vec<u64>, _> = rest.split_whitespace().map(str::parse).collect();
        match tape {
            Ok(t) => tapes.push(t),
            Err(e) => panic!(
                "[testkit] bad corpus line {} in {}: {e}",
                lineno + 1,
                path.display()
            ),
        }
    }
    tapes
}

/// Appends `line` to the corpus file (creating it with a header first).
/// Returns `Ok(false)` if an identical entry is already present.
fn append_corpus(path: &Path, line: &str) -> std::io::Result<bool> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    if existing.lines().any(|l| l.trim() == line) {
        return Ok(false);
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut text = existing;
    if text.is_empty() {
        text.push_str(
            "# testkit regression corpus. Each line is `<test-name>: <choice tape>`\n\
             # and is replayed before random cases are generated. Keep this file in\n\
             # source control so recorded failures stay fixed (see DESIGN.md).\n",
        );
    }
    if !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(line);
    text.push('\n');
    std::fs::write(path, text)?;
    Ok(true)
}

//! Generator combinators.
//!
//! A generator is a value implementing [`Gen`]: it produces a `Value` by
//! drawing bounded integer *choices* from a [`Source`]. Because every
//! generated input is fully described by its choice sequence, the runner
//! can replay and shrink inputs generically — no per-type shrinkers.
//!
//! Choices are made so that *smaller choice values mean simpler inputs*
//! (a zero choice picks a range's lower bound, the first `one_of` arm, the
//! shortest collection), which is what lets the greedy tape shrinker in
//! [`super::minimize`] converge on minimal counterexamples.

use std::collections::BTreeSet;
use std::ops::Range;

use super::Source;

/// A deterministic value generator driven by bounded choices.
pub trait Gen {
    /// The type of generated values.
    type Value;

    /// Produces one value, drawing choices from `src`.
    fn generate(&self, src: &mut Source) -> Self::Value;

    /// Transforms generated values with `f`.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `keep`, redrawing otherwise.
    ///
    /// After 100 consecutive rejections the current test case is discarded
    /// (it does not count as a failure). Prefer constructive generators
    /// over heavy filtering.
    fn filter<F>(self, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, keep }
    }

    /// Type-erases the generator so heterogeneous generators of the same
    /// `Value` can be mixed in [`one_of`] / [`weighted`].
    fn boxed(self) -> BoxGen<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased generator.
pub type BoxGen<V> = Box<dyn Gen<Value = V>>;

impl<V> Gen for BoxGen<V> {
    type Value = V;
    fn generate(&self, src: &mut Source) -> V {
        (**self).generate(src)
    }
}

impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;
    fn generate(&self, src: &mut Source) -> Self::Value {
        (**self).generate(src)
    }
}

/// See [`Gen::map`].
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, U, F: Fn(G::Value) -> U> Gen for Map<G, F> {
    type Value = U;
    fn generate(&self, src: &mut Source) -> U {
        (self.f)(self.inner.generate(src))
    }
}

/// See [`Gen::filter`].
pub struct Filter<G, F> {
    inner: G,
    keep: F,
}

impl<G: Gen, F: Fn(&G::Value) -> bool> Gen for Filter<G, F> {
    type Value = G::Value;
    fn generate(&self, src: &mut Source) -> G::Value {
        for _ in 0..100 {
            let v = self.inner.generate(src);
            if (self.keep)(&v) {
                return v;
            }
        }
        super::discard_case("filter rejected 100 consecutive draws")
    }
}

/// Unsigned integer types usable with [`ranges`].
pub trait Int: Copy {
    fn from_u64(v: u64) -> Self;
    fn to_u64(self) -> u64;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Int for $t {
            fn from_u64(v: u64) -> Self { v as $t }
            fn to_u64(self) -> u64 { self as u64 }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize);

/// Uniform values in `[r.start, r.end)`. A zero choice yields `r.start`.
pub fn ranges<T: Int>(r: Range<T>) -> impl Gen<Value = T> {
    let (lo, hi) = (r.start.to_u64(), r.end.to_u64());
    assert!(lo < hi, "empty generator range [{lo}, {hi})");
    FromFn(move |src: &mut Source| T::from_u64(lo + src.choice(hi - lo)))
}

struct FromFn<F>(F);
impl<V, F: Fn(&mut Source) -> V> Gen for FromFn<F> {
    type Value = V;
    fn generate(&self, src: &mut Source) -> V {
        (self.0)(src)
    }
}

/// Any `u8`.
pub fn u8s() -> impl Gen<Value = u8> {
    FromFn(|src: &mut Source| src.choice(1 << 8) as u8)
}

/// Any `u16`.
pub fn u16s() -> impl Gen<Value = u16> {
    FromFn(|src: &mut Source| src.choice(1 << 16) as u16)
}

/// Any `u32`.
pub fn u32s() -> impl Gen<Value = u32> {
    FromFn(|src: &mut Source| src.choice(1 << 32) as u32)
}

/// Any `u64`.
pub fn u64s() -> impl Gen<Value = u64> {
    FromFn(|src: &mut Source| src.choice(0))
}

/// Any `usize`.
pub fn usizes() -> impl Gen<Value = usize> {
    FromFn(|src: &mut Source| src.choice(0) as usize)
}

/// Either boolean.
pub fn bools() -> impl Gen<Value = bool> {
    FromFn(|src: &mut Source| src.choice(2) == 1)
}

/// Always `v`.
pub fn just<V: Clone>(v: V) -> impl Gen<Value = V> {
    FromFn(move |_: &mut Source| v.clone())
}

/// A `Vec` of `elem` values with a length drawn from `len`.
pub fn vecs<G: Gen>(elem: G, len: Range<usize>) -> impl Gen<Value = Vec<G::Value>> {
    let len = ranges(len);
    FromFn(move |src: &mut Source| {
        let n = len.generate(src);
        (0..n).map(|_| elem.generate(src)).collect()
    })
}

/// A `BTreeSet` of distinct `elem` values with a size drawn from `size`.
///
/// Discards the test case if the element domain is too small to reach the
/// requested minimum size within a bounded number of draws.
pub fn btree_sets<G>(elem: G, size: Range<usize>) -> impl Gen<Value = BTreeSet<G::Value>>
where
    G: Gen,
    G::Value: Ord,
{
    let size = ranges(size);
    FromFn(move |src: &mut Source| {
        let target = size.generate(src);
        let mut set = BTreeSet::new();
        for _ in 0..(20 * target + 50) {
            if set.len() >= target {
                break;
            }
            set.insert(elem.generate(src));
        }
        if set.len() < target.min(1) {
            super::discard_case("btree_sets could not reach its minimum size")
        }
        set
    })
}

/// Lowercase ASCII strings with a length drawn from `len` (the stand-in
/// for proptest's `"[a-z]{m,n}"` regex strategies).
pub fn lower_alpha_strings(len: Range<usize>) -> impl Gen<Value = String> {
    let len = ranges(len);
    FromFn(move |src: &mut Source| {
        let n = len.generate(src);
        (0..n).map(|_| (b'a' + src.choice(26) as u8) as char).collect()
    })
}

/// Picks one of `arms` uniformly.
pub fn one_of<V>(arms: Vec<BoxGen<V>>) -> impl Gen<Value = V> {
    assert!(!arms.is_empty(), "one_of needs at least one arm");
    FromFn(move |src: &mut Source| {
        let i = src.choice(arms.len() as u64) as usize;
        arms[i].generate(src)
    })
}

/// Picks among `arms` with the given relative weights (the stand-in for
/// proptest's `prop_oneof![w1 => a, w2 => b]`).
pub fn weighted<V>(arms: Vec<(u32, BoxGen<V>)>) -> impl Gen<Value = V> {
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "weighted needs a positive total weight");
    FromFn(move |src: &mut Source| {
        let mut c = src.choice(total);
        for (w, g) in &arms {
            if c < *w as u64 {
                return g.generate(src);
            }
            c -= *w as u64;
        }
        unreachable!("choice below total weight")
    })
}

impl<A: Gen, B: Gen> Gen for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, src: &mut Source) -> Self::Value {
        (self.0.generate(src), self.1.generate(src))
    }
}

impl<A: Gen, B: Gen, C: Gen> Gen for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, src: &mut Source) -> Self::Value {
        (self.0.generate(src), self.1.generate(src), self.2.generate(src))
    }
}

impl<A: Gen, B: Gen, C: Gen, D: Gen> Gen for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, src: &mut Source) -> Self::Value {
        (
            self.0.generate(src),
            self.1.generate(src),
            self.2.generate(src),
            self.3.generate(src),
        )
    }
}

impl<A: Gen, B: Gen, C: Gen, D: Gen, E: Gen> Gen for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, src: &mut Source) -> Self::Value {
        (
            self.0.generate(src),
            self.1.generate(src),
            self.2.generate(src),
            self.3.generate(src),
            self.4.generate(src),
        )
    }
}

impl<A: Gen, B: Gen, C: Gen, D: Gen, E: Gen, F: Gen> Gen for (A, B, C, D, E, F) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value);
    fn generate(&self, src: &mut Source) -> Self::Value {
        (
            self.0.generate(src),
            self.1.generate(src),
            self.2.generate(src),
            self.3.generate(src),
            self.4.generate(src),
            self.5.generate(src),
        )
    }
}

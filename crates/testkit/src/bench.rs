//! Micro-benchmark harness replacing criterion for the `crates/bench`
//! targets (which keep `harness = false`, so `cargo bench` runs them).
//!
//! Each benchmark function measures wall-clock time of a closure:
//! a warmup phase first calibrates a batch size so that one sample spans
//! at least ~50µs (amortising timer overhead for fast operations), then a
//! fixed number of samples is collected and summarised as
//! median / p90 / p99 / mean / min / max per-iteration nanoseconds.
//!
//! [`Bench::finish`] prints a summary table and writes
//! `results/BENCH_<name>.json` at the workspace root — the same
//! `results/` directory the figure binaries use — in a flat,
//! hand-parseable shape (see [`parse_report`], which round-trips it
//! without serde).
//!
//! ```no_run
//! use testkit::bench::Bench;
//!
//! fn bench_sum(c: &mut Bench) {
//!     let mut g = c.benchmark_group("math");
//!     g.sample_size(20);
//!     g.bench_function("sum_1k", |b| {
//!         let xs: Vec<u64> = (0..1000).collect();
//!         b.iter(|| xs.iter().sum::<u64>());
//!     });
//!     g.finish();
//! }
//!
//! fn main() {
//!     let mut c = Bench::new("example");
//!     bench_sum(&mut c);
//!     c.finish();
//! }
//! ```

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Default number of timed samples per benchmark function.
pub const DEFAULT_SAMPLES: usize = 50;
/// Target wall-clock span of one sample, used to calibrate the batch size.
const TARGET_SAMPLE_NS: u64 = 50_000;
/// Wall-clock budget for warmup/calibration per benchmark function.
const WARMUP_BUDGET_NS: u64 = 20_000_000;

/// Collects benchmark records for one bench target (e.g. `clone_boot`).
pub struct Bench {
    name: String,
    records: Vec<Record>,
}

/// Summary statistics for one benchmark function, in nanoseconds per
/// iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Benchmark group, or empty for ungrouped functions.
    pub group: String,
    /// Benchmark function id.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations averaged per sample.
    pub batch: u64,
    pub median_ns: f64,
    pub p90_ns: f64,
    pub p99_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

/// A named group of benchmark functions sharing a sample size.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    samples: usize,
}

/// The measurement driver passed to benchmark closures.
pub struct Timer {
    samples: usize,
    /// Per-iteration nanoseconds, one entry per sample.
    measurements: Vec<f64>,
    batch: u64,
}

impl Bench {
    /// A new collection for the bench target `name`.
    pub fn new(name: &str) -> Self {
        Bench { name: name.to_string(), records: Vec::new() }
    }

    /// Opens a named group (criterion-style).
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group { bench: self, name: name.to_string(), samples: DEFAULT_SAMPLES }
    }

    /// Runs one ungrouped benchmark function.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Timer)) {
        self.run("", id, DEFAULT_SAMPLES, f);
    }

    fn run(&mut self, group: &str, id: &str, samples: usize, mut f: impl FnMut(&mut Timer)) {
        let mut timer = Timer { samples, measurements: Vec::new(), batch: 1 };
        f(&mut timer);
        if timer.measurements.is_empty() {
            eprintln!("[testkit::bench] {group}/{id}: closure never called iter(); skipped");
            return;
        }
        let mut sorted = timer.measurements.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        let record = Record {
            group: group.to_string(),
            name: id.to_string(),
            samples: sorted.len(),
            batch: timer.batch,
            median_ns: pct(0.5),
            p90_ns: pct(0.9),
            p99_ns: pct(0.99),
            mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
        };
        let label =
            if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
        println!(
            "{label:<40} median {:>12.1} ns/iter   p90 {:>12.1}   p99 {:>12.1}   ({} samples x {} iters)",
            record.median_ns, record.p90_ns, record.p99_ns, record.samples, record.batch,
        );
        self.records.push(record);
    }

    /// The records collected so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Renders the report as JSON (the exact bytes written by
    /// [`Bench::finish`]).
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\n  \"bench\": \"{}\",\n  \"results\": [", self.name);
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"group\": \"{}\", \"name\": \"{}\", \"samples\": {}, \"batch\": {}, \
                 \"median_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \
                 \"min_ns\": {}, \"max_ns\": {}}}",
                r.group,
                r.name,
                r.samples,
                r.batch,
                fmt_f64(r.median_ns),
                fmt_f64(r.p90_ns),
                fmt_f64(r.p99_ns),
                fmt_f64(r.mean_ns),
                fmt_f64(r.min_ns),
                fmt_f64(r.max_ns),
            ));
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Prints the summary and writes `BENCH_<name>.json` into the
    /// workspace `results/` directory (override with `TESTKIT_BENCH_DIR`).
    pub fn finish(self) {
        let dir = bench_output_dir();
        let path = dir.join(format!("BENCH_{}.json", self.name));
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, self.to_json()))
        {
            eprintln!("[testkit::bench] could not write {}: {e}", path.display());
            return;
        }
        println!("[testkit::bench] wrote {}", path.display());
    }
}

impl Group<'_> {
    /// Sets the number of timed samples for functions in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(2);
        self
    }

    /// Runs one benchmark function in this group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Timer)) -> &mut Self {
        let (group, samples) = (self.name.clone(), self.samples);
        self.bench.run(&group, id, samples, f);
        self
    }

    /// Ends the group (kept for criterion API parity; a no-op).
    pub fn finish(&mut self) {}
}

impl Timer {
    /// Like [`Timer::iter`], but each iteration consumes a fresh input
    /// built by `setup`, and only `routine` is timed: setup runs before
    /// the clock starts and the routine's outputs are dropped after it
    /// stops. Use this when the operation under test mutates expensive
    /// state (say, a whole hypervisor) that must be rebuilt per call —
    /// with plain `iter` the rebuild and teardown would dominate the
    /// measurement.
    pub fn iter_with_setup<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        // Inputs are materialised per sample, so cap the batch: a fast
        // routine behind an expensive setup must not demand 2^20 live
        // setup states at once.
        const MAX_SETUP_BATCH: u64 = 256;

        let mut run_batch = |batch: u64| -> f64 {
            let inputs: Vec<S> = (0..batch).map(|_| setup()).collect();
            let mut outputs = Vec::with_capacity(inputs.len());
            let t = Instant::now();
            for s in inputs {
                outputs.push(black_box(routine(s)));
            }
            let per_iter = t.elapsed().as_nanos() as f64 / batch as f64;
            drop(outputs);
            per_iter
        };

        let warmup_start = Instant::now();
        let mut batch = 1u64;
        let est_ns = loop {
            let est = run_batch(batch);
            if warmup_start.elapsed().as_nanos() as u64 >= WARMUP_BUDGET_NS / 2 {
                break est;
            }
            batch = batch.saturating_mul(2).min(MAX_SETUP_BATCH);
        };
        self.batch =
            ((TARGET_SAMPLE_NS as f64 / est_ns.max(1.0)).ceil() as u64).clamp(1, MAX_SETUP_BATCH);

        self.measurements.clear();
        for _ in 0..self.samples {
            let per_iter = run_batch(self.batch);
            self.measurements.push(per_iter);
        }
    }

    /// Measures `f`: warmup + batch calibration, then `samples` timed
    /// batches. Results are recorded per iteration.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup, measuring a growing batch until the time budget is
        // spent; the last full batch calibrates the per-iter estimate.
        let warmup_start = Instant::now();
        let mut batch = 1u64;
        let est_ns = loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let est = t.elapsed().as_nanos() as f64 / batch as f64;
            if warmup_start.elapsed().as_nanos() as u64 >= WARMUP_BUDGET_NS / 2 {
                break est;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        };
        self.batch = ((TARGET_SAMPLE_NS as f64 / est_ns.max(1.0)).ceil() as u64).clamp(1, 1 << 20);

        self.measurements.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..self.batch {
                black_box(f());
            }
            self.measurements.push(t.elapsed().as_nanos() as f64 / self.batch as f64);
        }
    }
}

fn fmt_f64(v: f64) -> String {
    // Stable shortest-ish formatting: integral values print without a
    // fraction, everything else with enough digits to round-trip.
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// `TESTKIT_BENCH_DIR`, or `<workspace root>/results` (the topmost
/// ancestor of `CARGO_MANIFEST_DIR` containing a `Cargo.toml`).
fn bench_output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("TESTKIT_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")));
    let mut root = start.clone();
    for anc in start.ancestors() {
        if anc.join("Cargo.toml").is_file() {
            root = anc.to_path_buf();
        }
    }
    root.join("results")
}

// ---- serde-free report parsing --------------------------------------------

/// A report read back from `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    pub bench: String,
    pub results: Vec<Record>,
}

/// Parses the JSON written by [`Bench::to_json`] with a small hand-rolled
/// scanner (no serde in the hermetic workspace). Returns `None` on any
/// structural mismatch.
pub fn parse_report(text: &str) -> Option<Report> {
    let bench = field_str(text, "bench")?;
    let open = text.find('[')?;
    let close = text.rfind(']')?;
    let body = &text[open + 1..close];
    let mut results = Vec::new();
    let mut rest = body;
    while let Some(start) = rest.find('{') {
        let end = start + rest[start..].find('}')?;
        let obj = &rest[start + 1..end];
        results.push(Record {
            group: field_str(obj, "group")?,
            name: field_str(obj, "name")?,
            samples: field_num(obj, "samples")? as usize,
            batch: field_num(obj, "batch")? as u64,
            median_ns: field_num(obj, "median_ns")?,
            p90_ns: field_num(obj, "p90_ns")?,
            p99_ns: field_num(obj, "p99_ns")?,
            mean_ns: field_num(obj, "mean_ns")?,
            min_ns: field_num(obj, "min_ns")?,
            max_ns: field_num(obj, "max_ns")?,
        });
        rest = &rest[end + 1..];
    }
    Some(Report { bench, results })
}

/// Extracts `"key": "value"` from a flat JSON object body (values must
/// not contain escapes — ours are bench/group/function names).
fn field_str(obj: &str, key: &str) -> Option<String> {
    let rest = &obj[obj.find(&format!("\"{key}\":"))? + key.len() + 3..];
    let open = rest.find('"')?;
    let close = open + 1 + rest[open + 1..].find('"')?;
    Some(rest[open + 1..close].to_string())
}

/// Extracts `"key": number` from a flat JSON object body.
fn field_num(obj: &str, key: &str) -> Option<f64> {
    let rest = &obj[obj.find(&format!("\"{key}\":"))? + key.len() + 3..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

//! The test kit must itself be trustworthy: `check` is deterministic for
//! a fixed seed, shrinking converges to a minimal counterexample on a
//! planted bug, the regression corpus round-trips, and the bench JSON
//! report survives serde-free hand parsing.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use testkit::bench::{parse_report, Bench};
use testkit::prop::{
    minimize, one_of, ranges, u32s, vecs, weighted, Config, Gen, Source, //
};

/// The planted bug every shrinking test hunts: a vector that contains an
/// element `>= 1000`. The unique minimal counterexample is `[1000]`,
/// i.e. the choice tape `[1, 1000]` (length choice, element choice).
fn planted_bug(g: &mut Source) {
    let v = g.draw(&vecs(u32s(), 0..100));
    assert!(v.iter().all(|&x| x < 1000), "planted bug: {v:?}");
}

#[test]
fn check_is_deterministic_for_a_fixed_seed() {
    let trace = |seed: u64| {
        let log = RefCell::new(Vec::new());
        Config::new(40).seed(seed).persist(false).run(|g| {
            let a = g.draw(&ranges(5u64..500));
            let b = g.draw(&vecs(u32s(), 0..10));
            let c = g.draw(&weighted(vec![
                (3, u32s().map(u64::from).boxed()),
                (1, ranges(0u64..7).boxed()),
            ]));
            log.borrow_mut().push((a, b, c));
        });
        log.into_inner()
    };
    let first = trace(0xDEAD_BEEF);
    assert_eq!(first, trace(0xDEAD_BEEF), "same seed must replay identically");
    assert_ne!(first, trace(0xDEAD_BEEF + 1), "different seeds must diverge");
}

#[test]
fn shrinking_converges_to_the_minimal_counterexample() {
    // A deliberately noisy failing tape: a 5-element vector with two
    // offending values and assorted junk.
    let tape = vec![5, 5000, 3, 77, 1500];
    let minimal = minimize(&planted_bug, tape);
    assert_eq!(minimal, vec![1, 1000], "greedy shrink must reach [1000]");
}

#[test]
fn shrinking_from_a_random_failure_is_minimal_too() {
    // Find a genuinely random failing case first, then shrink it.
    let mut failing = None;
    for seed in 0..5000u64 {
        let mut src = Source::random(seed);
        if catch_unwind(AssertUnwindSafe(|| planted_bug(&mut src))).is_err() {
            failing = Some(src.tape().to_vec());
            break;
        }
    }
    let tape = failing.expect("a random failure exists");
    assert_eq!(minimize(&planted_bug, tape), vec![1, 1000]);
}

#[test]
fn failures_are_persisted_and_replayed_from_the_corpus() {
    let dir = std::env::temp_dir().join(format!("testkit-selftest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First run: the planted bug fails, is shrunk, and is recorded.
    let failure = catch_unwind(AssertUnwindSafe(|| {
        Config::new(100)
            .seed(7)
            .name("planted")
            .corpus_dir(&dir)
            .run(planted_bug);
    }));
    let msg = *failure.expect_err("planted bug must fail").downcast::<String>().unwrap();
    // The property's own assertion message must surface in the report
    // (regression check for the &Box<dyn Any> downcast footgun).
    assert!(msg.contains("planted bug: [1000]"), "got: {msg}");
    assert!(msg.contains("minimal tape (2 choices): planted: 1 1000"), "got: {msg}");
    let corpus = std::fs::read_to_string(dir.join("testkit-regressions")).unwrap();
    assert!(corpus.contains("planted: 1 1000"), "corpus: {corpus}");

    // Second run with zero random cases: the corpus alone reproduces it.
    let replay = catch_unwind(AssertUnwindSafe(|| {
        Config::new(0).name("planted").corpus_dir(&dir).run(planted_bug);
    }));
    let msg = *replay.expect_err("corpus must replay the failure").downcast::<String>().unwrap();
    assert!(msg.contains("reproduced from the regression corpus"), "got: {msg}");

    // Entries for other tests are ignored.
    Config::new(0).name("unrelated").corpus_dir(&dir).run(planted_bug);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_clamps_out_of_bound_choices_and_pads_with_zeros() {
    let mut src = Source::replay(vec![205, 9]);
    assert_eq!(src.draw(&ranges(0u64..100)), 5, "205 % 100");
    assert_eq!(src.draw(&ranges(10u64..20)), 19);
    assert_eq!(src.draw(&ranges(10u64..20)), 10, "past-the-end draws are minimal");
    assert_eq!(src.tape(), &[5, 9, 0], "tape is normalised");
}

#[test]
fn generators_respect_bounds_and_weights() {
    Config::new(200).seed(11).persist(false).run(|g| {
        let r = g.draw(&ranges(3u32..9));
        assert!((3..9).contains(&r));
        let v = g.draw(&vecs(ranges(0u8..2), 2..5));
        assert!((2..5).contains(&v.len()));
        let w = g.draw(&one_of(vec![
            ranges(0u32..1).boxed(),
            ranges(10u32..11).boxed(),
        ]));
        assert!(w == 0 || w == 10);
    });
    // A zero-weight arm is never taken.
    Config::new(200).seed(12).persist(false).run(|g| {
        let w = g.draw(&weighted(vec![
            (1, ranges(0u32..5).boxed()),
            (0, ranges(100u32..200).boxed()),
        ]));
        assert!(w < 5, "zero-weight arm selected: {w}");
    });
}

#[test]
fn filtered_generators_discard_rather_than_fail() {
    // An unsatisfiable filter must not turn into a test failure panic
    // until the discard budget is exhausted — and then with a clear
    // message naming the filter.
    let out = catch_unwind(AssertUnwindSafe(|| {
        Config::new(5).seed(3).persist(false).run(|g| {
            let _ = g.draw(&u32s().filter(|_| false));
        });
    }));
    let msg = *out.expect_err("discard budget must trip").downcast::<String>().unwrap();
    assert!(msg.contains("discarded"), "got: {msg}");
    assert!(msg.contains("filter rejected"), "got: {msg}");

    // A satisfiable filter works and holds its invariant.
    Config::new(100).seed(4).persist(false).run(|g| {
        let even = g.draw(&u32s().filter(|v| v % 2 == 0));
        assert_eq!(even % 2, 0);
    });
}

#[test]
fn bench_iter_with_setup_times_only_the_routine() {
    use std::cell::Cell;
    use std::rc::Rc;

    let mut c = Bench::new("setup_selftest");
    let setups = Rc::new(Cell::new(0u64));
    let runs = Rc::new(Cell::new(0u64));
    let mut g = c.benchmark_group("g");
    g.sample_size(4);
    {
        let (setups, runs) = (Rc::clone(&setups), Rc::clone(&runs));
        g.bench_function("consume", |b| {
            b.iter_with_setup(
                || {
                    setups.set(setups.get() + 1);
                    vec![1u64; 256]
                },
                |v| {
                    runs.set(runs.get() + 1);
                    v.iter().sum::<u64>()
                },
            );
        });
    }
    g.finish();

    // Every routine invocation consumed exactly one fresh setup value.
    assert_eq!(setups.get(), runs.get(), "one setup per routine call");
    assert!(runs.get() >= 4, "at least one routine call per sample");
    let r = &c.records()[0];
    assert_eq!(r.samples, 4);
    assert!(r.median_ns > 0.0, "a timed loop cannot be free");
}

#[test]
fn bench_report_round_trips_through_hand_parsing() {
    let mut c = Bench::new("selftest");
    let mut g = c.benchmark_group("group_a");
    g.sample_size(5);
    g.bench_function("fast_add", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
    });
    g.finish();
    c.bench_function("vec_sum", |b| {
        let xs: Vec<u64> = (0..64).collect();
        b.iter(|| xs.iter().sum::<u64>());
    });

    let json = c.to_json();
    let report = parse_report(&json).expect("own JSON must parse");
    assert_eq!(report.bench, "selftest");
    assert_eq!(report.results, c.records(), "round-trip must be lossless");
    assert_eq!(report.results[0].group, "group_a");
    assert_eq!(report.results[0].name, "fast_add");
    assert_eq!(report.results[0].samples, 5);
    assert_eq!(report.results[1].group, "");
    for r in &report.results {
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p90_ns);
        assert!(r.p90_ns <= r.p99_ns && r.p99_ns <= r.max_ns);
        assert!(r.median_ns > 0.0, "a timed loop cannot be free");
    }
}

//! Strongly typed identifiers and memory units.
//!
//! Mirrors the Xen naming: *machine frame numbers* ([`Mfn`]) index host
//! physical memory, *pseudo-physical frame numbers* ([`Pfn`]) index a guest's
//! view of its own memory, and [`DomId`] identifies a domain. Using newtypes
//! keeps the p2m (Pfn → Mfn) and the frame table (Mfn → metadata) from being
//! mixed up.

use std::fmt;

/// Size of one memory page in bytes (4 KiB, as on x86 Xen).
pub const PAGE_SIZE: usize = 4096;

/// Converts a size in MiB to a page count.
pub const fn mib_to_pages(mib: u64) -> u64 {
    mib * 1024 * 1024 / PAGE_SIZE as u64
}

/// Converts a page count to bytes.
pub const fn pages_to_bytes(pages: u64) -> u64 {
    pages * PAGE_SIZE as u64
}

/// A domain identifier.
///
/// `DomId(0)` is the privileged host domain (Dom0). Nephele additionally
/// defines two wildcard/pseudo ids mirroring the paper's interface
/// extensions: [`DomId::COW`] (the `dom_cow` owner of shared pages) and
/// [`DomId::CHILD`] (the `DOMID_CHILD` wildcard used when granting memory or
/// creating event channels for not-yet-existing clones, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomId(pub u32);

impl DomId {
    /// The privileged host domain.
    pub const DOM0: DomId = DomId(0);
    /// Pseudo-domain owning all COW-shared pages (`dom_cow`).
    pub const COW: DomId = DomId(0x7FF4);
    /// Wildcard for "any future clone of this domain" (`DOMID_CHILD`).
    pub const CHILD: DomId = DomId(0x7FF5);
    /// Wildcard used by Xen for "the hypervisor itself".
    pub const XEN: DomId = DomId(0x7FF2);

    /// Returns `true` for real (schedulable) domains, `false` for wildcards.
    pub fn is_real(self) -> bool {
        self.0 < 0x7FF0
    }

    /// Returns `true` if this is the privileged host domain.
    pub fn is_dom0(self) -> bool {
        self == Self::DOM0
    }
}

impl fmt::Display for DomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DomId::COW => write!(f, "dom_cow"),
            DomId::CHILD => write!(f, "domid_child"),
            DomId::XEN => write!(f, "dom_xen"),
            DomId(n) => write!(f, "dom{n}"),
        }
    }
}

/// A machine (host-physical) frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mfn(pub u64);

/// A guest pseudo-physical frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pfn(pub u64);

impl fmt::Display for Mfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mfn:{:#x}", self.0)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(mib_to_pages(4), 1024);
        assert_eq!(pages_to_bytes(2), 8192);
    }

    #[test]
    fn wildcard_ids_are_not_real() {
        assert!(DomId::DOM0.is_real());
        assert!(DomId(42).is_real());
        assert!(!DomId::COW.is_real());
        assert!(!DomId::CHILD.is_real());
        assert!(DomId::DOM0.is_dom0());
        assert!(!DomId(1).is_dom0());
    }

    #[test]
    fn display_formats() {
        assert_eq!(DomId(3).to_string(), "dom3");
        assert_eq!(DomId::COW.to_string(), "dom_cow");
        assert_eq!(DomId::CHILD.to_string(), "domid_child");
        assert_eq!(Mfn(16).to_string(), "mfn:0x10");
        assert_eq!(Pfn(16).to_string(), "pfn:0x10");
    }
}

//! Clone-family rollups: a provenance registry that attributes metrics to
//! the *root* of each clone family.
//!
//! The hypervisor feeds its family tree into the registry as domains are
//! created, cloned and destroyed ([`FamilyRegistry::register_root`],
//! [`register_child`](FamilyRegistry::register_child),
//! [`forget`](FamilyRegistry::forget)); the trace sink then resolves every
//! dom-attributed span, counter and gauge to its root family *at record
//! time* — so attribution is immune to domain-id reuse — and either folds
//! it here immediately (Aggregate mode) or stamps the resolved family onto
//! the retained record (Full mode) for post-hoc aggregation.
//!
//! Registry memory is O(live domains + families × distinct keys): the
//! per-domain root binding is dropped when a domain dies, while the family
//! row itself persists so end-of-run exports still cover extinct families.

use std::collections::BTreeMap;

use crate::ids::DomId;

/// Per-family aggregate statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FamilyStats {
    /// Name of the root domain (from its creation).
    pub root_name: String,
    /// Domains ever registered into the family (root included).
    pub members_total: u64,
    /// Currently live members.
    pub members_live: u64,
    /// Span stats keyed by span name: `(count, total_ns)`.
    pub spans: BTreeMap<&'static str, (u64, u64)>,
    /// Counter totals keyed by counter name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last gauge value keyed by `(name, member domain id)`; entries die
    /// with the member (a dead domain no longer holds bytes).
    pub gauges: BTreeMap<(&'static str, u32), u64>,
}

/// The provenance registry; see the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct FamilyRegistry {
    /// Live domain → its family root.
    dom_root: BTreeMap<u32, u32>,
    /// Family root → stats. Rows persist after the family dies out.
    families: BTreeMap<u32, FamilyStats>,
}

impl FamilyRegistry {
    /// Registers `dom` as the root of a new family.
    pub fn register_root(&mut self, dom: DomId, name: &str) {
        self.dom_root.insert(dom.0, dom.0);
        let f = self.families.entry(dom.0).or_default();
        f.root_name = name.to_string();
        f.members_total += 1;
        f.members_live += 1;
    }

    /// Registers `child` as a clone of `parent` (joining the parent's
    /// family). An unregistered parent — created before tracing was
    /// attached — makes the child a root of its own anonymous family.
    pub fn register_child(&mut self, child: DomId, parent: Option<DomId>) {
        let root = parent.and_then(|p| self.dom_root.get(&p.0).copied());
        match root {
            Some(r) => {
                self.dom_root.insert(child.0, r);
                let f = self.families.entry(r).or_default();
                f.members_total += 1;
                f.members_live += 1;
            }
            None => {
                let name = format!("dom{}", child.0);
                self.register_root(child, &name);
            }
        }
    }

    /// Unbinds a destroyed domain: the live count drops and its gauge
    /// entries die, but the family row (and lifetime totals) persist.
    pub fn forget(&mut self, dom: DomId) {
        if let Some(root) = self.dom_root.remove(&dom.0) {
            if let Some(f) = self.families.get_mut(&root) {
                f.members_live = f.members_live.saturating_sub(1);
                f.gauges.retain(|(_, d), _| *d != dom.0);
            }
        }
    }

    /// The family root of a live domain, if it is registered.
    pub fn root_of(&self, dom: DomId) -> Option<u32> {
        self.dom_root.get(&dom.0).copied()
    }

    /// Folds a span close into the family rooted at `root`.
    pub fn record_span(&mut self, root: u32, name: &'static str, dur_ns: u64) {
        if let Some(f) = self.families.get_mut(&root) {
            let e = f.spans.entry(name).or_insert((0, 0));
            e.0 += 1;
            e.1 += dur_ns;
        }
    }

    /// Folds a counter bump into the family rooted at `root`.
    pub fn record_counter(&mut self, root: u32, name: &'static str, delta: u64) {
        if let Some(f) = self.families.get_mut(&root) {
            *f.counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Folds a gauge observation (last value wins per member).
    pub fn record_gauge(&mut self, root: u32, name: &'static str, dom: u32, value: u64) {
        if let Some(f) = self.families.get_mut(&root) {
            f.gauges.insert((name, dom), value);
        }
    }

    /// All families, keyed by root domain id.
    pub fn families(&self) -> &BTreeMap<u32, FamilyStats> {
        &self.families
    }

    /// Number of live registered domains.
    pub fn live_members(&self) -> usize {
        self.dom_root.len()
    }

    /// Drops per-family metric stats but keeps the lineage (membership and
    /// live bindings): lineage is structural state fed by lifecycle events
    /// that will not be replayed, so a metrics `clear` must not lose it.
    pub fn clear_stats(&mut self) {
        for f in self.families.values_mut() {
            f.spans.clear();
            f.counters.clear();
            f.gauges.clear();
        }
    }

    /// Drops only the event-flow stats (spans, counters), keeping
    /// membership *and* gauges — the state a Full-mode post-hoc
    /// recomputation rebuilds from the retained records.
    pub fn clear_flow_stats(&mut self) {
        for f in self.families.values_mut() {
            f.spans.clear();
            f.counters.clear();
        }
    }

    /// Flat `(family, metric, value)` rows for every family, using the
    /// metric naming scheme of [`render_family_csv`].
    pub fn rows(&self) -> Vec<FamilyRow> {
        let mut rows = Vec::new();
        for (root, f) in &self.families {
            let push = |rows: &mut Vec<FamilyRow>, metric: String, value: u64| {
                rows.push(FamilyRow {
                    family: *root,
                    root_name: f.root_name.clone(),
                    metric,
                    value,
                });
            };
            push(&mut rows, "members_live".into(), f.members_live);
            push(&mut rows, "members_total".into(), f.members_total);
            for (name, total) in &f.counters {
                push(&mut rows, format!("counter.{name}"), *total);
            }
            for ((name, dom), v) in &f.gauges {
                push(&mut rows, format!("gauge.{name}.dom{dom}"), *v);
            }
            for (name, (count, total_ns)) in &f.spans {
                push(&mut rows, format!("span.{name}.count"), *count);
                push(&mut rows, format!("span.{name}.total_ns"), *total_ns);
            }
        }
        rows
    }
}

/// One row of the family rollup: `(family root id, root name, metric, value)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyRow {
    /// Root domain id of the family.
    pub family: u32,
    /// Name the root domain was created with.
    pub root_name: String,
    /// Metric key (`members_live`, `counter.<name>`, `gauge.<name>.dom<id>`,
    /// `span.<name>.count`, `span.<name>.total_ns`, `resident.<what>`, ...).
    pub metric: String,
    /// Metric value.
    pub value: u64,
}

/// Renders family rows as `family,root,metric,value` CSV, sorted by
/// `(family, metric)` — byte-identical for identical rows regardless of
/// the order they were produced in.
pub fn render_family_csv(mut rows: Vec<FamilyRow>) -> String {
    rows.sort_by(|a, b| (a.family, &a.metric).cmp(&(b.family, &b.metric)));
    let mut out = String::from("family,root,metric,value\n");
    for r in rows {
        out.push_str(&format!("{},{},{},{}\n", r.family, r.root_name, r.metric, r.value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineage_attributes_to_roots_across_generations() {
        let mut reg = FamilyRegistry::default();
        reg.register_root(DomId(1), "web");
        reg.register_child(DomId(2), Some(DomId(1)));
        reg.register_child(DomId(3), Some(DomId(2))); // grandchild
        assert_eq!(reg.root_of(DomId(3)), Some(1));
        reg.record_span(1, "clone.child", 100);
        reg.record_counter(1, "cow.fault", 2);
        let f = &reg.families()[&1];
        assert_eq!(f.members_total, 3);
        assert_eq!(f.spans["clone.child"], (1, 100));
        assert_eq!(f.counters["cow.fault"], 2);
    }

    #[test]
    fn forget_drops_live_binding_but_keeps_the_family() {
        let mut reg = FamilyRegistry::default();
        reg.register_root(DomId(1), "web");
        reg.register_child(DomId(2), Some(DomId(1)));
        reg.record_gauge(1, "bytes", 2, 42);
        reg.forget(DomId(2));
        assert_eq!(reg.root_of(DomId(2)), None);
        let f = &reg.families()[&1];
        assert_eq!(f.members_live, 1);
        assert_eq!(f.members_total, 2);
        assert!(f.gauges.is_empty(), "dead members hold no bytes");
        // Id reuse: a fresh root with the recycled id starts a new family.
        reg.register_root(DomId(2), "other");
        assert_eq!(reg.root_of(DomId(2)), Some(2));
    }

    #[test]
    fn unregistered_parent_starts_an_anonymous_family() {
        let mut reg = FamilyRegistry::default();
        reg.register_child(DomId(5), Some(DomId(4)));
        assert_eq!(reg.root_of(DomId(5)), Some(5));
        assert_eq!(reg.families()[&5].root_name, "dom5");
    }

    #[test]
    fn csv_renders_sorted_rows() {
        let mut reg = FamilyRegistry::default();
        reg.register_root(DomId(2), "b");
        reg.register_root(DomId(1), "a");
        reg.record_counter(2, "x", 7);
        let csv = render_family_csv(reg.rows());
        assert_eq!(
            csv,
            "family,root,metric,value\n\
             1,a,members_live,1\n\
             1,a,members_total,1\n\
             2,b,counter.x,7\n\
             2,b,members_live,1\n\
             2,b,members_total,1\n"
        );
    }
}

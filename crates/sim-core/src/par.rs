//! Deterministic fork/join execution.
//!
//! The simulator's semantic clock is *virtual* time; host threads are
//! only allowed to speed up work whose outcome is already fixed by the
//! single-threaded order. [`Pool`] is the one primitive every layer uses
//! for that: it maps a function over a batch of independent items on a
//! fixed number of `std::thread` workers (no external crates — the
//! workspace is hermetic) and hands the results back **in input order**,
//! so a caller that merges them sequentially observes exactly what the
//! single-threaded loop would have produced.
//!
//! Determinism rules the pool enforces by construction:
//!
//! * **Seeded work splitting.** The batch is cut into contiguous chunks
//!   whose boundaries are a pure function of `(seed, len, threads)` —
//!   never of host timing — so the same configuration always assigns
//!   the same items to the same logical worker.
//! * **Ordered reduction.** Each worker returns its chunk's results as
//!   one vector; the caller's thread concatenates them in chunk order.
//!   No worker ever publishes through shared mutable state, so there is
//!   nothing to race on and nothing to lock.
//! * **Inline single-thread path.** With `threads <= 1` (the default
//!   platform configuration) or a trivially small batch, [`Pool::map`]
//!   runs the closure inline on the calling thread: no spawn, no
//!   synchronization, byte-for-byte the pre-pool behavior.
//!
//! Workers receive owned `Send` inputs and produce owned `Send` outputs.
//! Anything `Rc`-based (the virtual [`Clock`](crate::Clock), the
//! [`TraceSink`](crate::TraceSink), p2m templates) must stay on the
//! calling thread; parallel stages ship plain data out and the caller
//! commits it in order.

use crate::rng::SplitMix64;

/// Default seed for pools whose owner has no seed of its own.
pub const DEFAULT_POOL_SEED: u64 = 0x6e65_7068_656c_6570; // "nephelep"

/// A fixed-size deterministic fork/join pool.
///
/// Cheap to copy and hand to every component that wants it; the pool
/// holds no OS resources — threads are scoped per [`map`](Pool::map)
/// call, so a `Pool` is just the splitting policy.
///
/// # Examples
///
/// ```
/// use sim_core::par::Pool;
///
/// let st = Pool::single();
/// let mt = Pool::new(4);
/// let items: Vec<u64> = (0..100).collect();
/// let a = st.map(items.clone(), |i, x| x * 2 + i as u64);
/// let b = mt.map(items, |i, x| x * 2 + i as u64);
/// assert_eq!(a, b); // ordered reduction: thread count is invisible
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
    seed: u64,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::single()
    }
}

impl Pool {
    /// A pool running `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool { threads: threads.max(1), seed: DEFAULT_POOL_SEED }
    }

    /// The single-threaded pool: [`map`](Pool::map) runs inline.
    pub fn single() -> Self {
        Pool::new(1)
    }

    /// Replaces the work-splitting seed (chunk boundaries are a pure
    /// function of `(seed, len, threads)`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of workers this pool schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when [`map`](Pool::map) may actually spawn workers.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Deterministic chunk boundaries for a batch of `len` items:
    /// `nw + 1` strictly increasing split points from `0` to `len`,
    /// where `nw = min(threads, len)`. An even split jittered by a
    /// seeded PRNG — a pure function of `(seed, len, threads)`, so the
    /// same configuration always cuts the batch the same way.
    pub fn split_points(&self, len: usize) -> Vec<usize> {
        let nw = self.threads.min(len).max(1);
        let mut pts = Vec::with_capacity(nw + 1);
        pts.push(0usize);
        let mut rng = SplitMix64::new(
            self.seed ^ ((len as u64) << 24) ^ (self.threads as u64),
        );
        for i in 1..nw {
            let even = i * len / nw;
            let slack = (len / nw / 4) as i64;
            let jitter = if slack > 0 {
                (rng.next_below(2 * slack as u64 + 1)) as i64 - slack
            } else {
                0
            };
            // Keep at least one item per remaining chunk.
            let lo = pts[i - 1] as i64 + 1;
            let hi = (len - (nw - i)) as i64;
            pts.push((even as i64 + jitter).clamp(lo, hi) as usize);
        }
        pts.push(len);
        pts
    }

    /// Maps `f` over `items` on the pool, returning outputs in input
    /// order. `f` receives each item's original index alongside the
    /// item, so workers can label results without shared state.
    ///
    /// With one thread (or fewer than two items) this is a plain inline
    /// loop — no threads, no locks, identical to sequential code.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the joining thread re-panics).
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let len = items.len();
        let pts = self.split_points(len);
        // Carve the batch into owned chunks back-to-front so each
        // split_off is O(chunk), then restore front-to-back order.
        let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(pts.len() - 1);
        let mut rest = items;
        for w in (1..pts.len() - 1).rev() {
            chunks.push((pts[w], rest.split_off(pts[w])));
        }
        chunks.push((0, rest));
        chunks.reverse();

        let f = &f;
        let per_chunk: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(base, chunk)| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .enumerate()
                            .map(|(i, x)| f(base + i, x))
                            .collect::<Vec<U>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        // Ordered reduction: concatenate in chunk (= input) order.
        let mut out = Vec::with_capacity(len);
        for mut v in per_chunk {
            out.append(&mut v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_at_any_width() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = Pool::new(threads).map(items.clone(), |_, x| x * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_passes_original_indices() {
        let items: Vec<u64> = (0..257).map(|i| i * 10).collect();
        let got = Pool::new(4).map(items, |i, x| (i, x));
        for (i, (idx, x)) in got.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*x, i as u64 * 10);
        }
    }

    #[test]
    fn split_points_are_deterministic_and_well_formed() {
        for (threads, len) in [(4usize, 100usize), (8, 3), (2, 1), (3, 1000), (16, 17)] {
            let p = Pool::new(threads);
            let a = p.split_points(len);
            let b = p.split_points(len);
            assert_eq!(a, b, "same config must split identically");
            assert_eq!(a[0], 0);
            assert_eq!(*a.last().unwrap(), len);
            assert!(a.windows(2).all(|w| w[0] < w[1] || (len == 0 && w[0] == w[1])));
            assert_eq!(a.len(), threads.min(len).max(1) + 1);
        }
    }

    #[test]
    fn seeds_change_the_split_but_not_the_result() {
        let p1 = Pool::new(4).with_seed(1);
        let p2 = Pool::new(4).with_seed(2);
        assert_ne!(p1.split_points(4096), p2.split_points(4096));
        let items: Vec<u64> = (0..4096).collect();
        assert_eq!(
            p1.map(items.clone(), |i, x| x ^ i as u64),
            p2.map(items, |i, x| x ^ i as u64),
        );
    }

    #[test]
    fn empty_and_tiny_batches_run_inline() {
        let p = Pool::new(8);
        assert_eq!(p.map(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(p.map(vec![9u32], |i, x| x + i as u32), vec![9]);
    }

    #[test]
    fn worker_panic_propagates() {
        let p = Pool::new(4);
        let items: Vec<u32> = (0..64).collect();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.map(items, |_, x| {
                assert!(x != 40, "deliberate worker failure");
                x
            })
        }));
        assert!(res.is_err());
    }
}

//! Always-on flight recorder: a fixed-size ring of compact structured
//! events, kept even when tracing is disabled.
//!
//! Where the [`trace`](crate::trace) layer is an opt-in, unbounded recording
//! meant for offline analysis, the [`FlightRecorder`] is the black box: it
//! is always on, costs O(1) per event (one slot write in a pre-allocated
//! ring, no heap traffic), and retains only the last N events. When
//! something goes wrong — a platform error surfaces, or a state audit finds
//! a violation — the ring is dumped as JSON so every failure ships the
//! operations that led up to it.
//!
//! Events are deliberately [`Copy`]-compact: a static operation name, a
//! domain id, the virtual timestamp, a static outcome tag and one numeric
//! argument. Anything richer belongs in a span attribute.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use crate::trace::json_str;

/// Default ring capacity (events retained) when none is configured.
pub const DEFAULT_FLIGHTREC_CAPACITY: usize = 256;

/// One compact flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Operation tag (static taxonomy, e.g. `clone`, `destroy`, `audit`).
    pub op: &'static str,
    /// Domain the operation concerns (0 for host-wide events).
    pub dom: u32,
    /// Virtual timestamp in nanoseconds.
    pub at_ns: u64,
    /// Outcome tag (e.g. `ok`, `err`, `violation`).
    pub outcome: &'static str,
    /// One free-form numeric argument (child id, frame number, count...).
    pub arg: u64,
}

#[derive(Debug)]
struct Ring {
    slots: Vec<FlightEvent>,
    capacity: usize,
    /// Index of the next slot to write.
    next: usize,
    /// Total events ever recorded (>= slots.len()).
    recorded: u64,
}

/// A shareable handle onto a flight-recorder ring; see the
/// [module docs](self). Cloning yields another handle onto the same ring.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Rc<RefCell<Ring>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHTREC_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Rc::new(RefCell::new(Ring {
                slots: Vec::with_capacity(capacity),
                capacity,
                next: 0,
                recorded: 0,
            })),
        }
    }

    /// Records one event. O(1): overwrites the oldest slot once the ring
    /// is full.
    pub fn record(&self, ev: FlightEvent) {
        let mut r = self.inner.borrow_mut();
        if r.slots.len() < r.capacity {
            r.slots.push(ev);
        } else {
            let at = r.next;
            r.slots[at] = ev;
        }
        r.next = (r.next + 1) % r.capacity;
        r.recorded += 1;
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.borrow().slots.len()
    }

    /// Whether no events have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().slots.is_empty()
    }

    /// Ring capacity (events retained).
    pub fn capacity(&self) -> usize {
        self.inner.borrow().capacity
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.inner.borrow().recorded
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let r = self.inner.borrow();
        if r.slots.len() < r.capacity {
            r.slots.clone()
        } else {
            let mut out = Vec::with_capacity(r.capacity);
            out.extend_from_slice(&r.slots[r.next..]);
            out.extend_from_slice(&r.slots[..r.next]);
            out
        }
    }

    /// Discards all retained events (the total recorded count is kept).
    pub fn clear(&self) {
        let mut r = self.inner.borrow_mut();
        r.slots.clear();
        r.next = 0;
    }

    /// Serializes the ring as JSON: a `context` string, the ring geometry,
    /// and the retained events oldest-first. Byte-stable for identical
    /// recordings.
    pub fn to_json(&self, context: &str) -> String {
        let mut events = String::new();
        for ev in self.events() {
            if !events.is_empty() {
                events.push(',');
            }
            events.push_str(&format!(
                "{{\"op\":{},\"dom\":{},\"at_ns\":{},\"outcome\":{},\"arg\":{}}}",
                json_str(ev.op),
                ev.dom,
                ev.at_ns,
                json_str(ev.outcome),
                ev.arg
            ));
        }
        let r = self.inner.borrow();
        format!(
            "{{\"context\":{},\"capacity\":{},\"recorded\":{},\"events\":[{}]}}\n",
            json_str(context),
            r.capacity,
            r.recorded,
            events
        )
    }

    /// Writes [`to_json`](Self::to_json) to `path`, creating parent
    /// directories as needed.
    pub fn dump(&self, path: impl AsRef<Path>, context: &str) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json(context))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: &'static str, arg: u64) -> FlightEvent {
        FlightEvent {
            op,
            dom: 1,
            at_ns: arg * 10,
            outcome: "ok",
            arg,
        }
    }

    #[test]
    fn retains_last_n_in_order() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            fr.record(ev("op", i));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.recorded(), 5);
        let args: Vec<u64> = fr.events().iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![2, 3, 4], "oldest first, oldest two evicted");
    }

    #[test]
    fn partial_ring_keeps_insertion_order() {
        let fr = FlightRecorder::with_capacity(8);
        fr.record(ev("a", 1));
        fr.record(ev("b", 2));
        let ops: Vec<&str> = fr.events().iter().map(|e| e.op).collect();
        assert_eq!(ops, vec!["a", "b"]);
    }

    #[test]
    fn shared_handles_write_one_ring() {
        let fr = FlightRecorder::with_capacity(4);
        let other = fr.clone();
        fr.record(ev("x", 1));
        other.record(ev("y", 2));
        assert_eq!(fr.len(), 2);
        assert_eq!(other.recorded(), 2);
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let run = || {
            let fr = FlightRecorder::with_capacity(2);
            fr.record(ev("clone", 7));
            fr.record(FlightEvent {
                op: "destroy",
                dom: 3,
                at_ns: 99,
                outcome: "err",
                arg: 0,
            });
            fr.to_json("unit-test")
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"context\":\"unit-test\""));
        assert!(a.contains("\"op\":\"destroy\""));
        assert!(a.contains("\"outcome\":\"err\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn clear_keeps_recorded_total() {
        let fr = FlightRecorder::with_capacity(2);
        fr.record(ev("a", 1));
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.recorded(), 1);
    }
}

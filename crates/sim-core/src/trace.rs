//! Deterministic, zero-dependency observability for the simulation.
//!
//! The platform owns a [`TraceSink`]; each mechanism component holds a
//! cloned handle (they share one buffer, like [`Clock`] handles share one
//! instant). Instrumented code opens virtual-time [`spans`](TraceSink::span)
//! around hot paths, bumps named monotonic [`counters`](TraceSink::count)
//! and records per-domain [`gauges`](TraceSink::gauge). Everything is
//! stamped from the virtual [`Clock`] — the host clock is never read — so
//! two runs with the same seed produce byte-identical exports.
//!
//! A sink is **disabled by default** ([`TraceSink::default`]): every
//! operation on a disabled sink is a single `Option` check, so leaving the
//! instrumentation in place costs effectively nothing when tracing is off.
//!
//! # Trace modes
//!
//! An enabled sink runs in one of two [`TraceMode`]s:
//!
//! * [`TraceMode::Full`] retains every span, counter sample and gauge
//!   sample — O(events) memory — for post-hoc analysis and the Chrome
//!   trace exporter.
//! * [`TraceMode::Aggregate`] folds each span into per-name aggregates and
//!   log-bucketed [`Histogram`]s *at close time* and drops the raw record;
//!   counter and gauge samples are never retained. Memory stays at
//!   O(distinct metric keys × timeline slices) no matter how many events a
//!   run produces — the mode that scales to 10^5-domain experiments.
//!
//! Both modes additionally stream every observation into a bounded
//! virtual-time [`Timeline`] and resolve dom-attributed metrics to their
//! clone family via the [`FamilyRegistry`] fed by the hypervisor, so
//! [`timeline_csv`](TraceSink::timeline_csv),
//! [`metrics_text`](TraceSink::metrics_text) and
//! [`family_rollup_csv`](TraceSink::family_rollup_csv) are byte-identical
//! across modes, seeds and `NEPHELE_THREADS` widths.
//!
//! Exporters:
//!
//! * [`TraceSink::chrome_trace_json`] — the Chrome trace-event format
//!   (loadable in `about:tracing` or [Perfetto](https://ui.perfetto.dev)),
//!   with spans as complete (`"ph":"X"`) events and counters as `"ph":"C"`
//!   events (Full mode only — Aggregate drops the raw events);
//! * [`TraceSink::span_aggregates_csv`] — a flat `span,count,total_ms,mean_ms`
//!   table, sorted by span name, for printing next to experiment series;
//! * [`TraceSink::timeline_csv`] — the virtual-time slice ring;
//! * [`TraceSink::metrics_text`] — Prometheus-style text exposition of the
//!   end-of-run state;
//! * [`TraceSink::family_rollup_csv`] — per-clone-family rollups.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::Path;
use std::rc::Rc;

use crate::clock::Clock;
use crate::hist::Histogram;
use crate::ids::DomId;
use crate::rollup::{render_family_csv, FamilyRegistry, FamilyRow};
use crate::time::SimTime;
use crate::timeline::{Timeline, TimelineConfig};

/// How much raw data an enabled sink retains; see the [module docs](self).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// No tracing at all (the sink is disabled).
    Off,
    /// Retain every raw record — O(events) memory.
    #[default]
    Full,
    /// Fold at record time, drop raw records — O(keys) memory.
    Aggregate,
}

impl TraceMode {
    /// Parses the `NEPHELE_TRACE_MODE` spellings (case-insensitive):
    /// `off`/`0`/`none`, `full`/`1`/`on`, `aggregate`/`agg`.
    pub fn parse(s: &str) -> Option<TraceMode> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(TraceMode::Off),
            "full" | "1" | "on" => Some(TraceMode::Full),
            "aggregate" | "agg" => Some(TraceMode::Aggregate),
            _ => None,
        }
    }
}

impl fmt::Display for TraceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceMode::Off => "off",
            TraceMode::Full => "full",
            TraceMode::Aggregate => "aggregate",
        })
    }
}

/// Tracing knobs for a platform (off by default).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When `false` the platform keeps a disabled sink and
    /// instrumentation does near-zero work.
    pub enabled: bool,
    /// Retention mode of an enabled sink ([`TraceMode::Full`] by default;
    /// [`TraceMode::Off`] here disables the sink like `enabled: false`).
    pub mode: TraceMode,
    /// Retention cap for raw counter samples in Full mode (`None` =
    /// unbounded). When the cap is hit the *oldest* samples are dropped
    /// (counted in [`SinkOverhead::counter_samples_dropped`]); totals,
    /// timelines and streaming aggregates are unaffected.
    pub counter_sample_cap: Option<usize>,
    /// Virtual-time slicing of the [`Timeline`].
    pub timeline: TimelineConfig,
}

impl TraceConfig {
    /// A config with tracing switched on (Full mode).
    pub fn enabled() -> Self {
        TraceConfig { enabled: true, ..Default::default() }
    }

    /// A config with Aggregate-mode tracing switched on.
    pub fn aggregate() -> Self {
        TraceConfig::with_mode(TraceMode::Aggregate)
    }

    /// A config for the given mode ([`TraceMode::Off`] yields a disabled
    /// config).
    pub fn with_mode(mode: TraceMode) -> Self {
        TraceConfig { enabled: mode != TraceMode::Off, mode, ..Default::default() }
    }

    /// The mode an enabled sink built from this config would run in.
    pub fn effective_mode(&self) -> TraceMode {
        if self.enabled {
            self.mode
        } else {
            TraceMode::Off
        }
    }
}

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Owned string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One recorded span (finished once `end` is set).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (static taxonomy, e.g. `hv.cloneop`).
    pub name: &'static str,
    /// Index of the enclosing span in the sink's span list, if nested.
    pub parent: Option<usize>,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Virtual time at entry.
    pub start: SimTime,
    /// Virtual time at exit (`None` while the span is open).
    pub end: Option<SimTime>,
    /// Typed attributes attached via [`SpanGuard::attr`].
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Clone-family root this span was attributed to at close time, via
    /// its first `dom`/`parent`/`child` attribute (`None` when the span
    /// carries none, or the domain is outside any registered family).
    pub family: Option<u32>,
}

impl SpanRecord {
    /// Span duration in virtual nanoseconds (0 while still open).
    pub fn duration_ns(&self) -> u64 {
        self.end.map(|e| e.since(self.start).as_ns()).unwrap_or(0)
    }
}

/// One timestamped counter observation (the running total after the bump).
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Counter name.
    pub name: &'static str,
    /// Virtual time of the bump.
    pub at: SimTime,
    /// The bump itself.
    pub delta: u64,
    /// Running total after the bump.
    pub total: u64,
    /// Clone-family root the bump was attributed to at record time (set
    /// by [`TraceSink::count_dom`] for domains in a registered family).
    pub family: Option<u32>,
}

/// One timestamped per-domain gauge observation.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Gauge name.
    pub name: &'static str,
    /// Domain the observation belongs to (Dom0 for host-wide gauges).
    pub dom: DomId,
    /// Virtual time of the observation.
    pub at: SimTime,
    /// Observed value.
    pub value: u64,
}

/// Aggregate statistics for all spans sharing a name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAggregate {
    /// Span name.
    pub name: &'static str,
    /// Number of finished spans with this name.
    pub count: u64,
    /// Total virtual nanoseconds across them.
    pub total_ns: u64,
    /// Mean virtual nanoseconds (integer division).
    pub mean_ns: u64,
}

/// The sink's accounting of its own host-side work and retention — the
/// numbers behind the "Aggregate mode is O(keys), not O(events)" claim.
/// All counts are cumulative since construction (or the last
/// [`TraceSink::clear`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkOverhead {
    /// Spans opened.
    pub span_opens: u64,
    /// Spans closed.
    pub span_closes: u64,
    /// Counter bumps.
    pub counter_bumps: u64,
    /// Gauge observations.
    pub gauge_records: u64,
    /// Explicit histogram records ([`TraceSink::record_ns`]).
    pub hist_records: u64,
    /// Span records currently held (open spans plus, in Full mode, every
    /// closed one).
    pub retained_spans: u64,
    /// High-water mark of `retained_spans`.
    pub peak_retained_spans: u64,
    /// Raw counter samples currently held (always 0 in Aggregate mode).
    pub retained_counter_samples: u64,
    /// High-water mark of `retained_counter_samples`.
    pub peak_retained_counter_samples: u64,
    /// Raw gauge samples currently held (always 0 in Aggregate mode).
    pub retained_gauge_samples: u64,
    /// High-water mark of `retained_gauge_samples`.
    pub peak_retained_gauge_samples: u64,
    /// Counter samples evicted by [`TraceConfig::counter_sample_cap`].
    pub counter_samples_dropped: u64,
}

#[derive(Debug)]
struct TraceBuf {
    clock: Clock,
    mode: TraceMode,
    counter_cap: Option<usize>,
    spans: Vec<SpanRecord>,
    /// Free slots of the span slab (Aggregate mode reuses closed slots so
    /// open-span indices stay stable while memory stays bounded).
    free: Vec<usize>,
    stack: Vec<usize>,
    counters: BTreeMap<&'static str, u64>,
    counter_samples: VecDeque<CounterSample>,
    gauges: Vec<GaugeSample>,
    /// Last value per `(gauge, domain)` — the end-of-run state
    /// [`TraceSink::metrics_text`] exposes; maintained in both modes.
    gauge_last: BTreeMap<(&'static str, u32), u64>,
    hists: BTreeMap<&'static str, Histogram>,
    /// Streaming per-name span aggregates `(count, total_ns)` (Aggregate).
    span_agg: BTreeMap<&'static str, (u64, u64)>,
    /// Streaming per-name span duration histograms (Aggregate).
    span_hists: BTreeMap<&'static str, Histogram>,
    timeline: Timeline,
    families: FamilyRegistry,
    overhead: SinkOverhead,
}

impl TraceBuf {
    /// The family root for a span's attrs: the first of `dom`, `parent`,
    /// `child` that names a domain in a registered family.
    fn family_of_attrs(&self, attrs: &[(&'static str, AttrValue)]) -> Option<u32> {
        for key in ["dom", "parent", "child"] {
            if let Some((_, AttrValue::U64(v))) = attrs.iter().find(|(k, _)| *k == key) {
                if let Ok(d) = u32::try_from(*v) {
                    return self.families.root_of(DomId(d));
                }
            }
        }
        None
    }

    fn note_span_retention(&mut self) {
        let retained = (self.spans.len() - self.free.len()) as u64;
        self.overhead.retained_spans = retained;
        self.overhead.peak_retained_spans = self.overhead.peak_retained_spans.max(retained);
    }
}

/// A shareable handle onto a trace buffer; see the [module docs](self).
///
/// Cloning yields another handle onto the same buffer. The default sink is
/// disabled: all recording calls return immediately.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Rc<RefCell<TraceBuf>>>,
}

/// RAII guard for an open span: records the exit timestamp (from the shared
/// virtual clock) when dropped, which makes spans robust to `?`-style early
/// returns.
#[must_use = "a span ends when its guard drops; binding to _ ends it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(Rc<RefCell<TraceBuf>>, usize)>,
}

impl SpanGuard {
    /// Attaches a typed attribute to the span.
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some((buf, idx)) = &self.inner {
            buf.borrow_mut().spans[*idx].attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((buf, idx)) = self.inner.take() {
            let mut b = buf.borrow_mut();
            let end = b.clock.now();
            let rec = &mut b.spans[idx];
            rec.end = Some(end);
            let name = rec.name;
            let dur = end.since(rec.start).as_ns();
            let family = b.family_of_attrs(&b.spans[idx].attrs);
            b.spans[idx].family = family;
            b.stack.retain(|&i| i != idx);
            b.overhead.span_closes += 1;
            b.timeline.fold_span(end, name, dur);
            if b.mode == TraceMode::Aggregate {
                let e = b.span_agg.entry(name).or_insert((0, 0));
                e.0 += 1;
                e.1 += dur;
                b.span_hists.entry(name).or_default().record(dur);
                if let Some(root) = family {
                    b.families.record_span(root, name, dur);
                }
                // Tombstone the slot and hand it back to the slab: the
                // raw record (and its attr allocations) die here.
                b.spans[idx] = SpanRecord {
                    name: "",
                    parent: None,
                    depth: 0,
                    start: end,
                    end: Some(end),
                    attrs: Vec::new(),
                    family: None,
                };
                b.free.push(idx);
                b.note_span_retention();
            }
        }
    }
}

impl TraceSink {
    /// A disabled sink (same as [`TraceSink::default`]).
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// Builds a sink from the shared clock and a config; returns a disabled
    /// sink when the config's [effective mode](TraceConfig::effective_mode)
    /// is [`TraceMode::Off`].
    pub fn new(clock: Clock, config: &TraceConfig) -> Self {
        let mode = config.effective_mode();
        if mode == TraceMode::Off {
            return TraceSink::disabled();
        }
        TraceSink {
            inner: Some(Rc::new(RefCell::new(TraceBuf {
                clock,
                mode,
                counter_cap: config.counter_sample_cap,
                spans: Vec::new(),
                free: Vec::new(),
                stack: Vec::new(),
                counters: BTreeMap::new(),
                counter_samples: VecDeque::new(),
                gauges: Vec::new(),
                gauge_last: BTreeMap::new(),
                hists: BTreeMap::new(),
                span_agg: BTreeMap::new(),
                span_hists: BTreeMap::new(),
                timeline: Timeline::new(config.timeline),
                families: FamilyRegistry::default(),
                overhead: SinkOverhead::default(),
            }))),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The mode this sink runs in ([`TraceMode::Off`] when disabled).
    pub fn mode(&self) -> TraceMode {
        self.inner.as_ref().map(|b| b.borrow().mode).unwrap_or(TraceMode::Off)
    }

    /// Opens a span named `name`, stamped at the current virtual instant.
    /// The span closes (and its exit is stamped) when the returned guard
    /// drops. Spans opened while another is open become its children.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(buf) = &self.inner else {
            return SpanGuard { inner: None };
        };
        let mut b = buf.borrow_mut();
        let start = b.clock.now();
        let parent = b.stack.last().copied();
        let depth = parent.map(|p| b.spans[p].depth + 1).unwrap_or(0);
        let rec = SpanRecord {
            name,
            parent,
            depth,
            start,
            end: None,
            attrs: Vec::new(),
            family: None,
        };
        let idx = match b.free.pop() {
            Some(i) => {
                b.spans[i] = rec;
                i
            }
            None => {
                b.spans.push(rec);
                b.spans.len() - 1
            }
        };
        b.stack.push(idx);
        b.overhead.span_opens += 1;
        b.note_span_retention();
        SpanGuard {
            inner: Some((buf.clone(), idx)),
        }
    }

    /// Bumps the named monotonic counter by `delta`; in Full mode a
    /// timestamped sample of the new total is retained (subject to
    /// [`TraceConfig::counter_sample_cap`]).
    pub fn count(&self, name: &'static str, delta: u64) {
        self.count_inner(name, None, delta);
    }

    /// Like [`count`](Self::count), additionally attributing the bump to
    /// `dom`'s clone family for [`family_rollup_csv`](Self::family_rollup_csv).
    pub fn count_dom(&self, name: &'static str, dom: DomId, delta: u64) {
        self.count_inner(name, Some(dom), delta);
    }

    fn count_inner(&self, name: &'static str, dom: Option<DomId>, delta: u64) {
        let Some(buf) = &self.inner else { return };
        let mut b = buf.borrow_mut();
        let at = b.clock.now();
        let total = {
            let c = b.counters.entry(name).or_insert(0);
            *c += delta;
            *c
        };
        b.overhead.counter_bumps += 1;
        b.timeline.fold_count(at, name, delta, total);
        let family = dom.and_then(|d| b.families.root_of(d));
        match b.mode {
            TraceMode::Full => {
                b.counter_samples.push_back(CounterSample { name, at, delta, total, family });
                if let Some(cap) = b.counter_cap {
                    while b.counter_samples.len() > cap {
                        b.counter_samples.pop_front();
                        b.overhead.counter_samples_dropped += 1;
                    }
                }
                let retained = b.counter_samples.len() as u64;
                b.overhead.retained_counter_samples = retained;
                b.overhead.peak_retained_counter_samples =
                    b.overhead.peak_retained_counter_samples.max(retained);
            }
            TraceMode::Aggregate => {
                if let Some(root) = family {
                    b.families.record_counter(root, name, delta);
                }
            }
            TraceMode::Off => unreachable!("an enabled sink is never Off"),
        }
    }

    /// Records a timestamped per-domain gauge observation. The last value
    /// per `(name, dom)` is kept in both modes; Full mode retains every
    /// sample. Gauges of domains in a registered clone family also update
    /// the family rollup (last value per member, dying with the member).
    pub fn gauge(&self, name: &'static str, dom: DomId, value: u64) {
        let Some(buf) = &self.inner else { return };
        let mut b = buf.borrow_mut();
        let at = b.clock.now();
        b.overhead.gauge_records += 1;
        b.gauge_last.insert((name, dom.0), value);
        b.timeline.fold_gauge(at, name, dom.0, value);
        if let Some(root) = b.families.root_of(dom) {
            b.families.record_gauge(root, name, dom.0, value);
        }
        if b.mode == TraceMode::Full {
            b.gauges.push(GaugeSample { name, dom, at, value });
            let retained = b.gauges.len() as u64;
            b.overhead.retained_gauge_samples = retained;
            b.overhead.peak_retained_gauge_samples =
                b.overhead.peak_retained_gauge_samples.max(retained);
        }
    }

    /// Records a virtual-nanosecond latency sample into the named
    /// log-bucketed [`Histogram`] (see [`crate::hist`]) and the timeline.
    /// O(1); a no-op on a disabled sink.
    pub fn record_ns(&self, name: &'static str, ns: u64) {
        let Some(buf) = &self.inner else { return };
        let mut b = buf.borrow_mut();
        let at = b.clock.now();
        b.overhead.hist_records += 1;
        b.hists.entry(name).or_default().record(ns);
        b.timeline.fold_span(at, name, ns);
    }

    /// Snapshot of the named latency histogram (`None` when unknown or
    /// disabled).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|b| b.borrow().hists.get(name).cloned())
    }

    /// Snapshot of all latency histograms, keyed by operation name.
    pub fn histograms(&self) -> BTreeMap<&'static str, Histogram> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().hists.clone())
            .unwrap_or_default()
    }

    /// Per-name histograms of span durations: streamed at close time in
    /// Aggregate mode, computed from the retained records in Full mode —
    /// identical either way.
    pub fn span_hists(&self) -> BTreeMap<&'static str, Histogram> {
        let Some(buf) = &self.inner else {
            return BTreeMap::new();
        };
        let b = buf.borrow();
        match b.mode {
            TraceMode::Aggregate => b.span_hists.clone(),
            _ => {
                let mut out: BTreeMap<&'static str, Histogram> = BTreeMap::new();
                for s in &b.spans {
                    if s.end.is_some() {
                        out.entry(s.name).or_default().record(s.duration_ns());
                    }
                }
                out
            }
        }
    }

    /// The latency histograms as
    /// `op,count,p50_us,p90_us,p99_us,max_us` CSV (header included, rows
    /// sorted by operation name, fixed-point microseconds). Byte-identical
    /// across runs that record the same values.
    pub fn histograms_csv(&self) -> String {
        let mut out = String::from("op,count,p50_us,p90_us,p99_us,max_us\n");
        for (name, h) in self.histograms() {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                name,
                h.count(),
                fmt_us(h.percentile(50.0)),
                fmt_us(h.percentile(90.0)),
                fmt_us(h.percentile(99.0)),
                fmt_us(h.max())
            ));
        }
        out
    }

    /// Writes [`histograms_csv`](Self::histograms_csv) to `path`, creating
    /// parent directories as needed.
    pub fn write_histograms(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_creating_dirs(path.as_ref(), &self.histograms_csv())
    }

    /// Current total of a counter (0 when unknown or disabled).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map(|b| b.borrow().counters.get(name).copied().unwrap_or(0))
            .unwrap_or(0)
    }

    /// Snapshot of all recorded spans, in open order. Aggregate mode
    /// returns an empty list: raw records are dropped at close time.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map(|b| {
                let b = b.borrow();
                match b.mode {
                    TraceMode::Aggregate => Vec::new(),
                    _ => b.spans.clone(),
                }
            })
            .unwrap_or_default()
    }

    /// Snapshot of all counter totals.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().counters.clone())
            .unwrap_or_default()
    }

    /// Snapshot of the retained raw counter samples, in record order
    /// (empty in Aggregate mode; the oldest may have been evicted by
    /// [`TraceConfig::counter_sample_cap`]).
    pub fn counter_samples(&self) -> Vec<CounterSample> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().counter_samples.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Snapshot of all gauge samples, in record order (empty in Aggregate
    /// mode).
    pub fn gauges(&self) -> Vec<GaugeSample> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().gauges.clone())
            .unwrap_or_default()
    }

    /// Last observed value per `(gauge, domain id)` — maintained in both
    /// modes.
    pub fn gauge_last(&self) -> BTreeMap<(&'static str, u32), u64> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().gauge_last.clone())
            .unwrap_or_default()
    }

    /// The sink's self-accounting (zero when disabled).
    pub fn overhead(&self) -> SinkOverhead {
        self.inner
            .as_ref()
            .map(|b| b.borrow().overhead)
            .unwrap_or_default()
    }

    /// Clears all recorded metric data (spans, counters, gauges, timeline,
    /// aggregates, overhead); the sink stays enabled and the clone-family
    /// *lineage* is kept — lineage is structural state fed by lifecycle
    /// events that will not be replayed — while per-family metric stats
    /// reset. Useful for scoping an export to one phase of an experiment.
    pub fn clear(&self) {
        if let Some(buf) = &self.inner {
            let mut b = buf.borrow_mut();
            b.spans.clear();
            b.free.clear();
            b.stack.clear();
            b.counters.clear();
            b.counter_samples.clear();
            b.gauges.clear();
            b.gauge_last.clear();
            b.hists.clear();
            b.span_agg.clear();
            b.span_hists.clear();
            b.timeline.clear();
            b.families.clear_stats();
            b.overhead = SinkOverhead::default();
        }
    }

    /// Checks the structural invariants of the recorded spans: every span
    /// is finished, ends at or after its start, and lies within its parent's
    /// interval. Returns a description of the first violation. In Aggregate
    /// mode only the open/closed invariant remains checkable (closed spans
    /// are gone).
    pub fn validate_well_nested(&self) -> Result<(), String> {
        if let Some(buf) = &self.inner {
            let b = buf.borrow();
            if b.mode == TraceMode::Aggregate {
                if !b.stack.is_empty() {
                    return Err(format!("{} span(s) still open", b.stack.len()));
                }
                return Ok(());
            }
        }
        let spans = self.spans();
        for (i, s) in spans.iter().enumerate() {
            let Some(end) = s.end else {
                return Err(format!("span #{i} {:?} is still open", s.name));
            };
            if end < s.start {
                return Err(format!("span #{i} {:?} ends before it starts", s.name));
            }
            if let Some(p) = s.parent {
                let parent = &spans[p];
                let pend = parent.end.unwrap_or(SimTime::from_ns(u64::MAX));
                if s.start < parent.start || end > pend {
                    return Err(format!(
                        "span #{i} {:?} escapes its parent {:?}",
                        s.name, parent.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Per-name aggregates over finished spans, sorted by name: streamed
    /// at close time in Aggregate mode, computed post-hoc in Full mode —
    /// identical either way.
    pub fn span_aggregates(&self) -> Vec<SpanAggregate> {
        let agg: BTreeMap<&'static str, (u64, u64)> = match &self.inner {
            Some(buf) if buf.borrow().mode == TraceMode::Aggregate => {
                buf.borrow().span_agg.clone()
            }
            _ => {
                let mut agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
                for s in self.spans() {
                    if s.end.is_some() {
                        let e = agg.entry(s.name).or_insert((0, 0));
                        e.0 += 1;
                        e.1 += s.duration_ns();
                    }
                }
                agg
            }
        };
        agg.into_iter()
            .map(|(name, (count, total_ns))| SpanAggregate {
                name,
                count,
                total_ns,
                mean_ns: total_ns / count.max(1),
            })
            .collect()
    }

    /// The span aggregates as `span,count,total_ms,mean_ms` CSV (header
    /// included, rows sorted by span name, fixed-point milliseconds).
    pub fn span_aggregates_csv(&self) -> String {
        let mut out = String::from("span,count,total_ms,mean_ms\n");
        for a in self.span_aggregates() {
            out.push_str(&format!(
                "{},{},{},{}\n",
                a.name,
                a.count,
                fmt_ms(a.total_ns),
                fmt_ms(a.mean_ns)
            ));
        }
        out
    }

    // ------------------------------------------------------------------
    // Clone-family provenance (fed by the hypervisor's family tree)
    // ------------------------------------------------------------------

    /// Registers `dom` as the root of a new clone family.
    pub fn family_root_created(&self, dom: DomId, name: &str) {
        if let Some(buf) = &self.inner {
            buf.borrow_mut().families.register_root(dom, name);
        }
    }

    /// Registers `child` as a clone of `parent`, joining its family.
    pub fn family_cloned(&self, child: DomId, parent: Option<DomId>) {
        if let Some(buf) = &self.inner {
            buf.borrow_mut().families.register_child(child, parent);
        }
    }

    /// Notes that `dom` was destroyed (its family's live count drops).
    pub fn family_destroyed(&self, dom: DomId) {
        if let Some(buf) = &self.inner {
            buf.borrow_mut().families.forget(dom);
        }
    }

    /// The clone family root a live domain belongs to, if registered.
    pub fn family_root_of(&self, dom: DomId) -> Option<u32> {
        self.inner.as_ref().and_then(|b| b.borrow().families.root_of(dom))
    }

    /// Per-family rollup rows. Membership and gauges always come from the
    /// streaming registry; span and counter attributions are streamed in
    /// Aggregate mode and recomputed from the retained (family-stamped)
    /// records in Full mode — identical either way (Full's counter rows
    /// can undercount only if [`TraceConfig::counter_sample_cap`] evicted
    /// attributed samples).
    pub fn family_rows(&self) -> Vec<FamilyRow> {
        let Some(buf) = &self.inner else {
            return Vec::new();
        };
        let b = buf.borrow();
        match b.mode {
            TraceMode::Aggregate => b.families.rows(),
            _ => {
                let mut reg = b.families.clone();
                reg.clear_flow_stats();
                for s in &b.spans {
                    if let (Some(root), Some(_)) = (s.family, s.end) {
                        reg.record_span(root, s.name, s.duration_ns());
                    }
                }
                for c in &b.counter_samples {
                    if let Some(root) = c.family {
                        reg.record_counter(root, c.name, c.delta);
                    }
                }
                reg.rows()
            }
        }
    }

    /// The family rollups as `family,root,metric,value` CSV, sorted by
    /// `(family, metric)`.
    pub fn family_rollup_csv(&self) -> String {
        render_family_csv(self.family_rows())
    }

    /// Writes [`family_rollup_csv`](Self::family_rollup_csv) to `path`,
    /// creating parent directories as needed.
    pub fn write_family_rollup(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_creating_dirs(path.as_ref(), &self.family_rollup_csv())
    }

    // ------------------------------------------------------------------
    // Timeline + Prometheus-style exposition
    // ------------------------------------------------------------------

    /// The virtual-time slice ring as CSV (see [`Timeline::csv`]); the
    /// header alone when disabled.
    pub fn timeline_csv(&self) -> String {
        self.inner
            .as_ref()
            .map(|b| b.borrow().timeline.csv())
            .unwrap_or_else(|| Timeline::default().csv())
    }

    /// Retained timeline slices and slices evicted off the ring so far:
    /// `(len, evicted)`.
    pub fn timeline_stats(&self) -> (usize, u64) {
        self.inner
            .as_ref()
            .map(|b| {
                let b = b.borrow();
                (b.timeline.len(), b.timeline.evicted())
            })
            .unwrap_or((0, 0))
    }

    /// Writes [`timeline_csv`](Self::timeline_csv) to `path`, creating
    /// parent directories as needed.
    pub fn write_timeline(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_creating_dirs(path.as_ref(), &self.timeline_csv())
    }

    /// Prometheus-style text exposition of the end-of-run state: counter
    /// totals, last gauge values per domain, explicit latency histograms
    /// and span-duration histograms as summaries (ns quantiles), and span
    /// totals. Metric names are `nephele_`-prefixed with `.` mapped to
    /// `_`. Identical across modes, seeds and thread widths.
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        for (name, total) in self.counters() {
            let s = sanitize(name);
            out.push_str(&format!("# TYPE nephele_{s}_total counter\n"));
            out.push_str(&format!("nephele_{s}_total {total}\n"));
        }
        let mut last_gauge: Option<&'static str> = None;
        for ((name, dom), value) in self.gauge_last() {
            if last_gauge != Some(name) {
                out.push_str(&format!("# TYPE nephele_{} gauge\n", sanitize(name)));
                last_gauge = Some(name);
            }
            out.push_str(&format!("nephele_{}{{dom=\"{dom}\"}} {value}\n", sanitize(name)));
        }
        for (name, h) in self.histograms() {
            push_summary(&mut out, &format!("nephele_{}_ns", sanitize(name)), &h);
        }
        for (name, h) in self.span_hists() {
            push_summary(&mut out, &format!("nephele_span_{}_duration_ns", sanitize(name)), &h);
        }
        for a in self.span_aggregates() {
            let s = sanitize(a.name);
            out.push_str(&format!("# TYPE nephele_span_{s}_ns_total counter\n"));
            out.push_str(&format!("nephele_span_{s}_ns_total {}\n", a.total_ns));
            out.push_str(&format!("# TYPE nephele_span_{s}_count counter\n"));
            out.push_str(&format!("nephele_span_{s}_count {}\n", a.count));
        }
        out
    }

    /// Writes [`metrics_text`](Self::metrics_text) to `path`, creating
    /// parent directories as needed.
    pub fn write_metrics_text(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_creating_dirs(path.as_ref(), &self.metrics_text())
    }

    /// Exports everything recorded so far in the Chrome trace-event JSON
    /// format. Spans become complete (`"ph":"X"`) events on one track,
    /// counters become `"ph":"C"` events, gauges become per-domain counter
    /// tracks. Timestamps are virtual microseconds with nanosecond
    /// precision; the output is byte-stable for identical recordings.
    /// Aggregate mode yields an empty event list (raw events are dropped);
    /// use the timeline / metrics exporters there instead.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for s in &self.spans() {
            let Some(end) = s.end else { continue };
            let mut args = String::new();
            for (k, v) in &s.attrs {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!("{}:{}", json_str(k), json_attr(v)));
            }
            events.push(format!(
                "{{\"name\":{},\"cat\":\"sim\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0,\"args\":{{{}}}}}",
                json_str(s.name),
                fmt_us(s.start.as_ns()),
                fmt_us(end.since(s.start).as_ns()),
                args
            ));
        }
        for c in &self.counter_samples() {
            events.push(format!(
                "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"value\":{}}}}}",
                json_str(c.name),
                fmt_us(c.at.as_ns()),
                c.total
            ));
        }
        for g in &self.gauges() {
            events.push(format!(
                "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":{},\"args\":{{\"value\":{}}}}}",
                json_str(g.name),
                fmt_us(g.at.as_ns()),
                g.dom.0,
                g.value
            ));
        }
        format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
    }

    /// Writes [`chrome_trace_json`](Self::chrome_trace_json) to `path`,
    /// creating parent directories as needed.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_creating_dirs(path.as_ref(), &self.chrome_trace_json())
    }

    /// Writes [`span_aggregates_csv`](Self::span_aggregates_csv) to `path`,
    /// creating parent directories as needed.
    pub fn write_span_aggregates(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_creating_dirs(path.as_ref(), &self.span_aggregates_csv())
    }
}

fn write_creating_dirs(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, content)
}

/// One Prometheus summary block: p50/p90/p99 quantiles plus `_sum` and
/// `_count`, all in the histogram's native unit (integer ns).
fn push_summary(out: &mut String, metric: &str, h: &Histogram) {
    out.push_str(&format!("# TYPE {metric} summary\n"));
    for (q, p) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)] {
        out.push_str(&format!("{metric}{{quantile=\"{q}\"}} {}\n", h.percentile(p)));
    }
    out.push_str(&format!("{metric}_sum {}\n", h.sum()));
    out.push_str(&format!("{metric}_count {}\n", h.count()));
}

/// Maps a metric name onto the Prometheus charset (`.`/other separators
/// become `_`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Formats nanoseconds as fixed-point microseconds (`123.456`), the unit of
/// Chrome trace timestamps. Integer math only, so the output is stable.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Formats nanoseconds as fixed-point milliseconds (`1.234567`).
fn fmt_ms(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000, ns % 1_000_000)
}

/// JSON string literal with the characters the taxonomy can contain escaped.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(n) => n.to_string(),
        AttrValue::I64(n) => n.to_string(),
        AttrValue::F64(n) if n.is_finite() => n.to_string(),
        AttrValue::F64(_) => "null".to_string(),
        AttrValue::Str(s) => json_str(s),
        AttrValue::Bool(b) => b.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn enabled_sink() -> (Clock, TraceSink) {
        let clock = Clock::new();
        let sink = TraceSink::new(clock.clone(), &TraceConfig::enabled());
        (clock, sink)
    }

    fn aggregate_sink() -> (Clock, TraceSink) {
        let clock = Clock::new();
        let sink = TraceSink::new(clock.clone(), &TraceConfig::aggregate());
        (clock, sink)
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::default();
        assert!(!sink.is_enabled());
        assert_eq!(sink.mode(), TraceMode::Off);
        {
            let g = sink.span("noop");
            g.attr("k", 1u64);
            sink.count("c", 5);
            sink.gauge("g", DomId::DOM0, 7);
            sink.record_ns("h", 123);
        }
        assert!(sink.spans().is_empty());
        assert_eq!(sink.counter_total("c"), 0);
        assert!(sink.gauges().is_empty());
        assert!(sink.histogram("h").is_none());
        assert_eq!(sink.histograms_csv(), "op,count,p50_us,p90_us,p99_us,max_us\n");
        assert_eq!(sink.chrome_trace_json(), "{\"traceEvents\":[]}\n");
        assert_eq!(sink.overhead(), SinkOverhead::default());
    }

    #[test]
    fn off_mode_config_builds_a_disabled_sink() {
        let clock = Clock::new();
        let sink = TraceSink::new(clock, &TraceConfig::with_mode(TraceMode::Off));
        assert!(!sink.is_enabled());
        assert_eq!(TraceConfig::enabled().effective_mode(), TraceMode::Full);
        assert_eq!(TraceConfig::aggregate().effective_mode(), TraceMode::Aggregate);
        assert_eq!(TraceConfig::default().effective_mode(), TraceMode::Off);
    }

    #[test]
    fn trace_mode_parses_env_spellings() {
        assert_eq!(TraceMode::parse("off"), Some(TraceMode::Off));
        assert_eq!(TraceMode::parse("FULL"), Some(TraceMode::Full));
        assert_eq!(TraceMode::parse("agg"), Some(TraceMode::Aggregate));
        assert_eq!(TraceMode::parse("aggregate"), Some(TraceMode::Aggregate));
        assert_eq!(TraceMode::parse("bogus"), None);
        assert_eq!(TraceMode::Aggregate.to_string(), "aggregate");
    }

    #[test]
    fn spans_nest_and_stamp_virtual_time() {
        let (clock, sink) = enabled_sink();
        {
            let root = sink.span("root");
            clock.advance(SimDuration::from_us(10));
            {
                let child = sink.span("child");
                child.attr("pages", 42u64);
                clock.advance(SimDuration::from_us(5));
            }
            clock.advance(SimDuration::from_us(1));
            drop(root);
        }
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].duration_ns(), 16_000);
        assert_eq!(spans[1].name, "child");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].start.as_ns(), 10_000);
        assert_eq!(spans[1].duration_ns(), 5_000);
        assert_eq!(spans[1].attrs, vec![("pages", AttrValue::U64(42))]);
        sink.validate_well_nested().unwrap();
    }

    #[test]
    fn guard_survives_early_return() {
        fn inner(sink: &TraceSink, clock: &Clock) -> Result<(), ()> {
            let _g = sink.span("fallible");
            clock.advance(SimDuration::from_ns(3));
            Err(())
        }
        let (clock, sink) = enabled_sink();
        let _ = inner(&sink, &clock);
        let spans = sink.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration_ns(), 3);
        sink.validate_well_nested().unwrap();
    }

    #[test]
    fn counters_accumulate_with_samples() {
        let (clock, sink) = enabled_sink();
        sink.count("ring.tx", 1);
        clock.advance(SimDuration::from_us(2));
        sink.count("ring.tx", 2);
        sink.count("ring.rx", 1);
        assert_eq!(sink.counter_total("ring.tx"), 3);
        assert_eq!(sink.counter_total("ring.rx"), 1);
        assert_eq!(sink.counter_total("missing"), 0);
        let counters = sink.counters();
        assert_eq!(counters.get("ring.tx"), Some(&3));
        let samples = sink.counter_samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[1].delta, 2);
        assert_eq!(samples[1].total, 3);
    }

    #[test]
    fn counter_sample_cap_drops_oldest_only() {
        let clock = Clock::new();
        let sink = TraceSink::new(
            clock.clone(),
            &TraceConfig {
                counter_sample_cap: Some(2),
                ..TraceConfig::enabled()
            },
        );
        for _ in 0..5 {
            sink.count("c", 1);
        }
        assert_eq!(sink.counter_total("c"), 5, "totals never lose bumps");
        let samples = sink.counter_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].total, 4, "oldest samples were evicted");
        let o = sink.overhead();
        assert_eq!(o.counter_samples_dropped, 3);
        assert_eq!(o.peak_retained_counter_samples, 2);
    }

    #[test]
    fn aggregate_mode_drops_raw_records_but_keeps_aggregates() {
        let (clock, sink) = aggregate_sink();
        assert_eq!(sink.mode(), TraceMode::Aggregate);
        for i in 0..100u64 {
            let g = sink.span("work");
            g.attr("i", i);
            clock.advance(SimDuration::from_us(2));
            drop(g);
            sink.count("ticks", 1);
            sink.gauge("level", DomId(3), i);
        }
        assert!(sink.spans().is_empty(), "raw spans are folded away");
        assert!(sink.counter_samples().is_empty());
        assert!(sink.gauges().is_empty());
        assert_eq!(sink.counter_total("ticks"), 100);
        assert_eq!(sink.gauge_last()[&("level", 3)], 99);
        let agg = sink.span_aggregates();
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].count, 100);
        assert_eq!(agg[0].total_ns, 200_000);
        assert_eq!(sink.span_hists()["work"].count(), 100);
        let o = sink.overhead();
        assert_eq!(o.span_opens, 100);
        assert_eq!(o.peak_retained_spans, 1, "slab reuses the closed slot");
        assert_eq!(o.retained_counter_samples, 0);
        sink.validate_well_nested().unwrap();
    }

    #[test]
    fn aggregate_matches_full_for_same_recording() {
        fn drive(sink: &TraceSink, clock: &Clock) {
            for i in 0..10u64 {
                let g = sink.span("op.a");
                clock.advance(SimDuration::from_us(1 + i));
                drop(g);
                sink.count("n", 2);
                sink.record_ns("h", 10 * i);
                sink.gauge("lvl", DomId(2), i);
            }
        }
        let (c1, full) = enabled_sink();
        let (c2, agg) = aggregate_sink();
        drive(&full, &c1);
        drive(&agg, &c2);
        assert_eq!(full.span_aggregates(), agg.span_aggregates());
        assert_eq!(full.span_hists(), agg.span_hists());
        assert_eq!(full.histograms(), agg.histograms());
        assert_eq!(full.timeline_csv(), agg.timeline_csv());
        assert_eq!(full.metrics_text(), agg.metrics_text());
    }

    #[test]
    fn family_rollups_attribute_spans_and_counters_to_roots() {
        for cfg in [TraceConfig::enabled(), TraceConfig::aggregate()] {
            let clock = Clock::new();
            let sink = TraceSink::new(clock.clone(), &cfg);
            sink.family_root_created(DomId(1), "web");
            sink.family_cloned(DomId(2), Some(DomId(1)));
            {
                let g = sink.span("clone.child");
                g.attr("child", 2u32);
                clock.advance(SimDuration::from_us(3));
            }
            sink.count_dom("cow.fault", DomId(2), 4);
            sink.gauge("bytes", DomId(2), 77);
            let csv = sink.family_rollup_csv();
            assert_eq!(
                csv,
                "family,root,metric,value\n\
                 1,web,counter.cow.fault,4\n\
                 1,web,gauge.bytes.dom2,77\n\
                 1,web,members_live,2\n\
                 1,web,members_total,2\n\
                 1,web,span.clone.child.count,1\n\
                 1,web,span.clone.child.total_ns,3000\n",
                "mode {:?}",
                cfg.effective_mode()
            );
            sink.family_destroyed(DomId(2));
            assert!(
                !sink.family_rollup_csv().contains("gauge.bytes"),
                "dead members hold no bytes"
            );
        }
    }

    #[test]
    fn aggregates_group_by_name_sorted() {
        let (clock, sink) = enabled_sink();
        for _ in 0..3 {
            let _g = sink.span("b.work");
            clock.advance(SimDuration::from_ms(2));
        }
        {
            let _g = sink.span("a.work");
            clock.advance(SimDuration::from_ms(1));
        }
        let agg = sink.span_aggregates();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].name, "a.work");
        assert_eq!(agg[0].count, 1);
        assert_eq!(agg[0].total_ns, 1_000_000);
        assert_eq!(agg[1].name, "b.work");
        assert_eq!(agg[1].count, 3);
        assert_eq!(agg[1].mean_ns, 2_000_000);
        let csv = sink.span_aggregates_csv();
        assert_eq!(
            csv,
            "span,count,total_ms,mean_ms\n\
             a.work,1,1.000000,1.000000\n\
             b.work,3,6.000000,2.000000\n"
        );
    }

    #[test]
    fn chrome_trace_is_valid_and_deterministic() {
        fn run() -> String {
            let (clock, sink) = enabled_sink();
            {
                let g = sink.span("hv.cloneop");
                g.attr("children", 2u64);
                g.attr("mode", "xs_clone");
                clock.advance(SimDuration::from_us(7));
                sink.count("cache.miss", 1);
                sink.gauge("hyp_free", DomId(1), 4096);
            }
            sink.chrome_trace_json()
        }
        let a = run();
        let b = run();
        assert_eq!(a, b, "same recording must serialize identically");
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.contains("\"name\":\"hv.cloneop\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"dur\":7.000"));
        assert!(a.contains("\"mode\":\"xs_clone\""));
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"value\":4096"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = a.matches('{').count();
        let closes = a.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn clear_resets_but_keeps_enabled_and_lineage() {
        let (clock, sink) = enabled_sink();
        sink.family_root_created(DomId(1), "web");
        {
            let _g = sink.span("x");
            clock.advance(SimDuration::from_ns(1));
        }
        sink.count("c", 1);
        sink.record_ns("h", 5);
        sink.clear();
        assert!(sink.is_enabled());
        assert!(sink.spans().is_empty());
        assert_eq!(sink.counter_total("c"), 0);
        assert!(sink.histogram("h").is_none());
        assert_eq!(sink.overhead(), SinkOverhead::default());
        assert_eq!(sink.timeline_stats(), (0, 0));
        assert_eq!(sink.family_root_of(DomId(1)), Some(1), "lineage survives clear");
    }

    #[test]
    fn histograms_export_fixed_point_csv() {
        let (_clock, sink) = enabled_sink();
        // Small values land in exact unit buckets, so the CSV is exact.
        for ns in [10u64, 20, 30, 40, 50] {
            sink.record_ns("b.op", ns);
        }
        sink.record_ns("a.op", 1_500);
        let h = sink.histogram("b.op").unwrap();
        assert_eq!(h.count(), 5);
        assert_eq!(h.percentile(50.0), 30);
        let csv = sink.histograms_csv();
        assert_eq!(
            csv,
            "op,count,p50_us,p90_us,p99_us,max_us\n\
             a.op,1,1.500,1.500,1.500,1.500\n\
             b.op,5,0.030,0.050,0.050,0.050\n"
        );
        let all = sink.histograms();
        assert_eq!(all.len(), 2);
        assert!(all.contains_key("a.op"));
    }

    #[test]
    fn metrics_text_exposes_end_of_run_state() {
        let (clock, sink) = enabled_sink();
        sink.count("xs.commits", 3);
        sink.gauge("mem.free", DomId(0), 1024);
        sink.record_ns("op", 50);
        {
            let _g = sink.span("clone.child");
            clock.advance(SimDuration::from_us(1));
        }
        let text = sink.metrics_text();
        assert!(text.contains("# TYPE nephele_xs_commits_total counter\n"));
        assert!(text.contains("nephele_xs_commits_total 3\n"));
        assert!(text.contains("nephele_mem_free{dom=\"0\"} 1024\n"));
        assert!(text.contains("nephele_op_ns{quantile=\"0.5\"} 50\n"));
        assert!(text.contains("nephele_op_ns_count 1\n"));
        assert!(text.contains("nephele_span_clone_child_duration_ns_count 1\n"));
        assert!(text.contains("nephele_span_clone_child_ns_total 1000\n"));
        assert_eq!(text, sink.metrics_text(), "exposition is stable");
    }

    #[test]
    fn validate_catches_open_span() {
        let (_clock, sink) = enabled_sink();
        let g = sink.span("open");
        assert!(sink.validate_well_nested().is_err());
        drop(g);
        sink.validate_well_nested().unwrap();

        let (_c2, agg) = aggregate_sink();
        let g2 = agg.span("open");
        assert!(agg.validate_well_nested().is_err());
        drop(g2);
        agg.validate_well_nested().unwrap();
    }

    #[test]
    fn shared_handles_write_one_buffer() {
        let (clock, sink) = enabled_sink();
        let other = sink.clone();
        {
            let _g = sink.span("outer");
            clock.advance(SimDuration::from_ns(5));
            let _h = other.span("inner");
        }
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, Some(0), "handles share the span stack");
    }
}

//! Deterministic, zero-dependency observability for the simulation.
//!
//! The platform owns a [`TraceSink`]; each mechanism component holds a
//! cloned handle (they share one buffer, like [`Clock`] handles share one
//! instant). Instrumented code opens virtual-time [`spans`](TraceSink::span)
//! around hot paths, bumps named monotonic [`counters`](TraceSink::count)
//! and records per-domain [`gauges`](TraceSink::gauge). Everything is
//! stamped from the virtual [`Clock`] — the host clock is never read — so
//! two runs with the same seed produce byte-identical exports.
//!
//! A sink is **disabled by default** ([`TraceSink::default`]): every
//! operation on a disabled sink is a single `Option` check, so leaving the
//! instrumentation in place costs effectively nothing when tracing is off.
//!
//! Two exporters are provided:
//!
//! * [`TraceSink::chrome_trace_json`] — the Chrome trace-event format
//!   (loadable in `about:tracing` or [Perfetto](https://ui.perfetto.dev)),
//!   with spans as complete (`"ph":"X"`) events and counters as `"ph":"C"`
//!   events;
//! * [`TraceSink::span_aggregates_csv`] — a flat `span,count,total_ms,mean_ms`
//!   table, sorted by span name, for printing next to experiment series.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::rc::Rc;

use crate::clock::Clock;
use crate::hist::Histogram;
use crate::ids::DomId;
use crate::time::SimTime;

/// Tracing knobs for a platform (off by default).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When `false` the platform keeps a disabled sink and
    /// instrumentation does near-zero work.
    pub enabled: bool,
}

impl TraceConfig {
    /// A config with tracing switched on.
    pub fn enabled() -> Self {
        TraceConfig { enabled: true }
    }
}

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Owned string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One recorded span (finished once `end` is set).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (static taxonomy, e.g. `hv.cloneop`).
    pub name: &'static str,
    /// Index of the enclosing span in the sink's span list, if nested.
    pub parent: Option<usize>,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Virtual time at entry.
    pub start: SimTime,
    /// Virtual time at exit (`None` while the span is open).
    pub end: Option<SimTime>,
    /// Typed attributes attached via [`SpanGuard::attr`].
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in virtual nanoseconds (0 while still open).
    pub fn duration_ns(&self) -> u64 {
        self.end.map(|e| e.since(self.start).as_ns()).unwrap_or(0)
    }
}

/// One timestamped counter observation (the running total after the bump).
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Counter name.
    pub name: &'static str,
    /// Virtual time of the bump.
    pub at: SimTime,
    /// Running total after the bump.
    pub total: u64,
}

/// One timestamped per-domain gauge observation.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Gauge name.
    pub name: &'static str,
    /// Domain the observation belongs to (Dom0 for host-wide gauges).
    pub dom: DomId,
    /// Virtual time of the observation.
    pub at: SimTime,
    /// Observed value.
    pub value: u64,
}

/// Aggregate statistics for all spans sharing a name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAggregate {
    /// Span name.
    pub name: &'static str,
    /// Number of finished spans with this name.
    pub count: u64,
    /// Total virtual nanoseconds across them.
    pub total_ns: u64,
    /// Mean virtual nanoseconds (integer division).
    pub mean_ns: u64,
}

#[derive(Debug)]
struct TraceBuf {
    clock: Clock,
    spans: Vec<SpanRecord>,
    stack: Vec<usize>,
    counters: BTreeMap<&'static str, u64>,
    counter_samples: Vec<CounterSample>,
    gauges: Vec<GaugeSample>,
    hists: BTreeMap<&'static str, Histogram>,
}

/// A shareable handle onto a trace buffer; see the [module docs](self).
///
/// Cloning yields another handle onto the same buffer. The default sink is
/// disabled: all recording calls return immediately.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Rc<RefCell<TraceBuf>>>,
}

/// RAII guard for an open span: records the exit timestamp (from the shared
/// virtual clock) when dropped, which makes spans robust to `?`-style early
/// returns.
#[must_use = "a span ends when its guard drops; binding to _ ends it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(Rc<RefCell<TraceBuf>>, usize)>,
}

impl SpanGuard {
    /// Attaches a typed attribute to the span.
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some((buf, idx)) = &self.inner {
            buf.borrow_mut().spans[*idx].attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((buf, idx)) = self.inner.take() {
            let mut b = buf.borrow_mut();
            let end = b.clock.now();
            b.spans[idx].end = Some(end);
            b.stack.retain(|&i| i != idx);
        }
    }
}

impl TraceSink {
    /// A disabled sink (same as [`TraceSink::default`]).
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// Builds a sink from the shared clock and a config; returns a disabled
    /// sink when `config.enabled` is `false`.
    pub fn new(clock: Clock, config: &TraceConfig) -> Self {
        if !config.enabled {
            return TraceSink::disabled();
        }
        TraceSink {
            inner: Some(Rc::new(RefCell::new(TraceBuf {
                clock,
                spans: Vec::new(),
                stack: Vec::new(),
                counters: BTreeMap::new(),
                counter_samples: Vec::new(),
                gauges: Vec::new(),
                hists: BTreeMap::new(),
            }))),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name`, stamped at the current virtual instant.
    /// The span closes (and its exit is stamped) when the returned guard
    /// drops. Spans opened while another is open become its children.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(buf) = &self.inner else {
            return SpanGuard { inner: None };
        };
        let mut b = buf.borrow_mut();
        let start = b.clock.now();
        let parent = b.stack.last().copied();
        let depth = parent.map(|p| b.spans[p].depth + 1).unwrap_or(0);
        let idx = b.spans.len();
        b.spans.push(SpanRecord {
            name,
            parent,
            depth,
            start,
            end: None,
            attrs: Vec::new(),
        });
        b.stack.push(idx);
        SpanGuard {
            inner: Some((buf.clone(), idx)),
        }
    }

    /// Bumps the named monotonic counter by `delta` and records a
    /// timestamped sample of the new total.
    pub fn count(&self, name: &'static str, delta: u64) {
        let Some(buf) = &self.inner else { return };
        let mut b = buf.borrow_mut();
        let at = b.clock.now();
        let total = {
            let c = b.counters.entry(name).or_insert(0);
            *c += delta;
            *c
        };
        b.counter_samples.push(CounterSample { name, at, total });
    }

    /// Records a timestamped per-domain gauge observation.
    pub fn gauge(&self, name: &'static str, dom: DomId, value: u64) {
        let Some(buf) = &self.inner else { return };
        let mut b = buf.borrow_mut();
        let at = b.clock.now();
        b.gauges.push(GaugeSample { name, dom, at, value });
    }

    /// Records a virtual-nanosecond latency sample into the named
    /// log-bucketed [`Histogram`] (see [`crate::hist`]). O(1); a no-op on a
    /// disabled sink.
    pub fn record_ns(&self, name: &'static str, ns: u64) {
        let Some(buf) = &self.inner else { return };
        buf.borrow_mut().hists.entry(name).or_default().record(ns);
    }

    /// Snapshot of the named latency histogram (`None` when unknown or
    /// disabled).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|b| b.borrow().hists.get(name).cloned())
    }

    /// Snapshot of all latency histograms, keyed by operation name.
    pub fn histograms(&self) -> BTreeMap<&'static str, Histogram> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().hists.clone())
            .unwrap_or_default()
    }

    /// The latency histograms as
    /// `op,count,p50_us,p90_us,p99_us,max_us` CSV (header included, rows
    /// sorted by operation name, fixed-point microseconds). Byte-identical
    /// across runs that record the same values.
    pub fn histograms_csv(&self) -> String {
        let mut out = String::from("op,count,p50_us,p90_us,p99_us,max_us\n");
        for (name, h) in self.histograms() {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                name,
                h.count(),
                fmt_us(h.percentile(50.0)),
                fmt_us(h.percentile(90.0)),
                fmt_us(h.percentile(99.0)),
                fmt_us(h.max())
            ));
        }
        out
    }

    /// Writes [`histograms_csv`](Self::histograms_csv) to `path`, creating
    /// parent directories as needed.
    pub fn write_histograms(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_creating_dirs(path.as_ref(), &self.histograms_csv())
    }

    /// Current total of a counter (0 when unknown or disabled).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map(|b| b.borrow().counters.get(name).copied().unwrap_or(0))
            .unwrap_or(0)
    }

    /// Snapshot of all recorded spans, in open order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().spans.clone())
            .unwrap_or_default()
    }

    /// Snapshot of all counter totals.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().counters.clone())
            .unwrap_or_default()
    }

    /// Snapshot of all gauge samples, in record order.
    pub fn gauges(&self) -> Vec<GaugeSample> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().gauges.clone())
            .unwrap_or_default()
    }

    /// Clears all recorded data (spans, counters, gauges); the sink stays
    /// enabled. Useful for scoping an export to one phase of an experiment.
    pub fn clear(&self) {
        if let Some(buf) = &self.inner {
            let mut b = buf.borrow_mut();
            b.spans.clear();
            b.stack.clear();
            b.counters.clear();
            b.counter_samples.clear();
            b.gauges.clear();
            b.hists.clear();
        }
    }

    /// Checks the structural invariants of the recorded spans: every span
    /// is finished, ends at or after its start, and lies within its parent's
    /// interval. Returns a description of the first violation.
    pub fn validate_well_nested(&self) -> Result<(), String> {
        let spans = self.spans();
        for (i, s) in spans.iter().enumerate() {
            let Some(end) = s.end else {
                return Err(format!("span #{i} {:?} is still open", s.name));
            };
            if end < s.start {
                return Err(format!("span #{i} {:?} ends before it starts", s.name));
            }
            if let Some(p) = s.parent {
                let parent = &spans[p];
                let pend = parent.end.unwrap_or(SimTime::from_ns(u64::MAX));
                if s.start < parent.start || end > pend {
                    return Err(format!(
                        "span #{i} {:?} escapes its parent {:?}",
                        s.name, parent.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Per-name aggregates over finished spans, sorted by name.
    pub fn span_aggregates(&self) -> Vec<SpanAggregate> {
        let mut agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in self.spans() {
            if s.end.is_some() {
                let e = agg.entry(s.name).or_insert((0, 0));
                e.0 += 1;
                e.1 += s.duration_ns();
            }
        }
        agg.into_iter()
            .map(|(name, (count, total_ns))| SpanAggregate {
                name,
                count,
                total_ns,
                mean_ns: total_ns / count.max(1),
            })
            .collect()
    }

    /// The span aggregates as `span,count,total_ms,mean_ms` CSV (header
    /// included, rows sorted by span name, fixed-point milliseconds).
    pub fn span_aggregates_csv(&self) -> String {
        let mut out = String::from("span,count,total_ms,mean_ms\n");
        for a in self.span_aggregates() {
            out.push_str(&format!(
                "{},{},{},{}\n",
                a.name,
                a.count,
                fmt_ms(a.total_ns),
                fmt_ms(a.mean_ns)
            ));
        }
        out
    }

    /// Exports everything recorded so far in the Chrome trace-event JSON
    /// format. Spans become complete (`"ph":"X"`) events on one track,
    /// counters become `"ph":"C"` events, gauges become per-domain counter
    /// tracks. Timestamps are virtual microseconds with nanosecond
    /// precision; the output is byte-stable for identical recordings.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for s in &self.spans() {
            let Some(end) = s.end else { continue };
            let mut args = String::new();
            for (k, v) in &s.attrs {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!("{}:{}", json_str(k), json_attr(v)));
            }
            events.push(format!(
                "{{\"name\":{},\"cat\":\"sim\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0,\"args\":{{{}}}}}",
                json_str(s.name),
                fmt_us(s.start.as_ns()),
                fmt_us(end.since(s.start).as_ns()),
                args
            ));
        }
        if let Some(buf) = &self.inner {
            for c in &buf.borrow().counter_samples {
                events.push(format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"value\":{}}}}}",
                    json_str(c.name),
                    fmt_us(c.at.as_ns()),
                    c.total
                ));
            }
        }
        for g in &self.gauges() {
            events.push(format!(
                "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":{},\"args\":{{\"value\":{}}}}}",
                json_str(g.name),
                fmt_us(g.at.as_ns()),
                g.dom.0,
                g.value
            ));
        }
        format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
    }

    /// Writes [`chrome_trace_json`](Self::chrome_trace_json) to `path`,
    /// creating parent directories as needed.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_creating_dirs(path.as_ref(), &self.chrome_trace_json())
    }

    /// Writes [`span_aggregates_csv`](Self::span_aggregates_csv) to `path`,
    /// creating parent directories as needed.
    pub fn write_span_aggregates(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_creating_dirs(path.as_ref(), &self.span_aggregates_csv())
    }
}

fn write_creating_dirs(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, content)
}

/// Formats nanoseconds as fixed-point microseconds (`123.456`), the unit of
/// Chrome trace timestamps. Integer math only, so the output is stable.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Formats nanoseconds as fixed-point milliseconds (`1.234567`).
fn fmt_ms(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000, ns % 1_000_000)
}

/// JSON string literal with the characters the taxonomy can contain escaped.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(n) => n.to_string(),
        AttrValue::I64(n) => n.to_string(),
        AttrValue::F64(n) if n.is_finite() => n.to_string(),
        AttrValue::F64(_) => "null".to_string(),
        AttrValue::Str(s) => json_str(s),
        AttrValue::Bool(b) => b.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn enabled_sink() -> (Clock, TraceSink) {
        let clock = Clock::new();
        let sink = TraceSink::new(clock.clone(), &TraceConfig::enabled());
        (clock, sink)
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::default();
        assert!(!sink.is_enabled());
        {
            let g = sink.span("noop");
            g.attr("k", 1u64);
            sink.count("c", 5);
            sink.gauge("g", DomId::DOM0, 7);
            sink.record_ns("h", 123);
        }
        assert!(sink.spans().is_empty());
        assert_eq!(sink.counter_total("c"), 0);
        assert!(sink.gauges().is_empty());
        assert!(sink.histogram("h").is_none());
        assert_eq!(sink.histograms_csv(), "op,count,p50_us,p90_us,p99_us,max_us\n");
        assert_eq!(sink.chrome_trace_json(), "{\"traceEvents\":[]}\n");
    }

    #[test]
    fn spans_nest_and_stamp_virtual_time() {
        let (clock, sink) = enabled_sink();
        {
            let root = sink.span("root");
            clock.advance(SimDuration::from_us(10));
            {
                let child = sink.span("child");
                child.attr("pages", 42u64);
                clock.advance(SimDuration::from_us(5));
            }
            clock.advance(SimDuration::from_us(1));
            drop(root);
        }
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].duration_ns(), 16_000);
        assert_eq!(spans[1].name, "child");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].start.as_ns(), 10_000);
        assert_eq!(spans[1].duration_ns(), 5_000);
        assert_eq!(spans[1].attrs, vec![("pages", AttrValue::U64(42))]);
        sink.validate_well_nested().unwrap();
    }

    #[test]
    fn guard_survives_early_return() {
        fn inner(sink: &TraceSink, clock: &Clock) -> Result<(), ()> {
            let _g = sink.span("fallible");
            clock.advance(SimDuration::from_ns(3));
            Err(())
        }
        let (clock, sink) = enabled_sink();
        let _ = inner(&sink, &clock);
        let spans = sink.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration_ns(), 3);
        sink.validate_well_nested().unwrap();
    }

    #[test]
    fn counters_accumulate_with_samples() {
        let (clock, sink) = enabled_sink();
        sink.count("ring.tx", 1);
        clock.advance(SimDuration::from_us(2));
        sink.count("ring.tx", 2);
        sink.count("ring.rx", 1);
        assert_eq!(sink.counter_total("ring.tx"), 3);
        assert_eq!(sink.counter_total("ring.rx"), 1);
        assert_eq!(sink.counter_total("missing"), 0);
        let counters = sink.counters();
        assert_eq!(counters.get("ring.tx"), Some(&3));
    }

    #[test]
    fn aggregates_group_by_name_sorted() {
        let (clock, sink) = enabled_sink();
        for _ in 0..3 {
            let _g = sink.span("b.work");
            clock.advance(SimDuration::from_ms(2));
        }
        {
            let _g = sink.span("a.work");
            clock.advance(SimDuration::from_ms(1));
        }
        let agg = sink.span_aggregates();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].name, "a.work");
        assert_eq!(agg[0].count, 1);
        assert_eq!(agg[0].total_ns, 1_000_000);
        assert_eq!(agg[1].name, "b.work");
        assert_eq!(agg[1].count, 3);
        assert_eq!(agg[1].mean_ns, 2_000_000);
        let csv = sink.span_aggregates_csv();
        assert_eq!(
            csv,
            "span,count,total_ms,mean_ms\n\
             a.work,1,1.000000,1.000000\n\
             b.work,3,6.000000,2.000000\n"
        );
    }

    #[test]
    fn chrome_trace_is_valid_and_deterministic() {
        fn run() -> String {
            let (clock, sink) = enabled_sink();
            {
                let g = sink.span("hv.cloneop");
                g.attr("children", 2u64);
                g.attr("mode", "xs_clone");
                clock.advance(SimDuration::from_us(7));
                sink.count("cache.miss", 1);
                sink.gauge("hyp_free", DomId(1), 4096);
            }
            sink.chrome_trace_json()
        }
        let a = run();
        let b = run();
        assert_eq!(a, b, "same recording must serialize identically");
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.contains("\"name\":\"hv.cloneop\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"dur\":7.000"));
        assert!(a.contains("\"mode\":\"xs_clone\""));
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"value\":4096"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = a.matches('{').count();
        let closes = a.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn clear_resets_but_keeps_enabled() {
        let (clock, sink) = enabled_sink();
        {
            let _g = sink.span("x");
            clock.advance(SimDuration::from_ns(1));
        }
        sink.count("c", 1);
        sink.record_ns("h", 5);
        sink.clear();
        assert!(sink.is_enabled());
        assert!(sink.spans().is_empty());
        assert_eq!(sink.counter_total("c"), 0);
        assert!(sink.histogram("h").is_none());
    }

    #[test]
    fn histograms_export_fixed_point_csv() {
        let (_clock, sink) = enabled_sink();
        // Small values land in exact unit buckets, so the CSV is exact.
        for ns in [10u64, 20, 30, 40, 50] {
            sink.record_ns("b.op", ns);
        }
        sink.record_ns("a.op", 1_500);
        let h = sink.histogram("b.op").unwrap();
        assert_eq!(h.count(), 5);
        assert_eq!(h.percentile(50.0), 30);
        let csv = sink.histograms_csv();
        assert_eq!(
            csv,
            "op,count,p50_us,p90_us,p99_us,max_us\n\
             a.op,1,1.500,1.500,1.500,1.500\n\
             b.op,5,0.030,0.050,0.050,0.050\n"
        );
        let all = sink.histograms();
        assert_eq!(all.len(), 2);
        assert!(all.contains_key("a.op"));
    }

    #[test]
    fn validate_catches_open_span() {
        let (_clock, sink) = enabled_sink();
        let g = sink.span("open");
        assert!(sink.validate_well_nested().is_err());
        drop(g);
        sink.validate_well_nested().unwrap();
    }

    #[test]
    fn shared_handles_write_one_buffer() {
        let (clock, sink) = enabled_sink();
        let other = sink.clone();
        {
            let _g = sink.span("outer");
            clock.advance(SimDuration::from_ns(5));
            let _h = other.span("inner");
        }
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, Some(0), "handles share the span stack");
    }
}

//! Deterministic pseudo-random number generation.
//!
//! The simulation must be reproducible, so all randomness flows from
//! explicitly seeded [`SplitMix64`] generators. The implementation follows
//! Steele et al.'s SplitMix64, which is small, fast and statistically solid
//! for workload-generation purposes (this is not a cryptographic generator).

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use sim_core::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift reduction (Lemire); the slight modulo bias of the
        // plain approach is irrelevant for workload generation but this is
        // just as cheap.
        let m = (self.next_u64() as u128) * (bound as u128);
        (m >> 64) as u64
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns an approximately normal sample with the given mean and
    /// standard deviation (Irwin–Hall sum of 12 uniforms; plenty for
    /// service-time jitter).
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| self.next_f64()).sum();
        mean + (sum - 6.0) * stddev
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Derives an independent child generator (useful to give each
    /// subsystem its own stream from one master seed).
    pub fn fork_stream(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = SplitMix64::new(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "stddev {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(77);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

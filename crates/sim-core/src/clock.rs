//! The shared monotonic virtual clock.
//!
//! A single [`Clock`] instance is shared (via [`Rc`]) by every component of
//! the simulated platform. Components advance it by *charging* costs from the
//! [`CostModel`](crate::costs::CostModel); the clock never moves backwards.
//!
//! [`Rc`]: std::rc::Rc

use std::cell::Cell;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// A shareable, monotonically advancing virtual clock.
///
/// Cloning a [`Clock`] yields a handle onto the same underlying instant, so
/// all components observe a consistent notion of "now".
///
/// # Examples
///
/// ```
/// use sim_core::{Clock, SimDuration};
///
/// let clock = Clock::new();
/// let other = clock.clone();
/// clock.advance(SimDuration::from_ms(5));
/// assert_eq!(other.now().as_ns(), 5_000_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Rc<Cell<SimTime>>,
}

impl Clock {
    /// Creates a new clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Clock {
            now: Rc::new(Cell::new(SimTime::ZERO)),
        }
    }

    /// Returns the current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now.get()
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let t = self.now.get() + d;
        self.now.set(t);
        t
    }

    /// Advances the clock to `t` if `t` is in the future; a request to move
    /// backwards is ignored, preserving monotonicity.
    pub fn advance_to(&self, t: SimTime) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }

    /// Runs `f` and returns both its result and the virtual time it charged.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, SimDuration) {
        let start = self.now();
        let out = f();
        (out, self.now().since(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_us(7));
        assert_eq!(c.now().as_ns(), 7_000);
    }

    #[test]
    fn handles_share_state() {
        let a = Clock::new();
        let b = a.clone();
        b.advance(SimDuration::from_ns(3));
        assert_eq!(a.now().as_ns(), 3);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = Clock::new();
        c.advance_to(SimTime::from_ns(100));
        c.advance_to(SimTime::from_ns(50));
        assert_eq!(c.now().as_ns(), 100);
    }

    #[test]
    fn measure_reports_charged_time() {
        let c = Clock::new();
        let (v, d) = c.measure(|| {
            c.advance(SimDuration::from_ms(2));
            42
        });
        assert_eq!(v, 42);
        assert_eq!(d.as_ns(), 2_000_000);
    }
}

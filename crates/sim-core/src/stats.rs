//! Streaming statistics and experiment series recording.
//!
//! The benchmark harness reports every figure of the paper as a series of
//! `(x, y)` samples. [`Series`] collects them with labels and renders CSV;
//! [`OnlineStats`] provides Welford-style streaming moments for summarizing
//! repeated runs.

use std::fmt::Write as _;

use crate::time::SimDuration;

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a duration sample in milliseconds.
    pub fn push_ms(&mut self, d: SimDuration) {
        self.push(d.as_ms_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 for fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Computes the `p`-th percentile (0–100) of a sample set by the
/// nearest-rank method — the sample of 1-based rank `ceil(p/100 · n)` —
/// the same convention as [`crate::hist::Histogram::percentile`], so a
/// float sample set and a histogram fed the same values agree. Sorting
/// uses `f64::total_cmp`, a deterministic total order (NaNs sort last
/// instead of poisoning the comparison). Returns 0 for an empty slice.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0 * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// A labelled multi-column series of samples, rendered as CSV.
///
/// Each row is an x-value plus one y-value per column; columns are the
/// figure's curves (e.g. `boot`, `restore`, `clone`).
///
/// # Examples
///
/// ```
/// use sim_core::stats::Series;
///
/// let mut s = Series::new("instances", &["boot_ms", "clone_ms"]);
/// s.row(1.0, &[160.2, 21.0]);
/// s.row(2.0, &[160.9, 21.2]);
/// let csv = s.to_csv();
/// assert!(csv.starts_with("instances,boot_ms,clone_ms\n"));
/// ```
#[derive(Debug, Clone)]
pub struct Series {
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(f64, Vec<f64>)>,
}

impl Series {
    /// Creates a series with an x-axis label and named columns.
    pub fn new(x_label: &str, columns: &[&str]) -> Self {
        Series {
            x_label: x_label.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `ys` does not match the column count.
    pub fn row(&mut self, x: f64, ys: &[f64]) {
        assert_eq!(
            ys.len(),
            self.columns.len(),
            "row arity mismatch for series '{}'",
            self.x_label
        );
        self.rows.push((x, ys.to_vec()));
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns the recorded rows.
    pub fn rows(&self) -> &[(f64, Vec<f64>)] {
        &self.rows
    }

    /// Returns the column labels.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Returns the y-values of a named column.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|(_, ys)| ys[idx]).collect())
    }

    /// Renders the series as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (x, ys) in &self.rows {
            let _ = write!(out, "{x}");
            for y in ys {
                let _ = write!(out, ",{y:.4}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.stddev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let mut xs = vec![4.0, 2.0, 1.0, 3.0];
        assert_eq!(percentile(&mut xs, 0.0), 1.0);
        assert_eq!(percentile(&mut xs, 100.0), 4.0);
        // rank(50) = ceil(0.5*4) = 2 -> second-smallest sample.
        assert_eq!(percentile(&mut xs, 50.0), 2.0);
        // rank(90) = ceil(3.6) = 4 -> the maximum.
        assert_eq!(percentile(&mut xs, 90.0), 4.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }

    #[test]
    fn percentile_agrees_with_histogram_on_exact_buckets() {
        use crate::hist::Histogram;
        // Values below 64 land in exact unit buckets, so both sides are
        // exact and must agree under the shared nearest-rank convention.
        let vals: Vec<u64> = vec![3, 9, 14, 27, 33, 41, 55, 60];
        let mut h = Histogram::new();
        let mut f: Vec<f64> = Vec::new();
        for &v in &vals {
            h.record(v);
            f.push(v as f64);
        }
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            assert_eq!(
                percentile(&mut f.clone(), p) as u64,
                h.percentile(p),
                "p{p} disagrees"
            );
        }
    }

    #[test]
    fn percentile_sort_is_total_even_with_nan() {
        let mut xs = vec![2.0, f64::NAN, 1.0];
        // NaN sorts last under total_cmp; the p50 of three samples is the
        // second-smallest finite value.
        assert_eq!(percentile(&mut xs, 50.0), 2.0);
        assert_eq!(percentile(&mut xs, 0.0), 1.0);
    }

    #[test]
    fn series_csv_roundtrip() {
        let mut s = Series::new("n", &["a", "b"]);
        s.row(1.0, &[0.5, 1.5]);
        s.row(2.0, &[0.25, 2.5]);
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(s.column("b").unwrap(), vec![1.5, 2.5]);
        assert!(s.column("missing").is_none());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn series_rejects_wrong_arity() {
        let mut s = Series::new("n", &["a"]);
        s.row(1.0, &[1.0, 2.0]);
    }
}

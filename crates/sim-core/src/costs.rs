//! The calibrated cost model.
//!
//! Every operation the simulated platform performs charges virtual time from
//! a single [`CostModel`]. Centralizing the knobs has two benefits: the whole
//! reproduction can be re-calibrated in one place, and ablation benchmarks
//! can scale an individual cost to study its contribution (e.g. the impact
//! of `xs_request_base` on instantiation time, mirroring the paper's
//! `xs_clone`-vs-deep-copy comparison).
//!
//! The defaults are calibrated against the numbers reported in the paper's
//! evaluation (§6–7, Intel Xeon E5-1620 v2 @ 3.70 GHz, 16 GB DDR3): boot
//! times of 160–300 ms, clone times of 20–30 ms, first-stage duration of
//! ~1 ms for a 4 MB guest, userspace operations of ~3 ms / ~1.9 ms, and so
//! on. The *shape* of every figure is produced by the mechanisms themselves
//! (page counts, Xenstore entry counts, watch fan-out); the cost model only
//! supplies per-operation unit costs.

use crate::time::SimDuration;

/// Per-operation virtual-time costs for the whole simulated platform.
///
/// All durations are unit costs; the modelled code multiplies them by the
/// actual operation counts (pages copied, entries written, ...).
#[derive(Debug, Clone)]
pub struct CostModel {
    // ------------------------------------------------------------------
    // Hypervisor: generic
    // ------------------------------------------------------------------
    /// Fixed cost of entering/leaving the hypervisor for any hypercall.
    pub hypercall_base: SimDuration,
    /// Creating the bare `struct domain` and ancillary bookkeeping.
    pub domain_create_base: SimDuration,
    /// Initializing one vCPU during domain creation or cloning.
    pub vcpu_init: SimDuration,
    /// Allocating one machine frame to a domain.
    pub mem_alloc_per_page: SimDuration,
    /// Freeing one machine frame.
    pub mem_free_per_page: SimDuration,
    /// Copying the full contents of one 4 KiB page.
    pub page_copy: SimDuration,
    /// Delivering an event-channel notification / virtual interrupt.
    pub event_delivery: SimDuration,

    // ------------------------------------------------------------------
    // Hypervisor: CLONEOP first stage
    // ------------------------------------------------------------------
    /// Fixed first-stage cost: copying/editing `struct domain`, event
    /// channels and the grant table of the parent.
    pub clone_stage1_base: SimDuration,
    /// First-time sharing of one page: ownership transfer to `dom_cow`,
    /// refcount setup and write-protection.
    pub clone_share_per_page: SimDuration,
    /// Refcount bump for a page that is already owned by `dom_cow`.
    pub clone_reshare_per_page: SimDuration,
    /// Rebuilding one child page-table entry from the p2m (the dominant
    /// cost for large guests, cf. Fig. 6 and On-Demand-Fork (ref.\ 66 of the paper)).
    pub clone_pt_build_per_page: SimDuration,
    /// Duplicating or rewriting one private page (start_info, console page,
    /// Xenstore page, p2m frames, ring pages, ...).
    pub clone_private_page: SimDuration,
    /// COW fault path that must copy the page (refcount > 1).
    pub cow_fault_copy: SimDuration,
    /// COW fault path that transfers ownership back (refcount == 1).
    pub cow_fault_transfer: SimDuration,

    // ------------------------------------------------------------------
    // Xenstore
    // ------------------------------------------------------------------
    /// Fixed per-request processing cost in the Xenstore daemon.
    pub xs_request_base: SimDuration,
    /// Additional per-request cost proportional to the number of entries
    /// already in the store (oxenstored's persistent-tree bookkeeping; this
    /// is what makes instantiation time grow with the instance count in
    /// Fig. 4, and what `xs_clone` sidesteps by issuing fewer requests).
    pub xs_per_existing_entry: SimDuration,
    /// Cost of matching one registered watch against a written path.
    pub xs_watch_match: SimDuration,
    /// Firing one watch event to a subscriber.
    pub xs_watch_fire: SimDuration,
    /// Per-entry cost inside a single `xs_clone` request (daemon-side copy
    /// plus key rewriting; much cheaper than a full request round-trip).
    pub xs_clone_per_entry: SimDuration,
    /// Appending one line to the Xenstore access log.
    pub xs_access_log_append: SimDuration,
    /// Rotating the access log files (the source of the spikes in Fig. 4).
    pub xs_access_log_rotate: SimDuration,
    /// Introducing a new domain to the Xenstore daemon.
    pub xs_introduce: SimDuration,
    /// Starting or ending a transaction.
    pub xs_transaction: SimDuration,

    // ------------------------------------------------------------------
    // Toolstack (xl / libxl) and Dom0 userspace
    // ------------------------------------------------------------------
    /// Fixed toolstack overhead for launching a domain (config parsing,
    /// libxl context, image handling).
    pub xl_create_base: SimDuration,
    /// Loading (measuring/copying) one page of the kernel image at boot.
    pub image_load_per_page: SimDuration,
    /// Scanning one existing domain name during `xl`'s uniqueness check
    /// (disabled for the paper's baseline, kept as an option).
    pub xl_name_check_per_domain: SimDuration,
    /// Fixed `xl destroy` overhead (domain-death synchronization, device
    /// teardown, toolstack process lifetime).
    pub xl_destroy_base: SimDuration,
    /// Attaching KFX to a fresh VM (mapping guest memory, VMI setup) —
    /// paid per instance in the boot-per-input fuzzing baseline.
    pub kfx_attach: SimDuration,
    /// One frontend/backend Xenbus negotiation state transition.
    pub xenbus_transition: SimDuration,
    /// Creating the in-kernel state of a backend device (e.g. netback vif).
    pub backend_create: SimDuration,
    /// Generating and delivering one udev event to userspace.
    pub udev_event: SimDuration,
    /// Adding an interface to a Linux bridge.
    pub bridge_add: SimDuration,
    /// Enslaving an interface to a Linux bond.
    pub bond_enslave: SimDuration,
    /// Adding a bucket to an Open vSwitch select group.
    pub ovs_group_add: SimDuration,
    /// Launching a QEMU process (9pfs backend, console aggregation).
    pub qemu_launch: SimDuration,
    /// One QMP management request round-trip (e.g. 9pfs fid-table clone).
    pub qmp_request: SimDuration,
    /// Per-fid cost of cloning a 9pfs fid table inside QEMU.
    pub qmp_clone_per_fid: SimDuration,
    /// Attaching the console of a new domain (xenconsoled work).
    pub console_attach: SimDuration,
    /// Saving one page of guest memory to a suspend image.
    pub save_per_page: SimDuration,
    /// Restoring one page of guest memory from a suspend image. Restore
    /// copies the *entire configured* memory back (Fig. 4: restore is
    /// slightly slower than boot).
    pub restore_per_page: SimDuration,
    /// Fixed guest-side boot work (unikernel early init until app main).
    pub guest_boot_fixed: SimDuration,

    // ------------------------------------------------------------------
    // xencloned (second stage)
    // ------------------------------------------------------------------
    /// Fixed second-stage daemon overhead per clone (ring read, dispatch).
    pub xencloned_dispatch: SimDuration,
    /// Reading and caching the parent's Xenstore information (charged only
    /// for the first clone of a parent; §6.2 reports ~3 ms first vs ~1.9 ms
    /// subsequent userspace operations).
    pub xencloned_parent_scan: SimDuration,

    // ------------------------------------------------------------------
    // Linux process / container / VM baselines
    // ------------------------------------------------------------------
    /// Fixed cost of the `fork()` system call (task struct, fd table, ...).
    pub fork_base: SimDuration,
    /// Copying one page-table entry during `fork()`.
    pub fork_pt_copy_per_page: SimDuration,
    /// Write-protecting one PTE on the first `fork()` of a process.
    pub fork_cow_mark_per_page: SimDuration,
    /// Linux COW fault (page copy + PTE fixup).
    pub linux_cow_fault: SimDuration,
    /// Starting a container (namespace + cgroup setup + runtime overhead,
    /// excluding orchestration latency).
    pub container_start: SimDuration,
    /// Kubernetes pod scheduling + kubelet + readiness-probe latency until
    /// a new container instance is reported Ready.
    pub pod_ready_latency: SimDuration,
    /// Latency until a cloned unikernel instance is reported Ready by the
    /// orchestrator (KubeKraft path).
    pub unikernel_ready_latency: SimDuration,

    // ------------------------------------------------------------------
    // I/O data path
    // ------------------------------------------------------------------
    /// One-way latency of a packet across the virtual link (bridge/bond).
    pub net_link_latency: SimDuration,
    /// Per-byte cost of moving packet payload through the PV ring path.
    pub net_per_byte: SimDuration,
    /// Guest-side cost to process one HTTP request (Unikraft + lwip path;
    /// no user/kernel crossing).
    pub http_service_unikernel: SimDuration,
    /// Process-side cost to process one HTTP request (native Linux stack,
    /// includes user/kernel switches).
    pub http_service_process: SimDuration,
    /// Handling one Redis command (SET) in the server.
    pub redis_op: SimDuration,
    /// Serializing one key/value pair into the RDB snapshot.
    pub redis_serialize_per_key: SimDuration,
    /// Writing one 4 KiB block through 9pfs (front + ring + QEMU + ramdisk).
    pub p9fs_write_per_page: SimDuration,
    /// One 9pfs protocol round-trip (TOPEN/TWALK/... request + response).
    pub p9fs_rpc: SimDuration,
    /// Reading one 512-byte sector through the PV block path.
    pub blk_read_per_sector: SimDuration,
    /// Writing one 512-byte sector into a block COW overlay.
    pub blk_write_per_sector: SimDuration,
    /// Snapshotting a block device's base+overlay handles at clone time
    /// (O(1) — structural sharing, no data copied).
    pub blk_clone_base: SimDuration,
    /// Establishing one vsock stream (boot and clone-reconnect alike).
    pub vsock_connect: SimDuration,
    /// One message round-trip on an established vsock stream.
    pub vsock_rpc: SimDuration,
    /// Claiming and attaching a passed-through USB device (USB/IP import).
    pub usb_attach: SimDuration,
    /// One URB round-trip to a passed-through USB device.
    pub usb_urb: SimDuration,
    /// The backend's detach round-trip when a clone is denied the
    /// exclusive USB device.
    pub usb_detach: SimDuration,

    // ------------------------------------------------------------------
    // Fuzzing (KFX + AFL)
    // ------------------------------------------------------------------
    /// AFL-side work per iteration (mutation, queue bookkeeping, pipe I/O).
    pub afl_overhead: SimDuration,
    /// Executing the harness body for one input (adapter + syscall).
    pub fuzz_exec_body: SimDuration,
    /// Inserting one breakpoint during KFX instrumentation (clone_cow path).
    pub kfx_breakpoint_insert: SimDuration,
    /// Per-iteration coverage-tracing overhead for a paravirtualized guest
    /// (breakpoint exits + KFX bookkeeping).
    pub kfx_coverage_overhead_pv: SimDuration,
    /// Per-iteration coverage-tracing overhead for an HVM Linux guest
    /// (VM exits are pricier and the kernel surface is larger).
    pub kfx_coverage_overhead_hvm: SimDuration,
    /// Restoring one dirty page during `clone_reset`.
    pub kfx_reset_per_page: SimDuration,
    /// Fixed `clone_reset` overhead (hypercall + vCPU state restore).
    pub kfx_reset_base: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // Hypervisor: generic.
            hypercall_base: SimDuration::from_ns(300),
            domain_create_base: SimDuration::from_us(180),
            vcpu_init: SimDuration::from_us(30),
            mem_alloc_per_page: SimDuration::from_ns(380),
            mem_free_per_page: SimDuration::from_ns(150),
            page_copy: SimDuration::from_ns(750),
            event_delivery: SimDuration::from_us(2),

            // CLONEOP first stage. A 4 MiB guest (1024 pages) yields
            // ~1 ms of first-stage time: base 250us + 1024*(290+170+75)ns
            // + ~40 private pages.
            clone_stage1_base: SimDuration::from_us(250),
            clone_share_per_page: SimDuration::from_ns(290),
            clone_reshare_per_page: SimDuration::from_ns(28),
            clone_pt_build_per_page: SimDuration::from_ns(44),
            clone_private_page: SimDuration::from_ns(3400),
            cow_fault_copy: SimDuration::from_ns(2600),
            cow_fault_transfer: SimDuration::from_ns(1100),

            // Xenstore.
            xs_request_base: SimDuration::from_us(450),
            xs_per_existing_entry: SimDuration::from_ns(80),
            xs_watch_match: SimDuration::from_ns(90),
            xs_watch_fire: SimDuration::from_us(6),
            xs_clone_per_entry: SimDuration::from_ns(900),
            xs_access_log_append: SimDuration::from_ns(800),
            xs_access_log_rotate: SimDuration::from_ms(210),
            xs_introduce: SimDuration::from_us(520),
            xs_transaction: SimDuration::from_us(10),

            // Toolstack / Dom0 userspace.
            xl_create_base: SimDuration::from_ms(100),
            image_load_per_page: SimDuration::from_ns(7600),
            xl_name_check_per_domain: SimDuration::from_us(95),
            xl_destroy_base: SimDuration::from_ms(175),
            kfx_attach: SimDuration::from_ms(120),
            xenbus_transition: SimDuration::from_us(540),
            backend_create: SimDuration::from_us(2600),
            udev_event: SimDuration::from_us(3300),
            bridge_add: SimDuration::from_us(3600),
            bond_enslave: SimDuration::from_us(4300),
            ovs_group_add: SimDuration::from_us(4600),
            qemu_launch: SimDuration::from_ms(14),
            qmp_request: SimDuration::from_us(450),
            qmp_clone_per_fid: SimDuration::from_us(9),
            console_attach: SimDuration::from_us(2300),
            save_per_page: SimDuration::from_ns(9500),
            restore_per_page: SimDuration::from_ns(33000),
            guest_boot_fixed: SimDuration::from_ms(12),

            // xencloned.
            xencloned_dispatch: SimDuration::from_us(450),
            xencloned_parent_scan: SimDuration::from_us(1100),

            // Baselines.
            fork_base: SimDuration::from_us(55),
            fork_pt_copy_per_page: SimDuration::from_ns(62),
            fork_cow_mark_per_page: SimDuration::from_ns(130),
            linux_cow_fault: SimDuration::from_ns(1800),
            container_start: SimDuration::from_ms(900),
            pod_ready_latency: SimDuration::from_secs(29),
            unikernel_ready_latency: SimDuration::from_ms(2800),

            // I/O data path.
            net_link_latency: SimDuration::from_us(18),
            net_per_byte: SimDuration::from_ns(1),
            http_service_unikernel: SimDuration::from_us(33),
            http_service_process: SimDuration::from_us(36),
            redis_op: SimDuration::from_ns(1600),
            redis_serialize_per_key: SimDuration::from_ns(420),
            p9fs_write_per_page: SimDuration::from_us(11),
            p9fs_rpc: SimDuration::from_us(35),
            blk_read_per_sector: SimDuration::from_us(4),
            blk_write_per_sector: SimDuration::from_us(7),
            blk_clone_base: SimDuration::from_us(55),
            vsock_connect: SimDuration::from_us(180),
            vsock_rpc: SimDuration::from_us(22),
            usb_attach: SimDuration::from_ms(38),
            usb_urb: SimDuration::from_us(125),
            usb_detach: SimDuration::from_us(900),

            // Fuzzing.
            afl_overhead: SimDuration::from_us(210),
            fuzz_exec_body: SimDuration::from_us(1250),
            kfx_breakpoint_insert: SimDuration::from_us(3),
            kfx_coverage_overhead_pv: SimDuration::from_us(420),
            kfx_coverage_overhead_hvm: SimDuration::from_us(1350),
            kfx_reset_per_page: SimDuration::from_us(38),
            kfx_reset_base: SimDuration::from_us(11),
        }
    }
}

impl CostModel {
    /// Returns the calibrated default model (alias for [`Default`]).
    pub fn calibrated() -> Self {
        Self::default()
    }

    /// Returns a zero-cost model, useful in unit tests that assert on
    /// functional behaviour without caring about timing.
    pub fn free() -> Self {
        // SAFETY of the transmute-free approach: build from default and
        // reset every field; a macro would be overkill for a test helper.
        let mut m = Self::default();
        let zero = SimDuration::ZERO;
        m.hypercall_base = zero;
        m.domain_create_base = zero;
        m.vcpu_init = zero;
        m.mem_alloc_per_page = zero;
        m.mem_free_per_page = zero;
        m.page_copy = zero;
        m.event_delivery = zero;
        m.clone_stage1_base = zero;
        m.clone_share_per_page = zero;
        m.clone_reshare_per_page = zero;
        m.clone_pt_build_per_page = zero;
        m.clone_private_page = zero;
        m.cow_fault_copy = zero;
        m.cow_fault_transfer = zero;
        m.xs_request_base = zero;
        m.xs_per_existing_entry = zero;
        m.xs_watch_match = zero;
        m.xs_watch_fire = zero;
        m.xs_clone_per_entry = zero;
        m.xs_access_log_append = zero;
        m.xs_access_log_rotate = zero;
        m.xs_introduce = zero;
        m.xs_transaction = zero;
        m.xl_create_base = zero;
        m.image_load_per_page = zero;
        m.xl_name_check_per_domain = zero;
        m.xl_destroy_base = zero;
        m.kfx_attach = zero;
        m.xenbus_transition = zero;
        m.backend_create = zero;
        m.udev_event = zero;
        m.bridge_add = zero;
        m.bond_enslave = zero;
        m.ovs_group_add = zero;
        m.qemu_launch = zero;
        m.qmp_request = zero;
        m.qmp_clone_per_fid = zero;
        m.console_attach = zero;
        m.save_per_page = zero;
        m.restore_per_page = zero;
        m.guest_boot_fixed = zero;
        m.xencloned_dispatch = zero;
        m.xencloned_parent_scan = zero;
        m.fork_base = zero;
        m.fork_pt_copy_per_page = zero;
        m.fork_cow_mark_per_page = zero;
        m.linux_cow_fault = zero;
        m.container_start = zero;
        m.pod_ready_latency = zero;
        m.unikernel_ready_latency = zero;
        m.net_link_latency = zero;
        m.net_per_byte = zero;
        m.http_service_unikernel = zero;
        m.http_service_process = zero;
        m.redis_op = zero;
        m.redis_serialize_per_key = zero;
        m.p9fs_write_per_page = zero;
        m.p9fs_rpc = zero;
        m.blk_read_per_sector = zero;
        m.blk_write_per_sector = zero;
        m.blk_clone_base = zero;
        m.vsock_connect = zero;
        m.vsock_rpc = zero;
        m.usb_attach = zero;
        m.usb_urb = zero;
        m.usb_detach = zero;
        m.afl_overhead = zero;
        m.fuzz_exec_body = zero;
        m.kfx_breakpoint_insert = zero;
        m.kfx_coverage_overhead_pv = zero;
        m.kfx_coverage_overhead_hvm = zero;
        m.kfx_reset_per_page = zero;
        m.kfx_reset_base = zero;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_nonzero() {
        let m = CostModel::default();
        assert!(m.hypercall_base.as_ns() > 0);
        assert!(m.clone_pt_build_per_page.as_ns() > 0);
        assert!(m.xs_request_base.as_ns() > 0);
    }

    #[test]
    fn free_model_is_all_zero_where_it_matters() {
        let m = CostModel::free();
        assert!(m.hypercall_base.is_zero());
        assert!(m.xs_access_log_rotate.is_zero());
        assert!(m.pod_ready_latency.is_zero());
        assert!(m.kfx_reset_per_page.is_zero());
    }

    #[test]
    fn stage1_for_4mib_guest_is_about_one_millisecond() {
        // The paper reports ~1 ms for the first stage of cloning the 4 MiB
        // Mini-OS UDP server (§6.1). Sanity-check the unit costs compose to
        // the right order of magnitude: base + 1024 shared pages + page
        // table + ~40 private pages.
        let m = CostModel::default();
        let pages = 1024u64;
        let total = m.clone_stage1_base
            + m.clone_share_per_page * pages
            + m.clone_pt_build_per_page * pages
            + m.clone_private_page * 40;
        let ms = total.as_ms_f64();
        assert!((0.5..2.0).contains(&ms), "stage1 = {ms} ms");
    }
}

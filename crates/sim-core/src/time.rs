//! Virtual time representation.
//!
//! The simulation is driven entirely by a virtual clock measured in
//! nanoseconds. [`SimTime`] is an absolute instant since simulation start and
//! [`SimDuration`] a span between instants. Both are thin wrappers around
//! `u64` with saturating arithmetic so that modelling code never panics on
//! overflow.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ns` nanoseconds after simulation start.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the duration in microseconds as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in milliseconds as a float.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Scales the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a float factor (used for jitter and
    /// contention models); negative factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor) as u64)
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_us(3).as_ns(), 3_000);
        assert_eq!(SimDuration::from_ms(3).as_ns(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_ns(), 3_000_000_000);
        assert_eq!(SimTime::from_ns(42).as_ns(), 42);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100) + SimDuration::from_ns(50);
        assert_eq!(t.as_ns(), 150);
        assert_eq!((t - SimTime::from_ns(100)).as_ns(), 50);
        assert_eq!(t.since(SimTime::from_ns(200)), SimDuration::ZERO);
    }

    #[test]
    fn saturating_behaviour() {
        let d = SimDuration::from_ns(u64::MAX);
        assert_eq!((d + d).as_ns(), u64::MAX);
        assert_eq!(d.saturating_mul(3).as_ns(), u64::MAX);
        assert_eq!((SimDuration::from_ns(5) - SimDuration::from_ns(9)).as_ns(), 0);
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_ms(1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
        assert!((d.as_ms_f64() - 1500.0).abs() < 1e-9);
        assert_eq!(d.mul_f64(2.0).as_ns(), 3_000_000_000);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_ns(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_us(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_ms(12)), "12.000ms");
    }

    #[test]
    fn division_never_panics() {
        assert_eq!((SimDuration::from_ns(10) / 0).as_ns(), 10);
        assert_eq!((SimDuration::from_ns(10) / 2).as_ns(), 5);
    }
}

//! Deterministic log-bucketed latency histograms (HDR-histogram style).
//!
//! A [`Histogram`] records `u64` values (virtual nanoseconds) into
//! logarithmic buckets: values below 64 get one bucket each, and every
//! power-of-two range above that is split into 64 sub-buckets, bounding the
//! relative quantization error of any reported value to 1/64 (< 1.6 %)
//! while keeping recording O(1) and the memory footprint a few KiB.
//!
//! Percentiles use exact rank selection (the nearest-rank method with rank
//! `ceil(p/100 · n)`): the reported value is the upper bound of the bucket
//! holding the sample of that rank, clamped to the exactly-tracked
//! `min`/`max`. All arithmetic is integer, so two runs that record the
//! same sequence of values produce byte-identical exports — the property
//! the figure runners' percentile columns rely on.

/// Sub-bucket resolution: 2^6 = 64 sub-buckets per power of two.
const SUB_BITS: u32 = 6;
const SUB_COUNT: u64 = 1 << SUB_BITS;
const SUB_MASK: u64 = SUB_COUNT - 1;

/// A log-bucketed histogram of `u64` samples (see the [module docs](self)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket occupancy; grown on demand (indexes are small for ns-scale
    /// latencies: a full second lands in bucket ~1500).
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Maps a value to its bucket index. Identity below [`SUB_COUNT`]; above,
/// each power-of-two range contributes [`SUB_COUNT`] sub-buckets.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let base = ((msb - SUB_BITS + 1) as usize) << SUB_BITS;
    base + ((v >> shift) & SUB_MASK) as usize
}

/// The largest value mapping to bucket `idx` (inverse of [`bucket_index`]).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB_COUNT as usize {
        return idx as u64;
    }
    let msb = (idx >> SUB_BITS) as u32 + SUB_BITS - 1;
    let sub = (idx as u64) & SUB_MASK;
    let lower = (1u64 << msb) + (sub << (msb - SUB_BITS));
    // Parenthesized so the top bucket (upper == u64::MAX) does not overflow.
    lower + ((1u64 << (msb - SUB_BITS)) - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one value. O(1).
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (exact; 0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Sum of all recorded values (exact; `u128` so even u64-scale values
    /// cannot overflow the accumulator).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the recorded values (integer division; 0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// The value at percentile `p` (0–100) by the nearest-rank method:
    /// the sample of rank `ceil(p/100 · n)` (1-based), reported as its
    /// bucket's upper bound clamped to the exact `min`/`max`. `p >= 100`
    /// returns the exact maximum; an empty histogram returns 0.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 100.0 {
            return self.max;
        }
        let p = p.max(0.0);
        // ceil(p/100 * count) with integer-friendly math, clamped to 1..=n.
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_inverse_consistent() {
        let mut last = None;
        for v in (0u64..4096).chain([1 << 20, (1 << 20) + 7, u64::MAX / 2, u64::MAX]) {
            let idx = bucket_index(v);
            if let Some((lv, li)) = last {
                assert!(idx >= li, "index must not decrease: {lv}->{li}, {v}->{idx}");
            }
            assert!(bucket_upper(idx) >= v, "upper({idx}) >= {v}");
            // The upper bound maps back to the same bucket.
            assert_eq!(bucket_index(bucket_upper(idx)), idx);
            last = Some((v, idx));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5);
        assert_eq!(h.mean(), 3);
        // Nearest-rank: rank(50) = ceil(0.5*5) = 3 -> value 3.
        assert_eq!(h.percentile(50.0), 3);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 5);
        // rank(90) = ceil(4.5) = 5 -> value 5.
        assert_eq!(h.percentile(90.0), 5);
    }

    #[test]
    fn large_values_quantize_within_a_64th() {
        let mut h = Histogram::new();
        let v = 1_234_567u64;
        h.record(v);
        let p = h.percentile(50.0);
        assert!(p >= v, "reported {p} must not undershoot {v}");
        assert!(p - v <= v / 64 + 1, "error {} above 1/64 of {v}", p - v);
        assert_eq!(h.max(), v, "max is exact");
        assert_eq!(h.percentile(100.0), v);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        a.record(20);
        b.record(5);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn percentiles_are_deterministic_across_recordings() {
        let run = || {
            let mut h = Histogram::new();
            for i in 0..1000u64 {
                h.record(i * 997 % 100_000);
            }
            (h.percentile(50.0), h.percentile(90.0), h.percentile(99.0), h.max())
        };
        assert_eq!(run(), run());
    }
}

//! Core simulation substrate for the Nephele reproduction.
//!
//! Every other crate in this workspace models a component of a Xen-like
//! virtualization environment (hypervisor, Xenstore, toolstack, guests, ...).
//! This crate provides the pieces they all share:
//!
//! * [`time`] — a virtual-time representation ([`SimTime`], [`SimDuration`]).
//!   The simulation never reads the host clock; all reported durations are
//!   derived from virtual time.
//! * [`clock`] — a shareable monotonic [`Clock`] advanced by charging costs.
//! * [`costs`] — the single calibrated [`CostModel`] from which every
//!   modelled operation derives its virtual duration.
//! * [`events`] — a deterministic discrete-event queue.
//! * [`par`] — a deterministic fork/join [`Pool`]: seeded work splitting
//!   and ordered reduction, so host parallelism never changes a result.
//! * [`rng`] — a small deterministic PRNG ([`SplitMix64`]) so the lower
//!   layers do not need external crates.
//! * [`stats`] — streaming statistics and series recording for experiments.
//! * [`trace`] — deterministic observability: virtual-time spans, counters,
//!   gauges and log-bucketed latency [`hist`]ograms with chrome-trace / CSV
//!   exporters, streaming-aggregation modes, a Prometheus-style text
//!   exposition, and per-clone-family rollups.
//! * [`timeline`] — bounded virtual-time slice ring: counters, gauges and
//!   span closes folded into fixed-width slices with a CSV exporter.
//! * [`rollup`] — the clone-family provenance registry behind the
//!   family rollup exports.
//! * [`hist`] — HDR-style log-bucketed histograms with exact-rank
//!   percentiles.
//! * [`flightrec`] — an always-on fixed-size ring of compact events, dumped
//!   as JSON when something goes wrong.
//! * [`ids`] — strongly typed identifiers (domain ids, frame numbers) and
//!   page-size constants.
//!
//! [`SimTime`]: time::SimTime
//! [`SimDuration`]: time::SimDuration
//! [`Clock`]: clock::Clock
//! [`CostModel`]: costs::CostModel
//! [`Pool`]: par::Pool
//! [`SplitMix64`]: rng::SplitMix64

pub mod clock;
pub mod costs;
pub mod events;
pub mod flightrec;
pub mod hist;
pub mod ids;
pub mod par;
pub mod rng;
pub mod rollup;
pub mod stats;
pub mod time;
pub mod timeline;
pub mod trace;

pub use clock::Clock;
pub use costs::CostModel;
pub use events::EventQueue;
pub use flightrec::{FlightEvent, FlightRecorder, DEFAULT_FLIGHTREC_CAPACITY};
pub use hist::Histogram;
pub use ids::{DomId, Mfn, Pfn, PAGE_SIZE};
pub use par::Pool;
pub use rng::SplitMix64;
pub use rollup::{FamilyRegistry, FamilyRow, FamilyStats};
pub use time::{SimDuration, SimTime};
pub use timeline::{Timeline, TimelineConfig};
pub use trace::{SinkOverhead, SpanGuard, TraceConfig, TraceMode, TraceSink};

//! Virtual-time time-series: counters, gauges and span closures folded
//! into fixed-width virtual-time slices.
//!
//! A [`Timeline`] is a bounded ring of [slices](TimelineConfig::max_slices);
//! each slice covers `[k·width, (k+1)·width)` of virtual time, so slice
//! boundaries are a pure function of the virtual clock and never depend on
//! host scheduling. The sink folds every counter bump, gauge observation
//! and span close into the current slice in O(log keys); memory is bounded
//! by `max_slices × distinct keys` regardless of how many events a run
//! produces. Slices are created lazily (quiet periods cost nothing) and the
//! oldest slices are evicted once the ring is full — [`Timeline::evicted`]
//! reports how many fell off the front.
//!
//! [`Timeline::csv`] renders the ring as a flat table; because everything
//! is keyed by virtual time and folded in program order, the bytes are
//! identical across same-seed runs at any `NEPHELE_THREADS` width.

use std::collections::{BTreeMap, VecDeque};

use crate::time::SimDuration;
use crate::time::SimTime;

/// Slicing knobs for the [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Width of one virtual-time slice.
    pub slice: SimDuration,
    /// Maximum number of retained slices (oldest evicted first).
    pub max_slices: usize,
}

impl Default for TimelineConfig {
    /// 100 ms slices, 512 retained — ~51 virtual seconds of history.
    fn default() -> Self {
        TimelineConfig { slice: SimDuration::from_ms(100), max_slices: 512 }
    }
}

/// Per-slice statistics of one counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSlice {
    /// Bumps observed in the slice.
    pub bumps: u64,
    /// Sum of the deltas.
    pub delta: u64,
    /// Running total after the last bump in the slice.
    pub last_total: u64,
}

/// Per-slice statistics of one `(gauge, domain)` series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GaugeSlice {
    /// Observations in the slice.
    pub n: u64,
    /// Largest observed value.
    pub max: u64,
    /// Last observed value.
    pub last: u64,
}

/// Per-slice statistics of one span name (folded at span close).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSlice {
    /// Spans closed in the slice.
    pub closes: u64,
    /// Total virtual nanoseconds across them.
    pub total_ns: u64,
    /// Longest single span in virtual nanoseconds.
    pub max_ns: u64,
}

/// One virtual-time slice of the ring.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineSlice {
    /// Slice number: the slice covers `[index·width, (index+1)·width)`.
    pub index: u64,
    /// Counter stats keyed by counter name.
    pub counters: BTreeMap<&'static str, CounterSlice>,
    /// Gauge stats keyed by `(name, domain id)`.
    pub gauges: BTreeMap<(&'static str, u32), GaugeSlice>,
    /// Span stats keyed by span name.
    pub spans: BTreeMap<&'static str, SpanSlice>,
}

/// Bounded ring of virtual-time slices; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct Timeline {
    width_ns: u64,
    max_slices: usize,
    slices: VecDeque<TimelineSlice>,
    evicted: u64,
}

impl Timeline {
    /// An empty timeline with the given slicing config.
    pub fn new(config: TimelineConfig) -> Self {
        Timeline {
            width_ns: config.slice.as_ns().max(1),
            max_slices: config.max_slices.max(1),
            slices: VecDeque::new(),
            evicted: 0,
        }
    }

    /// The slice covering `at`, creating (and evicting) as needed. The
    /// virtual clock is monotonic, so the target index never precedes the
    /// newest slice; if it somehow did we fold into the newest slice
    /// rather than corrupt the ring order.
    fn slice_at(&mut self, at: SimTime) -> &mut TimelineSlice {
        let index = at.as_ns() / self.width_ns;
        let need_new = match self.slices.back() {
            Some(s) => index > s.index,
            None => true,
        };
        if need_new {
            self.slices.push_back(TimelineSlice { index, ..Default::default() });
            while self.slices.len() > self.max_slices {
                self.slices.pop_front();
                self.evicted += 1;
            }
        }
        self.slices.back_mut().expect("ring is non-empty after push")
    }

    /// Folds one counter bump into the slice covering `at`.
    pub fn fold_count(&mut self, at: SimTime, name: &'static str, delta: u64, total: u64) {
        let c = self.slice_at(at).counters.entry(name).or_default();
        c.bumps += 1;
        c.delta += delta;
        c.last_total = total;
    }

    /// Folds one gauge observation into the slice covering `at`.
    pub fn fold_gauge(&mut self, at: SimTime, name: &'static str, dom: u32, value: u64) {
        let g = self.slice_at(at).gauges.entry((name, dom)).or_default();
        g.n += 1;
        g.max = g.max.max(value);
        g.last = value;
    }

    /// Folds one span close into the slice covering the close instant.
    pub fn fold_span(&mut self, end: SimTime, name: &'static str, dur_ns: u64) {
        let s = self.slice_at(end).spans.entry(name).or_default();
        s.closes += 1;
        s.total_ns += dur_ns;
        s.max_ns = s.max_ns.max(dur_ns);
    }

    /// Retained slices, oldest first.
    pub fn slices(&self) -> impl Iterator<Item = &TimelineSlice> {
        self.slices.iter()
    }

    /// Number of retained slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether nothing has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Slices evicted off the front of the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Width of one slice in virtual nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Drops all slices (the config is kept).
    pub fn clear(&mut self) {
        self.slices.clear();
        self.evicted = 0;
    }

    /// The retained ring as CSV:
    /// `slice,start_us,kind,key,dom,n,sum,max,last` — one row per
    /// `(slice, series)`. `n`/`sum`/`max`/`last` are, per kind:
    ///
    /// | kind    | n     | sum      | max    | last          |
    /// |---------|-------|----------|--------|---------------|
    /// | counter | bumps | Σ delta  | —      | running total |
    /// | gauge   | obs   | —        | max    | last value    |
    /// | span    | closes| Σ ns     | max ns | —             |
    ///
    /// Unused cells are left empty. Rows are ordered by slice, then kind
    /// (counter < gauge < span), then key — a deterministic function of
    /// the recording alone.
    pub fn csv(&self) -> String {
        let mut out = String::from("slice,start_us,kind,key,dom,n,sum,max,last\n");
        for s in &self.slices {
            let start_ns = s.index * self.width_ns;
            let start_us = format!("{}.{:03}", start_ns / 1_000, start_ns % 1_000);
            for (name, c) in &s.counters {
                out.push_str(&format!(
                    "{},{},counter,{},,{},{},,{}\n",
                    s.index, start_us, name, c.bumps, c.delta, c.last_total
                ));
            }
            for ((name, dom), g) in &s.gauges {
                out.push_str(&format!(
                    "{},{},gauge,{},{},{},,{},{}\n",
                    s.index, start_us, name, dom, g.n, g.max, g.last
                ));
            }
            for (name, sp) in &s.spans {
                out.push_str(&format!(
                    "{},{},span,{},,{},{},{},\n",
                    s.index, start_us, name, sp.closes, sp.total_ns, sp.max_ns
                ));
            }
        }
        out
    }
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new(TimelineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_ns(ms * 1_000_000)
    }

    #[test]
    fn slices_are_fixed_width_and_sparse() {
        let mut tl = Timeline::new(TimelineConfig::default());
        tl.fold_count(t(10), "c", 1, 1);
        tl.fold_count(t(20), "c", 2, 3); // same 100 ms slice
        tl.fold_count(t(950), "c", 1, 4); // slice 9; 1..9 never created
        assert_eq!(tl.len(), 2);
        let s: Vec<_> = tl.slices().collect();
        assert_eq!(s[0].index, 0);
        assert_eq!(s[0].counters["c"], CounterSlice { bumps: 2, delta: 3, last_total: 3 });
        assert_eq!(s[1].index, 9);
        assert_eq!(s[1].counters["c"].last_total, 4);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut tl = Timeline::new(TimelineConfig {
            slice: SimDuration::from_ms(1),
            max_slices: 3,
        });
        for ms in 0..5 {
            tl.fold_gauge(t(ms), "g", 7, ms);
        }
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.evicted(), 2);
        assert_eq!(tl.slices().next().unwrap().index, 2);
    }

    #[test]
    fn csv_is_deterministic_and_typed() {
        let mut tl = Timeline::default();
        tl.fold_count(t(10), "net.tx", 2, 2);
        tl.fold_gauge(t(10), "mem.free", 3, 4096);
        tl.fold_span(t(10), "clone.child", 1_500);
        tl.fold_span(t(10), "clone.child", 500);
        let csv = tl.csv();
        assert_eq!(
            csv,
            "slice,start_us,kind,key,dom,n,sum,max,last\n\
             0,0.000,counter,net.tx,,1,2,,2\n\
             0,0.000,gauge,mem.free,3,1,,4096,4096\n\
             0,0.000,span,clone.child,,2,2000,1500,\n"
        );
        assert_eq!(csv, tl.clone().csv());
    }

    #[test]
    fn clear_keeps_config() {
        let mut tl = Timeline::new(TimelineConfig {
            slice: SimDuration::from_ms(1),
            max_slices: 3,
        });
        tl.fold_count(t(0), "c", 1, 1);
        tl.clear();
        assert!(tl.is_empty());
        assert_eq!(tl.evicted(), 0);
        assert_eq!(tl.width_ns(), 1_000_000);
    }
}

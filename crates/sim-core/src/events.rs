//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] orders events by virtual time with FIFO tie-breaking
//! (events scheduled for the same instant pop in scheduling order), which
//! keeps the whole simulation reproducible run-to-run.

use std::collections::BinaryHeap;
use std::cmp::{Ordering, Reverse};

use crate::time::SimTime;

/// An event stamped with its due time and a monotonic sequence number.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A time-ordered, FIFO-stable event queue.
///
/// # Examples
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(20), "later");
/// q.push(SimTime::from_ns(10), "first");
/// q.push(SimTime::from_ns(10), "second");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "second")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(20), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Returns the due time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Removes and returns the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5), 'b');
        q.push(SimTime::from_ns(1), 'a');
        q.push(SimTime::from_ns(5), 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(100), 1u32);
        assert!(q.pop_due(SimTime::from_ns(99)).is_none());
        assert_eq!(q.pop_due(SimTime::from_ns(100)).unwrap().1, 1);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn large_interleaving_stays_sorted() {
        let mut q = EventQueue::new();
        // Insert in a scrambled deterministic order.
        for i in 0u64..1000 {
            let t = (i * 7919) % 101;
            q.push(SimTime::from_ns(t), (t, i));
        }
        let mut last = (SimTime::ZERO, 0u64);
        while let Some((at, (t, seq))) = q.pop() {
            assert_eq!(at.as_ns(), t);
            assert!(at > last.0 || (at == last.0 && seq > last.1) || last == (SimTime::ZERO, 0));
            last = (at, seq);
        }
    }
}
